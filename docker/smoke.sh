#!/bin/sh
# End-to-end smoke test for the docker-compose harness: build both
# images, start the coordinator, replay the seeded workload through the
# loadgen container, and verify the server actually serviced every job
# before tearing everything down.  Exits non-zero on any failure.
#
# Usage: docker/smoke.sh   (from the repository root; needs docker with
# the compose plugin)

set -eu

COMPOSE="docker compose -f docker/docker-compose.yml"
JOBS=500

cleanup() {
    $COMPOSE down --volumes --remove-orphans >/dev/null 2>&1 || true
}
trap cleanup EXIT

# fresh volume so the job count below is exact
cleanup

# --exit-code-from propagates the loadgen's exit status (it exits 1 if
# any request fails) and tears the coordinator down when it finishes
$COMPOSE up --build --exit-code-from loadgen loadgen coordinator

# the coordinator is down now; restart it against the surviving volume
# to prove the durable run directory resumes, then count serviced jobs
$COMPOSE up --detach --wait coordinator
serviced=$(docker compose -f docker/docker-compose.yml exec coordinator \
    python -c "import json,urllib.request; \
print(json.load(urllib.request.urlopen('http://localhost:8080/healthz'))['jobs'])")

if [ "$serviced" -ne "$JOBS" ]; then
    echo "smoke: FAIL — expected $JOBS serviced jobs, healthz reports $serviced" >&2
    exit 1
fi
echo "smoke: OK — coordinator serviced all $JOBS jobs and resumed from its run dir"
