"""Unit tests for the request history L(R)."""

import pytest

from repro.core.bundle import FileBundle
from repro.core.history import RequestHistory, TruncationMode
from repro.errors import ConfigError

A = FileBundle(["a"])
AB = FileBundle(["a", "b"])
BC = FileBundle(["b", "c"])


class TestRecording:
    def test_value_counts_occurrences(self):
        h = RequestHistory(TruncationMode.FULL)
        h.record(A)
        h.record(A)
        h.record(AB)
        assert h.value_of(A) == 2.0
        assert h.value_of(AB) == 1.0
        assert h.value_of(BC) == 0.0
        assert len(h) == 2
        assert h.arrivals == 3

    def test_weighted_record(self):
        h = RequestHistory(TruncationMode.FULL)
        h.record(A, weight=2.5)
        assert h.value_of(A) == 2.5

    def test_nonpositive_weight_rejected(self):
        h = RequestHistory(TruncationMode.FULL)
        with pytest.raises(ConfigError):
            h.record(A, weight=0.0)

    def test_degrees_count_distinct_types(self):
        h = RequestHistory(TruncationMode.FULL)
        h.record(AB)
        h.record(AB)  # same type again: degree unchanged
        h.record(BC)
        assert h.degree("a") == 1
        assert h.degree("b") == 2
        assert h.degree("c") == 1
        assert h.degree("zzz") == 0
        assert h.max_degree() == 2

    def test_entry_metadata(self):
        h = RequestHistory(TruncationMode.FULL)
        h.record(A)
        h.record(AB)
        h.record(A)
        e = h.entry(A)
        assert e.count == 2
        assert e.first_seen == 1
        assert e.last_seen == 3

    def test_contains(self):
        h = RequestHistory(TruncationMode.FULL)
        h.record(A)
        assert A in h and AB not in h


class TestTruncationModes:
    def test_full_candidates(self):
        h = RequestHistory(TruncationMode.FULL)
        h.record(A)
        h.record(AB)
        assert {e.bundle for e in h.candidates()} == {A, AB}

    def test_window_requires_length(self):
        with pytest.raises(ConfigError):
            RequestHistory(TruncationMode.WINDOW)

    def test_window_rejected_elsewhere(self):
        with pytest.raises(ConfigError):
            RequestHistory(TruncationMode.FULL, window=5)

    def test_window_eviction(self):
        h = RequestHistory(TruncationMode.WINDOW, window=2)
        h.record(A)
        h.record(AB)
        h.record(BC)
        assert {e.bundle for e in h.candidates()} == {AB, BC}
        # but global values/degrees retained
        assert h.value_of(A) == 1.0
        assert h.degree("a") == 2

    def test_window_duplicate_arrivals(self):
        h = RequestHistory(TruncationMode.WINDOW, window=2)
        h.record(A)
        h.record(A)
        h.record(BC)
        assert {e.bundle for e in h.candidates()} == {A, BC}

    def test_cache_supported_candidates(self):
        h = RequestHistory(TruncationMode.CACHE_SUPPORTED)
        h.record(AB)
        h.record(BC)
        assert h.candidates() == []
        h.on_file_loaded("a")
        h.on_file_loaded("b")
        assert {e.bundle for e in h.candidates()} == {AB}
        h.on_file_loaded("c")
        assert {e.bundle for e in h.candidates()} == {AB, BC}
        h.on_file_evicted("b")
        assert h.candidates() == []

    def test_new_bundle_sees_current_residency(self):
        h = RequestHistory(TruncationMode.CACHE_SUPPORTED)
        h.on_file_loaded("a")
        h.on_file_loaded("b")
        h.record(AB)
        assert h.supported(AB)

    def test_duplicate_notifications_idempotent(self):
        h = RequestHistory(TruncationMode.CACHE_SUPPORTED)
        h.record(A)
        h.on_file_loaded("a")
        h.on_file_loaded("a")
        assert h.supported(A)
        h.on_file_evicted("a")
        h.on_file_evicted("a")
        assert not h.supported(A)

    def test_sync_resident(self):
        h = RequestHistory(TruncationMode.CACHE_SUPPORTED)
        h.record(AB)
        h.sync_resident({"a", "b"})
        assert h.supported(AB)
        h.sync_resident({"a"})
        assert not h.supported(AB)
        assert h.resident_view() == {"a"}

    def test_supported_unknown_bundle_checks_residency(self):
        h = RequestHistory(TruncationMode.CACHE_SUPPORTED)
        h.on_file_loaded("x")
        assert h.supported(FileBundle(["x"]))
        assert not h.supported(FileBundle(["y"]))


class TestDecay:
    def test_invalid_decay_rejected(self):
        with pytest.raises(ConfigError):
            RequestHistory(TruncationMode.FULL, decay=0.0)
        with pytest.raises(ConfigError):
            RequestHistory(TruncationMode.FULL, decay=1.5)

    def test_no_decay_by_default(self):
        h = RequestHistory(TruncationMode.FULL)
        h.record(A)
        for _ in range(10):
            h.record(BC)
        assert h.value_of(A) == 1.0

    def test_decay_reduces_stale_values(self):
        h = RequestHistory(TruncationMode.FULL, decay=0.5)
        h.record(A)
        h.record(BC)  # one tick elapses for A
        assert h.value_of(A) == pytest.approx(0.5)
        assert h.value_of(BC) == pytest.approx(1.0)

    def test_decay_compounds_on_rerecord(self):
        h = RequestHistory(TruncationMode.FULL, decay=0.5)
        h.record(A)   # tick 1, value 1
        h.record(BC)  # tick 2
        h.record(A)   # tick 3: value = 1*0.25 + 1
        assert h.value_of(A) == pytest.approx(1.25)

    def test_candidates_apply_decay(self):
        h = RequestHistory(TruncationMode.FULL, decay=0.5)
        h.record(A)
        h.record(BC)
        vals = {e.bundle: e.value for e in h.candidates()}
        assert vals[A] == pytest.approx(0.5)
