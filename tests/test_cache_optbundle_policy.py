"""Unit tests for the OptFileBundle policy adapter."""

import pytest

from repro.cache.optbundle_policy import OptFileBundlePolicy
from repro.cache.state import CacheState
from repro.core.bundle import FileBundle
from repro.core.history import TruncationMode
from repro.errors import PolicyError

SIZES = {f"f{i}": 10 for i in range(8)}


def serve(policy, cache, bundle):
    missing = cache.missing(bundle)
    decision = policy.on_request(bundle)
    loaded = set()
    for f in missing | decision.prefetch:
        if f not in cache:
            cache.load(f, SIZES[f])
            loaded.add(f)
    policy.on_serviced(bundle, frozenset(loaded), not missing)
    return decision


class TestAdapter:
    def test_unbound_planner_access_rejected(self):
        with pytest.raises(PolicyError):
            _ = OptFileBundlePolicy().planner

    def test_bind_creates_planner_with_cache_capacity(self):
        p = OptFileBundlePolicy()
        p.bind(CacheState(70), SIZES)
        assert p.planner.capacity == 70

    def test_bind_syncs_preexisting_residents(self):
        c = CacheState(70)
        c.load("f0", 10)
        p = OptFileBundlePolicy()
        p.bind(c, SIZES)
        assert p.history.resident_view() == {"f0"}

    def test_service_cycle_updates_history(self):
        p = OptFileBundlePolicy()
        c = CacheState(70)
        p.bind(c, SIZES)
        b = FileBundle(["f0", "f1"])
        serve(p, c, b)
        assert p.history.value_of(b) == 1.0
        assert p.history.supported(b)

    def test_history_committed_at_request_time(self):
        # The timed SRM pipelines: the next decision may come before the
        # previous job completes, so commit happens in on_request.
        p = OptFileBundlePolicy()
        c = CacheState(70)
        p.bind(c, SIZES)
        b = FileBundle(["f0"])
        p.on_request(b)
        assert p.history.value_of(b) == 1.0

    def test_pipelined_requests_allowed(self):
        p = OptFileBundlePolicy()
        c = CacheState(70)
        p.bind(c, SIZES)
        b0, b1 = FileBundle(["f0"]), FileBundle(["f1"])
        d0 = p.on_request(b0)
        for f in c.missing(b0):
            c.load(f, SIZES[f])
        d1 = p.on_request(b1)  # before b0's on_serviced: fine
        for f in c.missing(b1):
            c.load(f, SIZES[f])
        p.on_serviced(b0, frozenset({"f0"}), False)
        p.on_serviced(b1, frozenset({"f1"}), False)
        assert p.history.value_of(b0) == 1.0
        assert p.last_plan is not None and p.last_plan.bundle == b1

    def test_score_delegates_to_planner(self):
        p = OptFileBundlePolicy()
        c = CacheState(70)
        p.bind(c, SIZES)
        assert p.score(FileBundle(["f0"])) is not None

    def test_kwargs_forwarded(self):
        p = OptFileBundlePolicy(truncation=TruncationMode.FULL)
        c = CacheState(70)
        p.bind(c, SIZES)
        assert p.history.mode is TruncationMode.FULL

    def test_reset_and_rebind(self):
        p = OptFileBundlePolicy()
        p.bind(CacheState(70), SIZES)
        p.reset()
        p.bind(CacheState(50), SIZES)
        assert p.planner.capacity == 50

    def test_eviction_respects_capacity_under_churn(self):
        p = OptFileBundlePolicy()
        c = CacheState(30)
        p.bind(c, SIZES)
        bundles = [FileBundle([f"f{i}"]) for i in range(6)]
        for b in bundles * 4:
            serve(p, c, b)
            assert c.used <= 30
            c.check_invariants()
