"""Unit tests for CacheState."""

import pytest

from repro.cache.state import CacheState
from repro.core.bundle import FileBundle
from repro.errors import (
    CacheCapacityError,
    ConfigError,
    DuplicateFileError,
    UnknownFileError,
)


class TestConstruction:
    def test_positive_capacity_required(self):
        with pytest.raises(ConfigError):
            CacheState(0)
        with pytest.raises(ConfigError):
            CacheState(-5)

    def test_initial_state(self):
        c = CacheState(10)
        assert c.used == 0 and c.free == 10 and len(c) == 0


class TestLoadEvict:
    def test_load_updates_occupancy(self):
        c = CacheState(10)
        c.load("a", 4)
        assert c.used == 4 and c.free == 6
        assert "a" in c and len(c) == 1
        assert c.size_of("a") == 4

    def test_load_counters(self):
        c = CacheState(10)
        c.load("a", 4)
        c.load("b", 2)
        assert c.load_count == 2
        assert c.bytes_loaded == 6

    def test_duplicate_load_rejected(self):
        c = CacheState(10)
        c.load("a", 1)
        with pytest.raises(DuplicateFileError):
            c.load("a", 1)

    def test_overflow_rejected(self):
        c = CacheState(10)
        c.load("a", 8)
        with pytest.raises(CacheCapacityError):
            c.load("b", 3)
        assert c.used == 8  # unchanged after failed load

    def test_exact_fill_allowed(self):
        c = CacheState(10)
        c.load("a", 10)
        assert c.free == 0

    def test_nonpositive_size_rejected(self):
        c = CacheState(10)
        with pytest.raises(ConfigError):
            c.load("a", 0)

    def test_evict_returns_size_and_updates(self):
        c = CacheState(10)
        c.load("a", 4)
        assert c.evict("a") == 4
        assert c.used == 0 and "a" not in c
        assert c.evict_count == 1 and c.bytes_evicted == 4

    def test_evict_unknown_rejected(self):
        with pytest.raises(UnknownFileError):
            CacheState(10).evict("ghost")

    def test_size_of_unknown_rejected(self):
        with pytest.raises(UnknownFileError):
            CacheState(10).size_of("ghost")

    def test_reload_after_evict(self):
        c = CacheState(10)
        c.load("a", 4)
        c.evict("a")
        c.load("a", 4)
        assert c.used == 4


class TestQueries:
    def test_missing_and_supports(self):
        c = CacheState(10)
        c.load("a", 1)
        b = FileBundle(["a", "b"])
        assert c.missing(b) == {"b"}
        assert not c.supports(b)
        c.load("b", 1)
        assert c.missing(b) == frozenset()
        assert c.supports(b)

    def test_resident_bytes(self):
        c = CacheState(10)
        c.load("a", 3)
        c.load("b", 4)
        assert c.resident_bytes(["a", "b", "z"]) == 7

    def test_residents_view_is_live(self):
        c = CacheState(10)
        view = c.residents()
        c.load("a", 1)
        assert "a" in view

    def test_check_invariants_passes(self):
        c = CacheState(10)
        c.load("a", 3)
        c.check_invariants()

    def test_check_invariants_detects_corruption(self):
        c = CacheState(10)
        c.load("a", 3)
        c._used = 99  # simulate corruption
        with pytest.raises(AssertionError):
            c.check_invariants()
