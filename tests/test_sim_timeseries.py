"""Unit tests for windowed metric time series."""

import pytest

from repro.core.bundle import FileBundle
from repro.core.request import Request, RequestStream
from repro.errors import ConfigError
from repro.sim.simulator import SimulationConfig, simulate_trace
from repro.sim.timeseries import byte_miss_timeseries
from repro.types import FileCatalog
from repro.workload.trace import Trace

SIZES = {f"f{i}": 10 for i in range(6)}


def trace_of(bundle_lists):
    return Trace(
        FileCatalog(SIZES),
        RequestStream(
            Request(i, FileBundle(b)) for i, b in enumerate(bundle_lists)
        ),
    )


class TestTimeseries:
    def test_window_partitioning(self):
        t = trace_of([["f0"]] * 10)
        pts = byte_miss_timeseries(
            t, SimulationConfig(cache_size=100, policy="lru"), window=4
        )
        assert [p.jobs for p in pts] == [4, 4, 2]
        assert [p.window_index for p in pts] == [0, 1, 2]

    def test_learning_visible(self):
        # Repeating workload: first window pays cold misses, later ones hit.
        t = trace_of([["f0"], ["f1"], ["f2"]] * 5)
        pts = byte_miss_timeseries(
            t, SimulationConfig(cache_size=100, policy="lru"), window=3
        )
        assert pts[0].byte_miss_ratio == 1.0
        assert all(p.byte_miss_ratio == 0.0 for p in pts[1:])
        assert all(p.request_hit_ratio == 1.0 for p in pts[1:])

    def test_overall_ratio_matches_simulator(self):
        t = trace_of([["f0"], ["f1"], ["f0", "f2"], ["f1"], ["f3"]] * 4)
        cfg = SimulationConfig(cache_size=30, policy="optbundle")
        pts = byte_miss_timeseries(t, cfg, window=5)
        total_loaded = sum(
            p.byte_miss_ratio * p.jobs * 0 for p in pts
        )  # ratios are per-window; reconstruct via weighted bytes below
        # reconstruct weighted ratio from window data
        requested_per_job = None
        result = simulate_trace(t, cfg)
        # weighted mean of window ratios (weights = window requested bytes)
        # must equal the end-to-end byte miss ratio
        sizes = SIZES
        jobs = t.bundles()
        w = 5
        weighted = 0.0
        total_requested = 0
        for i, p in enumerate(pts):
            chunk = jobs[i * w : i * w + p.jobs]
            req = sum(b.size_under(sizes) for b in chunk)
            weighted += p.byte_miss_ratio * req
            total_requested += req
        assert weighted / total_requested == pytest.approx(
            result.byte_miss_ratio
        )

    def test_invalid_window(self):
        with pytest.raises(ConfigError):
            byte_miss_timeseries(
                trace_of([["f0"]]), SimulationConfig(cache_size=100), window=0
            )

    def test_queueing_rejected(self):
        with pytest.raises(ConfigError):
            byte_miss_timeseries(
                trace_of([["f0"]]),
                SimulationConfig(cache_size=100, queue_length=5),
            )

    def test_oversized_jobs_skipped(self):
        t = trace_of([["f0", "f1", "f2", "f3"], ["f0"]])
        pts = byte_miss_timeseries(
            t, SimulationConfig(cache_size=25, policy="lru"), window=10
        )
        assert pts[0].jobs == 1
