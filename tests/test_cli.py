"""CLI smoke tests (in-process, via main())."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_experiment_rejected_by_argparse(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "fig99"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "optbundle" in out and "fig6" in out

    def test_run_tables(self, capsys):
        assert main(["run", "tables", "--scale", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "f1,f3,f5" in out

    def test_simulate(self, capsys):
        assert (
            main(
                [
                    "simulate",
                    "--jobs",
                    "60",
                    "--files",
                    "80",
                    "--request-types",
                    "40",
                    "--cache-size",
                    "64MB",
                    "--max-bundle-frac",
                    "0.3",
                    "--policy",
                    "lru",
                    "--policy",
                    "optbundle",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "byte_miss_ratio" in out and "lru" in out

    def test_generate_and_replay(self, tmp_path, capsys):
        path = str(tmp_path / "trace.jsonl")
        assert (
            main(
                [
                    "generate",
                    path,
                    "--jobs",
                    "40",
                    "--files",
                    "50",
                    "--request-types",
                    "30",
                    "--cache-size",
                    "64MB",
                    "--max-bundle-frac",
                    "0.3",
                ]
            )
            == 0
        )
        capsys.readouterr()
        assert (
            main(["replay", path, "--cache-size", "64MB", "--policy", "lru"])
            == 0
        )
        out = capsys.readouterr().out
        assert "lru" in out

    def test_replay_missing_file_errors(self, tmp_path, capsys):
        missing = str(tmp_path / "nope.jsonl")
        with pytest.raises(FileNotFoundError):
            main(["replay", missing])

    def test_error_path_returns_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("not json\n")
        assert main(["replay", str(bad)]) == 2
        assert "error:" in capsys.readouterr().err


class TestNewCommands:
    def test_timed(self, capsys):
        assert (
            main(
                [
                    "timed",
                    "--jobs",
                    "40",
                    "--files",
                    "60",
                    "--request-types",
                    "40",
                    "--cache-size",
                    "64MB",
                    "--policy",
                    "lru",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "resp [s]" in out and "lru" in out

    def test_profile(self, tmp_path, capsys):
        path = str(tmp_path / "t.jsonl")
        main(
            [
                "generate",
                path,
                "--jobs",
                "60",
                "--files",
                "40",
                "--request-types",
                "30",
                "--cache-size",
                "32MB",
                "--max-bundle-frac",
                "0.4",
            ]
        )
        capsys.readouterr()
        assert main(["profile", path]) == 0
        out = capsys.readouterr().out
        assert "jobs=60" in out and "popularity:" in out

    def test_compare(self, capsys):
        assert (
            main(
                [
                    "compare",
                    "optbundle",
                    "landlord",
                    "--jobs",
                    "60",
                    "--files",
                    "60",
                    "--request-types",
                    "40",
                    "--cache-size",
                    "32MB",
                    "--max-bundle-frac",
                    "0.3",
                    "--seeds",
                    "3",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "paired across seeds" in out and "optbundle" in out


class TestTelemetryCommands:
    def test_trace_writes_and_validates(self, tmp_path, capsys):
        out_path = str(tmp_path / "trace.jsonl")
        assert (
            main(
                [
                    "trace",
                    "fig5",
                    "--scale",
                    "smoke",
                    "--out",
                    out_path,
                    "--validate",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert f"events to {out_path}" in out
        assert "validated" in out and "against the schema" in out
        assert "profiling spans" in out
        first = (tmp_path / "trace.jsonl").read_text().splitlines()[0]
        assert '"seq":0' in first

    def test_run_with_jsonl_telemetry(self, tmp_path, capsys):
        out_path = str(tmp_path / "run.jsonl")
        assert (
            main(
                [
                    "run",
                    "fig5",
                    "--scale",
                    "smoke",
                    "--telemetry",
                    f"jsonl:{out_path}",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert f"(jsonl:{out_path})" in out and "telemetry:" in out
        assert (tmp_path / "run.jsonl").stat().st_size > 0

    def test_run_with_null_telemetry_prints_no_counter(self, capsys):
        assert main(["run", "tables", "--scale", "smoke", "--telemetry", "null"]) == 0
        assert "telemetry:" not in capsys.readouterr().out

    def test_bad_telemetry_spec_errors(self, capsys):
        assert (
            main(["run", "tables", "--scale", "smoke", "--telemetry", "xml:nope"])
            == 2
        )
        assert "error:" in capsys.readouterr().err


class TestChaosCommand:
    def test_chaos_table(self, capsys):
        args = [
            "chaos",
            "--seed",
            "1",
            "--jobs",
            "40",
            "--files",
            "60",
            "--request-types",
            "30",
            "--cache-size",
            "256MB",
            "--fault-rate",
            "0.0",
            "--fault-rate",
            "0.2",
        ]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "optbundle" in out and "landlord" in out
        assert "retries" in out and "failovers" in out and "failed" in out
        # deterministic: a second identical invocation prints the same table
        assert main(args) == 0
        assert capsys.readouterr().out == out

    def test_chaos_policy_and_retry_knobs(self, capsys):
        assert (
            main(
                [
                    "chaos",
                    "--jobs",
                    "30",
                    "--files",
                    "50",
                    "--request-types",
                    "25",
                    "--cache-size",
                    "256MB",
                    "--policy",
                    "lru",
                    "--fault-rate",
                    "0.3",
                    "--max-retries",
                    "1",
                    "--staging-timeout",
                    "0",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "lru" in out and "optbundle" not in out
