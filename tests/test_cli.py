"""CLI smoke tests (in-process, via main())."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_experiment_rejected_by_argparse(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "fig99"])


class TestErrorContract:
    """--version, and the uniform error:/exit-2 shape for bad input."""

    def test_version_flag(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as exc_info:
            main(["--version"])
        assert exc_info.value.code == 0
        assert capsys.readouterr().out.strip() == f"repro-fbc {__version__}"

    def test_unknown_subcommand_exits_2_with_error_prefix(self, capsys):
        with pytest.raises(SystemExit) as exc_info:
            main(["frobnicate"])
        assert exc_info.value.code == 2
        err = capsys.readouterr().err
        assert "error: " in err and "frobnicate" in err
        assert "usage:" in err

    def test_malformed_flag_exits_2_with_error_prefix(self, capsys):
        cases = (
            ["simulate", "--jobs", "not-a-number"],
            ["serve", "wl.jsonl"],  # missing required --run-dir
            ["loadgen", "wl.jsonl"],  # missing required --port
            ["lint", "--format", "yaml", "x"],
        )
        for argv in cases:
            with pytest.raises(SystemExit) as exc_info:
                main(argv)
            assert exc_info.value.code == 2, argv
            err = capsys.readouterr().err
            assert "error: " in err, argv

    def test_runtime_repro_errors_share_the_shape(self, tmp_path, capsys):
        """ReproError failures return 2 and print the same error: prefix."""
        missing = str(tmp_path / "nope.jsonl")
        assert main(["replay", missing]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error: ")

    def test_serve_without_workload_or_resume(self, tmp_path, capsys):
        code = main(["serve", "--run-dir", str(tmp_path / "run")])
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("error: ") and "--resume" in err

    def test_loadgen_bad_start_job(self, tmp_path, capsys):
        code = main(
            [
                "loadgen",
                str(tmp_path / "wl.jsonl"),
                "--port",
                "1",
                "--start-job",
                "later",
            ]
        )
        assert code == 2
        assert "'later'" in capsys.readouterr().err


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "optbundle" in out and "fig6" in out

    def test_run_tables(self, capsys):
        assert main(["run", "tables", "--scale", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "f1,f3,f5" in out

    def test_simulate(self, capsys):
        assert (
            main(
                [
                    "simulate",
                    "--jobs",
                    "60",
                    "--files",
                    "80",
                    "--request-types",
                    "40",
                    "--cache-size",
                    "64MB",
                    "--max-bundle-frac",
                    "0.3",
                    "--policy",
                    "lru",
                    "--policy",
                    "optbundle",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "byte_miss_ratio" in out and "lru" in out

    def test_generate_and_replay(self, tmp_path, capsys):
        path = str(tmp_path / "trace.jsonl")
        assert (
            main(
                [
                    "generate",
                    path,
                    "--jobs",
                    "40",
                    "--files",
                    "50",
                    "--request-types",
                    "30",
                    "--cache-size",
                    "64MB",
                    "--max-bundle-frac",
                    "0.3",
                ]
            )
            == 0
        )
        capsys.readouterr()
        assert (
            main(["replay", path, "--cache-size", "64MB", "--policy", "lru"])
            == 0
        )
        out = capsys.readouterr().out
        assert "lru" in out

    def test_replay_missing_file_errors(self, tmp_path, capsys):
        missing = str(tmp_path / "nope.jsonl")
        assert main(["replay", missing]) == 2
        err = capsys.readouterr().err
        assert "error:" in err and "unreadable trace" in err

    def test_error_path_returns_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("not json\n")
        assert main(["replay", str(bad)]) == 2
        assert "error:" in capsys.readouterr().err


class TestNewCommands:
    def test_timed(self, capsys):
        assert (
            main(
                [
                    "timed",
                    "--jobs",
                    "40",
                    "--files",
                    "60",
                    "--request-types",
                    "40",
                    "--cache-size",
                    "64MB",
                    "--policy",
                    "lru",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "resp [s]" in out and "lru" in out

    def test_profile(self, tmp_path, capsys):
        path = str(tmp_path / "t.jsonl")
        main(
            [
                "generate",
                path,
                "--jobs",
                "60",
                "--files",
                "40",
                "--request-types",
                "30",
                "--cache-size",
                "32MB",
                "--max-bundle-frac",
                "0.4",
            ]
        )
        capsys.readouterr()
        assert main(["profile", path]) == 0
        out = capsys.readouterr().out
        assert "jobs=60" in out and "popularity:" in out

    def test_compare(self, capsys):
        assert (
            main(
                [
                    "compare",
                    "optbundle",
                    "landlord",
                    "--jobs",
                    "60",
                    "--files",
                    "60",
                    "--request-types",
                    "40",
                    "--cache-size",
                    "32MB",
                    "--max-bundle-frac",
                    "0.3",
                    "--seeds",
                    "3",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "paired across seeds" in out and "optbundle" in out


class TestTelemetryCommands:
    def test_trace_writes_and_validates(self, tmp_path, capsys):
        out_path = str(tmp_path / "trace.jsonl")
        assert (
            main(
                [
                    "trace",
                    "fig5",
                    "--scale",
                    "smoke",
                    "--out",
                    out_path,
                    "--validate",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert f"events to {out_path}" in out
        assert "validated" in out and "against the schema" in out
        assert "profiling spans" in out
        first = (tmp_path / "trace.jsonl").read_text().splitlines()[0]
        assert '"seq":0' in first

    def test_run_with_jsonl_telemetry(self, tmp_path, capsys):
        out_path = str(tmp_path / "run.jsonl")
        assert (
            main(
                [
                    "run",
                    "fig5",
                    "--scale",
                    "smoke",
                    "--telemetry",
                    f"jsonl:{out_path}",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert f"(jsonl:{out_path})" in out and "telemetry:" in out
        assert (tmp_path / "run.jsonl").stat().st_size > 0

    def test_run_with_null_telemetry_prints_no_counter(self, capsys):
        assert main(["run", "tables", "--scale", "smoke", "--telemetry", "null"]) == 0
        assert "telemetry:" not in capsys.readouterr().out

    def test_bad_telemetry_spec_errors(self, capsys):
        assert (
            main(["run", "tables", "--scale", "smoke", "--telemetry", "xml:nope"])
            == 2
        )
        assert "error:" in capsys.readouterr().err


def _simulate_with_telemetry(tmp_path, spec_template):
    """Record two same-seed per-policy telemetry traces via the CLI."""
    assert (
        main(
            [
                "simulate",
                "--jobs",
                "120",
                "--files",
                "80",
                "--request-types",
                "60",
                "--cache-size",
                "200MB",
                "--max-file-frac",
                "0.05",
                "--max-bundle-frac",
                "0.25",
                "--seed",
                "11",
                "--policy",
                "landlord",
                "--policy",
                "optbundle",
                "--telemetry",
                spec_template,
            ]
        )
        == 0
    )


class TestForensicsCommands:
    def test_simulate_records_per_policy_traces(self, tmp_path, capsys):
        template = f"jsonl:{tmp_path}/T_{{policy}}.jsonl"
        _simulate_with_telemetry(tmp_path, template)
        out = capsys.readouterr().out
        assert "telemetry (landlord):" in out
        assert (tmp_path / "T_landlord.jsonl").stat().st_size > 0
        assert (tmp_path / "T_optbundle.jsonl").stat().st_size > 0

    def test_simulate_multi_policy_single_jsonl_path_errors(
        self, tmp_path, capsys
    ):
        assert (
            main(
                [
                    "simulate",
                    "--jobs",
                    "20",
                    "--files",
                    "30",
                    "--request-types",
                    "20",
                    "--cache-size",
                    "64MB",
                    "--policy",
                    "lru",
                    "--policy",
                    "fifo",
                    "--telemetry",
                    f"jsonl:{tmp_path}/one.jsonl",
                ]
            )
            == 2
        )
        assert "{policy}" in capsys.readouterr().err

    def test_analyze_clean_trace(self, tmp_path, capsys):
        template = f"jsonl:{tmp_path}/T_{{policy}}.jsonl"
        _simulate_with_telemetry(tmp_path, template)
        capsys.readouterr()
        assert (
            main(
                [
                    "analyze",
                    f"{tmp_path}/T_landlord.jsonl",
                    "--capacity",
                    "200MB",
                    "--check-invariants",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "violations: 0" in out
        assert "invariants: ok" in out

    def test_analyze_corrupted_trace_exits_nonzero(self, tmp_path, capsys):
        import json

        template = f"jsonl:{tmp_path}/T_{{policy}}.jsonl"
        _simulate_with_telemetry(tmp_path, template)
        capsys.readouterr()
        path = tmp_path / "T_landlord.jsonl"
        lines = path.read_text().splitlines()
        at = next(i for i, l in enumerate(lines) if '"kind":"FileEvicted"' in l)
        record = json.loads(lines[at])
        record["file"] = "ghost"
        lines[at] = json.dumps(record, sort_keys=True)
        path.write_text("\n".join(lines) + "\n")
        assert (
            main(["analyze", str(path), "--check-invariants"])
            == 2
        )
        assert "evict-nonresident" in capsys.readouterr().err

    def test_diff_traces_reports_rationales(self, tmp_path, capsys):
        template = f"jsonl:{tmp_path}/T_{{policy}}.jsonl"
        _simulate_with_telemetry(tmp_path, template)
        capsys.readouterr()
        assert (
            main(
                [
                    "diff-traces",
                    f"{tmp_path}/T_landlord.jsonl",
                    f"{tmp_path}/T_optbundle.jsonl",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "first divergence" in out
        assert "credit" in out and "degree" in out

    def test_export_chrome_default_output(self, tmp_path, capsys):
        template = f"jsonl:{tmp_path}/T_{{policy}}.jsonl"
        _simulate_with_telemetry(tmp_path, template)
        capsys.readouterr()
        assert main(["export-chrome", f"{tmp_path}/T_landlord.jsonl"]) == 0
        out = capsys.readouterr().out
        assert "Chrome trace events" in out
        import json

        doc = json.loads((tmp_path / "T_landlord.chrome.json").read_text())
        assert doc["traceEvents"]

    def test_jsonl_sink_flushed_on_cli_error_path(
        self, tmp_path, capsys, monkeypatch
    ):
        """When the traced run raises a ReproError mid-flight the CLI
        still closes the sink: events emitted before the failure are on
        disk and the trace validates."""
        import repro.cli as cli_module
        from repro.errors import ReproError
        from repro.telemetry import (
            FileAdmitted,
            current_recorder,
            validate_trace_file,
        )

        def exploding_run_experiment(name, scale, jobs=None):
            rec = current_recorder()
            rec.emit(FileAdmitted(file="pre-crash", bytes=1, cause="demand"))
            raise ReproError("injected failure")

        monkeypatch.setattr(
            cli_module, "run_experiment", exploding_run_experiment
        )
        out_path = tmp_path / "partial.jsonl"
        assert (
            main(
                ["trace", "fig5", "--scale", "smoke", "--out", str(out_path)]
            )
            == 2
        )
        assert "injected failure" in capsys.readouterr().err
        assert validate_trace_file(out_path) == 1
        assert "pre-crash" in out_path.read_text()

    def test_run_telemetry_sink_flushed_on_error_path(
        self, tmp_path, capsys, monkeypatch
    ):
        import repro.cli as cli_module
        from repro.errors import ReproError
        from repro.telemetry import (
            FileAdmitted,
            current_recorder,
            validate_trace_file,
        )

        def exploding_run_experiment(name, scale, jobs=None):
            current_recorder().emit(
                FileAdmitted(file="pre-crash", bytes=1, cause="demand")
            )
            raise ReproError("injected failure")

        monkeypatch.setattr(
            cli_module, "run_experiment", exploding_run_experiment
        )
        out_path = tmp_path / "partial.jsonl"
        assert (
            main(
                [
                    "run",
                    "tables",
                    "--scale",
                    "smoke",
                    "--telemetry",
                    f"jsonl:{out_path}",
                ]
            )
            == 2
        )
        assert validate_trace_file(out_path) == 1


class TestChaosCommand:
    def test_chaos_table(self, capsys):
        args = [
            "chaos",
            "--seed",
            "1",
            "--jobs",
            "40",
            "--files",
            "60",
            "--request-types",
            "30",
            "--cache-size",
            "256MB",
            "--fault-rate",
            "0.0",
            "--fault-rate",
            "0.2",
        ]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "optbundle" in out and "landlord" in out
        assert "retries" in out and "failovers" in out and "failed" in out
        # deterministic: a second identical invocation prints the same table
        assert main(args) == 0
        assert capsys.readouterr().out == out

    def test_chaos_policy_and_retry_knobs(self, capsys):
        assert (
            main(
                [
                    "chaos",
                    "--jobs",
                    "30",
                    "--files",
                    "50",
                    "--request-types",
                    "25",
                    "--cache-size",
                    "256MB",
                    "--policy",
                    "lru",
                    "--fault-rate",
                    "0.3",
                    "--max-retries",
                    "1",
                    "--staging-timeout",
                    "0",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "lru" in out and "optbundle" not in out
