"""Fault-tolerant SRM staging: retries, backoff, failover, timeouts, requeue."""

import pytest

from repro.core.bundle import FileBundle
from repro.core.request import Request, RequestStream
from repro.errors import (
    ConfigError,
    RetryExhaustedError,
    StagingTimeoutError,
    UnknownFileError,
)
from repro.faults import NO_FAULTS, FaultSpec
from repro.grid.network import NetworkLink
from repro.grid.site import DataGridSite, ReplicaCatalog
from repro.grid.srm import SRMConfig, StorageResourceManager, run_timed_simulation
from repro.sim.engine import EventEngine
from repro.types import FileCatalog
from repro.workload.trace import Trace

SIZES = {f"f{i}": 100 for i in range(6)}


def timed_trace(bundle_lists, gap=1.0):
    stream = RequestStream(
        Request(i, FileBundle(b), arrival_time=i * gap)
        for i, b in enumerate(bundle_lists)
    )
    return Trace(FileCatalog(SIZES), stream)


def config(**kw):
    defaults = dict(
        cache_size=300,
        policy="lru",
        n_drives=2,
        mount_latency=1.0,
        drive_bandwidth=100.0,
        link=NetworkLink(bandwidth=100.0, latency=0.0),
        processing_time=0.5,
        retry_backoff=2.0,
        backoff_cap=60.0,
        backoff_jitter=0.0,
        max_retries=3,
    )
    defaults.update(kw)
    return SRMConfig(**defaults)


def script_drive_faults(srm, fractions):
    """Make the injector's drive faults follow a fixed script, then succeed."""
    remaining = list(fractions)

    def scripted(component):
        if remaining:
            return remaining.pop(0)
        return None

    srm.injector.drive_fault = scripted


def run_srm(trace, cfg, *, replicas=None, patch=None):
    engine = EventEngine()
    srm = StorageResourceManager(
        engine, trace.catalog.as_dict(), cfg, replicas=replicas
    )
    if patch is not None:
        patch(srm)
    for request in trace:
        engine.schedule_at(request.arrival_time, lambda r=request: srm.submit(r))
    engine.run()
    return srm


class TestConfigValidation:
    def test_invalid_fault_knobs(self):
        with pytest.raises(ConfigError):
            SRMConfig(cache_size=10, max_retries=-1)
        with pytest.raises(ConfigError):
            SRMConfig(cache_size=10, retry_backoff=0.0)
        with pytest.raises(ConfigError):
            SRMConfig(cache_size=10, retry_backoff=5.0, backoff_cap=1.0)
        with pytest.raises(ConfigError):
            SRMConfig(cache_size=10, backoff_jitter=1.5)
        with pytest.raises(ConfigError):
            SRMConfig(cache_size=10, staging_timeout=0.0)


class TestZeroFaultRegression:
    """A disabled FaultSpec must reproduce today's results byte-for-byte."""

    BUNDLES = [["f0"], ["f0", "f1"], ["f2"], ["f0", "f3"], ["f1"], ["f4", "f5"]]

    @pytest.mark.parametrize("policy", ["lru", "landlord", "optbundle"])
    def test_results_identical(self, policy):
        trace = timed_trace(self.BUNDLES, gap=3.0)
        plain = run_timed_simulation(trace, config(policy=policy))
        zeroed = run_timed_simulation(
            trace, config(policy=policy, faults=FaultSpec())
        )
        anchored = run_timed_simulation(
            trace, config(policy=policy, faults=NO_FAULTS)
        )
        assert plain == zeroed == anchored

    def test_fault_counters_all_zero(self):
        r = run_timed_simulation(
            timed_trace(self.BUNDLES), config(faults=FaultSpec())
        )
        assert r.retries == r.failovers == r.timeouts == 0
        assert r.requeues == r.failed_jobs == 0
        assert r.time_lost_to_faults == 0.0


class TestBackoffTiming:
    """Backoff delays measured against EventEngine.now."""

    FAULTY = dict(faults=FaultSpec(drive_failure_rate=1.0, seed=0))

    def test_single_retry_shifts_completion_by_backoff(self):
        # attempt fails at 0.5 * service = 1.0; retry at 1.0 + 2.0 = 3.0;
        # then mss 2.0 + link 1.0 + processing 0.5 => response 6.5
        trace = timed_trace([["f0"]])
        srm = run_srm(
            trace,
            config(**self.FAULTY),
            patch=lambda s: script_drive_faults(s, [0.5]),
        )
        assert srm.jobs_done == 1
        assert srm.retries == 1
        assert srm.response_times.mean == pytest.approx(6.5)
        assert srm.time_lost_to_faults == pytest.approx(1.0 + 2.0)

    def test_backoff_doubles_per_failure(self):
        # failures at t=1, 4, 9 with delays 2, 4, 8; success attempt at
        # t=17 completes 17 + 2 + 1 + 0.5 = 20.5
        trace = timed_trace([["f0"]])
        srm = run_srm(
            trace,
            config(**self.FAULTY),
            patch=lambda s: script_drive_faults(s, [0.5, 0.5, 0.5]),
        )
        assert srm.retries == 3
        assert srm.response_times.mean == pytest.approx(20.5)
        assert srm.time_lost_to_faults == pytest.approx((1 + 1 + 1) + (2 + 4 + 8))

    def test_backoff_respects_cap(self):
        # delays capped at 4: retries at 3, 8, 13; success 13+2+1+0.5=16.5
        trace = timed_trace([["f0"]])
        srm = run_srm(
            trace,
            config(backoff_cap=4.0, **self.FAULTY),
            patch=lambda s: script_drive_faults(s, [0.5, 0.5, 0.5]),
        )
        assert srm.response_times.mean == pytest.approx(16.5)

    def test_jitter_is_deterministic(self):
        trace = timed_trace([["f0"], ["f1", "f2"]], gap=2.0)
        cfg = config(
            backoff_jitter=0.2, faults=FaultSpec(drive_failure_rate=0.7, seed=11)
        )
        a = run_timed_simulation(trace, cfg)
        b = run_timed_simulation(trace, cfg)
        assert a == b


class TestRetryExhaustion:
    def test_requeued_once_then_failed(self):
        trace = timed_trace([["f0"]])
        srm = run_srm(
            trace,
            config(faults=FaultSpec(drive_failure_rate=1.0, seed=0)),
            patch=lambda s: setattr(s.injector, "drive_fault", lambda c: 0.5),
        )
        assert srm.jobs_done == 0
        assert srm.requeues == 1
        assert srm.failed_jobs == 1
        # 3 retries per pass, two passes (original + requeue)
        assert srm.retries == 6
        assert any(isinstance(e, RetryExhaustedError) for e in srm.fault_log)
        # the abandoned job must not leak pins
        assert srm.cache.pinned_files() == frozenset()

    def test_later_jobs_survive_an_earlier_failure(self):
        # job 0 (staging f0) always fails, job 1 is never touched by faults
        trace = timed_trace([["f0"], ["f1"]], gap=1.0)

        def patch(srm):
            srm.injector.drive_fault = lambda c: (
                0.5
                if srm._staging is not None and "f0" in srm._staging.awaiting
                else None
            )

        srm = run_srm(
            trace,
            config(faults=FaultSpec(drive_failure_rate=1.0, seed=0)),
            patch=patch,
        )
        assert srm.failed_jobs == 1
        assert srm.jobs_done == 1
        assert srm.request_hits == 0


class TestStagingTimeout:
    def test_timeouts_count_and_exhaust(self):
        # staging needs 3.0 s; every 1.0 s attempt times out, so the job
        # exhausts its budget twice (original + requeue) and fails
        trace = timed_trace([["f0"]])
        srm = run_srm(trace, config(staging_timeout=1.0))
        assert srm.timeouts == 8
        assert srm.retries == 6
        assert srm.requeues == 1
        assert srm.failed_jobs == 1
        assert srm.jobs_done == 0
        assert any(isinstance(e, StagingTimeoutError) for e in srm.fault_log)

    def test_generous_timeout_changes_nothing(self):
        trace = timed_trace([["f0"]])
        plain = run_timed_simulation(trace, config())
        timed = run_timed_simulation(trace, config(staging_timeout=1_000.0))
        assert plain.mean_response_time == timed.mean_response_time
        assert timed.timeouts == 0


def two_site_catalog(engine, *, slow_mount=5.0):
    fast = DataGridSite.build(
        engine,
        "fast",
        n_drives=1,
        mount_latency=1.0,
        drive_bandwidth=100.0,
        link=NetworkLink(bandwidth=100.0, latency=0.0),
    )
    slow = DataGridSite.build(
        engine,
        "slow",
        n_drives=1,
        mount_latency=slow_mount,
        drive_bandwidth=100.0,
        link=NetworkLink(bandwidth=100.0, latency=0.0),
    )
    catalog = ReplicaCatalog()
    catalog.add_site(fast)
    catalog.add_site(slow)
    for fid in SIZES:
        catalog.add_replica(fid, "fast")
        catalog.add_replica(fid, "slow")
    return catalog, fast, slow


class TestFailover:
    def test_retry_fails_over_to_surviving_site(self):
        engine = EventEngine()
        catalog, fast, slow = two_site_catalog(engine)
        cfg = config(faults=FaultSpec(drive_failure_rate=1.0, seed=0))
        srm = StorageResourceManager(engine, dict(SIZES), cfg, replicas=catalog)
        script_drive_faults(srm, [0.5])
        # the fast site goes down right after its drive fault surfaces
        srm.injector.is_down = lambda site, now: site == "fast" and now >= 1.0
        engine.schedule_at(
            0.0, lambda: srm.submit(Request(0, FileBundle(["f0"])))
        )
        engine.run()
        # attempt 1 picks fast (cheapest), fails at t=1; retry at t=3 must
        # exclude the down site: mss 6.0 + link 1.0 + processing 0.5
        assert srm.failovers == 1
        assert srm.jobs_done == 1
        assert srm.response_times.mean == pytest.approx(10.5)
        assert fast.mss.failed_retrievals == 1
        assert slow.mss.retrievals == 1

    def test_all_sites_down_backs_off_without_contact(self):
        engine = EventEngine()
        catalog, fast, slow = two_site_catalog(engine)
        cfg = config(faults=FaultSpec(site_downtime_rate=0.5, seed=0))
        srm = StorageResourceManager(engine, dict(SIZES), cfg, replicas=catalog)
        srm.injector.is_down = lambda site, now: True
        engine.schedule_at(
            0.0, lambda: srm.submit(Request(0, FileBundle(["f0"])))
        )
        engine.run()
        assert fast.mss.retrievals == 0 and slow.mss.retrievals == 0
        assert srm.failed_jobs == 1
        assert srm.requeues == 1
        # pure backoff waiting: (2+4+8) per pass, two passes
        assert srm.time_lost_to_faults == pytest.approx(28.0)

    def test_best_source_exclusion(self):
        engine = EventEngine()
        catalog, fast, slow = two_site_catalog(engine)
        assert catalog.best_source("f0", 100).name == "fast"
        assert catalog.best_source("f0", 100, exclude={"fast"}).name == "slow"
        # excluding everything falls back to ignoring the exclusion
        assert catalog.best_source("f0", 100, exclude={"fast", "slow"}).name == "fast"


class TestDegradedRunsNeverRaise:
    @pytest.mark.parametrize("rate", [0.2, 0.6, 1.0])
    def test_high_fault_rates_complete(self, rate):
        bundles = [[f"f{i % 6}"] for i in range(12)]
        r = run_timed_simulation(
            timed_trace(bundles, gap=2.0),
            config(faults=FaultSpec.uniform(rate, seed=4), staging_timeout=120.0),
        )
        assert r.jobs + r.failed_jobs + r.unserviceable <= 12
        assert r.jobs + r.failed_jobs > 0
        d = r.as_dict()
        for key in (
            "request_hits",
            "deferred_starts",
            "retries",
            "failovers",
            "timeouts",
            "requeues",
            "failed_jobs",
            "time_lost_to_faults",
            "byte_miss_ratio",
        ):
            assert key in d


class TestSurfacedCounters:
    def test_deferred_starts_reported(self):
        # job 0 pins the whole cache during a long compute phase; job 1
        # cannot make room and must defer until the completion
        trace = timed_trace([["f0", "f1", "f2"], ["f3"]], gap=1.0)
        r = run_timed_simulation(
            trace, config(processing_time=30.0, service_slots=2)
        )
        assert r.deferred_starts >= 1
        assert r.as_dict()["deferred_starts"] == r.deferred_starts
        assert r.jobs == 2

    def test_request_hits_in_dict(self):
        r = run_timed_simulation(timed_trace([["f0"], ["f0"]], gap=10.0), config())
        assert r.request_hits == 1
        assert r.as_dict()["request_hits"] == 1
        assert r.as_dict()["request_hit_ratio"] == pytest.approx(0.5)


class TestUnknownFile:
    def test_submit_unknown_file_raises_with_id(self):
        engine = EventEngine()
        srm = StorageResourceManager(engine, {"f0": 100}, config())
        with pytest.raises(UnknownFileError) as exc:
            srm.submit(Request(0, FileBundle(["f0", "ghost"])))
        assert "ghost" in str(exc.value)
