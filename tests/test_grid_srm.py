"""Unit tests for the timed SRM simulation."""

import pytest

from repro.core.bundle import FileBundle
from repro.core.request import Request, RequestStream
from repro.errors import ConfigError
from repro.grid.network import NetworkLink
from repro.grid.srm import SRMConfig, run_timed_simulation
from repro.types import FileCatalog
from repro.workload.trace import Trace

SIZES = {f"f{i}": 100 for i in range(6)}


def timed_trace(bundle_lists, gap=1.0):
    stream = RequestStream(
        Request(i, FileBundle(b), arrival_time=i * gap)
        for i, b in enumerate(bundle_lists)
    )
    return Trace(FileCatalog(SIZES), stream)


def config(**kw):
    defaults = dict(
        cache_size=300,
        policy="lru",
        n_drives=2,
        mount_latency=1.0,
        drive_bandwidth=100.0,
        link=NetworkLink(bandwidth=100.0, latency=0.0),
        processing_time=0.5,
    )
    defaults.update(kw)
    return SRMConfig(**defaults)


class TestSRMConfig:
    def test_invalid(self):
        with pytest.raises(ConfigError):
            SRMConfig(cache_size=0)
        with pytest.raises(ConfigError):
            SRMConfig(cache_size=10, processing_time=-1)


class TestTimedRuns:
    def test_single_job_response_time(self):
        # stage f0: mount 1 + read 1, then link 1, then processing 0.5
        r = run_timed_simulation(timed_trace([["f0"]]), config())
        assert r.jobs == 1
        assert r.mean_response_time == pytest.approx(3.5)
        assert r.bytes_staged == 100

    def test_hit_skips_staging(self):
        r = run_timed_simulation(
            timed_trace([["f0"], ["f0"]], gap=10.0), config()
        )
        assert r.request_hits == 1
        # second job: only processing time
        assert r.max_response_time == pytest.approx(3.5)

    def test_parallel_staging_two_files(self):
        # two files on two drives: staging overlaps
        r = run_timed_simulation(timed_trace([["f0", "f1"]]), config())
        assert r.mean_response_time == pytest.approx(3.5)

    def test_serialized_staging_one_drive(self):
        r = run_timed_simulation(
            timed_trace([["f0", "f1"]]), config(n_drives=1)
        )
        # second file waits for the drive: 2 + 2 (mss) and link overlaps
        assert r.mean_response_time == pytest.approx(5.5)

    def test_jobs_queue_behind_service(self):
        r = run_timed_simulation(
            timed_trace([["f0"], ["f1"]], gap=0.0), config()
        )
        assert r.jobs == 2
        # job 2 waits for job 1 to finish before staging starts
        assert r.max_response_time > r.mean_response_time / 2

    def test_unserviceable_oversized_job(self):
        r = run_timed_simulation(
            timed_trace([["f0", "f1", "f2", "f3"]]), config()
        )
        assert r.unserviceable == 1
        assert r.jobs == 0

    def test_throughput_makespan(self):
        r = run_timed_simulation(
            timed_trace([["f0"], ["f1"], ["f2"]], gap=0.1), config()
        )
        assert r.makespan > 0
        assert r.throughput == pytest.approx(r.jobs / r.makespan)

    def test_as_dict(self):
        r = run_timed_simulation(timed_trace([["f0"]]), config())
        d = r.as_dict()
        assert d["policy"] == "lru" and "mean_response_time" in d

    def test_eviction_under_pressure_timed(self):
        bundles = [["f0"], ["f1"], ["f2"], ["f3"], ["f0"]]
        r = run_timed_simulation(
            timed_trace(bundles, gap=20.0), config(cache_size=300)
        )
        assert r.jobs == 5
        assert r.bytes_staged >= 400
