"""Request tracing: unit semantics, HTTP surface, and the differential.

The headline contracts:

* request ids are **deterministic** — derived from arrival sequence
  numbers, never the wall clock — and every ``/v1/jobs`` response id
  resolves to a complete span tree on ``GET /v1/debug/requests``;
* the decision trace (``trace.jsonl``) is **byte-identical** with
  tracing enabled, disabled (``debug_ring=0``) or profile-streamed;
* the debug endpoints validate their inputs, keep their label sets
  bounded, and the Chrome span exporter accepts their payloads.
"""

from __future__ import annotations

import http.client
import io
import json
from pathlib import Path

import pytest

from repro.errors import ConfigError, TelemetryError
from repro.service import CoordinatorState, ServiceConfig, run_loadgen
from repro.service.testing import running_service
from repro.telemetry.forensics.export import spans_to_chrome
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.recorder import TraceRecorder
from repro.telemetry.tracing import (
    REQUEST_ID_HEADER,
    RequestTrace,
    RequestTracer,
    active_request,
    request_id_for_job,
)
from repro.types import MB
from repro.workload.generator import WorkloadSpec, generate_trace

CACHE = 32 * MB
POLICY = "landlord"


@pytest.fixture(scope="module")
def trace():
    return generate_trace(
        WorkloadSpec(
            cache_size=CACHE,
            n_files=60,
            n_request_types=30,
            n_jobs=60,
            popularity="zipf",
            max_file_fraction=0.05,
            max_bundle_fraction=0.25,
            seed=29,
        )
    )


@pytest.fixture(scope="module")
def workload_path(trace, tmp_path_factory):
    path = tmp_path_factory.mktemp("tracing") / "workload.jsonl"
    trace.dump(path)
    return path


def _config(workload_path, run_dir, **kw) -> ServiceConfig:
    return ServiceConfig(
        workload=workload_path,
        cache_size=CACHE,
        run_dir=run_dir,
        policy=POLICY,
        checkpoint_every=25,
        **kw,
    )


def _get(port, path, method="GET", body=None, headers=None):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=10)
    try:
        payload = json.dumps(body) if body is not None else None
        conn.request(method, path, body=payload, headers=headers or {})
        response = conn.getresponse()
        return response.status, dict(response.getheaders()), response.read()
    finally:
        conn.close()


# ---------------------------------------------------------------------- #
# unit: ids, span trees, the tracer rings


class TestRequestIds:
    def test_job_ids_derive_from_arrival_sequence(self):
        assert request_id_for_job(0) == "req-00000000"
        assert request_id_for_job(1234) == "req-00001234"

    def test_negative_job_rejected(self):
        with pytest.raises(ConfigError, match="non-negative"):
            request_id_for_job(-1)

    def test_read_ids_are_sequential(self):
        tracer = RequestTracer(4)
        assert tracer.next_read_id() == "http-00000000"
        assert tracer.next_read_id() == "http-00000001"


class TestRequestTrace:
    def test_span_tree_nests_and_serializes(self):
        rt = RequestTrace("req-00000000", route="/v1/jobs", client_id="c1")
        outer = rt.begin_span("core.plan", rt.root.start_s + 0.001)
        inner = rt.begin_span("policy.on_request", rt.root.start_s + 0.002)
        rt.end_span(inner, rt.root.start_s + 0.003)
        rt.end_span(outer, rt.root.start_s + 0.005)
        rt.finish(status=200)
        doc = rt.as_dict()
        assert doc["request_id"] == "req-00000000"
        assert doc["client_id"] == "c1"
        assert doc["status"] == 200
        assert doc["spans"]["name"] == "http.request"
        (plan,) = doc["spans"]["children"]
        assert plan["name"] == "core.plan"
        assert plan["children"][0]["name"] == "policy.on_request"
        # offsets are relative to the root, microseconds
        assert plan["start_us"] == pytest.approx(1000.0, abs=0.2)
        assert plan["duration_us"] == pytest.approx(4000.0, abs=0.2)

    def test_finish_closes_spans_left_open(self):
        rt = RequestTrace("req-00000001", route="/v1/jobs")
        node = rt.begin_span("core.plan", rt.root.start_s)
        rt.finish()
        assert node.end_s is not None and rt.root.end_s is not None

    def test_breakdown_sums_span_families(self):
        rt = RequestTrace("req-00000002", route="/v1/jobs")
        t0 = rt.root.start_s
        for name, start, end in [
            ("queue.wait", 0.000, 0.010),
            ("core.plan", 0.010, 0.030),
            ("cache.admit", 0.030, 0.040),
            ("srm.stage", 0.040, 0.045),
            ("journal.commit", 0.045, 0.050),
        ]:
            node = rt.begin_span(name, t0 + start)
            rt.end_span(node, t0 + end)
        rt.root.end_s = t0 + 0.050
        split = rt.breakdown()
        assert split["queue_wait_s"] == pytest.approx(0.010)
        assert split["plan_s"] == pytest.approx(0.020)
        assert split["apply_s"] == pytest.approx(0.020)
        assert split["server_s"] == pytest.approx(0.050)


class TestRequestTracer:
    def _run(self, tracer, request_id, route="/v1/cache"):
        with tracer.request(request_id, route=route) as rt:
            if rt is not None:
                rt.status = 200
        return rt

    def test_capacity_zero_is_a_noop(self):
        tracer = RequestTracer(0)
        assert not tracer.enabled
        with tracer.request("req-00000000", route="/v1/jobs") as rt:
            assert rt is None
            assert active_request() is None
        assert tracer.requests_traced == 0
        assert tracer.payload()["requests"] == []

    def test_ring_is_bounded_newest_last(self):
        tracer = RequestTracer(2)
        for i in range(5):
            self._run(tracer, f"req-{i:08d}")
        recent = tracer.recent()
        assert [r["request_id"] for r in recent] == [
            "req-00000003",
            "req-00000004",
        ]
        assert tracer.requests_traced == 5

    def test_slow_ring_vs_explicit_threshold(self):
        tracer = RequestTracer(8, slow_threshold_s=1e-9)
        for i in range(3):
            self._run(tracer, f"req-{i:08d}")
        # every request clears a nanosecond threshold -> all in slow ring
        assert len(tracer.slow()) == 3
        # an explicit threshold filters the *full* ring instead
        assert tracer.slow(threshold_s=1e9) == []
        assert len(tracer.slow(threshold_s=0.0)) == 3

    def test_find_resolves_resident_ids_only(self):
        tracer = RequestTracer(4)
        self._run(tracer, "req-00000007")
        assert tracer.find("req-00000007")["request_id"] == "req-00000007"
        assert tracer.find("req-99999999") is None

    def test_validation(self):
        with pytest.raises(ConfigError, match="non-negative"):
            RequestTracer(-1)
        with pytest.raises(ConfigError, match="positive"):
            RequestTracer(4, slow_threshold_s=0.0)

    def test_profile_stream_gets_one_json_line_per_request(self):
        stream = io.StringIO()
        tracer = RequestTracer(4, profile_stream=stream)
        self._run(tracer, "req-00000000")
        self._run(tracer, "req-00000001")
        lines = stream.getvalue().splitlines()
        assert len(lines) == 2
        docs = [json.loads(line) for line in lines]
        assert [d["request_id"] for d in docs] == [
            "req-00000000",
            "req-00000001",
        ]
        assert all("breakdown_ms" in d and "spans" in d for d in docs)

    def test_recorder_spans_grow_the_active_request_tree(self):
        registry = MetricsRegistry()
        recorder = TraceRecorder(registry=registry)
        tracer = RequestTracer(4)
        with tracer.request("req-00000000", route="/v1/jobs") as rt:
            with recorder.span("core.plan"):
                with recorder.span("policy.on_request"):
                    pass
        (plan,) = rt.root.children
        assert plan.name == "core.plan"
        assert [c.name for c in plan.children] == ["policy.on_request"]
        # the same span also fed the profiling histogram
        assert registry.get("span_core_plan_seconds").count == 1
        # outside a request the same spans are histogram-only
        with recorder.span("core.plan"):
            pass
        assert registry.get("span_core_plan_seconds").count == 2


# ---------------------------------------------------------------------- #
# HTTP surface


class TestDebugEndpoints:
    def test_every_job_response_id_resolves_to_a_span_tree(
        self, workload_path, tmp_path
    ):
        """Acceptance: ids in /v1/jobs responses resolve on the ring."""
        state = CoordinatorState.create(_config(workload_path, tmp_path / "r"))
        files = sorted(state.sizes)
        with running_service(state) as svc:
            seen = []
            for i in range(6):
                status, headers, body = _get(
                    svc.port,
                    "/v1/jobs",
                    "POST",
                    {"files": files[i : i + 2]},
                    headers={REQUEST_ID_HEADER: f"cli-{i}"},
                )
                assert status == 200
                doc = json.loads(body)
                assert doc["request_id"] == request_id_for_job(i)
                assert headers[REQUEST_ID_HEADER] == doc["request_id"]
                timing = doc["timing_ms"]
                assert set(timing) == {
                    "server_ms",
                    "queue_wait_ms",
                    "plan_ms",
                    "apply_ms",
                }
                assert timing["server_ms"] >= 0.0
                seen.append(doc["request_id"])

            _get(svc.port, "/v1/cache")  # a finished read-side request
            _, _, body = _get(svc.port, "/v1/debug/requests")
            ring = json.loads(body)
            assert ring["capacity"] == 256
            by_id = {r["request_id"]: r for r in ring["requests"]}
            for i, request_id in enumerate(seen):
                entry = by_id[request_id]
                assert entry["job"] == i
                assert entry["status"] == 200
                assert entry["client_id"] == f"cli-{i}"
                assert entry["route"] == "/v1/jobs"
                names = {c["name"] for c in entry["spans"]["children"]}
                assert {"queue.wait", "core.plan", "journal.commit"} <= names
            # read-side requests trace too, under their own id space
            assert any(
                r["request_id"].startswith("http-")
                for r in ring["requests"]
            )

    def test_debug_slow_threshold_param(self, workload_path, tmp_path):
        state = CoordinatorState.create(_config(workload_path, tmp_path / "r"))
        files = sorted(state.sizes)[:2]
        with running_service(state) as svc:
            _get(svc.port, "/v1/jobs", "POST", {"files": files})
            status, _, body = _get(svc.port, "/v1/debug/slow")
            assert status == 200
            doc = json.loads(body)
            assert doc["threshold_ms"] == pytest.approx(100.0)
            # a microscopic threshold catches everything in the ring
            status, _, body = _get(
                svc.port, "/v1/debug/slow?threshold_ms=0.0001"
            )
            assert status == 200
            assert len(json.loads(body)["requests"]) >= 1
            for bad in (
                "/v1/debug/slow?threshold_ms=nope",
                "/v1/debug/slow?threshold_ms=-1",
                "/v1/debug/slow?threshold_ms=0",
                "/v1/debug/slow?nope=1",
            ):
                status, _, body = _get(svc.port, bad)
                assert status == 400, bad
                assert "error" in json.loads(body)

    def test_debug_profile_tabulates_spans(self, workload_path, tmp_path):
        state = CoordinatorState.create(_config(workload_path, tmp_path / "r"))
        files = sorted(state.sizes)[:2]
        with running_service(state) as svc:
            _get(svc.port, "/v1/jobs", "POST", {"files": files})
            status, _, body = _get(svc.port, "/v1/debug/profile")
            assert status == 200
            doc = json.loads(body)
            assert doc["requests_traced"] >= 1
            rows = {row["span"]: row for row in doc["spans"]}
            assert "core_plan" in rows
            row = rows["core_plan"]
            assert row["calls"] >= 1
            assert {"mean_s", "p50_s", "p95_s", "p99_s", "max_s"} <= set(row)

    def test_debug_ring_zero_disables_tracing_not_ids(
        self, workload_path, tmp_path
    ):
        state = CoordinatorState.create(
            _config(workload_path, tmp_path / "r", debug_ring=0)
        )
        files = sorted(state.sizes)[:2]
        with running_service(state) as svc:
            status, headers, body = _get(
                svc.port, "/v1/jobs", "POST", {"files": files}
            )
            assert status == 200
            doc = json.loads(body)
            # deterministic ids still come back; host timings do not
            assert doc["request_id"] == request_id_for_job(0)
            assert "timing_ms" not in doc
            assert REQUEST_ID_HEADER not in headers
            _, _, body = _get(svc.port, "/v1/debug/requests")
            ring = json.loads(body)
            assert ring["capacity"] == 0 and ring["requests"] == []

    def test_route_labels_stay_bounded(self, workload_path, tmp_path):
        """Unknown paths land on one sentinel label, not new series."""
        state = CoordinatorState.create(_config(workload_path, tmp_path / "r"))
        with running_service(state) as svc:
            for path in ("/nope", "/nope2", "/v1/jobs/extra"):
                assert _get(svc.port, path)[0] == 404
            _, _, body = _get(svc.port, "/metrics")
        text = body.decode()
        unroutable = [
            line
            for line in text.splitlines()
            if line.startswith("service_http_requests_total{")
            and '"<unroutable>"' in line
        ]
        assert len(unroutable) == 1  # one series for all unknown paths
        assert 'status="404"' in unroutable[0]


# ---------------------------------------------------------------------- #
# the differential: tracing must never touch the decision trace


class TestTracingDifferential:
    def _drive(self, trace, workload_path, run_dir, **kw) -> Path:
        state = CoordinatorState.create(_config(workload_path, run_dir, **kw))
        tracer = state.tracer
        try:
            for i, request in enumerate(trace):
                with tracer.request(request_id_for_job(i), route="/v1/jobs"):
                    state.submit(
                        sorted(request.bundle.files),
                        priority=request.priority,
                    )
        finally:
            state.close()
        return run_dir / "trace.jsonl"

    def test_trace_bytes_identical_across_ring_sizes(
        self, trace, workload_path, tmp_path
    ):
        traced = self._drive(
            trace, workload_path, tmp_path / "on", debug_ring=256
        )
        untraced = self._drive(
            trace, workload_path, tmp_path / "off", debug_ring=0
        )
        streamed = self._drive(
            trace,
            workload_path,
            tmp_path / "stream",
            debug_ring=8,
            profile_stream=True,
        )
        reference = traced.read_bytes()
        assert untraced.read_bytes() == reference
        assert streamed.read_bytes() == reference
        # the profile stream exists, holds host timings, and is separate
        profile = streamed.parent / "profile.jsonl"
        lines = profile.read_text().splitlines()
        assert len(lines) == len(list(trace))
        assert json.loads(lines[0])["request_id"] == request_id_for_job(0)


# ---------------------------------------------------------------------- #
# Chrome exporter + loadgen breakdown


class TestSpansToChrome:
    def _payload(self):
        registry = MetricsRegistry()
        recorder = TraceRecorder(registry=registry)
        tracer = RequestTracer(8)
        for i in range(2):
            with tracer.request(
                request_id_for_job(i), route="/v1/jobs"
            ) as rt:
                rt.job = i
                rt.status = 200
                with recorder.span("core.plan"):
                    with recorder.span("policy.on_request"):
                        pass
        return tracer.payload()

    def test_accepts_endpoint_body_and_bare_list(self):
        payload = self._payload()
        doc = spans_to_chrome(payload)
        assert doc == spans_to_chrome(payload["requests"])
        assert doc["displayTimeUnit"] == "ms"
        assert doc["otherData"]["requests"] == 2

    def test_one_thread_per_request_with_nested_slices(self):
        doc = spans_to_chrome(self._payload())
        events = doc["traceEvents"]
        threads = [e for e in events if e["name"] == "thread_name"]
        assert [e["args"]["name"] for e in threads] == [
            "req-00000000 /v1/jobs",
            "req-00000001 /v1/jobs",
        ]
        slices = [e for e in events if e["ph"] == "X"]
        by_tid = {}
        for e in slices:
            by_tid.setdefault(e["tid"], []).append(e)
        for tid, group in by_tid.items():
            root = next(g for g in group if g["args"].get("request_id"))
            for e in group:
                # every slice sits inside its request's root span
                assert e["ts"] >= root["ts"]
                assert e["ts"] + e["dur"] <= root["ts"] + root["dur"] + 1e-6

    def test_bad_shapes_raise(self):
        with pytest.raises(TelemetryError, match="request list"):
            spans_to_chrome("nope")
        with pytest.raises(TelemetryError, match="span tree"):
            spans_to_chrome([{"request_id": "x"}])

    def test_cli_spans_flag_roundtrip_and_error_contract(
        self, tmp_path, capsys
    ):
        from repro.cli import main

        dump = tmp_path / "reqs.json"
        dump.write_text(json.dumps(self._payload()))
        out = tmp_path / "spans.chrome.json"
        assert main(
            ["export-chrome", str(dump), "--spans", "--out", str(out)]
        ) == 0
        doc = json.loads(out.read_text())
        assert doc["otherData"]["requests"] == 2
        # filesystem and parse failures follow the CLI error contract:
        # `error: <msg>` on stderr and exit 2, never a traceback
        assert main(
            ["export-chrome", str(tmp_path / "missing.json"), "--spans"]
        ) == 2
        assert "error: cannot read span dump" in capsys.readouterr().err
        corrupt = tmp_path / "corrupt.json"
        corrupt.write_text("{nope")
        assert main(["export-chrome", str(corrupt), "--spans"]) == 2
        assert "is not valid JSON" in capsys.readouterr().err


class TestLoadgenBreakdown:
    def test_report_splits_client_latency(self, trace, workload_path, tmp_path):
        state = CoordinatorState.create(_config(workload_path, tmp_path / "r"))
        with running_service(state) as svc:
            report = run_loadgen(
                trace, svc.host, svc.port, concurrency=2, limit=20
            )
        assert report.jobs == 20 and report.errors == 0
        assert report.server_mean_ms > 0.0
        assert report.server_p50_ms <= report.server_p99_ms
        assert report.queue_wait_mean_ms >= 0.0
        assert report.plan_mean_ms >= 0.0
        assert report.apply_mean_ms >= 0.0
        assert report.net_overhead_mean_ms >= 0.0
        # the server-side split is bounded by what the client measured
        assert report.server_mean_ms <= report.latency_mean_ms + 1e-6
        doc = report.as_dict()
        assert {"server_p50_ms", "server_p99_ms", "net_overhead_mean_ms"} <= set(doc)
