"""Unit tests for the domain scenario generators."""

import pytest

from repro.errors import ConfigError
from repro.workload.scenarios import bitmap_index_trace, climate_trace, henp_trace


class TestHENP:
    def test_shape(self):
        t = henp_trace(n_datasets=3, n_attributes=10, n_channels=5, n_jobs=50, seed=0)
        assert len(t) == 50
        assert len(t.catalog) == 30  # datasets x attributes

    def test_bundles_within_one_dataset(self):
        t = henp_trace(n_datasets=4, n_attributes=8, n_channels=5, n_jobs=40, seed=1)
        for b in t.bundles():
            datasets = {f.split(".")[0] for f in b}
            assert len(datasets) == 1

    def test_channel_size_range(self):
        t = henp_trace(
            n_jobs=60, attrs_per_channel=(2, 4), n_attributes=10, seed=2
        )
        assert all(2 <= len(b) <= 4 for b in t.bundles())

    def test_deterministic(self):
        a = henp_trace(n_jobs=30, seed=5)
        b = henp_trace(n_jobs=30, seed=5)
        assert a.bundles() == b.bundles()

    def test_invalid_params(self):
        with pytest.raises(ConfigError):
            henp_trace(n_datasets=0)
        with pytest.raises(ConfigError):
            henp_trace(attrs_per_channel=(5, 2))
        with pytest.raises(ConfigError):
            henp_trace(n_attributes=4, attrs_per_channel=(1, 9))


class TestClimate:
    def test_shape(self):
        t = climate_trace(n_runs=2, n_analyses=4, n_jobs=30, seed=0)
        assert len(t) == 30
        # catalog: runs x variables (10 default variables)
        assert len(t.catalog) == 20

    def test_bundles_within_one_run(self):
        t = climate_trace(n_runs=3, n_jobs=40, seed=1)
        for b in t.bundles():
            runs = {f.split(".")[0] for f in b}
            assert len(runs) == 1

    def test_variables_per_analysis(self):
        t = climate_trace(vars_per_analysis=(2, 3), n_jobs=40, seed=2)
        assert all(2 <= len(b) <= 3 for b in t.bundles())

    def test_invalid_params(self):
        with pytest.raises(ConfigError):
            climate_trace(n_runs=0)
        with pytest.raises(ConfigError):
            climate_trace(vars_per_analysis=(0, 3))


class TestBitmap:
    def test_shape(self):
        t = bitmap_index_trace(
            n_attributes=4, bins_per_attribute=5, n_jobs=25, seed=0
        )
        assert len(t) == 25
        assert len(t.catalog) == 20

    def test_ranges_are_contiguous_per_attribute(self):
        t = bitmap_index_trace(
            n_attributes=5, bins_per_attribute=10, n_jobs=60, seed=1
        )
        for b in t.bundles():
            by_attr: dict[str, list[int]] = {}
            for f in b:
                attr, bin_part = f.split(".")
                by_attr.setdefault(attr, []).append(int(bin_part[3:]))
            for bins in by_attr.values():
                bins.sort()
                assert bins == list(range(bins[0], bins[0] + len(bins)))

    def test_attrs_per_query_range(self):
        t = bitmap_index_trace(
            n_attributes=6, attrs_per_query=(2, 3), n_jobs=40, seed=2
        )
        for b in t.bundles():
            attrs = {f.split(".")[0] for f in b}
            assert 2 <= len(attrs) <= 3

    def test_invalid_params(self):
        with pytest.raises(ConfigError):
            bitmap_index_trace(n_attributes=0)
        with pytest.raises(ConfigError):
            bitmap_index_trace(mean_range_len=0.5)
        with pytest.raises(ConfigError):
            bitmap_index_trace(n_attributes=2, attrs_per_query=(1, 5))
