"""Unit tests for paired statistical comparison."""

import numpy as np
import pytest

from repro.analysis.compare import compare_paired
from repro.errors import ConfigError


class TestComparePaired:
    def test_validation(self):
        with pytest.raises(ConfigError):
            compare_paired([1.0], [1.0, 2.0])
        with pytest.raises(ConfigError):
            compare_paired([], [])
        with pytest.raises(ConfigError):
            compare_paired([1.0], [1.0], n_bootstrap=5)

    def test_identical_samples(self):
        c = compare_paired([1.0, 2.0, 3.0], [1.0, 2.0, 3.0])
        assert c.mean_diff == 0.0
        assert not c.significant
        assert c.sign_test_p == 1.0
        assert c.wins_a == 0

    def test_clear_winner(self):
        rng = np.random.default_rng(0)
        b = rng.normal(1.0, 0.05, size=30)
        a = b - 0.5  # a consistently lower (better)
        c = compare_paired(list(a), list(b))
        assert c.mean_diff == pytest.approx(-0.5, abs=1e-9)
        assert c.significant
        assert c.ci_high < 0
        assert c.wins_a == 30
        assert c.sign_test_p < 1e-6

    def test_noise_not_significant(self):
        rng = np.random.default_rng(1)
        a = rng.normal(0, 1, size=10)
        b = a[::-1].copy()  # same distribution, shuffled pairing
        c = compare_paired(list(a), list(b))
        assert not c.significant

    def test_deterministic_bootstrap(self):
        a, b = [1.0, 2.0, 1.5, 1.2], [1.1, 2.2, 1.4, 1.3]
        c1 = compare_paired(a, b, seed=5)
        c2 = compare_paired(a, b, seed=5)
        assert (c1.ci_low, c1.ci_high) == (c2.ci_low, c2.ci_high)

    def test_summary_text(self):
        c = compare_paired([1.0, 1.0], [2.0, 2.0])
        text = c.summary("opt", "land")
        assert "opt" in text and "land" in text and "wins 2/2" in text

    def test_sign_test_symmetric(self):
        c_ab = compare_paired([1, 1, 1], [2, 2, 2])
        c_ba = compare_paired([2, 2, 2], [1, 1, 1])
        assert c_ab.sign_test_p == c_ba.sign_test_p


class TestOnSimulations:
    def test_optbundle_vs_landlord_significant(self):
        """The paper's headline claim passes a paired sign test."""
        from repro.sim.simulator import SimulationConfig, simulate_trace
        from repro.types import MB
        from repro.workload.generator import WorkloadSpec, generate_trace

        opt, land = [], []
        for seed in range(6):
            trace = generate_trace(
                WorkloadSpec(
                    cache_size=64 * MB,
                    n_files=150,
                    n_request_types=80,
                    n_jobs=250,
                    popularity="zipf",
                    max_file_fraction=0.05,
                    max_bundle_fraction=0.25,
                    seed=seed,
                )
            )
            opt.append(
                simulate_trace(
                    trace, SimulationConfig(cache_size=64 * MB, policy="optbundle")
                ).byte_miss_ratio
            )
            land.append(
                simulate_trace(
                    trace, SimulationConfig(cache_size=64 * MB, policy="landlord")
                ).byte_miss_ratio
            )
        c = compare_paired(opt, land)
        assert c.mean_diff < 0  # optbundle lower
        assert c.wins_a >= 5
