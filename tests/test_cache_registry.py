"""Unit tests for the policy registry."""

import numpy as np
import pytest

from repro.cache.registry import POLICY_REGISTRY, make_policy
from repro.core.bundle import FileBundle
from repro.errors import ConfigError


def test_all_registered_names_match_class_names():
    for name, cls in POLICY_REGISTRY.items():
        assert cls.name == name


def test_expected_policies_present():
    assert {
        "lru",
        "lfu",
        "fifo",
        "random",
        "size",
        "gdsf",
        "landlord",
        "belady",
        "optbundle",
    } <= set(POLICY_REGISTRY)


def test_make_policy_unknown_rejected():
    with pytest.raises(ConfigError, match="unknown policy"):
        make_policy("nope")


def test_belady_requires_future():
    with pytest.raises(ConfigError, match="future"):
        make_policy("belady")
    p = make_policy("belady", future=[FileBundle(["a"])])
    assert p.name == "belady"


def test_random_accepts_rng():
    p = make_policy("random", rng=np.random.default_rng(1))
    assert p.name == "random"


def test_future_not_passed_to_others():
    p = make_policy("lru", future=[FileBundle(["a"])])
    assert p.name == "lru"


def test_kwargs_forwarded():
    p = make_policy("optbundle", refine=False)
    assert p.name == "optbundle"


def test_each_policy_instantiable():
    for name in POLICY_REGISTRY:
        p = make_policy(name, future=[FileBundle(["a"])])
        assert p.name == name
