"""Unit tests for Trace and its JSONL serialization."""

import pytest

from repro.core.bundle import FileBundle
from repro.core.request import Request, RequestStream
from repro.errors import TraceFormatError
from repro.types import FileCatalog
from repro.workload.trace import Trace


def make_trace():
    catalog = FileCatalog({"a": 5, "b": 7, "c": 11})
    stream = RequestStream(
        [
            Request(0, FileBundle(["a", "b"]), arrival_time=0.5),
            Request(1, FileBundle(["c"]), arrival_time=1.5, priority=2.0),
        ]
    )
    return Trace(catalog, stream, meta={"note": "test"})


class TestTrace:
    def test_rejects_unknown_files(self):
        with pytest.raises(TraceFormatError):
            Trace(
                FileCatalog({"a": 1}),
                RequestStream([Request(0, FileBundle(["zzz"]))]),
            )

    def test_len_iter_bundles(self):
        t = make_trace()
        assert len(t) == 2
        assert [r.request_id for r in t] == [0, 1]
        assert t.bundles()[1] == FileBundle(["c"])

    def test_total_requested_bytes(self):
        assert make_trace().total_requested_bytes() == (5 + 7) + 11

    def test_distinct_request_types(self):
        assert make_trace().distinct_request_types() == 2


class TestSerialization:
    def test_roundtrip_lines(self):
        t = make_trace()
        t2 = Trace.load_lines(t.dump_lines())
        assert t2.meta == t.meta
        assert t2.catalog.as_dict() == t.catalog.as_dict()
        assert t2.bundles() == t.bundles()
        assert t2.stream[1].priority == 2.0
        assert t2.stream[1].arrival_time == 1.5

    def test_roundtrip_file(self, tmp_path):
        t = make_trace()
        path = tmp_path / "trace.jsonl"
        t.dump(path)
        t2 = Trace.load(path)
        assert t2.bundles() == t.bundles()

    def test_empty_input_rejected(self):
        with pytest.raises(TraceFormatError, match="empty"):
            Trace.load_lines([])

    def test_missing_header_rejected(self):
        with pytest.raises(TraceFormatError, match="header"):
            Trace.load_lines(['{"type": "job", "id": 0, "files": ["a"]}'])

    def test_bad_version_rejected(self):
        with pytest.raises(TraceFormatError, match="version"):
            Trace.load_lines(
                ['{"type": "header", "version": 99, "files": {"a": 1}}']
            )

    def test_invalid_json_rejected(self):
        with pytest.raises(TraceFormatError, match="JSON"):
            Trace.load_lines(["not json"])

    def test_non_object_line_rejected(self):
        with pytest.raises(TraceFormatError, match="object"):
            Trace.load_lines(["[1,2]"])

    def test_bad_job_record_rejected(self):
        header = '{"type": "header", "version": 1, "files": {"a": 1}}'
        with pytest.raises(TraceFormatError, match="bad job"):
            Trace.load_lines([header, '{"type": "job", "files": ["a"]}'])

    def test_unexpected_record_type_rejected(self):
        header = '{"type": "header", "version": 1, "files": {"a": 1}}'
        with pytest.raises(TraceFormatError, match="unexpected"):
            Trace.load_lines([header, '{"type": "mystery"}'])

    def test_blank_lines_skipped(self):
        t = make_trace()
        lines = list(t.dump_lines())
        lines.insert(1, "")
        assert len(Trace.load_lines(lines)) == 2
