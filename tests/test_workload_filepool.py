"""Unit tests for file-population generation."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.types import GB, MB
from repro.utils.rng import derive_rng
from repro.workload.filepool import FileSizeSpec, file_id, generate_catalog


class TestFileSizeSpec:
    def test_defaults_valid(self):
        spec = FileSizeSpec()
        assert spec.distribution == "uniform"

    def test_unknown_distribution(self):
        with pytest.raises(ConfigError):
            FileSizeSpec(distribution="weird")

    def test_bad_bounds(self):
        with pytest.raises(ConfigError):
            FileSizeSpec(min_size=0)
        with pytest.raises(ConfigError):
            FileSizeSpec(min_size=10, max_size=5)

    @pytest.mark.parametrize("dist", ["uniform", "lognormal", "pareto", "fixed"])
    def test_draws_within_bounds(self, dist):
        spec = FileSizeSpec(distribution=dist, min_size=MB, max_size=10 * MB)
        sizes = spec.draw(derive_rng(0, dist), 500)
        assert sizes.min() >= MB
        assert sizes.max() <= 10 * MB
        assert sizes.dtype == np.int64

    def test_fixed_is_constant(self):
        spec = FileSizeSpec(distribution="fixed", min_size=3 * MB, max_size=9 * MB)
        assert np.all(spec.draw(derive_rng(1, "f"), 10) == 3 * MB)

    def test_uniform_spans_range(self):
        spec = FileSizeSpec(min_size=MB, max_size=100 * MB)
        sizes = spec.draw(derive_rng(2, "u"), 2000)
        assert sizes.min() < 10 * MB
        assert sizes.max() > 90 * MB

    def test_negative_count_rejected(self):
        with pytest.raises(ConfigError):
            FileSizeSpec().draw(derive_rng(0, "x"), -1)

    def test_paper_spec(self):
        spec = FileSizeSpec.paper(1 * GB, 0.01)
        assert spec.min_size == MB
        assert spec.max_size == int(0.01 * GB)

    def test_paper_spec_fraction_bounds(self):
        with pytest.raises(ConfigError):
            FileSizeSpec.paper(GB, 0.0)
        with pytest.raises(ConfigError):
            FileSizeSpec.paper(GB, 1.5)

    def test_paper_spec_tiny_cache_clamps_to_min(self):
        spec = FileSizeSpec.paper(10 * MB, 0.01)
        assert spec.max_size == MB


class TestGenerateCatalog:
    def test_count_and_ids(self):
        cat = generate_catalog(5, FileSizeSpec(), derive_rng(0, "c"))
        assert len(cat) == 5
        assert file_id(0) in cat

    def test_deterministic(self):
        a = generate_catalog(20, FileSizeSpec(), derive_rng(7, "c"))
        b = generate_catalog(20, FileSizeSpec(), derive_rng(7, "c"))
        assert a.as_dict() == b.as_dict()

    def test_zero_count_rejected(self):
        with pytest.raises(ConfigError):
            generate_catalog(0, FileSizeSpec(), derive_rng(0, "c"))
