"""Trace determinism: same seed ⇒ byte-identical JSONL, serial or parallel.

The telemetry contract is that the event stream is a pure function of the
seeded simulation: no wall clock, no hash-seed-dependent iteration order,
no worker scheduling.  These tests pin the contract end to end — rerun,
serial vs ``jobs=N`` sweeps, and runs with fault injection on and off.
"""

import pytest

from repro.faults import FaultSpec
from repro.grid.srm import SRMConfig, run_timed_simulation
from repro.sim.runner import sweep
from repro.sim.simulator import SimulationConfig, simulate_trace
from repro.sim.timeseries import byte_miss_timeseries
from repro.telemetry import (
    JsonlSink,
    RingSink,
    TraceRecorder,
    use_recorder,
    validate_trace_file,
)
from repro.workload.generator import WorkloadSpec, generate_trace

CACHE = 200_000_000


def _trace(seed=0, *, n_jobs=150, arrival_rate=None):
    return generate_trace(
        WorkloadSpec(
            cache_size=CACHE,
            n_files=80,
            n_request_types=60,
            n_jobs=n_jobs,
            popularity="zipf",
            max_file_fraction=0.05,
            max_bundle_fraction=0.25,
            arrival_rate=arrival_rate,
            seed=seed,
        )
    )


def _jsonl_of(run, path) -> bytes:
    recorder = TraceRecorder(JsonlSink(path))
    try:
        run(recorder)
    finally:
        recorder.close()
    return path.read_bytes()


# module-level factories: picklable for the --jobs fan-out
def _sweep_trace(point, seed):
    return _trace(seed, n_jobs=80)


def _sweep_config(point):
    return SimulationConfig(cache_size=int(CACHE * point))


class TestSimulatorTraces:
    def test_same_seed_byte_identical(self, tmp_path):
        trace = _trace(3)
        config = SimulationConfig(cache_size=CACHE, policy="optbundle")
        runs = [
            _jsonl_of(
                lambda rec: simulate_trace(trace, config, recorder=rec),
                tmp_path / f"run{i}.jsonl",
            )
            for i in range(2)
        ]
        assert runs[0] == runs[1]
        assert len(runs[0]) > 0

    def test_trace_is_schema_valid(self, tmp_path):
        trace = _trace(3)
        config = SimulationConfig(cache_size=CACHE, policy="landlord")
        path = tmp_path / "run.jsonl"
        _jsonl_of(lambda rec: simulate_trace(trace, config, recorder=rec), path)
        assert validate_trace_file(path) > 0

    def test_different_seeds_differ(self, tmp_path):
        config = SimulationConfig(cache_size=CACHE, policy="optbundle")
        a = _jsonl_of(
            lambda rec: simulate_trace(_trace(0), config, recorder=rec),
            tmp_path / "a.jsonl",
        )
        b = _jsonl_of(
            lambda rec: simulate_trace(_trace(1), config, recorder=rec),
            tmp_path / "b.jsonl",
        )
        assert a != b


class TestParallelSweepTraces:
    @pytest.mark.parametrize("jobs", [4])
    def test_sweep_trace_serial_vs_jobs(self, tmp_path, jobs):
        def run(n):
            def inner(rec):
                with use_recorder(rec):
                    sweep(
                        [0.25, 0.5],
                        ["optbundle", "lru"],
                        _sweep_trace,
                        _sweep_config,
                        seeds=(0, 1),
                        jobs=n,
                    )

            return inner

        serial = _jsonl_of(run(None), tmp_path / "serial.jsonl")
        fanned = _jsonl_of(run(jobs), tmp_path / "fanned.jsonl")
        assert serial == fanned
        assert len(serial) > 0
        assert validate_trace_file(tmp_path / "fanned.jsonl") > 0


class TestTimedAndFaultTraces:
    def _run(self, rec, rate):
        faults = FaultSpec.uniform(rate, seed=7) if rate else None
        config = SRMConfig(
            cache_size=CACHE,
            policy="lru",
            faults=faults,
            backoff_jitter=0.0,
            staging_timeout=600.0,
        )
        return run_timed_simulation(
            _trace(5, n_jobs=60, arrival_rate=0.05), config, recorder=rec
        )

    def test_faulty_run_byte_identical(self, tmp_path):
        a = _jsonl_of(lambda rec: self._run(rec, 0.2), tmp_path / "a.jsonl")
        b = _jsonl_of(lambda rec: self._run(rec, 0.2), tmp_path / "b.jsonl")
        assert a == b
        assert b"FaultInjected" in a and b"StageRetried" in a
        assert validate_trace_file(tmp_path / "a.jsonl") > 0

    def test_fault_free_run_has_no_fault_events(self, tmp_path):
        a = _jsonl_of(lambda rec: self._run(rec, 0.0), tmp_path / "a.jsonl")
        assert b"FaultInjected" not in a
        assert b"StageStarted" in a and b"StageCompleted" in a
        assert validate_trace_file(tmp_path / "a.jsonl") > 0

    def test_recorder_does_not_change_results(self):
        plain = self._run(None, 0.2)
        sink = RingSink()
        traced = self._run(TraceRecorder(sink), 0.2)
        assert traced.as_dict() == plain.as_dict()
        assert len(sink) > 0


class TestWindowRolled:
    def test_timeseries_emits_one_event_per_window(self):
        trace = _trace(2, n_jobs=100)
        config = SimulationConfig(cache_size=CACHE, policy="optbundle")
        sink = RingSink()
        with use_recorder(TraceRecorder(sink)):
            points = byte_miss_timeseries(trace, config, window=30)
        rolled = [e for e in sink.events if e.kind == "WindowRolled"]
        assert len(rolled) == len(points) > 0
        for ev, pt in zip(rolled, points):
            assert ev.index == pt.window_index
            assert ev.jobs == pt.jobs
            assert ev.byte_miss_ratio == pt.byte_miss_ratio
            assert ev.request_hit_ratio == pt.request_hit_ratio

    def test_timeseries_silent_without_recorder(self):
        trace = _trace(2, n_jobs=60)
        config = SimulationConfig(cache_size=CACHE, policy="lru")
        points = byte_miss_timeseries(trace, config, window=20)
        assert points  # no recorder installed: still computes, emits nothing
