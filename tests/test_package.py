"""Top-level package contract: public API re-exports and metadata."""

import repro


def test_version():
    assert repro.__version__ == "1.0.0"


def test_all_names_resolve():
    for name in repro.__all__:
        assert hasattr(repro, name), name


def test_headline_api_flows_together():
    """The README quickstart snippet, as a test."""
    from repro import (
        FBCInstance,
        FileBundle,
        SimulationConfig,
        WorkloadSpec,
        generate_trace,
        opt_cache_select,
        simulate_trace,
    )
    from repro.types import MB

    instance = FBCInstance(
        bundles=(FileBundle(["a", "b"]), FileBundle(["b", "c"])),
        values=(3.0, 1.0),
        sizes={"a": 10, "b": 5, "c": 10},
        budget=20,
    )
    selection = opt_cache_select(instance)
    assert selection.total_value >= 3.0

    trace = generate_trace(
        WorkloadSpec(
            cache_size=32 * MB,
            n_files=60,
            n_request_types=40,
            n_jobs=120,
            popularity="zipf",
            max_bundle_fraction=0.3,
        )
    )
    result = simulate_trace(
        trace, SimulationConfig(cache_size=32 * MB, policy="optbundle")
    )
    assert 0.0 <= result.byte_miss_ratio <= 1.0


def test_registry_and_experiments_exposed():
    assert "optbundle" in repro.POLICY_REGISTRY
    assert "fig6" in repro.EXPERIMENTS
