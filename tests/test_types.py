"""Unit tests for repro.types: FileInfo, FileCatalog, total_size."""

import pytest

from repro.types import GB, KB, MB, FileCatalog, FileInfo, total_size


class TestFileInfo:
    def test_valid(self):
        info = FileInfo("a", 10)
        assert info.file_id == "a"
        assert info.size == 10

    def test_rejects_empty_id(self):
        with pytest.raises(ValueError):
            FileInfo("", 10)

    def test_rejects_zero_size(self):
        with pytest.raises(ValueError):
            FileInfo("a", 0)

    def test_rejects_negative_size(self):
        with pytest.raises(ValueError):
            FileInfo("a", -5)

    def test_is_frozen(self):
        info = FileInfo("a", 10)
        with pytest.raises(AttributeError):
            info.size = 20  # type: ignore[misc]

    def test_equality(self):
        assert FileInfo("a", 10) == FileInfo("a", 10)
        assert FileInfo("a", 10) != FileInfo("a", 11)


class TestUnits:
    def test_progression(self):
        assert KB == 1024
        assert MB == 1024 * KB
        assert GB == 1024 * MB


class TestFileCatalog:
    def test_from_iterable(self):
        cat = FileCatalog([FileInfo("a", 1), FileInfo("b", 2)])
        assert len(cat) == 2
        assert cat.size_of("a") == 1

    def test_from_mapping(self):
        cat = FileCatalog({"a": 1, "b": 2})
        assert cat.size_of("b") == 2

    def test_duplicate_same_size_is_noop(self):
        cat = FileCatalog({"a": 1})
        cat.add(FileInfo("a", 1))
        assert len(cat) == 1

    def test_duplicate_conflicting_size_raises(self):
        cat = FileCatalog({"a": 1})
        with pytest.raises(ValueError, match="conflicting"):
            cat.add(FileInfo("a", 2))

    def test_contains(self):
        cat = FileCatalog({"a": 1})
        assert "a" in cat
        assert "b" not in cat

    def test_size_of_unknown_raises(self):
        with pytest.raises(KeyError):
            FileCatalog().size_of("missing")

    def test_get_default(self):
        assert FileCatalog().get("x") is None
        assert FileCatalog().get("x", 7) == 7

    def test_total_bytes(self):
        cat = FileCatalog({"a": 1, "b": 2, "c": 3})
        assert cat.total_bytes() == 6

    def test_bundle_size_counts_each_file_once(self):
        cat = FileCatalog({"a": 1, "b": 2})
        assert cat.bundle_size(["a", "b", "a"]) == 3

    def test_ids_and_iter(self):
        cat = FileCatalog({"a": 1, "b": 2})
        assert sorted(cat.ids()) == ["a", "b"]
        assert sorted(cat) == ["a", "b"]

    def test_as_dict_is_a_copy(self):
        cat = FileCatalog({"a": 1})
        d = cat.as_dict()
        d["a"] = 99
        assert cat.size_of("a") == 1


class TestTotalSize:
    def test_deduplicates(self):
        assert total_size({"a": 5, "b": 7}, ["a", "a", "b"]) == 12

    def test_empty(self):
        assert total_size({"a": 5}, []) == 0
