"""Unit tests for the OptFileBundle online planner (Algorithm 2)."""

import pytest

from repro.core.bundle import FileBundle
from repro.core.history import TruncationMode
from repro.core.optfilebundle import OptFileBundlePlanner
from repro.errors import CacheCapacityError, ConfigError

SIZES = {f"f{i}": 10 for i in range(10)}


def apply(plan, resident):
    resident -= plan.evict
    resident |= plan.load | plan.prefetch
    return resident


class TestPlannerBasics:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ConfigError):
            OptFileBundlePlanner(0, SIZES)

    def test_cold_start_loads_all(self):
        p = OptFileBundlePlanner(100, SIZES)
        plan = p.plan(FileBundle(["f0", "f1"]), set())
        assert plan.load == {"f0", "f1"}
        assert plan.evict == frozenset()
        assert not plan.request_hit

    def test_hit_detection(self):
        p = OptFileBundlePlanner(100, SIZES)
        plan = p.plan(FileBundle(["f0"]), {"f0"})
        assert plan.request_hit and plan.load == frozenset()

    def test_oversized_bundle_rejected(self):
        p = OptFileBundlePlanner(25, SIZES)
        with pytest.raises(CacheCapacityError):
            p.plan(FileBundle(["f0", "f1", "f2"]), set())

    def test_keep_always_fits_capacity(self):
        p = OptFileBundlePlanner(35, SIZES)
        resident: set = set()
        bundles = [
            FileBundle(["f0", "f1"]),
            FileBundle(["f2"]),
            FileBundle(["f0", "f3"]),
            FileBundle(["f1", "f2", "f3"]),
            FileBundle(["f4"]),
        ]
        for b in bundles * 3:
            plan = p.plan(b, resident)
            resident = apply(plan, resident)
            p.commit(plan)
            assert sum(SIZES[f] for f in plan.keep) <= 35
            assert sum(SIZES[f] for f in resident) <= 35
            assert b.files <= resident

    def test_partially_resident_bundle_never_overflows(self):
        # Regression: budget must reserve the whole bundle, not just the
        # missing part, or keep can exceed capacity.
        p = OptFileBundlePlanner(30, SIZES)
        resident: set = set()
        seq = [
            FileBundle(["f0", "f1"]),
            FileBundle(["f2"]),
            FileBundle(["f0", "f2"]),  # partially resident
            FileBundle(["f1", "f2"]),
        ]
        for b in seq * 4:
            plan = p.plan(b, resident)
            resident = apply(plan, resident)
            p.commit(plan)
            assert sum(SIZES[f] for f in resident) <= 30


class TestHistoryIntegration:
    def test_commit_records_history(self):
        p = OptFileBundlePlanner(100, SIZES)
        b = FileBundle(["f0"])
        plan = p.plan(b, set())
        p.commit(plan)
        assert p.history.value_of(b) == 1.0

    def test_repeated_bundle_value_grows(self):
        p = OptFileBundlePlanner(100, SIZES)
        b = FileBundle(["f0"])
        resident: set = set()
        for _ in range(3):
            plan = p.plan(b, resident)
            resident = apply(plan, resident)
            p.commit(plan)
        assert p.history.value_of(b) == 3.0

    def test_popular_bundle_retained_under_pressure(self):
        p = OptFileBundlePlanner(30, SIZES)
        hot = FileBundle(["f0", "f1"])
        resident: set = set()
        # Make hot popular.
        for _ in range(5):
            plan = p.plan(hot, resident)
            resident = apply(plan, resident)
            p.commit(plan)
        # A one-off request forces a replacement decision.
        plan = p.plan(FileBundle(["f5"]), resident)
        assert "f0" not in plan.evict and "f1" not in plan.evict

    def test_score_prefers_popular_small(self):
        p = OptFileBundlePlanner(100, SIZES)
        hot, cold = FileBundle(["f0"]), FileBundle(["f1"])
        resident: set = set()
        for _ in range(4):
            plan = p.plan(hot, resident)
            resident = apply(plan, resident)
            p.commit(plan)
        assert p.score(hot) > p.score(cold)

    def test_score_of_unseen_bundle_is_finite_positive(self):
        p = OptFileBundlePlanner(100, SIZES)
        assert p.score(FileBundle(["f7"])) > 0


class TestEvictionModes:
    def _warm(self, p, resident):
        for b in (FileBundle(["f0"]), FileBundle(["f1"]), FileBundle(["f2"])):
            plan = p.plan(b, resident)
            resident = apply(plan, resident)
            p.commit(plan)
        return resident

    def test_lazy_keeps_unselected_files_when_room(self):
        p = OptFileBundlePlanner(100, SIZES)
        resident = self._warm(p, set())
        plan = p.plan(FileBundle(["f3"]), resident)
        assert plan.evict == frozenset()  # plenty of room: nothing evicted

    def test_eager_evicts_everything_unselected(self):
        p = OptFileBundlePlanner(100, SIZES, eager_evict=True)
        resident = self._warm(p, set())
        plan = p.plan(FileBundle(["f3"]), resident)
        # Everything kept must be in F(Opt) | bundle.
        assert plan.keep >= plan.bundle.files
        assert (resident - plan.evict) <= plan.keep

    def test_lazy_evicts_only_enough(self):
        p = OptFileBundlePlanner(30, SIZES)
        resident = self._warm(p, set())  # f0,f1,f2 resident (30/30)
        plan = p.plan(FileBundle(["f3"]), resident)
        assert len(plan.evict) == 1  # exactly one 10-byte victim needed


class TestFullHistoryPrefetch:
    def test_prefetch_only_under_full_truncation(self):
        p = OptFileBundlePlanner(
            40, SIZES, truncation=TruncationMode.FULL
        )
        hot = FileBundle(["f0", "f1"])
        resident: set = set()
        for _ in range(5):
            plan = p.plan(hot, resident)
            resident = apply(plan, resident)
            p.commit(plan)
        # Evict hot's files behind the planner's back, then request another
        # bundle: full history may prefetch the popular files back.
        p.observe_eviction("f0")
        p.observe_eviction("f1")
        plan = p.plan(FileBundle(["f2"]), {"f2"})
        assert plan.prefetch <= {"f0", "f1"}

    def test_cache_truncation_never_prefetches(self):
        p = OptFileBundlePlanner(40, SIZES)
        resident: set = set()
        for b in (FileBundle(["f0"]), FileBundle(["f1"]), FileBundle(["f2"])):
            plan = p.plan(b, resident)
            resident = apply(plan, resident)
            p.commit(plan)
            assert plan.prefetch == frozenset()
