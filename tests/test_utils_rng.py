"""Unit tests for seeded RNG stream derivation."""

import numpy as np
import pytest

from repro.utils.rng import RngFactory, derive_rng


class TestDeriveRng:
    def test_deterministic(self):
        a = derive_rng(42, "x").random(5)
        b = derive_rng(42, "x").random(5)
        assert np.array_equal(a, b)

    def test_streams_differ_by_name(self):
        a = derive_rng(42, "x").random(5)
        b = derive_rng(42, "y").random(5)
        assert not np.array_equal(a, b)

    def test_streams_differ_by_seed(self):
        a = derive_rng(1, "x").random(5)
        b = derive_rng(2, "x").random(5)
        assert not np.array_equal(a, b)

    def test_none_seed_gives_generator(self):
        assert isinstance(derive_rng(None), np.random.Generator)


class TestRngFactory:
    def test_same_name_same_stream(self):
        f = RngFactory(7)
        assert np.array_equal(f.rng("a").random(3), f.rng("a").random(3))

    def test_child_independent(self):
        f = RngFactory(7)
        child = f.child("sub")
        assert not np.array_equal(
            f.rng("a").random(3), child.rng("a").random(3)
        )

    def test_child_deterministic(self):
        a = RngFactory(7).child("sub").rng("s").random(3)
        b = RngFactory(7).child("sub").rng("s").random(3)
        assert np.array_equal(a, b)

    def test_negative_seed_rejected(self):
        with pytest.raises(ValueError):
            RngFactory(-1)

    def test_seed_property(self):
        assert RngFactory(5).seed == 5
