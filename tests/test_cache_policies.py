"""Behavioural unit tests for the per-file replacement policies."""

import numpy as np
import pytest

from repro.cache.belady import BeladyPolicy
from repro.cache.fifo import FIFOPolicy
from repro.cache.gdsf import GDSFPolicy
from repro.cache.landlord import LandlordPolicy
from repro.cache.lfu import LFUPolicy
from repro.cache.lru import LRUPolicy
from repro.cache.random_policy import RandomPolicy
from repro.cache.size_based import LargestFirstPolicy
from repro.cache.state import CacheState
from repro.core.bundle import FileBundle

SIZES = {f"f{i}": 10 for i in range(10)}
VARSIZES = {"small": 2, "mid": 10, "big": 40}


def serve(policy, cache, bundle, sizes=SIZES):
    missing = cache.missing(bundle)
    decision = policy.on_request(bundle)
    for f in missing:
        cache.load(f, sizes[f])
    policy.on_serviced(bundle, frozenset(missing), not missing)
    return decision


def warm(policy, cache, names, sizes=SIZES):
    for n in names:
        serve(policy, cache, FileBundle([n]), sizes)


class TestLRU:
    def test_evicts_least_recent(self):
        p, c = LRUPolicy(), CacheState(30)
        p.bind(c, SIZES)
        warm(p, c, ["f0", "f1", "f2"])
        serve(p, c, FileBundle(["f0"]))  # refresh f0
        dec = serve(p, c, FileBundle(["f3"]))
        assert dec.evicted == {"f1"}

    def test_hit_refreshes_recency(self):
        p, c = LRUPolicy(), CacheState(30)
        p.bind(c, SIZES)
        warm(p, c, ["f0", "f1", "f2"])
        serve(p, c, FileBundle(["f0", "f1"]))  # both refreshed
        dec = serve(p, c, FileBundle(["f3"]))
        assert dec.evicted == {"f2"}


class TestFIFO:
    def test_evicts_oldest_load_despite_hits(self):
        p, c = FIFOPolicy(), CacheState(30)
        p.bind(c, SIZES)
        warm(p, c, ["f0", "f1", "f2"])
        serve(p, c, FileBundle(["f0"]))  # hit must NOT refresh
        dec = serve(p, c, FileBundle(["f3"]))
        assert dec.evicted == {"f0"}


class TestLFU:
    def test_evicts_least_frequent(self):
        p, c = LFUPolicy(), CacheState(30)
        p.bind(c, SIZES)
        warm(p, c, ["f0", "f1", "f2"])
        serve(p, c, FileBundle(["f0"]))
        serve(p, c, FileBundle(["f2"]))
        dec = serve(p, c, FileBundle(["f3"]))
        assert dec.evicted == {"f1"}

    def test_frequency_survives_eviction(self):
        p, c = LFUPolicy(), CacheState(20)
        p.bind(c, SIZES)
        for _ in range(3):
            serve(p, c, FileBundle(["f0"]))
        serve(p, c, FileBundle(["f1"]))
        serve(p, c, FileBundle(["f2"]))  # evicts f1 (freq 1), not f0 (freq 3)
        assert "f0" in c and "f1" not in c


class TestRandom:
    def test_deterministic_with_seeded_rng(self):
        evicted = []
        for _ in range(2):
            p = RandomPolicy(rng=np.random.default_rng(0))
            c = CacheState(30)
            p.bind(c, SIZES)
            warm(p, c, ["f0", "f1", "f2"])
            dec = serve(p, c, FileBundle(["f3"]))
            evicted.append(dec.evicted)
        assert evicted[0] == evicted[1]

    def test_excludes_requested(self):
        p = RandomPolicy(rng=np.random.default_rng(1))
        c = CacheState(20)
        p.bind(c, SIZES)
        warm(p, c, ["f0", "f1"])
        dec = serve(p, c, FileBundle(["f0", "f2"]))
        assert dec.evicted == {"f1"}


class TestLargestFirst:
    def test_evicts_biggest_first(self):
        sizes = {"small": 2, "mid": 10, "big": 40, "new": 5}
        p, c = LargestFirstPolicy(), CacheState(52)
        p.bind(c, sizes)
        warm(p, c, ["small", "mid", "big"], sizes)
        dec = serve(p, c, FileBundle(["new"]), sizes)
        assert dec.evicted == {"big"}
        assert {"small", "mid", "new"} <= set(c.residents())

    def test_resident_request_needs_no_eviction(self):
        sizes = {"small": 2, "mid": 10, "big": 40}
        p, c = LargestFirstPolicy(), CacheState(52)
        p.bind(c, sizes)
        warm(p, c, ["small", "mid", "big"], sizes)
        dec = p.on_request(FileBundle(["small"]))
        assert dec.evicted == frozenset()


class TestGDSF:
    def test_prefers_evicting_cold_over_hot(self):
        p, c = GDSFPolicy(), CacheState(30)
        p.bind(c, SIZES)
        warm(p, c, ["f0", "f1", "f2"])
        for _ in range(3):
            serve(p, c, FileBundle(["f0"]))
        dec = serve(p, c, FileBundle(["f3"]))
        assert dec.evicted in ({"f1"}, {"f2"})

    def test_inflation_monotone(self):
        p, c = GDSFPolicy(), CacheState(20)
        p.bind(c, SIZES)
        warm(p, c, ["f0", "f1"])
        inflation_values = [p._inflation]
        for n in ("f2", "f3", "f4"):
            serve(p, c, FileBundle([n]))
            inflation_values.append(p._inflation)
        assert all(b >= a for a, b in zip(inflation_values, inflation_values[1:]))


class TestLandlord:
    def test_evicts_minimum_credit(self):
        p, c = LandlordPolicy(), CacheState(30)
        p.bind(c, SIZES)
        warm(p, c, ["f0", "f1", "f2"])
        serve(p, c, FileBundle(["f0"]))  # refresh f0's credit
        dec = serve(p, c, FileBundle(["f3"]))
        # f1 and f2 share minimal credit; deterministic tie-break picks f1
        assert dec.evicted == {"f1"}

    def test_credit_full_after_load(self):
        p, c = LandlordPolicy(), CacheState(30)
        p.bind(c, SIZES)
        serve(p, c, FileBundle(["f0"]))
        assert p.credit("f0") == pytest.approx(1.0)

    def test_credits_decrease_after_eviction_round(self):
        p, c = LandlordPolicy(), CacheState(30)
        p.bind(c, SIZES)
        warm(p, c, ["f0", "f1", "f2"])
        serve(p, c, FileBundle(["f3"]))  # one eviction happened
        # survivors' credits dropped below 1 unless refreshed after
        survivors = [f for f in ("f0", "f1", "f2") if f in c]
        assert all(p.credit(f) < 1.0 + 1e-9 for f in survivors)

    def test_custom_cost_fn(self):
        # cost=1 per file: credit = 1/size -> big files evicted sooner
        p = LandlordPolicy(cost_fn=lambda fid, size: 1.0)
        c = CacheState(45)  # small+big = 42 resident; mid (10) needs room
        p.bind(c, VARSIZES)
        warm(p, c, ["small", "big"], VARSIZES)
        dec = serve(p, c, FileBundle(["mid"]), VARSIZES)
        assert dec.evicted == {"big"}

    def test_never_evicts_requested(self):
        p, c = LandlordPolicy(), CacheState(30)
        p.bind(c, SIZES)
        warm(p, c, ["f0", "f1", "f2"])
        dec = serve(p, c, FileBundle(["f0", "f1", "f3"]))
        assert dec.evicted == {"f2"}


class TestBelady:
    def test_evicts_farthest_next_use(self):
        future = [
            FileBundle(["f0"]),
            FileBundle(["f1"]),
            FileBundle(["f2"]),
            FileBundle(["f3"]),   # t=3 triggers eviction
            FileBundle(["f0"]),   # f0 used soon
            FileBundle(["f1"]),   # f1 later
            # f2 never again -> evicted at t=3
        ]
        p, c = BeladyPolicy(future), CacheState(30)
        p.bind(c, SIZES)
        for b in future[:4]:
            dec = serve(p, c, b)
        assert "f2" not in c
        assert "f0" in c and "f1" in c

    def test_never_used_again_evicted_first(self):
        future = [
            FileBundle(["f0"]),
            FileBundle(["f1"]),
            FileBundle(["f2", "f0", "f1"]),
        ]
        # artificially small cache: at t=2, need 10 bytes; f0,f1 requested
        p, c = BeladyPolicy(future), CacheState(30)
        p.bind(c, SIZES)
        for b in future:
            serve(p, c, b)
        assert c.supports(FileBundle(["f0", "f1", "f2"]))
