"""Unit tests for cache pinning and reservations (SRM semantics)."""

import pytest

from repro.cache.lru import LRUPolicy
from repro.cache.state import CacheState
from repro.core.bundle import FileBundle
from repro.errors import CacheCapacityError, ConfigError, PolicyError, UnknownFileError


class TestPinning:
    def test_pin_blocks_eviction(self):
        c = CacheState(10)
        c.load("a", 5)
        c.pin("a")
        with pytest.raises(PolicyError):
            c.evict("a")

    def test_unpin_allows_eviction(self):
        c = CacheState(10)
        c.load("a", 5)
        c.pin("a")
        c.unpin("a")
        assert c.evict("a") == 5

    def test_pins_are_reference_counted(self):
        c = CacheState(10)
        c.load("a", 5)
        c.pin("a")
        c.pin("a")
        c.unpin("a")
        assert c.is_pinned("a")
        with pytest.raises(PolicyError):
            c.evict("a")
        c.unpin("a")
        assert not c.is_pinned("a")

    def test_pin_requires_resident(self):
        with pytest.raises(UnknownFileError):
            CacheState(10).pin("ghost")

    def test_unpin_requires_pinned(self):
        c = CacheState(10)
        c.load("a", 1)
        with pytest.raises(UnknownFileError):
            c.unpin("a")

    def test_pinned_files_view(self):
        c = CacheState(10)
        c.load("a", 1)
        c.load("b", 1)
        c.pin("b")
        assert c.pinned_files() == {"b"}


class TestReservations:
    def test_reserve_release_cycle(self):
        c = CacheState(10)
        c.reserve(6)
        assert c.reserved == 6
        assert c.available == 4
        c.release(6)
        assert c.available == 10

    def test_reserve_respects_capacity(self):
        c = CacheState(10)
        c.load("a", 5)
        c.reserve(5)
        with pytest.raises(CacheCapacityError):
            c.reserve(1)

    def test_release_validation(self):
        c = CacheState(10)
        c.reserve(3)
        with pytest.raises(ConfigError):
            c.release(4)
        with pytest.raises(ConfigError):
            c.release(-1)

    def test_negative_reserve_rejected(self):
        with pytest.raises(ConfigError):
            CacheState(10).reserve(-1)

    def test_loads_may_consume_reserved_space(self):
        # reserve() limits *other* reservations; the reserving job's own
        # load consumes the physical free space as usual.
        c = CacheState(10)
        c.reserve(10)
        c.load("a", 10)
        assert c.used == 10


class TestPolicyRespectsPins:
    def test_per_file_policy_skips_pinned_victims(self):
        sizes = {f"f{i}": 10 for i in range(5)}
        p, c = LRUPolicy(), CacheState(30)
        p.bind(c, sizes)
        for n in ("f0", "f1", "f2"):
            missing = c.missing(FileBundle([n]))
            p.on_request(FileBundle([n]))
            for f in missing:
                c.load(f, sizes[f])
            p.on_serviced(FileBundle([n]), frozenset(missing), False)
        c.pin("f0")  # the LRU victim is pinned
        dec = p.on_request(FileBundle(["f3"]))
        assert dec.evicted == {"f1"}
        assert "f0" in c

    def test_all_pinned_raises(self):
        sizes = {"a": 10, "b": 10}
        p, c = LRUPolicy(), CacheState(10)
        p.bind(c, sizes)
        c.load("a", 10)
        c.pin("a")
        with pytest.raises(PolicyError):
            p.on_request(FileBundle(["b"]))

    def test_optbundle_respects_pins(self):
        from repro.cache.optbundle_policy import OptFileBundlePolicy

        sizes = {f"f{i}": 10 for i in range(5)}
        p, c = OptFileBundlePolicy(), CacheState(30)
        p.bind(c, sizes)
        for n in ("f0", "f1", "f2"):
            b = FileBundle([n])
            missing = c.missing(b)
            p.on_request(b)
            for f in missing:
                c.load(f, sizes[f])
            p.on_serviced(b, frozenset(missing), False)
        c.pin("f0")
        c.pin("f1")
        dec = p.on_request(FileBundle(["f3"]))
        assert dec.evicted == {"f2"}


class TestMultiSlotSRM:
    def test_processing_overlaps_staging(self):
        """With 2 slots, job2's staging overlaps job1's compute phase."""
        from repro.core.request import Request, RequestStream
        from repro.grid.network import NetworkLink
        from repro.grid.srm import SRMConfig, run_timed_simulation
        from repro.types import FileCatalog
        from repro.workload.trace import Trace

        sizes = {"a": 100, "b": 100, "c": 100}
        stream = RequestStream(
            [
                Request(0, FileBundle(["a"]), arrival_time=0.0),
                Request(1, FileBundle(["b"]), arrival_time=0.0),
            ]
        )
        trace = Trace(FileCatalog(sizes), stream)

        def run(slots):
            return run_timed_simulation(
                trace,
                SRMConfig(
                    cache_size=300,
                    policy="lru",
                    n_drives=2,
                    mount_latency=1.0,
                    drive_bandwidth=100.0,
                    link=NetworkLink(bandwidth=100.0, latency=0.0),
                    processing_time=10.0,
                    service_slots=slots,
                ),
            )

        serial = run(1)
        overlapped = run(2)
        assert overlapped.makespan < serial.makespan
        assert overlapped.jobs == serial.jobs == 2

    def test_pins_defer_conflicting_starts(self):
        """A job blocked by pins waits and then completes correctly."""
        from repro.core.request import Request, RequestStream
        from repro.grid.network import NetworkLink
        from repro.grid.srm import SRMConfig, run_timed_simulation
        from repro.types import FileCatalog
        from repro.workload.trace import Trace

        sizes = {"a": 100, "b": 100, "c": 100}
        stream = RequestStream(
            [
                Request(0, FileBundle(["a", "b"]), arrival_time=0.0),
                Request(1, FileBundle(["c"]), arrival_time=0.1),
            ]
        )
        trace = Trace(FileCatalog(sizes), stream)
        result = run_timed_simulation(
            trace,
            SRMConfig(
                cache_size=200,  # job2 must evict, but a,b are pinned
                policy="lru",
                n_drives=2,
                mount_latency=1.0,
                drive_bandwidth=100.0,
                link=NetworkLink(bandwidth=100.0, latency=0.0),
                processing_time=5.0,
                service_slots=2,
            ),
        )
        assert result.jobs == 2
