"""Unit tests for the experiment scaffolding (scales and workloads)."""

import pytest

from repro.errors import ConfigError
from repro.experiments.common import CACHE_SIZE, SCALES, bundle_trace, get_scale
from repro.experiments.fig9_queue_length import _lengths_for
from repro.types import MB
from repro.workload.generator import average_request_size


class TestScales:
    def test_known_scales(self):
        for name in ("smoke", "quick", "paper"):
            scale = get_scale(name)
            assert scale.name == name
            assert scale.n_jobs > 0 and scale.seeds

    def test_scale_passthrough(self):
        s = SCALES["smoke"]
        assert get_scale(s) is s

    def test_unknown_scale(self):
        with pytest.raises(ConfigError):
            get_scale("enormous")

    def test_scales_ordered_by_size(self):
        assert (
            SCALES["smoke"].n_jobs
            < SCALES["quick"].n_jobs
            < SCALES["paper"].n_jobs
        )


class TestBundleTrace:
    def test_catalog_under_pressure(self):
        scale = get_scale("smoke")
        t = bundle_trace(
            scale,
            popularity="uniform",
            cache_in_requests=8,
            max_file_fraction=0.01,
            seed=0,
            n_jobs=10,
        )
        # total file bytes exceed the cache by roughly the pressure factor
        assert t.catalog.total_bytes() > 1.5 * CACHE_SIZE

    def test_bundle_cap_scales_with_point(self):
        scale = get_scale("smoke")
        sizes_small = average_request_size(
            bundle_trace(
                scale,
                popularity="uniform",
                cache_in_requests=2,
                max_file_fraction=0.01,
                seed=0,
                n_jobs=30,
            )
        )
        sizes_large = average_request_size(
            bundle_trace(
                scale,
                popularity="uniform",
                cache_in_requests=16,
                max_file_fraction=0.01,
                seed=0,
                n_jobs=30,
            )
        )
        assert sizes_small > 3 * sizes_large

    def test_fallback_to_nondistinct_in_tight_corner(self):
        # Large files + tiny bundle cap cannot yield many distinct bundles;
        # bundle_trace must fall back rather than raise.
        scale = get_scale("quick")
        t = bundle_trace(
            scale,
            popularity="uniform",
            cache_in_requests=16,
            max_file_fraction=0.10,
            seed=0,
            n_jobs=20,
        )
        assert len(t) == 20

    def test_invalid_point_rejected(self):
        with pytest.raises(ConfigError):
            bundle_trace(
                get_scale("smoke"),
                popularity="uniform",
                cache_in_requests=0.5,
                max_file_fraction=0.01,
                seed=0,
            )

    def test_bundles_respect_point_cap(self):
        scale = get_scale("smoke")
        r = 4
        t = bundle_trace(
            scale,
            popularity="zipf",
            cache_in_requests=r,
            max_file_fraction=0.01,
            seed=1,
            n_jobs=50,
        )
        sizes = t.catalog.as_dict()
        cap = CACHE_SIZE / r
        for b in t.stream.distinct_bundles():
            assert b.size_under(sizes) <= cap


class TestFig9Lengths:
    def test_lengths_per_scale(self):
        assert _lengths_for(3) == (1, 5, 25)
        assert _lengths_for(4) == (1, 5, 25, 100)
        assert 100 in _lengths_for(6)


class TestSweepHelpers:
    def test_points_param_overrides_default(self):
        from repro.experiments.byte_miss_sweeps import byte_miss_sweep

        scale = get_scale("smoke")
        result = byte_miss_sweep(
            scale,
            popularity="uniform",
            max_file_fraction=0.01,
            points=(2, 4, 8, 16, 32),
        )
        xs = sorted({r["x"] for r in result.rows})
        assert xs == [2, 4, 8]  # truncated to scale.points (3)

    def test_volume_rows_converted_to_mb(self):
        from repro.experiments.fig8_cache_size import run_fig8

        out = run_fig8("smoke")
        for row in out.data["zipf"]:
            # plausible MB magnitudes, not raw bytes
            assert row["mean_volume_per_request"] < 10_000
