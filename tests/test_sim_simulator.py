"""Unit tests for the trace-driven cache simulator."""

import pytest

from repro.core.bundle import FileBundle
from repro.core.request import Request, RequestStream
from repro.errors import ConfigError
from repro.sim.queueing import QueueDiscipline
from repro.sim.simulator import SimulationConfig, simulate_trace
from repro.types import FileCatalog
from repro.workload.trace import Trace


def trace_of(bundle_lists, sizes):
    catalog = FileCatalog(sizes)
    stream = RequestStream(
        Request(i, FileBundle(b)) for i, b in enumerate(bundle_lists)
    )
    return Trace(catalog, stream)


SIZES = {f"f{i}": 10 for i in range(8)}


class TestConfig:
    def test_invalid_params(self):
        with pytest.raises(ConfigError):
            SimulationConfig(cache_size=0)
        with pytest.raises(ConfigError):
            SimulationConfig(cache_size=10, queue_length=0)
        with pytest.raises(ConfigError):
            SimulationConfig(cache_size=10, queue_mode="bogus")


class TestBasicAccounting:
    def test_cold_then_hit(self):
        t = trace_of([["f0"], ["f0"]], SIZES)
        r = simulate_trace(t, SimulationConfig(cache_size=100, policy="lru"))
        m = r.metrics
        assert m.jobs == 2
        assert m.request_hits == 1
        assert m.bytes_demand_loaded == 10
        assert m.byte_miss_ratio == pytest.approx(0.5)

    def test_all_policies_agree_when_no_pressure(self):
        t = trace_of([["f0", "f1"], ["f2"], ["f0"], ["f1", "f2"]], SIZES)
        results = {}
        for policy in ("lru", "lfu", "fifo", "landlord", "optbundle", "gdsf"):
            r = simulate_trace(
                t, SimulationConfig(cache_size=1000, policy=policy)
            )
            results[policy] = r.byte_miss_ratio
        assert len(set(results.values())) == 1  # only cold misses everywhere

    def test_unserviceable_bundle_skipped(self):
        t = trace_of([["f0", "f1", "f2"], ["f3"]], SIZES)
        r = simulate_trace(t, SimulationConfig(cache_size=25, policy="lru"))
        assert r.metrics.unserviceable == 1
        assert r.metrics.jobs == 1

    def test_eviction_under_pressure(self):
        t = trace_of([["f0"], ["f1"], ["f2"], ["f3"]], SIZES)
        r = simulate_trace(t, SimulationConfig(cache_size=20, policy="lru"))
        assert r.cache_evictions == 2
        assert r.cache_bytes_evicted == 20

    def test_warmup_respected(self):
        t = trace_of([["f0"], ["f0"], ["f0"]], SIZES)
        r = simulate_trace(
            t, SimulationConfig(cache_size=100, policy="lru", warmup=1)
        )
        assert r.metrics.jobs == 2
        assert r.metrics.request_hit_ratio == 1.0

    def test_check_invariants_flag(self):
        t = trace_of([["f0"], ["f1"]], SIZES)
        simulate_trace(
            t,
            SimulationConfig(
                cache_size=15, policy="lru", check_invariants=True
            ),
        )

    def test_policy_instance_override(self):
        from repro.cache.lru import LRUPolicy

        t = trace_of([["f0"]], SIZES)
        p = LRUPolicy()
        r = simulate_trace(
            t, SimulationConfig(cache_size=100, policy="optbundle"), policy=p
        )
        assert r.policy == "lru"

    def test_as_dict(self):
        t = trace_of([["f0"]], SIZES)
        r = simulate_trace(t, SimulationConfig(cache_size=100))
        d = r.as_dict()
        assert d["policy"] == "optbundle"
        assert "byte_miss_ratio" in d


class TestDeterminism:
    def test_same_run_same_result(self):
        t = trace_of([["f0"], ["f1"], ["f0", "f2"], ["f3"], ["f1"]], SIZES)
        cfg = SimulationConfig(cache_size=30, policy="optbundle")
        a = simulate_trace(t, cfg)
        b = simulate_trace(t, cfg)
        assert a.metrics == b.metrics


class TestQueueing:
    def _queue_trace(self):
        # hot bundle appears often; cold fillers in between
        seq = []
        for i in range(6):
            seq.append(["f0", "f1"])
            seq.append([f"f{2 + (i % 4)}"])
        return trace_of(seq, SIZES)

    def test_queue_runs_all_jobs(self):
        t = self._queue_trace()
        r = simulate_trace(
            t,
            SimulationConfig(
                cache_size=30,
                policy="optbundle",
                queue_length=4,
                discipline=QueueDiscipline.VALUE,
            ),
        )
        assert r.metrics.jobs == len(t)

    def test_sliding_mode_runs_all_jobs(self):
        t = self._queue_trace()
        r = simulate_trace(
            t,
            SimulationConfig(
                cache_size=30,
                policy="optbundle",
                queue_length=4,
                discipline=QueueDiscipline.VALUE,
                queue_mode="sliding",
            ),
        )
        assert r.metrics.jobs == len(t)

    def test_fcfs_queue_equals_no_queue(self):
        t = self._queue_trace()
        base = simulate_trace(
            t, SimulationConfig(cache_size=30, policy="lru")
        )
        queued = simulate_trace(
            t,
            SimulationConfig(
                cache_size=30,
                policy="lru",
                queue_length=5,
                discipline=QueueDiscipline.FCFS,
            ),
        )
        assert base.metrics == queued.metrics

    def test_queue_with_per_file_policy_degrades_to_fcfs(self):
        # LRU has no score: VALUE discipline behaves like FCFS.
        t = self._queue_trace()
        a = simulate_trace(
            t,
            SimulationConfig(
                cache_size=30,
                policy="lru",
                queue_length=5,
                discipline=QueueDiscipline.VALUE,
            ),
        )
        b = simulate_trace(t, SimulationConfig(cache_size=30, policy="lru"))
        assert a.metrics == b.metrics


class TestUnknownFileSurfacing:
    def test_policy_prefetch_of_unknown_file_raises_unknown_file_error(self):
        from repro.cache.policy import PolicyDecision, ReplacementPolicy
        from repro.errors import UnknownFileError

        class GhostPrefetcher(ReplacementPolicy):
            name = "ghost-prefetcher"

            def on_request(self, bundle):
                return PolicyDecision(prefetch=frozenset({"ghost"}))

        t = trace_of([["f0"]], SIZES)
        with pytest.raises(UnknownFileError) as exc:
            simulate_trace(
                t,
                SimulationConfig(cache_size=100, policy="lru"),
                policy=GhostPrefetcher(),
            )
        assert "ghost" in str(exc.value)
