"""Crash-recovery integration tests: kill → resume → byte-identical.

The durability contract is that a run interrupted at *any* journal
commit and resumed produces a telemetry trace byte-identical to (and
final metrics equal to) the same run left uninterrupted.  The kill
sweep here exercises that contract for **every** registered policy,
with crash points on both sides of a checkpoint boundary and in both
clean (``raise``) and half-written-frame (``torn``) modes; separate
cases cover a real SIGKILL through the CLI, queue mode, a lost trace
tail, tampered journals and manifest collision.
"""

import os
import signal
import subprocess
import sys
import zlib
from pathlib import Path

import pytest

from repro.cache.registry import POLICY_REGISTRY
from repro.cli import main
from repro.durability import DurabilityConfig, resume_run, run_durable
from repro.durability.journal import (
    JOURNAL_MAGIC,
    _HEADER,
    _encode_payload,
    list_segments,
    read_journal_dir,
)
from repro.errors import (
    DurabilityError,
    InjectedCrashError,
    ReplayDivergenceError,
)
from repro.faults.crash import CrashSpec
from repro.sim.simulator import SimulationConfig
from repro.types import MB
from repro.workload.generator import WorkloadSpec, generate_trace

CACHE = 64 * MB

#: checkpoint cadence for every drill below; crash points straddle it
CKPT_EVERY = 40

#: pre-checkpoint and just-past-checkpoint commit indices
CRASH_POINTS = ((10, "raise"), (CKPT_EVERY + 5, "torn"))


@pytest.fixture(scope="module")
def trace():
    return generate_trace(
        WorkloadSpec(
            cache_size=CACHE,
            n_files=100,
            n_request_types=60,
            n_jobs=160,
            popularity="zipf",
            max_file_fraction=0.05,
            max_bundle_fraction=0.25,
            seed=0,
        )
    )


def _crash_then_resume(trace, tmp, crash_at, mode, *, resume_kw=None, **sim_kw):
    """Run reference + crashed + resumed copies; return both reports.

    ``sim_kw`` goes to :class:`SimulationConfig` (policy, queue_length…).
    """
    config = SimulationConfig(cache_size=CACHE, **sim_kw)
    reference = run_durable(
        trace,
        config,
        DurabilityConfig(run_dir=tmp / "reference", checkpoint_every=CKPT_EVERY),
    )
    crashed_dir = tmp / "crashed"
    with pytest.raises(InjectedCrashError):
        run_durable(
            trace,
            config,
            DurabilityConfig(
                run_dir=crashed_dir,
                checkpoint_every=CKPT_EVERY,
                crash=CrashSpec(at_mutation=crash_at, mode=mode),
            ),
        )
    resumed = resume_run(crashed_dir, **(resume_kw or {}))
    return reference, resumed


def _assert_exact(reference, resumed):
    assert resumed.trace_path.read_bytes() == reference.trace_path.read_bytes()
    assert resumed.result.metrics == reference.result.metrics


class TestKillSweepAllPolicies:
    @pytest.mark.parametrize("policy", sorted(POLICY_REGISTRY))
    def test_resume_is_byte_identical(self, trace, tmp_path, policy):
        for crash_at, mode in CRASH_POINTS:
            sub = tmp_path / f"at{crash_at}-{mode}"
            reference, resumed = _crash_then_resume(
                trace, sub, crash_at, mode, policy=policy
            )
            _assert_exact(reference, resumed)
            if crash_at > CKPT_EVERY:
                assert resumed.resumed_from_job >= CKPT_EVERY
            else:
                assert resumed.resumed_from_job == 0


class TestRecoveryModes:
    def test_queue_mode_resume(self, trace, tmp_path):
        reference, resumed = _crash_then_resume(
            trace,
            tmp_path,
            CKPT_EVERY + 5,
            "raise",
            policy="optbundle",
            queue_length=4,
        )
        _assert_exact(reference, resumed)

    def test_fsync_always_mode(self, trace, tmp_path):
        config = SimulationConfig(cache_size=CACHE, policy="landlord")
        reference = run_durable(
            trace,
            config,
            DurabilityConfig(run_dir=tmp_path / "ref", checkpoint_every=CKPT_EVERY),
        )
        crashed_dir = tmp_path / "crashed"
        with pytest.raises(InjectedCrashError):
            run_durable(
                trace,
                config,
                DurabilityConfig(
                    run_dir=crashed_dir,
                    checkpoint_every=CKPT_EVERY,
                    fsync="always",
                    crash=CrashSpec(at_mutation=CKPT_EVERY + 5, mode="torn"),
                ),
            )
        resumed = resume_run(crashed_dir)
        # strict mode journals every commit: the replay tail is verified
        # frame-by-frame, not just re-executed
        assert resumed.replayed_jobs > 0
        _assert_exact(reference, resumed)

    def test_lost_trace_tail_is_reexecuted(self, trace, tmp_path):
        """Chop buffered trace bytes a kill would have lost; frames whose
        evidence vanished must be dropped, not trusted."""
        config = SimulationConfig(cache_size=CACHE, policy="optbundle")
        reference = run_durable(
            trace,
            config,
            DurabilityConfig(run_dir=tmp_path / "ref", checkpoint_every=CKPT_EVERY),
        )
        crashed_dir = tmp_path / "crashed"
        with pytest.raises(InjectedCrashError):
            run_durable(
                trace,
                config,
                DurabilityConfig(
                    run_dir=crashed_dir,
                    checkpoint_every=CKPT_EVERY,
                    crash=CrashSpec(at_mutation=CKPT_EVERY + 9, mode="torn"),
                ),
            )
        trace_file = crashed_dir / "trace.jsonl"
        data = trace_file.read_bytes()
        trace_file.write_bytes(data[:-200])
        resumed = resume_run(crashed_dir)
        _assert_exact(reference, resumed)


class TestCorruptionAndMisuse:
    def test_refuses_existing_manifest(self, trace, tmp_path):
        config = SimulationConfig(cache_size=CACHE, policy="lru")
        durability = DurabilityConfig(run_dir=tmp_path, checkpoint_every=CKPT_EVERY)
        run_durable(trace, config, durability)
        with pytest.raises(DurabilityError):
            run_durable(trace, config, durability)

    def test_tampered_journal_frame_diverges(self, trace, tmp_path):
        config = SimulationConfig(cache_size=CACHE, policy="optbundle")
        crashed_dir = tmp_path / "crashed"
        with pytest.raises(InjectedCrashError):
            run_durable(
                trace,
                config,
                DurabilityConfig(
                    run_dir=crashed_dir,
                    checkpoint_every=CKPT_EVERY,
                    fsync="always",
                    crash=CrashSpec(at_mutation=CKPT_EVERY + 5, mode="raise"),
                ),
            )
        journal_dir = crashed_dir / "journal"
        frames, torn = read_journal_dir(journal_dir)
        assert frames and not torn
        # rewrite the journal with one frame's request_id altered — CRCs
        # intact, content wrong: replay must catch the divergence
        frames[0].payload["request_id"] += 1
        for seg in list_segments(journal_dir):
            seg.unlink()
        blob = bytearray(JOURNAL_MAGIC)
        for frame in frames:
            data = _encode_payload(frame.payload)
            blob += _HEADER.pack(len(data), zlib.crc32(data)) + data
        (journal_dir / "wal-000000.log").write_bytes(bytes(blob))
        with pytest.raises(ReplayDivergenceError):
            resume_run(crashed_dir)


class TestCliSigkill:
    def test_sigkill_crash_and_cli_resume(self, trace, tmp_path):
        """A real SIGKILL (no teardown at all) through the CLI, resumed
        through the CLI, against an uninterrupted CLI reference."""
        workload = tmp_path / "workload.jsonl"
        trace.dump(workload)
        common = [
            "checkpoint",
            str(workload),
            "--cache-size",
            str(CACHE),
            "--policy",
            "optbundle",
            "--checkpoint-every",
            str(CKPT_EVERY),
        ]
        ref_dir = tmp_path / "ref"
        assert main(common + ["--run-dir", str(ref_dir)]) == 0

        crashed_dir = tmp_path / "crashed"
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parents[1] / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [
                sys.executable,
                "-c",
                "import sys; from repro.cli import main; sys.exit(main(sys.argv[1:]))",
            ]
            + common
            + [
                "--run-dir",
                str(crashed_dir),
                "--crash-at",
                str(CKPT_EVERY + 7),
                "--crash-mode",
                "sigkill",
            ],
            env=env,
            capture_output=True,
            timeout=120,
        )
        assert proc.returncode in (-signal.SIGKILL, 128 + signal.SIGKILL)

        assert main(["resume", str(crashed_dir)]) == 0
        assert (crashed_dir / "trace.jsonl").read_bytes() == (
            ref_dir / "trace.jsonl"
        ).read_bytes()
