"""Unit tests for the LP-relaxation upper bound."""

import numpy as np
import pytest

from repro.core.bundle import FileBundle
from repro.core.exact import solve_exact
from repro.core.lpbound import certified_ratio, lp_upper_bound
from repro.core.optcacheselect import FBCInstance, opt_cache_select
from repro.errors import SolverError


def inst(bundles, values, sizes, budget):
    return FBCInstance(
        bundles=tuple(FileBundle(b) for b in bundles),
        values=tuple(float(v) for v in values),
        sizes=sizes,
        budget=budget,
    )


class TestLPBound:
    def test_empty_instance(self):
        assert lp_upper_bound(inst([], [], {}, 10)) == 0.0
        assert lp_upper_bound(inst([["a"]], [1], {"a": 1}, 0)) == 0.0

    def test_everything_fits_lp_is_total(self):
        i = inst([["a"], ["b"]], [3, 4], {"a": 1, "b": 1}, 10)
        assert lp_upper_bound(i) == pytest.approx(7.0)

    def test_upper_bounds_exact_on_random_instances(self):
        rng = np.random.default_rng(8)
        for _ in range(20):
            n_files = int(rng.integers(3, 10))
            sizes = {f"f{i}": int(rng.integers(1, 15)) for i in range(n_files)}
            bundles, values = [], []
            for _ in range(int(rng.integers(2, 9))):
                k = int(rng.integers(1, 4))
                fs = rng.choice(n_files, size=k, replace=False)
                bundles.append([f"f{i}" for i in fs])
                values.append(int(rng.integers(1, 10)))
            i = inst(bundles, values, sizes, int(rng.integers(1, 30)))
            exact = solve_exact(i).total_value
            lp = lp_upper_bound(i)
            assert lp >= exact - 1e-6

    def test_fractional_relaxation_can_exceed_integral(self):
        # One item of weight 2 and value 2 with budget 1: LP takes half.
        i = inst([["a"]], [2], {"a": 2}, 1)
        assert solve_exact(i).total_value == 0.0
        assert lp_upper_bound(i) == pytest.approx(1.0)

    def test_worked_example(self, example_instance):
        lp = lp_upper_bound(example_instance)
        assert lp >= 3.0 - 1e-9  # integral optimum is 3


class TestCertifiedRatio:
    def test_bounds_true_ratio(self):
        rng = np.random.default_rng(9)
        for _ in range(10):
            n_files = int(rng.integers(3, 8))
            sizes = {f"f{i}": int(rng.integers(1, 10)) for i in range(n_files)}
            bundles, values = [], []
            for _ in range(int(rng.integers(2, 7))):
                k = int(rng.integers(1, 3))
                fs = rng.choice(n_files, size=k, replace=False)
                bundles.append([f"f{i}" for i in fs])
                values.append(int(rng.integers(1, 8)))
            i = inst(bundles, values, sizes, int(rng.integers(2, 25)))
            greedy = opt_cache_select(i)
            cert = certified_ratio(i, greedy.total_value)
            exact = solve_exact(i).total_value
            true_ratio = greedy.total_value / exact if exact else 1.0
            assert cert <= true_ratio + 1e-9  # certificate never overstates

    def test_zero_bound_returns_one(self):
        assert certified_ratio(inst([], [], {}, 10), 0.0) == 1.0

    def test_negative_value_rejected(self):
        with pytest.raises(SolverError):
            certified_ratio(inst([["a"]], [1], {"a": 1}, 2), -1.0)

    def test_capped_at_one(self):
        i = inst([["a"]], [5], {"a": 1}, 10)
        assert certified_ratio(i, 99.0) == 1.0
