"""Unit tests for the sweep runner."""

import pytest

from repro.core.bundle import FileBundle
from repro.core.request import Request, RequestStream
from repro.errors import ConfigError
from repro.sim.runner import SweepResult, run_replications, sweep
from repro.sim.simulator import SimulationConfig
from repro.types import FileCatalog
from repro.utils.rng import derive_rng
from repro.workload.trace import Trace


def small_trace(seed: int, n=30) -> Trace:
    rng = derive_rng(seed, "runner-test")
    sizes = {f"f{i}": 10 for i in range(6)}
    stream = RequestStream(
        Request(i, FileBundle([f"f{int(rng.integers(6))}"])) for i in range(n)
    )
    return Trace(FileCatalog(sizes), stream)


class TestRunReplications:
    def test_runs_each_seed(self):
        results = run_replications(
            small_trace, SimulationConfig(cache_size=30, policy="lru"), [0, 1, 2]
        )
        assert len(results) == 3

    def test_empty_seeds_rejected(self):
        with pytest.raises(ConfigError):
            run_replications(
                small_trace, SimulationConfig(cache_size=30), []
            )


class TestSweep:
    def _sweep(self, seeds=(0, 1)):
        return sweep(
            [20, 40],
            ["lru", "fifo"],
            lambda point, seed: small_trace(seed),
            lambda point: SimulationConfig(cache_size=point),
            seeds=seeds,
            x_label="cache",
        )

    def test_row_structure(self):
        result = self._sweep()
        assert len(result.rows) == 4  # 2 points x 2 policies
        row = result.rows[0]
        assert {"x", "policy", "byte_miss_ratio", "byte_miss_ratio_ci"} <= set(row)
        assert row["seeds"] == 2

    def test_series_extraction(self):
        result = self._sweep()
        series = result.series("lru")
        assert [x for x, _ in series] == [20, 40]

    def test_policies_listed_in_order(self):
        assert self._sweep().policies() == ["lru", "fifo"]

    def test_render_contains_headers_and_points(self):
        text = self._sweep().render()
        assert "cache" in text and "lru" in text and "fifo" in text
        assert "20" in text and "40" in text

    def test_single_seed_zero_ci(self):
        result = self._sweep(seeds=(0,))
        assert all(r["byte_miss_ratio_ci"] == 0.0 for r in result.rows)

    def test_empty_inputs_rejected(self):
        with pytest.raises(ConfigError):
            sweep([], ["lru"], lambda p, s: small_trace(s), lambda p: None)
        with pytest.raises(ConfigError):
            sweep([1], [], lambda p, s: small_trace(s), lambda p: None)

    def test_policy_kwargs_forwarded(self):
        result = sweep(
            [30],
            ["optbundle"],
            lambda point, seed: small_trace(seed),
            lambda point: SimulationConfig(cache_size=point),
            seeds=(0,),
            policy_kwargs={"optbundle": {"refine": False}},
        )
        assert len(result.rows) == 1
