"""Unit tests for WorkloadSpec and generate_trace."""

import pytest

from repro.errors import ConfigError
from repro.types import GB, MB
from repro.workload.generator import (
    WorkloadSpec,
    average_request_size,
    cache_size_in_requests,
    generate_trace,
)


def spec(**kw):
    defaults = dict(
        cache_size=256 * MB,
        n_files=100,
        n_request_types=50,
        n_jobs=200,
        max_bundle_fraction=0.3,
        seed=0,
    )
    defaults.update(kw)
    return WorkloadSpec(**defaults)


class TestWorkloadSpec:
    def test_invalid_params(self):
        with pytest.raises(ConfigError):
            spec(cache_size=0)
        with pytest.raises(ConfigError):
            spec(n_files=0)
        with pytest.raises(ConfigError):
            spec(max_bundle_fraction=0.0)
        with pytest.raises(ConfigError):
            spec(popularity="pareto")
        with pytest.raises(ConfigError):
            spec(arrival_rate=0.0)

    def test_effective_size_spec_paper_default(self):
        s = spec(max_file_fraction=0.05)
        eff = s.effective_size_spec()
        assert eff.min_size == MB
        assert eff.max_size == int(0.05 * 256 * MB)

    def test_size_spec_override(self):
        from repro.workload.filepool import FileSizeSpec

        custom = FileSizeSpec(distribution="fixed", min_size=MB, max_size=MB)
        assert spec(size_spec=custom).effective_size_spec() is custom

    def test_with_seed(self):
        assert spec(seed=1).with_seed(9).seed == 9

    def test_describe_is_json_friendly(self):
        import json

        json.dumps(spec().describe())


class TestGenerateTrace:
    def test_shape(self):
        t = generate_trace(spec())
        assert len(t) == 200
        assert len(t.catalog) == 100
        assert t.distinct_request_types() <= 50

    def test_deterministic(self):
        a = generate_trace(spec(seed=5))
        b = generate_trace(spec(seed=5))
        assert a.bundles() == b.bundles()
        assert a.catalog.as_dict() == b.catalog.as_dict()

    def test_seeds_differ(self):
        a = generate_trace(spec(seed=1))
        b = generate_trace(spec(seed=2))
        assert a.bundles() != b.bundles()

    def test_bundles_respect_cap(self):
        t = generate_trace(spec())
        sizes = t.catalog.as_dict()
        cap = int(256 * MB * 0.3)
        for b in t.stream.distinct_bundles():
            assert b.size_under(sizes) <= cap

    def test_zipf_concentrates_popularity(self):
        from collections import Counter

        t = generate_trace(spec(popularity="zipf", n_jobs=2000))
        counts = Counter(t.bundles())
        top_share = counts.most_common(1)[0][1] / 2000
        assert top_share > 0.05  # rank-1 of 50 under zipf ~ 22%

    def test_uniform_spreads_popularity(self):
        from collections import Counter

        t = generate_trace(spec(popularity="uniform", n_jobs=2000))
        counts = Counter(t.bundles())
        assert counts.most_common(1)[0][1] / 2000 < 0.08

    def test_arrival_times(self):
        t = generate_trace(spec(arrival_rate=2.0))
        times = [r.arrival_time for r in t]
        assert all(b >= a for a, b in zip(times, times[1:]))
        assert times[-1] > 0
        # mean gap ~ 1/rate
        mean_gap = times[-1] / len(times)
        assert 0.3 < mean_gap < 0.9

    def test_untimed_trace_zero_times(self):
        t = generate_trace(spec())
        assert all(r.arrival_time == 0.0 for r in t)

    def test_meta_contains_spec(self):
        t = generate_trace(spec())
        assert t.meta["n_jobs"] == 200


class TestDerivedQuantities:
    def test_average_request_size(self):
        t = generate_trace(spec())
        sizes = t.catalog.as_dict()
        types = t.stream.distinct_bundles()
        expected = sum(b.size_under(sizes) for b in types) / len(types)
        assert average_request_size(t) == pytest.approx(expected)

    def test_cache_size_in_requests(self):
        t = generate_trace(spec())
        r = cache_size_in_requests(t, 256 * MB)
        assert r == pytest.approx(256 * MB / average_request_size(t))
