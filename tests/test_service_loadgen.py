"""Load-generator tests: report math, pacing modes, resume driving."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.service import CoordinatorState, ServiceConfig, run_loadgen
from repro.service.loadgen import LoadgenReport, _percentile
from repro.service.testing import running_service
from repro.types import MB
from repro.workload.generator import WorkloadSpec, generate_trace

CACHE = 32 * MB


@pytest.fixture(scope="module")
def trace():
    return generate_trace(
        WorkloadSpec(
            cache_size=CACHE,
            n_files=60,
            n_request_types=30,
            n_jobs=50,
            popularity="zipf",
            max_file_fraction=0.05,
            max_bundle_fraction=0.25,
            seed=5,
        )
    )


@pytest.fixture()
def served(trace, tmp_path):
    workload = tmp_path / "wl.jsonl"
    trace.dump(workload)
    state = CoordinatorState.create(
        ServiceConfig(
            workload=workload,
            cache_size=CACHE,
            run_dir=tmp_path / "run",
            policy="lru",
        )
    )
    with running_service(state) as svc:
        yield svc


def _report(**overrides) -> LoadgenReport:
    base = dict(
        jobs=10,
        errors=0,
        hits=4,
        unserviceable=1,
        retries=2,
        bytes_requested=1000,
        bytes_demand_loaded=250,
        bytes_prefetched=50,
        duration_s=2.0,
        concurrency=1,
        rate=None,
        latency_p50_ms=1.0,
        latency_p90_ms=2.0,
        latency_p99_ms=3.0,
        latency_mean_ms=1.5,
        latency_max_ms=3.0,
    )
    base.update(overrides)
    return LoadgenReport(**base)


class TestReportMath:
    def test_percentile_nearest_rank(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert _percentile(values, 50) == 2.0
        assert _percentile(values, 75) == 3.0
        assert _percentile(values, 99) == 4.0
        assert _percentile(values, 100) == 4.0
        assert _percentile([], 50) == 0.0
        assert _percentile([7.0], 99) == 7.0

    def test_derived_ratios(self):
        report = _report()
        assert report.throughput_jobs_per_s == 5.0
        assert report.byte_miss_ratio == 0.25
        assert report.request_hit_ratio == 0.4

    def test_zero_guards(self):
        report = _report(jobs=0, hits=0, bytes_requested=0, duration_s=0.0)
        assert report.throughput_jobs_per_s == 0.0
        assert report.byte_miss_ratio == 0.0
        assert report.request_hit_ratio == 0.0

    def test_as_dict_carries_derived_fields(self):
        doc = _report().as_dict()
        assert doc["throughput_jobs_per_s"] == 5.0
        assert doc["byte_miss_ratio"] == 0.25
        assert doc["latency_p99_ms"] == 3.0


class TestValidation:
    def test_bad_parameters_rejected(self, trace):
        with pytest.raises(ConfigError, match="concurrency"):
            run_loadgen(trace, "127.0.0.1", 1, concurrency=0)
        with pytest.raises(ConfigError, match="rate"):
            run_loadgen(trace, "127.0.0.1", 1, rate=0.0)
        with pytest.raises(ConfigError, match="limit"):
            run_loadgen(trace, "127.0.0.1", 1, limit=-1)


class TestDriving:
    def test_closed_loop_replays_whole_trace(self, trace, served):
        report = run_loadgen(trace, served.host, served.port)
        assert report.jobs == len(list(trace))
        assert report.errors == 0 and report.unserviceable == 0
        assert report.latency_p50_ms > 0
        assert report.latency_max_ms >= report.latency_p99_ms

    def test_limit_and_explicit_start_job(self, trace, served):
        first = run_loadgen(trace, served.host, served.port, limit=10)
        assert first.jobs == 10
        rest = run_loadgen(trace, served.host, served.port, start_job=10)
        assert rest.jobs == len(list(trace)) - 10
        assert served.service.state.next_job == len(list(trace))

    def test_start_job_auto_continues_from_server(self, trace, served):
        run_loadgen(trace, served.host, served.port, limit=15)
        report = run_loadgen(
            trace, served.host, served.port, start_job="auto"
        )
        assert report.jobs == len(list(trace)) - 15

    def test_open_loop_rate_is_offered_load(self, trace, served):
        """Open loop: 20 jobs at 2000/s must take at least 19/2000 s."""
        report = run_loadgen(
            trace, served.host, served.port, rate=2000.0, limit=20,
            concurrency=4,
        )
        assert report.jobs == 20 and report.rate == 2000.0
        assert report.duration_s >= 19 / 2000.0
