"""Unit tests for the durability primitives: atomic IO, WAL, checkpoints.

The recovery-path integration tests (crash → resume → byte-identical)
live in ``test_durability_recovery.py``; this file pins down the
building blocks those paths rely on — frame encoding, CRC rejection,
torn-tail tolerance, checkpoint validation and fallback.
"""

import json
import warnings
import zlib

import pytest

from repro.durability import (
    JOURNAL_MAGIC,
    JournalReader,
    JournalWriter,
    atomic_write_bytes,
    atomic_write_json,
    atomic_write_text,
    latest_checkpoint,
    list_checkpoints,
    load_checkpoint,
    read_journal_dir,
    write_checkpoint,
)
from repro.durability.checkpoint import CHECKPOINT_SCHEMA_VERSION, KEEP_CHECKPOINTS
from repro.durability.journal import _HEADER
from repro.errors import (
    CheckpointError,
    JournalCorruptError,
    JournalError,
    TraceTruncatedWarning,
)
from repro.telemetry import JsonlSink, validate_trace_file


# --------------------------------------------------------------------- #
# atomic IO


class TestAtomicIO:
    def test_write_text_replaces_atomically(self, tmp_path):
        p = tmp_path / "out.txt"
        atomic_write_text(p, "one")
        atomic_write_text(p, "two", fsync=False)
        assert p.read_text() == "two"
        # no temp litter left behind
        assert [f.name for f in tmp_path.iterdir()] == ["out.txt"]

    def test_write_bytes_and_json(self, tmp_path):
        atomic_write_bytes(tmp_path / "b.bin", b"\x00\x01", fsync=False)
        assert (tmp_path / "b.bin").read_bytes() == b"\x00\x01"
        atomic_write_json(tmp_path / "d.json", {"b": 2, "a": 1}, fsync=False)
        assert json.loads((tmp_path / "d.json").read_text()) == {"a": 1, "b": 2}


# --------------------------------------------------------------------- #
# the write-ahead journal


def _frames(n, start=0):
    return [{"job": i, "trace_offset": i * 100} for i in range(start, start + n)]


class TestJournal:
    def test_round_trip(self, tmp_path):
        d = tmp_path / "journal"
        with JournalWriter(d) as w:
            for payload in _frames(5):
                w.append(payload)
        frames, torn = read_journal_dir(d)
        assert not torn
        assert [f.payload for f in frames] == _frames(5)
        assert [f.job for f in frames] == list(range(5))

    def test_append_encoded_fast_path_matches(self, tmp_path):
        payload = {"job": 3, "trace_offset": 300}
        encoded = json.dumps(payload, separators=(",", ":")).encode()
        with JournalWriter(tmp_path / "j") as w:
            w.append(payload, encoded=encoded)
        frames, _ = read_journal_dir(tmp_path / "j")
        assert frames[0].payload == payload

    def test_segment_rotation(self, tmp_path):
        d = tmp_path / "journal"
        with JournalWriter(d, max_segment_bytes=64) as w:
            for payload in _frames(10):
                w.append(payload)
        segments = sorted(p.name for p in d.iterdir())
        assert len(segments) > 1
        frames, torn = read_journal_dir(d)
        assert not torn
        assert [f.payload for f in frames] == _frames(10)

    def test_bad_crc_rejected(self, tmp_path):
        d = tmp_path / "journal"
        with JournalWriter(d) as w:
            w.append({"job": 0})
        seg = next(iter(d.iterdir()))
        data = bytearray(seg.read_bytes())
        data[-1] ^= 0xFF  # flip a payload byte under an intact header
        seg.write_bytes(bytes(data))
        with pytest.raises(JournalCorruptError) as exc:
            read_journal_dir(d)
        assert "CRC32" in str(exc.value)

    def test_bad_magic_rejected(self, tmp_path):
        d = tmp_path / "journal"
        d.mkdir()
        (d / "wal-000000.log").write_bytes(b"NOTMAGIC")
        with pytest.raises(JournalCorruptError):
            read_journal_dir(d)

    def test_torn_tail_in_final_segment_tolerated(self, tmp_path):
        d = tmp_path / "journal"
        with JournalWriter(d) as w:
            for payload in _frames(3):
                w.append(payload)
        seg = next(iter(d.iterdir()))
        seg.write_bytes(seg.read_bytes()[:-4])  # tear the last frame
        frames, torn = read_journal_dir(d)
        assert torn
        assert [f.job for f in frames] == [0, 1]

    def test_torn_interior_segment_is_corruption(self, tmp_path):
        d = tmp_path / "journal"
        w = JournalWriter(d, max_segment_bytes=48)
        for payload in _frames(8):
            w.append(payload)
        w.close()
        segments = sorted(d.iterdir())
        assert len(segments) >= 2
        first = segments[0]
        first.write_bytes(first.read_bytes()[:-4])
        with pytest.raises(JournalCorruptError):
            read_journal_dir(d)

    def test_full_frame_with_wrong_length_prefix(self, tmp_path):
        d = tmp_path / "journal"
        d.mkdir()
        payload = b'{"job":0}'
        # header claims 4 more bytes than exist, with a matching CRC of
        # nothing useful — the reader must not tolerate this mid-file
        frame = _HEADER.pack(len(payload) + 4, zlib.crc32(payload)) + payload
        (d / "wal-000000.log").write_bytes(JOURNAL_MAGIC + frame + frame)
        with pytest.raises(JournalCorruptError):
            list(JournalReader(d / "wal-000000.log"))

    def test_truncate_to_checkpoint_clears_frames(self, tmp_path):
        d = tmp_path / "journal"
        w = JournalWriter(d)
        for payload in _frames(4):
            w.append(payload)
        w.truncate_to_checkpoint()
        w.append({"job": 99})
        w.close()
        frames, torn = read_journal_dir(d)
        assert not torn
        assert [f.job for f in frames] == [99]

    def test_closed_writer_refuses_appends(self, tmp_path):
        w = JournalWriter(tmp_path / "j")
        w.close()
        with pytest.raises(JournalError):
            w.append({"job": 0})

    def test_invalid_config(self, tmp_path):
        with pytest.raises(JournalError):
            JournalWriter(tmp_path / "j", fsync="sometimes")
        with pytest.raises(JournalError):
            JournalWriter(tmp_path / "j", max_segment_bytes=0)


# --------------------------------------------------------------------- #
# checkpoints


def _write_ckpt(d, job, state=None):
    return write_checkpoint(
        d,
        job=job,
        arrivals_consumed=job,
        trace_offset=job * 1000,
        trace_seq=job * 10,
        state=state or {"cache": {"resident": []}, "policy": {}, "metrics": {}},
        fsync=False,
    )


class TestCheckpoint:
    def test_round_trip(self, tmp_path):
        path = _write_ckpt(tmp_path / "ck", 100)
        ck = load_checkpoint(path)
        assert ck.job == 100
        assert ck.trace_offset == 100_000
        assert ck.trace_seq == 1000
        assert ck.doc["schema_version"] == CHECKPOINT_SCHEMA_VERSION

    def test_crc_tamper_rejected(self, tmp_path):
        path = _write_ckpt(tmp_path / "ck", 100)
        doc = json.loads(path.read_text())
        doc["job"] = 200  # tamper without recomputing the CRC
        path.write_text(json.dumps(doc))
        with pytest.raises(CheckpointError) as exc:
            load_checkpoint(path)
        assert "CRC" in str(exc.value)

    def test_unsupported_schema_version_rejected(self, tmp_path):
        path = _write_ckpt(tmp_path / "ck", 100)
        doc = json.loads(path.read_text())
        doc.pop("crc32")
        doc["schema_version"] = CHECKPOINT_SCHEMA_VERSION + 1
        body = json.dumps(doc, sort_keys=True, separators=(",", ":")).encode()
        doc["crc32"] = zlib.crc32(body)
        path.write_text(json.dumps(doc, sort_keys=True, separators=(",", ":")))
        with pytest.raises(CheckpointError) as exc:
            load_checkpoint(path)
        assert "schema" in str(exc.value)

    def test_latest_falls_back_past_corrupt_newest(self, tmp_path):
        d = tmp_path / "ck"
        _write_ckpt(d, 100)
        newest = _write_ckpt(d, 200)
        newest.write_text("{ not json")
        ck = latest_checkpoint(d)
        assert ck is not None
        assert ck.job == 100

    def test_latest_none_when_all_corrupt(self, tmp_path):
        d = tmp_path / "ck"
        _write_ckpt(d, 100).write_text("")
        assert latest_checkpoint(d) is None
        assert latest_checkpoint(tmp_path / "missing") is None

    def test_retention_prunes_oldest(self, tmp_path):
        d = tmp_path / "ck"
        for job in (100, 200, 300, 400):
            _write_ckpt(d, job)
        kept = list_checkpoints(d)
        assert len(kept) == KEEP_CHECKPOINTS
        assert [load_checkpoint(p).job for p in kept] == [300, 400]


# --------------------------------------------------------------------- #
# sink accounting + torn-trace tolerance


class TestSinkAndTornTrace:
    def test_jsonl_sink_tracks_byte_frontier(self, tmp_path):
        p = tmp_path / "t.jsonl"
        sink = JsonlSink(p)
        sink.emit_line('{"a":1}')
        sink.emit_line('{"b":2}')
        sink.close()
        assert sink.bytes_written == p.stat().st_size
        assert sink.lines_written == 2
        appended = JsonlSink(p, append=True)
        assert appended.bytes_written == p.stat().st_size
        appended.close()

    def test_validate_trace_file_warns_on_torn_final_line(self, tmp_path):
        p = tmp_path / "t.jsonl"
        line = json.dumps(
            {"seq": 0, "kind": "JobArrived", "job": 0, "request_id": 1,
             "n_files": 2, "bytes_requested": 10},
            sort_keys=True,
        )
        intact = line + "\n"
        p.write_text(intact + '{"seq": 1, "kind": "Pl')  # torn mid-write
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            count = validate_trace_file(p)
        assert count == 1
        torn = [w for w in caught if issubclass(w.category, TraceTruncatedWarning)]
        assert len(torn) == 1
        assert torn[0].message.byte_offset == len(intact.encode())

    def test_validate_trace_file_intact(self, tmp_path):
        p = tmp_path / "t.jsonl"
        line = json.dumps(
            {"seq": 0, "kind": "JobArrived", "job": 0, "request_id": 1,
             "n_files": 2, "bytes_requested": 10},
            sort_keys=True,
        )
        p.write_text(line + "\n")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert validate_trace_file(p) == 1
