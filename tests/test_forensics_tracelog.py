"""TraceLog indexing and iter_trace streaming over recorded traces."""

import json

import pytest

from repro.errors import TraceValidationError
from repro.sim.metrics import WindowAccumulator  # noqa: F401  (import check)
from repro.sim.simulator import SimulationConfig, simulate_trace
from repro.sim.timeseries import byte_miss_timeseries
from repro.telemetry import JsonlSink, TraceRecorder, use_recorder
from repro.telemetry.events import JobArrived, WindowRolled, event_to_dict
from repro.telemetry.forensics import TraceLog, iter_trace
from repro.workload.generator import WorkloadSpec, generate_trace

SPEC = WorkloadSpec(
    cache_size=200_000_000,
    n_files=80,
    n_request_types=60,
    n_jobs=120,
    popularity="zipf",
    max_file_fraction=0.05,
    max_bundle_fraction=0.25,
    seed=3,
)


@pytest.fixture(scope="module")
def recorded(tmp_path_factory):
    """One recorded run; returns (path, workload trace)."""
    workload = generate_trace(SPEC)
    path = tmp_path_factory.mktemp("trace") / "run.jsonl"
    with TraceRecorder(JsonlSink(path)) as rec:
        with use_recorder(rec):
            simulate_trace(
                workload,
                SimulationConfig(cache_size=SPEC.cache_size, policy="landlord"),
                recorder=rec,
            )
    return path, workload


class TestIterTrace:
    def test_streams_all_events_in_order(self, recorded):
        path, _ = recorded
        seqs = [seq for seq, _ in iter_trace(path)]
        assert seqs == list(range(len(seqs)))
        assert len(seqs) > 0

    def test_validate_false_skips_schema(self, recorded):
        path, _ = recorded
        strict = list(iter_trace(path))
        loose = list(iter_trace(path, validate=False))
        assert strict == loose

    def test_missing_file_raises_clean_error(self, tmp_path):
        missing = tmp_path / "nope.jsonl"
        with pytest.raises(TraceValidationError, match="cannot read trace"):
            list(iter_trace(missing))
        with pytest.raises(TraceValidationError, match="cannot read trace"):
            TraceLog.load(missing)

    def test_rejects_corruption_with_lineno(self, recorded, tmp_path):
        path, _ = recorded
        lines = path.read_text().splitlines()
        record = json.loads(lines[4])
        record["seq"] = 99999
        lines[4] = json.dumps(record, sort_keys=True)
        bad = tmp_path / "bad.jsonl"
        bad.write_text("\n".join(lines) + "\n")
        with pytest.raises(TraceValidationError, match="line 5") as exc_info:
            list(iter_trace(bad))
        assert exc_info.value.lineno == 5
        assert exc_info.value.field == "seq"


class TestTraceLogIndexes:
    def test_kinds_and_by_kind(self, recorded):
        path, workload = recorded
        log = TraceLog.load(path)
        kinds = log.kinds()
        assert kinds["JobArrived"] == len(workload)
        arrivals = log.by_kind("JobArrived")
        assert len(arrivals) == len(workload)
        assert all(isinstance(e, JobArrived) for _, e in arrivals)
        assert [e.job for _, e in arrivals] == list(range(len(workload)))

    def test_file_timeline_alternates_admit_evict(self, recorded):
        path, _ = recorded
        log = TraceLog.load(path)
        assert log.files()
        for file_id in log.files()[:10]:
            timeline = log.file_timeline(file_id)
            states = [e.kind for _, e in timeline]
            # a file is admitted first and never admitted/evicted twice in
            # a row: the timeline strictly alternates
            assert states[0] == "FileAdmitted"
            for a, b in zip(states, states[1:]):
                assert a != b

    def test_single_run_is_one_segment(self, recorded):
        path, workload = recorded
        log = TraceLog.load(path)
        segs = log.segments()
        assert len(segs) == 1
        assert segs[0].start == 0 and segs[0].end == len(log)
        assert segs[0].timed is False
        jobs = log.jobs()
        assert len(jobs) == len(workload)
        # windows tile the segment: no event is orphaned after the first
        # arrival, and each window starts where the previous one ended
        for a, b in zip(jobs, jobs[1:]):
            assert a.end == b.start
        assert jobs[-1].end == len(log)

    def test_job_timeline(self, recorded):
        path, _ = recorded
        log = TraceLog.load(path)
        timeline = log.job_timeline(5)
        assert isinstance(timeline[0], JobArrived) and timeline[0].job == 5
        assert log.job_timeline(10**9) == []

    def test_concatenated_runs_split_into_segments(self, recorded, tmp_path):
        _, workload = recorded
        path = tmp_path / "two.jsonl"
        with TraceRecorder(JsonlSink(path)) as rec:
            with use_recorder(rec):
                for policy in ("lru", "fifo"):
                    simulate_trace(
                        workload,
                        SimulationConfig(
                            cache_size=SPEC.cache_size, policy=policy
                        ),
                        recorder=rec,
                    )
        log = TraceLog.load(path)
        segs = log.segments()
        assert len(segs) == 2
        assert len(log.jobs(0)) == len(log.jobs(1)) == len(workload)
        assert len(log.jobs()) == 2 * len(workload)

    def test_window_series(self, tmp_path):
        workload = generate_trace(SPEC)
        path = tmp_path / "ts.jsonl"
        with TraceRecorder(JsonlSink(path)) as rec:
            with use_recorder(rec):
                points = byte_miss_timeseries(
                    workload,
                    SimulationConfig(cache_size=SPEC.cache_size, policy="lru"),
                    window=20,
                )
        log = TraceLog.load(path)
        runs = log.windows()
        assert len(runs) == 1
        assert [w.index for w in runs[0]] == [p.window_index for p in points]
        assert [w.byte_miss_ratio for w in runs[0]] == [
            p.byte_miss_ratio for p in points
        ]

    def test_windows_split_on_index_restart(self):
        rolled = [
            WindowRolled(index=i, jobs=1, byte_miss_ratio=0.5, request_hit_ratio=0.5)
            for i in (0, 1, 2, 0, 1)
        ]
        runs = TraceLog(rolled).windows()
        assert [len(r) for r in runs] == [3, 2]

    def test_accepts_bare_events_and_pairs(self):
        ev = JobArrived(job=0, request_id=1, n_files=1, bytes_requested=1)
        bare = TraceLog([ev])
        paired = TraceLog([(7, ev)])
        assert bare.seq(0) == 0 and paired.seq(0) == 7
        assert bare.event(0) == paired.event(0) == ev


class TestTimeseriesTracesReconstruct:
    def test_timeseries_emits_admissions(self, tmp_path):
        """byte_miss_timeseries traces carry admissions, so evictions in
        them reference known files (reconstructibility)."""
        from repro.telemetry.forensics import reconstruct

        workload = generate_trace(SPEC)
        path = tmp_path / "ts.jsonl"
        with TraceRecorder(JsonlSink(path)) as rec:
            with use_recorder(rec):
                byte_miss_timeseries(
                    workload,
                    SimulationConfig(
                        cache_size=SPEC.cache_size, policy="landlord"
                    ),
                    window=20,
                )
        report = reconstruct(path, capacity=SPEC.cache_size)
        assert report.violations == []
        assert report.segments[0].admissions > 0
