"""Shared fixtures: the paper's worked example and small building blocks."""

from __future__ import annotations

import pytest

from repro.core.bundle import FileBundle
from repro.core.optcacheselect import FBCInstance
from repro.types import FileCatalog, FileInfo


@pytest.fixture()
def example_bundles() -> tuple[FileBundle, ...]:
    """The six requests of the paper's Fig. 3 / Tables 1-2."""
    return (
        FileBundle(["f1", "f3", "f5"]),  # r1
        FileBundle(["f2", "f6", "f7"]),  # r2
        FileBundle(["f1", "f5"]),        # r3
        FileBundle(["f4", "f6", "f7"]),  # r4
        FileBundle(["f3", "f5"]),        # r5
        FileBundle(["f5", "f6", "f7"]),  # r6
    )


@pytest.fixture()
def example_sizes() -> dict[str, int]:
    return {f"f{i}": 1 for i in range(1, 8)}


@pytest.fixture()
def example_instance(example_bundles, example_sizes) -> FBCInstance:
    return FBCInstance(
        bundles=example_bundles,
        values=tuple(1.0 for _ in example_bundles),
        sizes=example_sizes,
        budget=3,
    )


@pytest.fixture()
def small_catalog() -> FileCatalog:
    """Five files, 10..50 bytes."""
    return FileCatalog(
        FileInfo(f"g{i}", 10 * i) for i in range(1, 6)
    )
