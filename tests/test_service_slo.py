"""Live SLO monitoring: window mechanics, alert semantics, acceptance.

The headline contract: with a seeded ``FaultSpec`` injecting staging
latency spikes, the ``latency`` signal's alert flips within **one SLO
window** of the spike onset — and the decision trace stays byte-identical
to a spike-free run's, because SLO inputs (host timings, simulated
stalls) never enter the deterministic event stream.
"""

from __future__ import annotations

import argparse
import http.client
import json

import pytest

from repro.errors import ConfigError
from repro.faults.spec import FaultSpec
from repro.service import CoordinatorState, ServiceConfig
from repro.service.slo import SLO_SIGNALS, SloConfig, SloMonitor
from repro.service.testing import running_service
from repro.telemetry.metrics import MetricsRegistry
from repro.types import MB
from repro.workload.generator import WorkloadSpec, generate_trace

CACHE = 32 * MB
POLICY = "landlord"


@pytest.fixture(scope="module")
def trace():
    return generate_trace(
        WorkloadSpec(
            cache_size=CACHE,
            n_files=60,
            n_request_types=30,
            n_jobs=60,
            popularity="zipf",
            max_file_fraction=0.05,
            max_bundle_fraction=0.25,
            seed=31,
        )
    )


@pytest.fixture(scope="module")
def workload_path(trace, tmp_path_factory):
    path = tmp_path_factory.mktemp("slo") / "workload.jsonl"
    trace.dump(path)
    return path


def _config(workload_path, run_dir, **kw) -> ServiceConfig:
    return ServiceConfig(
        workload=workload_path,
        cache_size=CACHE,
        run_dir=run_dir,
        policy=POLICY,
        checkpoint_every=25,
        **kw,
    )


class TestSloConfig:
    def test_validation(self):
        with pytest.raises(ConfigError, match="window_jobs"):
            SloConfig(window_jobs=0)
        with pytest.raises(ConfigError, match="byte_miss_target"):
            SloConfig(byte_miss_target=0.0)
        with pytest.raises(ConfigError, match="byte_miss_target"):
            SloConfig(byte_miss_target=1.5)
        with pytest.raises(ConfigError, match="latency_target_ms"):
            SloConfig(latency_target_ms=0.0)

    def test_defaults_are_sane(self):
        config = SloConfig()
        assert config.window_jobs == 50
        assert 0.0 < config.byte_miss_target <= 1.0


class TestSloMonitor:
    def _monitor(self, **kw):
        registry = MetricsRegistry()
        defaults = dict(
            window_jobs=5,
            byte_miss_target=0.5,
            latency_target_ms=10.0,
            min_history=3,
        )
        defaults.update(kw)
        return registry, SloMonitor(registry, SloConfig(**defaults))

    def _feed_window(self, monitor, *, miss=0.2, latency_ms=1.0):
        for _ in range(monitor.config.window_jobs):
            monitor.observe(
                requested_bytes=100,
                demand_bytes=int(miss * 100),
                latency_s=latency_ms / 1e3,
            )

    def test_window_rolls_only_when_full(self):
        registry, monitor = self._monitor()
        for _ in range(4):
            monitor.observe(requested_bytes=10, demand_bytes=5, latency_s=0.001)
        assert registry.get("service_slo_windows_total").value == 0
        assert all(
            s["windows"] == 0 for s in monitor.payload()["signals"].values()
        )
        monitor.observe(requested_bytes=10, demand_bytes=5, latency_s=0.001)
        assert registry.get("service_slo_windows_total").value == 1
        payload = monitor.payload()
        assert set(payload["signals"]) == set(SLO_SIGNALS)
        assert payload["signals"]["byte_miss"]["value"] == pytest.approx(0.5)
        assert payload["signals"]["latency"]["value"] == pytest.approx(1.0)

    def test_burn_rate_over_one_alerts(self):
        _registry, monitor = self._monitor(latency_target_ms=2.0)
        self._feed_window(monitor, miss=0.2, latency_ms=8.0)
        latency = monitor.payload()["signals"]["latency"]
        assert latency["burn_rate"] == pytest.approx(4.0)
        assert latency["alert"] is True
        byte_miss = monitor.payload()["signals"]["byte_miss"]
        assert byte_miss["burn_rate"] == pytest.approx(0.4)
        assert byte_miss["alert"] is False
        assert monitor.alerting

    def test_mad_anomaly_alerts_below_budget(self):
        """A latency step change alerts even while under the target."""
        _registry, monitor = self._monitor(latency_target_ms=1000.0)
        for _ in range(6):
            self._feed_window(monitor, latency_ms=1.0)
        assert not monitor.alerting
        self._feed_window(monitor, latency_ms=50.0)  # still ≪ 1000 ms
        latency = monitor.payload()["signals"]["latency"]
        assert latency["burn_rate"] < 1.0
        assert latency["alert"] is True
        assert latency["score"] > monitor.config.threshold

    def test_alert_clears_when_signal_recovers(self):
        _registry, monitor = self._monitor(latency_target_ms=2.0)
        self._feed_window(monitor, latency_ms=8.0)
        assert monitor.alerting
        for _ in range(8):
            self._feed_window(monitor, latency_ms=1.0)
        assert not monitor.alerting

    def test_prometheus_export_carries_all_signal_series(self):
        registry, monitor = self._monitor(latency_target_ms=2.0)
        self._feed_window(monitor, latency_ms=8.0)
        text = registry.to_prometheus()
        for signal in SLO_SIGNALS:
            assert f'service_slo_burn_rate{{signal="{signal}"}}' in text
            assert f'service_slo_alert{{signal="{signal}"}}' in text
            assert f'service_slo_score{{signal="{signal}"}}' in text
            assert f'service_slo_window_value{{signal="{signal}"}}' in text
        assert 'service_slo_alerts_total{signal="latency"} 1' in text
        assert "service_slo_windows_total 1" in text


class TestSloAcceptance:
    WINDOW = 10

    def _drive(self, trace, workload_path, run_dir, **kw):
        state = CoordinatorState.create(
            _config(
                workload_path,
                run_dir,
                slo=SloConfig(window_jobs=self.WINDOW, latency_target_ms=5.0),
                **kw,
            )
        )
        try:
            for request in trace:
                state.submit(
                    sorted(request.bundle.files), priority=request.priority
                )
            return state.slo.payload()
        finally:
            state.close()

    def test_latency_spike_flips_alert_within_one_window(
        self, trace, workload_path, tmp_path
    ):
        """Acceptance: seeded spikes (10× on every load, ~9 ms per file)
        push windowed mean latency past the 5 ms target in the very
        first window — and never touch the decision trace."""
        clean = self._drive(trace, workload_path, tmp_path / "clean")
        assert clean["alerting"] is False
        assert clean["signals"]["latency"]["alert"] is False

        spiked = self._drive(
            trace,
            workload_path,
            tmp_path / "spiked",
            fault=FaultSpec(
                seed=7, latency_spike_rate=1.0, latency_spike_factor=10.0
            ),
        )
        latency = spiked["signals"]["latency"]
        assert latency["alert"] is True
        assert latency["burn_rate"] > 1.0
        assert latency["windows"] == len(list(trace)) // self.WINDOW
        # the spike costs time, not bytes: byte_miss agrees across runs
        assert spiked["signals"]["byte_miss"]["value"] == pytest.approx(
            clean["signals"]["byte_miss"]["value"]
        )
        assert (tmp_path / "spiked" / "trace.jsonl").read_bytes() == (
            tmp_path / "clean" / "trace.jsonl"
        ).read_bytes()

    def test_healthz_exposes_slo_block(self, trace, workload_path, tmp_path):
        state = CoordinatorState.create(
            _config(
                workload_path,
                tmp_path / "r",
                slo=SloConfig(window_jobs=2, latency_target_ms=5.0),
            )
        )
        files = sorted(state.sizes)
        with running_service(state) as svc:
            conn = http.client.HTTPConnection("127.0.0.1", svc.port, timeout=10)
            try:
                for i in range(4):
                    conn.request(
                        "POST",
                        "/v1/jobs",
                        body=json.dumps({"files": files[i : i + 2]}),
                    )
                    response = conn.getresponse()
                    response.read()
                    assert response.status == 200
                conn.request("GET", "/healthz")
                health = json.loads(conn.getresponse().read())
            finally:
                conn.close()
        slo = health["slo"]
        assert slo["window_jobs"] == 2
        assert set(slo["signals"]) == set(SLO_SIGNALS)
        assert slo["signals"]["byte_miss"]["windows"] == 2


class TestCliSlo:
    def test_live_mode_reads_healthz(
        self, trace, workload_path, tmp_path, capsys
    ):
        from repro.cli import _run_slo

        state = CoordinatorState.create(
            _config(
                workload_path,
                tmp_path / "r",
                slo=SloConfig(window_jobs=2, latency_target_ms=5.0),
            )
        )
        files = sorted(state.sizes)
        with running_service(state) as svc:
            conn = http.client.HTTPConnection("127.0.0.1", svc.port, timeout=10)
            try:
                for i in range(4):
                    conn.request(
                        "POST",
                        "/v1/jobs",
                        body=json.dumps({"files": files[i : i + 2]}),
                    )
                    response = conn.getresponse()
                    response.read()
                    assert response.status == 200
            finally:
                conn.close()
            _run_slo(
                argparse.Namespace(
                    port=svc.port,
                    host="127.0.0.1",
                    trace=None,
                    json=False,
                )
            )
            text = capsys.readouterr().out
            assert "slo:" in text
            assert "byte_miss:" in text and "latency:" in text
            _run_slo(
                argparse.Namespace(
                    port=svc.port, host="127.0.0.1", trace=None, json=True
                )
            )
            doc = json.loads(capsys.readouterr().out)
            assert set(doc["signals"]) == set(SLO_SIGNALS)

    def test_requires_exactly_one_source(self):
        from repro.cli import _run_slo

        for port, trace_arg in ((None, None), (1234, "t.jsonl")):
            with pytest.raises(ConfigError, match="exactly one"):
                _run_slo(
                    argparse.Namespace(
                        port=port, host="127.0.0.1", trace=trace_arg, json=False
                    )
                )
