"""Unit tests for the partial-enumeration OptCacheSelect variant."""

import numpy as np
import pytest

from repro.core.bundle import FileBundle
from repro.core.exact import solve_exact
from repro.core.kenum import opt_cache_select_enum
from repro.core.optcacheselect import FBCInstance, opt_cache_select
from repro.errors import ConfigError


def inst(bundles, values, sizes, budget):
    return FBCInstance(
        bundles=tuple(FileBundle(b) for b in bundles),
        values=tuple(float(v) for v in values),
        sizes=sizes,
        budget=budget,
    )


def test_negative_k_rejected():
    with pytest.raises(ConfigError):
        opt_cache_select_enum(inst([["a"]], [1], {"a": 1}, 2), k=-1)


def test_empty_instance():
    assert opt_cache_select_enum(inst([], [], {}, 5)).total_value == 0.0


def test_k0_equals_refined_greedy(example_instance):
    assert (
        opt_cache_select_enum(example_instance, k=0).total_value
        == opt_cache_select(example_instance).total_value
    )


def test_never_worse_than_greedy():
    rng = np.random.default_rng(11)
    for _ in range(20):
        sizes = {f"f{i}": int(rng.integers(1, 9)) for i in range(8)}
        bundles, values = [], []
        for _ in range(int(rng.integers(2, 8))):
            k = int(rng.integers(1, 4))
            fs = rng.choice(8, size=k, replace=False)
            bundles.append([f"f{i}" for i in fs])
            values.append(int(rng.integers(1, 9)))
        i = inst(bundles, values, sizes, int(rng.integers(3, 20)))
        assert (
            opt_cache_select_enum(i, k=2).total_value
            >= opt_cache_select(i).total_value - 1e-9
        )


def test_beats_greedy_on_adversarial_instance():
    # The decoy (v'=5) is ranked first and blocks the second big request;
    # enumeration seeded with both big requests finds the better packing.
    i = inst(
        [["d"], ["b1"], ["b2"]],
        [5, 9, 9],
        {"d": 1, "b1": 3, "b2": 3},
        6,
    )
    greedy = opt_cache_select(i)  # decoy + one big + Step 3 = 14
    enum = opt_cache_select_enum(i, k=2)
    assert greedy.total_value == 14.0
    assert enum.total_value == 18.0
    assert enum.total_value == solve_exact(i).total_value


def test_k2_matches_exact_on_small_instances():
    rng = np.random.default_rng(5)
    wins = 0
    for _ in range(15):
        sizes = {f"f{i}": int(rng.integers(1, 6)) for i in range(7)}
        bundles, values = [], []
        for _ in range(int(rng.integers(3, 7))):
            k = int(rng.integers(1, 3))
            fs = rng.choice(7, size=k, replace=False)
            bundles.append([f"f{i}" for i in fs])
            values.append(int(rng.integers(1, 6)))
        i = inst(bundles, values, sizes, int(rng.integers(4, 15)))
        if (
            opt_cache_select_enum(i, k=2).total_value
            == solve_exact(i).total_value
        ):
            wins += 1
    assert wins >= 13  # near-always optimal at this scale
