"""Unit tests for the admission queue and its disciplines."""

import pytest

from repro.core.bundle import FileBundle
from repro.core.request import Request
from repro.errors import ConfigError, SimulationError
from repro.sim.queueing import AdmissionQueue, QueueDiscipline

SIZES = {"a": 1, "b": 2, "c": 3, "d": 4}


def req(i, files):
    return Request(i, FileBundle(files))


class TestConstruction:
    def test_invalid_length(self):
        with pytest.raises(ConfigError):
            AdmissionQueue(0)

    def test_sjf_requires_sizes(self):
        with pytest.raises(ConfigError):
            AdmissionQueue(3, QueueDiscipline.SJF)

    def test_negative_aging_rejected(self):
        with pytest.raises(ConfigError):
            AdmissionQueue(3, aging_weight=-1)


class TestBasics:
    def test_push_pop_fcfs(self):
        q = AdmissionQueue(3)
        q.push(req(0, ["a"]))
        q.push(req(1, ["b"]))
        assert q.pop_next().request_id == 0
        assert q.pop_next().request_id == 1

    def test_full_queue_rejects_push(self):
        q = AdmissionQueue(1)
        q.push(req(0, ["a"]))
        assert q.is_full
        with pytest.raises(SimulationError):
            q.push(req(1, ["b"]))

    def test_empty_pop_rejected(self):
        with pytest.raises(SimulationError):
            AdmissionQueue(2).pop_next()


class TestSJF:
    def test_smallest_bundle_first(self):
        q = AdmissionQueue(3, QueueDiscipline.SJF, sizes=SIZES)
        q.push(req(0, ["d"]))       # 4 bytes
        q.push(req(1, ["a"]))       # 1 byte
        q.push(req(2, ["b"]))       # 2 bytes
        assert q.pop_next().request_id == 1
        assert q.pop_next().request_id == 2
        assert q.pop_next().request_id == 0


class TestValueDiscipline:
    def test_highest_score_first(self):
        q = AdmissionQueue(3, QueueDiscipline.VALUE)
        q.push(req(0, ["a"]))
        q.push(req(1, ["b"]))
        scores = {FileBundle(["a"]): 1.0, FileBundle(["b"]): 5.0}
        assert q.pop_next(lambda b: scores[b]).request_id == 1

    def test_none_scorer_degrades_to_fcfs(self):
        q = AdmissionQueue(3, QueueDiscipline.VALUE)
        q.push(req(0, ["a"]))
        q.push(req(1, ["b"]))
        assert q.pop_next(None).request_id == 0

    def test_scorer_returning_none_degrades_to_fcfs(self):
        q = AdmissionQueue(3, QueueDiscipline.VALUE)
        q.push(req(0, ["a"]))
        q.push(req(1, ["b"]))
        assert q.pop_next(lambda b: None).request_id == 0

    def test_tie_broken_by_arrival(self):
        q = AdmissionQueue(3, QueueDiscipline.VALUE)
        q.push(req(0, ["a"]))
        q.push(req(1, ["b"]))
        assert q.pop_next(lambda b: 1.0).request_id == 0


class TestAgedValue:
    def test_waiting_job_eventually_wins(self):
        q = AdmissionQueue(3, QueueDiscipline.AGED_VALUE, aging_weight=0.5)
        low = FileBundle(["a"])
        q.push(req(0, ["a"]))  # low score, arrives first

        def scorer(b):
            return 1.0 if b == low else 2.0

        next_id = 1
        popped = []
        for _ in range(4):
            if not q.is_full:
                q.push(req(next_id, ["b"]))
                next_id += 1
            popped.append(q.pop_next(scorer).request_id)
            if 0 in popped:
                break
        assert 0 in popped  # no lockout

    def test_without_aging_lockout_possible(self):
        q = AdmissionQueue(2, QueueDiscipline.VALUE)
        low = FileBundle(["a"])
        q.push(req(0, ["a"]))

        def scorer(b):
            return 1.0 if b == low else 2.0

        next_id = 1
        popped = []
        for _ in range(5):
            while not q.is_full:
                q.push(req(next_id, ["b"]))
                next_id += 1
            popped.append(q.pop_next(scorer).request_id)
        assert 0 not in popped
        assert q.max_observed_wait() == 0  # departed jobs never waited


class TestWaitTracking:
    def test_max_observed_wait(self):
        q = AdmissionQueue(2)
        q.push(req(0, ["a"]))
        q.push(req(1, ["b"]))
        q.pop_next()
        q.pop_next()
        assert q.max_observed_wait() == 1  # job 1 waited one round
