"""Unit tests for the network link and MSS models."""

import pytest

from repro.errors import ConfigError
from repro.grid.mss import MassStorageSystem
from repro.grid.network import NetworkLink
from repro.sim.engine import EventEngine
from repro.types import MB


class TestNetworkLink:
    def test_transfer_time(self):
        link = NetworkLink(bandwidth=100.0, latency=0.5)
        assert link.transfer_time(200) == pytest.approx(0.5 + 2.0)

    def test_zero_bytes_costs_latency(self):
        assert NetworkLink(latency=0.1).transfer_time(0) == pytest.approx(0.1)

    def test_invalid_params(self):
        with pytest.raises(ConfigError):
            NetworkLink(bandwidth=0)
        with pytest.raises(ConfigError):
            NetworkLink(latency=-1)
        with pytest.raises(ConfigError):
            NetworkLink().transfer_time(-5)


class TestMSS:
    def test_invalid_params(self):
        e = EventEngine()
        with pytest.raises(ConfigError):
            MassStorageSystem(e, n_drives=0)
        with pytest.raises(ConfigError):
            MassStorageSystem(e, mount_latency=-1)
        with pytest.raises(ConfigError):
            MassStorageSystem(e, drive_bandwidth=0)

    def test_retrieval_time_formula(self):
        e = EventEngine()
        mss = MassStorageSystem(e, mount_latency=10.0, drive_bandwidth=100.0)
        assert mss.retrieval_time(500) == pytest.approx(10.0 + 5.0)

    def test_single_drive_serializes(self):
        e = EventEngine()
        mss = MassStorageSystem(
            e, n_drives=1, mount_latency=1.0, drive_bandwidth=100.0
        )
        done = []
        mss.retrieve("a", 100, lambda f: done.append((f, e.now)))
        mss.retrieve("b", 100, lambda f: done.append((f, e.now)))
        e.run()
        assert done == [("a", 2.0), ("b", 4.0)]

    def test_parallel_drives(self):
        e = EventEngine()
        mss = MassStorageSystem(
            e, n_drives=2, mount_latency=1.0, drive_bandwidth=100.0
        )
        done = []
        mss.retrieve("a", 100, lambda f: done.append((f, e.now)))
        mss.retrieve("b", 100, lambda f: done.append((f, e.now)))
        e.run()
        assert done[0][1] == done[1][1] == 2.0

    def test_counters(self):
        e = EventEngine()
        mss = MassStorageSystem(e, n_drives=1)
        mss.retrieve("a", 5 * MB, lambda f: None)
        e.run()
        assert mss.retrievals == 1
        assert mss.bytes_retrieved == 5 * MB

    def test_queue_visibility(self):
        e = EventEngine()
        mss = MassStorageSystem(e, n_drives=1, mount_latency=1.0)
        mss.retrieve("a", 1, lambda f: None)
        mss.retrieve("b", 1, lambda f: None)
        assert mss.busy_drives == 1
        assert mss.queued == 1
        e.run()
        assert mss.busy_drives == 0 and mss.queued == 0

    def test_invalid_size_rejected(self):
        e = EventEngine()
        mss = MassStorageSystem(e)
        with pytest.raises(ConfigError):
            mss.retrieve("a", 0, lambda f: None)
