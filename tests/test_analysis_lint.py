"""Tests for the determinism & conformance linter (repro.analysis.lint).

Each rule gets a violating and a clean fixture snippet; suppression and
allowlist behaviour, the JSON report shape, the CLI exit-code contract,
and the RPR005 drift checks are covered separately.  The meta-test at the
bottom runs the shipped linter over the shipped tree and requires a clean
exit — the same invariant CI enforces.
"""

import json
import textwrap
from dataclasses import dataclass
from pathlib import Path

import pytest

import repro
from repro.analysis.lint import (
    ALL_RULE_IDS,
    LintConfig,
    check_doc_references,
    check_rule_docs,
    check_service_routes,
    check_event_schema,
    collect_files,
    format_json,
    format_text,
    lint_paths,
)
from repro.analysis.lint.reporting import JSON_REPORT_VERSION
from repro.cli import main
from repro.errors import LintError
from repro.telemetry import events as events_mod

NO_DRIFT = LintConfig(ignore=frozenset({"RPR005"}))


def run_lint(tmp_path, source, relpath="cache/mod.py", config=NO_DRIFT):
    """Write ``source`` under ``tmp_path/relpath`` and lint just that file.

    The default relpath puts the fixture under a ``cache/`` directory so
    the RPR003 focus patterns apply; RPR005 is ignored so repo-level
    drift checks never leak into per-file fixtures.
    """
    target = tmp_path / relpath
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(textwrap.dedent(source), encoding="utf-8")
    return lint_paths([target], config)


def rule_ids(result):
    return [f.rule for f in result.findings]


class TestWallClockRule:
    def test_time_time_flagged(self, tmp_path):
        result = run_lint(tmp_path, "import time\nt0 = time.time()\n")
        assert rule_ids(result) == ["RPR001"]
        assert "time.time" in result.findings[0].message

    def test_perf_counter_and_datetime_now_flagged(self, tmp_path):
        result = run_lint(
            tmp_path,
            """\
            import time
            from datetime import datetime

            a = time.perf_counter()
            b = datetime.now()
            """,
        )
        assert rule_ids(result) == ["RPR001", "RPR001"]

    def test_simulated_time_clean(self, tmp_path):
        result = run_lint(
            tmp_path,
            """\
            def advance(t: float, dt: float) -> float:
                return t + dt
            """,
        )
        assert result.ok

    def test_allowlisted_file_exempt(self, tmp_path):
        config = LintConfig(
            ignore=frozenset({"RPR005"}),
            allow={"RPR001": ("*/cache/bench_mod.py",)},
        )
        result = run_lint(
            tmp_path,
            "import time\nt0 = time.time()\n",
            relpath="cache/bench_mod.py",
            config=config,
        )
        assert result.ok


class TestUnseededRngRule:
    def test_default_rng_without_seed_flagged(self, tmp_path):
        result = run_lint(
            tmp_path,
            "import numpy as np\nrng = np.random.default_rng()\n",
        )
        assert rule_ids(result) == ["RPR002"]
        assert "OS entropy" in result.findings[0].message

    def test_default_rng_literal_seed_flagged(self, tmp_path):
        result = run_lint(
            tmp_path,
            "import numpy as np\nrng = np.random.default_rng(0)\n",
        )
        assert rule_ids(result) == ["RPR002"]
        assert "hard-codes the seed" in result.findings[0].message

    def test_default_rng_parameter_seed_clean(self, tmp_path):
        result = run_lint(
            tmp_path,
            """\
            import numpy as np

            def make(seed: int):
                return np.random.default_rng(seed)
            """,
        )
        assert result.ok

    def test_legacy_numpy_global_flagged(self, tmp_path):
        result = run_lint(
            tmp_path,
            "import numpy as np\nnp.random.seed(7)\nx = np.random.rand()\n",
        )
        assert rule_ids(result) == ["RPR002", "RPR002"]

    def test_stdlib_random_module_flagged(self, tmp_path):
        result = run_lint(tmp_path, "import random\nx = random.random()\n")
        assert rule_ids(result) == ["RPR002"]

    def test_seeded_random_instance_clean(self, tmp_path):
        result = run_lint(
            tmp_path,
            """\
            import random

            def make(seed: int):
                return random.Random(seed)
            """,
        )
        assert result.ok


class TestSetIterationRule:
    def test_for_over_set_flagged(self, tmp_path):
        result = run_lint(
            tmp_path,
            """\
            def f(items):
                s = set(items)
                for x in s:
                    print(x)
            """,
        )
        assert rule_ids(result) == ["RPR003"]

    def test_sorted_iteration_clean(self, tmp_path):
        result = run_lint(
            tmp_path,
            """\
            def f(items):
                s = set(items)
                for x in sorted(s):
                    print(x)
            """,
        )
        assert result.ok

    def test_min_and_next_iter_flagged(self, tmp_path):
        result = run_lint(
            tmp_path,
            """\
            def f(s: set):
                a = min(s)
                b = next(iter(s))
                return a, b
            """,
        )
        assert rule_ids(result) == ["RPR003", "RPR003"]

    def test_set_returning_method_chain_flagged(self, tmp_path):
        result = run_lint(
            tmp_path,
            """\
            def f(cache, bundle):
                missing = cache.missing(bundle)
                return [x for x in missing]
            """,
        )
        assert rule_ids(result) == ["RPR003"]

    def test_outside_focus_dirs_not_flagged(self, tmp_path):
        result = run_lint(
            tmp_path,
            """\
            def f(items):
                s = set(items)
                for x in s:
                    print(x)
            """,
            relpath="utils/mod.py",
        )
        assert result.ok


class TestExceptionHygieneRule:
    def test_builtin_raise_flagged(self, tmp_path):
        result = run_lint(
            tmp_path,
            """\
            def f(x):
                if x < 0:
                    raise ValueError("negative")
            """,
        )
        assert rule_ids(result) == ["RPR004"]
        assert "repro.errors" in result.findings[0].message

    def test_repro_error_raise_clean(self, tmp_path):
        result = run_lint(
            tmp_path,
            """\
            from repro.errors import ConfigError

            def f(x):
                if x < 0:
                    raise ConfigError("negative")
            """,
        )
        assert result.ok

    def test_local_subclass_of_repro_error_clean(self, tmp_path):
        result = run_lint(
            tmp_path,
            """\
            from repro.errors import ReproError

            class LocalError(ReproError):
                pass

            def f():
                raise LocalError("boom")
            """,
        )
        assert result.ok

    def test_bare_except_flagged(self, tmp_path):
        result = run_lint(
            tmp_path,
            """\
            def f(g):
                try:
                    g()
                except:
                    pass
            """,
        )
        assert rule_ids(result) == ["RPR004"]
        assert "bare 'except:'" in result.findings[0].message

    def test_swallowing_except_exception_flagged(self, tmp_path):
        result = run_lint(
            tmp_path,
            """\
            def f(g):
                try:
                    g()
                except Exception:
                    return None
            """,
        )
        assert rule_ids(result) == ["RPR004"]

    def test_translating_handler_clean(self, tmp_path):
        result = run_lint(
            tmp_path,
            """\
            from repro.errors import ReproError

            def f(g):
                try:
                    g()
                except Exception as exc:
                    raise ReproError(str(exc)) from exc
            """,
        )
        assert result.ok


class TestSuppressions:
    def test_inline_suppression_silences_finding(self, tmp_path):
        result = run_lint(
            tmp_path,
            """\
            def f(items):
                s = set(items)
                for x in s:  # repro: allow[RPR003] order feeds a sum only
                    print(x)
            """,
        )
        assert result.ok
        assert result.suppressed == 1

    def test_comment_above_suppression(self, tmp_path):
        result = run_lint(
            tmp_path,
            """\
            def f(items):
                s = set(items)
                # repro: allow[RPR003] order feeds a sum only
                for x in s:
                    print(x)
            """,
        )
        assert result.ok

    def test_multiline_comment_block_suppression(self, tmp_path):
        result = run_lint(
            tmp_path,
            """\
            def f(items):
                s = set(items)
                # repro: allow[RPR003] order feeds a sum only, and the
                # continuation line must not break the match
                for x in s:
                    print(x)
            """,
        )
        assert result.ok

    def test_suppression_for_other_rule_does_not_apply(self, tmp_path):
        result = run_lint(
            tmp_path,
            """\
            def f(items):
                s = set(items)
                for x in s:  # repro: allow[RPR001] wrong rule id
                    print(x)
            """,
        )
        assert rule_ids(result) == ["RPR003"]

    def test_unjustified_suppression_is_rpr900(self, tmp_path):
        result = run_lint(
            tmp_path,
            """\
            def f(items):
                s = set(items)
                for x in s:  # repro: allow[RPR003]
                    print(x)
            """,
        )
        assert rule_ids(result) == ["RPR900"]
        assert "justification" in result.findings[0].message


class TestConfig:
    def test_unknown_rule_id_rejected(self):
        with pytest.raises(LintError, match="unknown rule"):
            LintConfig(select=frozenset({"RPR999"}))
        with pytest.raises(LintError, match="unknown rule"):
            LintConfig.from_cli(ignore=["nope"])

    def test_select_restricts_rules(self, tmp_path):
        source = """\
        import time

        def f(items):
            t0 = time.time()
            s = set(items)
            for x in s:
                print(x)
        """
        config = LintConfig(
            select=frozenset({"RPR001"}), ignore=frozenset({"RPR005"})
        )
        result = run_lint(tmp_path, source, config=config)
        assert rule_ids(result) == ["RPR001"]

    def test_ignore_wins_over_select(self, tmp_path):
        config = LintConfig(
            select=frozenset({"RPR001"}), ignore=frozenset({"RPR001", "RPR005"})
        )
        result = run_lint(tmp_path, "import time\nt = time.time()\n", config=config)
        assert result.ok

    def test_from_cli_uppercases(self):
        config = LintConfig.from_cli(select=["rpr003"], ignore=["rpr005"])
        assert config.rule_enabled("RPR003")
        assert not config.rule_enabled("RPR005")
        assert not config.rule_enabled("RPR001")

    def test_all_rule_ids_sorted_and_unique(self):
        assert len(set(ALL_RULE_IDS)) == len(ALL_RULE_IDS)
        assert list(ALL_RULE_IDS) == sorted(ALL_RULE_IDS)


class TestCollectFiles:
    def test_missing_path_raises(self, tmp_path):
        with pytest.raises(LintError, match="no such file"):
            collect_files([tmp_path / "nope.py"])

    def test_non_python_file_raises(self, tmp_path):
        target = tmp_path / "notes.txt"
        target.write_text("hi")
        with pytest.raises(LintError, match="not a Python source file"):
            collect_files([target])

    def test_directory_walk_skips_pycache(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "a.py").write_text("x = 1\n")
        (tmp_path / "pkg" / "__pycache__").mkdir()
        (tmp_path / "pkg" / "__pycache__" / "a.py").write_text("x = 1\n")
        files = collect_files([tmp_path])
        assert [p.name for p in files] == ["a.py"]

    def test_deduplicates_overlapping_args(self, tmp_path):
        target = tmp_path / "a.py"
        target.write_text("x = 1\n")
        files = collect_files([tmp_path, target])
        assert len(files) == 1

    def test_non_utf8_source_raises(self, tmp_path):
        target = tmp_path / "bad.py"
        target.write_bytes(b"x = 1\n\xff\xfe\n")
        with pytest.raises(LintError, match="not valid UTF-8"):
            lint_paths([target], NO_DRIFT)

    def test_syntax_error_raises(self, tmp_path):
        target = tmp_path / "bad.py"
        target.write_text("def f(:\n")
        with pytest.raises(LintError, match="does not parse"):
            lint_paths([target], NO_DRIFT)


class TestReporting:
    def test_json_report_shape(self, tmp_path):
        result = run_lint(
            tmp_path,
            "import time\nt = time.time()\n",
        )
        payload = json.loads(
            format_json(result.findings, files_checked=result.files_checked)
        )
        assert payload["version"] == JSON_REPORT_VERSION
        assert payload["files_checked"] == 1
        assert payload["total"] == 1
        assert payload["counts"] == {"RPR001": 1}
        (finding,) = payload["findings"]
        assert set(finding) == {
            "rule",
            "severity",
            "path",
            "line",
            "col",
            "message",
        }
        assert finding["rule"] == "RPR001"
        assert finding["line"] == 2

    def test_text_report_clean_and_dirty(self, tmp_path):
        clean = run_lint(tmp_path, "x = 1\n")
        assert "clean: 0 findings in 1 file" in format_text(
            clean.findings, files_checked=clean.files_checked
        )
        dirty = run_lint(tmp_path, "import time\nt = time.time()\n")
        text = format_text(dirty.findings, files_checked=dirty.files_checked)
        assert "1 finding (RPR001: 1) in 1 file" in text
        assert "RPR001 [error]" in text

    def test_findings_sorted_deterministically(self, tmp_path):
        result = run_lint(
            tmp_path,
            """\
            import time

            def f(items):
                s = set(items)
                for x in s:
                    print(x)
                t = time.time()
            """,
        )
        keys = [f.sort_key() for f in result.findings]
        assert keys == sorted(keys)


class TestDriftChecks:
    def test_removed_dataclass_field_is_caught(self):
        """Acceptance criterion: dropping a field from an event dataclass
        without updating EVENT_SCHEMA must produce an RPR005 finding."""

        @dataclass(frozen=True)
        class SlimFileAdmitted:
            file: str
            bytes: int
            # 'cause' removed relative to EVENT_SCHEMA["FileAdmitted"]

        assert "cause" in events_mod.EVENT_SCHEMA["FileAdmitted"]
        event_types = dict(events_mod.EVENT_TYPES)
        event_types["FileAdmitted"] = SlimFileAdmitted
        findings = check_event_schema(
            schema=events_mod.EVENT_SCHEMA, event_types=event_types
        )
        assert any(
            f.rule == "RPR005" and "'cause'" in f.message for f in findings
        )

    def test_extra_dataclass_field_is_caught(self):
        @dataclass(frozen=True)
        class FatFileAdmitted:
            file: str
            bytes: int
            cause: str
            surprise: int = 0

        event_types = dict(events_mod.EVENT_TYPES)
        event_types["FileAdmitted"] = FatFileAdmitted
        findings = check_event_schema(
            schema=events_mod.EVENT_SCHEMA, event_types=event_types
        )
        assert any("surprise" in f.message for f in findings)

    def test_unregistered_kind_both_directions(self):
        findings = check_event_schema(
            schema={"ghost": {"x": int}}, event_types={}
        )
        assert any("ghost" in f.message for f in findings)
        findings = check_event_schema(
            schema={},
            event_types={"FileAdmitted": events_mod.EVENT_TYPES["FileAdmitted"]},
        )
        assert any("missing from EVENT_SCHEMA" in f.message for f in findings)

    def test_live_schema_is_drift_free(self):
        assert check_event_schema() == []

    def test_unknown_documented_policy_flagged(self, tmp_path):
        (tmp_path / "README.md").write_text(
            "Run with `--policy lru` or `--policy nosuch`.\n"
            "Also try `repro-fbc run fig99`.\n"
        )
        findings = check_doc_references(
            root=tmp_path,
            policy_registry={"lru": object},
            experiments={"fig6": object},
        )
        messages = " | ".join(f.message for f in findings)
        assert "'nosuch'" in messages
        assert "'fig99'" in messages
        assert "'lru'" not in messages

    def test_undocumented_policy_flagged(self, tmp_path):
        (tmp_path / "README.md").write_text("Only `--policy lru` here.\n")
        findings = check_doc_references(
            root=tmp_path,
            policy_registry={"lru": object, "hidden": object},
            experiments={},
        )
        assert any(
            "'hidden'" in f.message and "never" in f.message for f in findings
        )

    def test_live_docs_are_drift_free(self):
        assert check_doc_references() == []


class TestServiceRouteDrift:
    """RPR005: README endpoint list pinned to repro.service.app.ROUTES."""

    ROUTES = (("POST", "/v1/jobs"), ("GET", "/healthz"))

    def test_missing_endpoint_section_flagged(self, tmp_path):
        (tmp_path / "README.md").write_text("No service docs here.\n")
        findings = check_service_routes(root=tmp_path, routes=self.ROUTES)
        assert len(findings) == 1
        assert "documents no service endpoints" in findings[0].message

    def test_undocumented_route_flagged(self, tmp_path):
        (tmp_path / "README.md").write_text("Submit via `POST /v1/jobs`.\n")
        findings = check_service_routes(root=tmp_path, routes=self.ROUTES)
        assert any(
            "'GET /healthz'" in f.message and "not documented" in f.message
            for f in findings
        )

    def test_unknown_documented_endpoint_flagged(self, tmp_path):
        (tmp_path / "README.md").write_text(
            "Use `POST /v1/jobs` and `GET /healthz`.\n"
            "Also `DELETE /v1/cache` (which does not exist).\n"
        )
        findings = check_service_routes(root=tmp_path, routes=self.ROUTES)
        assert len(findings) == 1
        assert "'DELETE /v1/cache'" in findings[0].message
        assert findings[0].line == 2

    def test_matching_docs_are_clean(self, tmp_path):
        (tmp_path / "README.md").write_text(
            "| `POST /v1/jobs` | submit |\n| `GET /healthz` | liveness |\n"
        )
        assert check_service_routes(root=tmp_path, routes=self.ROUTES) == []

    def test_live_readme_matches_route_table(self):
        assert check_service_routes() == []

    def test_missing_rule_row_flagged(self, tmp_path):
        (tmp_path / "README.md").write_text(
            "| rule | checks |\n|---|---|\n| RPR001 | clocks |\n"
        )
        findings = check_rule_docs(
            root=tmp_path, rule_ids=("RPR001", "RPR101")
        )
        assert len(findings) == 1
        assert "'RPR101'" in findings[0].message
        assert "no row" in findings[0].message

    def test_stale_rule_row_flagged(self, tmp_path):
        (tmp_path / "EXPERIMENTS.md").write_text(
            "| RPR001 | clocks |\n| RPR777 | retired |\n"
        )
        findings = check_rule_docs(root=tmp_path, rule_ids=("RPR001",))
        assert len(findings) == 1
        assert "'RPR777'" in findings[0].message
        assert findings[0].line == 2

    def test_docs_without_rule_tables_skipped(self, tmp_path):
        (tmp_path / "README.md").write_text("no tables here\n")
        assert check_rule_docs(root=tmp_path, rule_ids=("RPR001",)) == []

    def test_live_docs_cover_every_rule(self):
        assert check_rule_docs() == []


class TestCli:
    def test_lint_findings_exit_1(self, tmp_path, capsys):
        target = tmp_path / "cache" / "mod.py"
        target.parent.mkdir()
        target.write_text("import time\nt = time.time()\n")
        assert main(["lint", str(target), "--ignore", "RPR005"]) == 1
        out = capsys.readouterr().out
        assert "RPR001" in out

    def test_lint_json_output(self, tmp_path, capsys):
        target = tmp_path / "mod.py"
        target.write_text("import time\nt = time.time()\n")
        code = main(
            ["lint", str(target), "--format", "json", "--ignore", "RPR005"]
        )
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == JSON_REPORT_VERSION
        assert payload["counts"] == {"RPR001": 1}

    def test_lint_clean_exit_0(self, tmp_path, capsys):
        target = tmp_path / "mod.py"
        target.write_text("x = 1\n")
        assert main(["lint", str(target), "--ignore", "RPR005"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_lint_missing_path_clean_error(self, tmp_path, capsys):
        assert main(["lint", str(tmp_path / "nope.py")]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "no such file" in err

    def test_lint_non_utf8_clean_error(self, tmp_path, capsys):
        target = tmp_path / "bad.py"
        target.write_bytes(b"x = 1\n\xff\n")
        assert main(["lint", str(target)]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "UTF-8" in err

    def test_lint_unknown_rule_clean_error(self, tmp_path, capsys):
        target = tmp_path / "mod.py"
        target.write_text("x = 1\n")
        assert main(["lint", str(target), "--select", "RPR999"]) == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_lint_select_filters(self, tmp_path, capsys):
        target = tmp_path / "mod.py"
        target.write_text("import time\nt = time.time()\n")
        assert main(["lint", str(target), "--select", "RPR002"]) == 0
        capsys.readouterr()


class TestShippedTreeIsClean:
    def test_lint_src_repro_exits_0(self, capsys):
        """The CI invariant: the shipped tree has zero findings."""
        pkg_dir = Path(repro.__file__).parent
        assert main(["lint", str(pkg_dir)]) == 0
        out = capsys.readouterr().out
        assert "clean: 0 findings" in out
