"""Tests for the whole-program effect analysis (call graph, effect
inference, RPR101–103) and the parallel lint runner.

Fixture trees are written under ``tmp_path/repro/...`` because the
interprocedural rules anchor their focus patterns on the package
directory — a fixture outside a ``repro`` tree is deliberately out of
scope for them (that anchoring is itself asserted below).
"""

import json
import textwrap
from pathlib import Path

import pytest

from repro.analysis.lint import LintConfig, format_json, format_text, lint_paths
from repro.analysis.lint.callgraph import (
    CallGraph,
    extract_module,
    module_name_for,
)
from repro.analysis.lint.effects import (
    EFFECT_MAP_VERSION,
    EffectAnalysis,
    build_effect_map,
)
from repro.analysis.lint.framework import SourceModule
from repro.analysis.lint.iprules import CommitProtocol, CommitOrderRule
from repro.cli import main
from repro.errors import LintError

NO_DRIFT = LintConfig(ignore=frozenset({"RPR005"}))


def write_tree(tmp_path, files):
    """Write ``{relpath: source}`` fixtures; returns the tree root."""
    for relpath, source in files.items():
        target = tmp_path / relpath
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(source), encoding="utf-8")
    return tmp_path


def build_graph(tmp_path, files, **kwargs):
    root = write_tree(tmp_path, files)
    summaries = [
        extract_module(SourceModule.load(p))
        for p in sorted(root.rglob("*.py"))
    ]
    graph = CallGraph(summaries, **kwargs)
    return graph, EffectAnalysis(graph)


def rule_ids(result):
    return [f.rule for f in result.findings]


# --------------------------------------------------------------------- #
# call-graph construction


class TestModuleNames:
    def test_repro_anchored(self):
        assert (
            module_name_for("src/repro/cache/lru.py") == "repro.cache.lru"
        )
        assert (
            module_name_for("/abs/tmp/repro/core/x.py") == "repro.core.x"
        )

    def test_init_drops_segment(self):
        assert module_name_for("src/repro/cache/__init__.py") == "repro.cache"

    def test_non_package_path_keeps_relative_shape(self):
        assert module_name_for("scripts/tool.py") == "scripts.tool"


class TestCallGraphEdges:
    def test_direct_call_chain(self, tmp_path):
        graph, analysis = build_graph(
            tmp_path,
            {
                "repro/core/a.py": """\
                import time
                def leaf():
                    return time.time()
                def root():
                    return leaf()
                """,
            },
        )
        assert analysis.effect_names("repro.core.a.root") == ("wall_clock",)

    def test_cross_module_call(self, tmp_path):
        graph, analysis = build_graph(
            tmp_path,
            {
                "repro/core/util.py": """\
                import time
                def now():
                    return time.time()
                """,
                "repro/core/plan.py": """\
                from repro.core.util import now
                def plan():
                    return now()
                """,
            },
        )
        assert analysis.effect_names("repro.core.plan.plan") == ("wall_clock",)

    def test_decorated_function_gets_decorator_edge(self, tmp_path):
        graph, analysis = build_graph(
            tmp_path,
            {
                "repro/core/a.py": """\
                import time
                def stamp(fn):
                    time.time()
                    return fn
                @stamp
                def decorated():
                    return 1
                """,
            },
        )
        assert "wall_clock" in analysis.effect_names("repro.core.a.decorated")

    def test_closure_effects_fold_into_parent(self, tmp_path):
        graph, analysis = build_graph(
            tmp_path,
            {
                "repro/core/a.py": """\
                import time
                def outer():
                    def inner():
                        return time.time()
                    return inner
                """,
            },
        )
        assert "wall_clock" in analysis.effect_names("repro.core.a.outer")

    def test_lambda_body_walked_inline(self, tmp_path):
        graph, analysis = build_graph(
            tmp_path,
            {
                "repro/core/a.py": """\
                import time
                def holder():
                    f = lambda: time.time()
                    return f
                """,
            },
        )
        assert "wall_clock" in analysis.effect_names("repro.core.a.holder")

    def test_functools_partial_charges_target(self, tmp_path):
        graph, analysis = build_graph(
            tmp_path,
            {
                "repro/core/a.py": """\
                import functools
                import time
                def slow(x):
                    time.sleep(x)
                def build():
                    return functools.partial(slow, 3)
                """,
            },
        )
        assert "sleep" in analysis.effect_names("repro.core.a.build")

    def test_method_call_via_annotated_receiver(self, tmp_path):
        graph, analysis = build_graph(
            tmp_path,
            {
                "repro/core/a.py": """\
                import time
                class Clock:
                    def read(self):
                        return time.time()
                def use(c: Clock):
                    return c.read()
                """,
            },
        )
        assert analysis.effect_names("repro.core.a.use") == ("wall_clock",)

    def test_virtual_dispatch_reaches_subclass_override(self, tmp_path):
        graph, analysis = build_graph(
            tmp_path,
            {
                "repro/cache/base.py": """\
                class Policy:
                    def on_request(self, job):
                        return None
                """,
                "repro/cache/noisy.py": """\
                import random
                from repro.cache.base import Policy
                class NoisyPolicy(Policy):
                    def on_request(self, job):
                        return random.random()
                """,
                "repro/sim/drive.py": """\
                from repro.cache.base import Policy
                def drive(policy: Policy, job):
                    return policy.on_request(job)
                """,
            },
        )
        # the base-typed call site must also reach the override's effect
        assert "rng" in analysis.effect_names("repro.sim.drive.drive")

    def test_edge_hints_wire_registry_dispatch(self, tmp_path):
        files = {
            "repro/cache/impl.py": """\
            import random
            class Impl:
                def __init__(self):
                    self.r = random.random()
            """,
            "repro/cache/registry.py": """\
            REGISTRY = {}
            def make(name):
                cls = REGISTRY[name]
                return cls()
            """,
        }
        hints = {"repro.cache.registry.make": ("repro.cache.*.__init__",)}
        graph, analysis = build_graph(tmp_path, files, edge_hints=hints)
        assert "rng" in analysis.effect_names("repro.cache.registry.make")
        # without hints the dynamic cls() cannot be followed
        graph2, analysis2 = build_graph(
            tmp_path / "second", files, edge_hints={}
        )
        assert analysis2.effect_names("repro.cache.registry.make") == ()

    def test_dynamic_calls_degrade_to_warning_never_crash(self, tmp_path):
        graph, analysis = build_graph(
            tmp_path,
            {
                "repro/core/a.py": """\
                HANDLERS = {}
                def run(name, fn):
                    HANDLERS[name]()
                    getattr(fn, "go")()
                    fn()
                """,
            },
        )
        reasons = {u.reason for u in graph.unresolved}
        assert len(graph.unresolved) >= 3
        assert "dynamic callee expression" in reasons
        assert "call through a function-valued local" in reasons

    def test_executor_hop_cuts_the_edge(self, tmp_path):
        graph, analysis = build_graph(
            tmp_path,
            {
                "repro/service/bg.py": """\
                import asyncio
                import time
                def blocking():
                    time.sleep(5)
                async def handler():
                    await asyncio.to_thread(blocking)
                """,
            },
        )
        assert (
            analysis.effect_names("repro.service.bg.handler") == ()
        )


# --------------------------------------------------------------------- #
# the interprocedural rules, end to end through lint_paths


class TestPurityContracts:
    def test_seeded_violation_has_witness_chain(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "repro/core/planner.py": """\
                import time
                def _now():
                    return time.time()
                def plan(jobs):
                    return [_now() for _ in jobs]
                """,
            },
        )
        result = lint_paths([tmp_path], NO_DRIFT)
        purity = [f for f in result.findings if f.rule == "RPR101"]
        assert purity, rule_ids(result)
        flagged = next(f for f in purity if "'plan'" in f.message)
        assert "wall_clock" in flagged.message
        # the witness walks root → helper → effect site
        assert len(flagged.witness) == 2
        assert "calls _now" in flagged.witness[0]
        assert "time.time()" in flagged.witness[1]

    def test_clean_pure_tree(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "repro/core/planner.py": """\
                def plan(jobs):
                    return sorted(jobs)
                """,
            },
        )
        result = lint_paths([tmp_path], NO_DRIFT)
        assert rule_ids(result) == []

    def test_fixture_outside_repro_tree_not_a_pure_root(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "cache/mod.py": """\
                import random
                def helper():
                    return random.random()
                def root():
                    return helper()
                """,
            },
        )
        result = lint_paths([tmp_path], NO_DRIFT)
        # RPR002 still fires file-locally; RPR101 must not adopt the dir
        assert "RPR101" not in rule_ids(result)

    def test_allowlisted_origin_is_sanctioned(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "repro/telemetry/probe.py": """\
                import time
                def span_time():
                    return time.perf_counter()
                """,
                "repro/core/planner.py": """\
                from repro.telemetry.probe import span_time
                def plan(jobs):
                    span_time()
                    return jobs
                """,
            },
        )
        config = LintConfig(
            ignore=frozenset({"RPR005", "RPR001"}),
            allow={"RPR001": ("*",)},
        )
        result = lint_paths([tmp_path], config)
        assert "RPR101" not in rule_ids(result)

    def test_rng_reachable_from_policy_flagged(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "repro/cache/policy_x.py": """\
                import random
                class TiePolicy:
                    def score(self, item):
                        return random.random()
                """,
            },
        )
        result = lint_paths([tmp_path], NO_DRIFT)
        assert "RPR101" in rule_ids(result)


class TestAsyncSafety:
    def test_blocking_sleep_in_async_handler(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "repro/service/handlers.py": """\
                import time
                def _work():
                    time.sleep(1)
                async def handle(req):
                    _work()
                    return req
                """,
            },
        )
        result = lint_paths([tmp_path], NO_DRIFT)
        async_findings = [f for f in result.findings if f.rule == "RPR102"]
        assert len(async_findings) == 1
        finding = async_findings[0]
        assert "'handle'" in finding.message
        assert "sleep" in finding.message
        assert any("time.sleep()" in hop for hop in finding.witness)

    def test_sync_function_in_service_not_flagged(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "repro/service/sync.py": """\
                import time
                def blocking_is_fine_here():
                    time.sleep(1)
                """,
            },
        )
        result = lint_paths([tmp_path], NO_DRIFT)
        assert "RPR102" not in rule_ids(result)

    def test_executor_hop_is_clean(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "repro/service/bg.py": """\
                import asyncio
                import time
                def blocking():
                    time.sleep(5)
                async def handler():
                    await asyncio.to_thread(blocking)
                """,
            },
        )
        result = lint_paths([tmp_path], NO_DRIFT)
        assert "RPR102" not in rule_ids(result)


COMMIT_FIXTURE_OK = """\
def write_checkpoint(frame):
    pass
def run(core, journal, frames):
    for frame in frames:
        core.submit(frame)
        journal.append(frame)
        write_checkpoint(frame)
"""

COMMIT_FIXTURE_REORDERED = """\
def write_checkpoint(frame):
    pass
def run(core, journal, frame):
    core.submit(frame)
    write_checkpoint(frame)
    journal.append(frame)
"""


class TestCommitOrder:
    def test_reordered_commit_flagged_with_witness(self, tmp_path):
        write_tree(
            tmp_path,
            {"repro/durability/writer.py": COMMIT_FIXTURE_REORDERED},
        )
        result = lint_paths([tmp_path], NO_DRIFT)
        order = [f for f in result.findings if f.rule == "RPR103"]
        assert len(order) == 1
        finding = order[0]
        assert "journal-frame" in finding.message
        assert "checkpoint" in finding.message
        assert finding.line == 6  # anchored at the out-of-order call
        assert any("out of order" in hop for hop in finding.witness)

    def test_protocol_order_clean(self, tmp_path):
        write_tree(
            tmp_path,
            {"repro/durability/writer.py": COMMIT_FIXTURE_OK},
        )
        result = lint_paths([tmp_path], NO_DRIFT)
        assert "RPR103" not in rule_ids(result)

    def test_loop_body_is_its_own_region(self, tmp_path):
        # checkpoint at the end of one iteration precedes the next
        # iteration's trace op in line order — legal, the protocol
        # restarts per iteration, and a post-loop flush is equally fine
        write_tree(
            tmp_path,
            {
                "repro/durability/writer.py": """\
                def write_checkpoint(frame):
                    pass
                def run(core, journal, frames, sink):
                    sink.prepare()
                    for frame in frames:
                        core.submit(frame)
                        journal.append(frame)
                        write_checkpoint(frame)
                    sink.flush()
                """,
            },
        )
        result = lint_paths([tmp_path], NO_DRIFT)
        assert "RPR103" not in rule_ids(result)

    def test_transitive_stage_through_helper(self, tmp_path):
        # the checkpoint happens inside a helper; calling the helper
        # before the journal append is still a protocol violation
        write_tree(
            tmp_path,
            {
                "repro/durability/writer.py": """\
                def write_checkpoint(frame):
                    pass
                def _finish(frame):
                    write_checkpoint(frame)
                def run(core, journal, frame):
                    core.submit(frame)
                    _finish(frame)
                    journal.append(frame)
                """,
            },
        )
        result = lint_paths([tmp_path], NO_DRIFT)
        order = [f for f in result.findings if f.rule == "RPR103"]
        assert len(order) == 1
        assert "transitively reaches" not in order[0].message or True
        assert "journal-frame" in order[0].message

    def test_injectable_protocol(self, tmp_path):
        protocol = CommitProtocol(
            stages=(
                ("alpha", ("*do_alpha",)),
                ("beta", ("*do_beta",)),
            )
        )
        write_tree(
            tmp_path,
            {
                "repro/durability/custom.py": """\
                def go(x):
                    x.do_beta()
                    x.do_alpha()
                """,
            },
        )
        result = lint_paths(
            [tmp_path],
            NO_DRIFT,
            ip_rules=(CommitOrderRule(protocol),),
        )
        order = [f for f in result.findings if f.rule == "RPR103"]
        assert len(order) == 1
        assert "'alpha'" in order[0].message


# --------------------------------------------------------------------- #
# suppressions and RPR900 interplay


class TestSuppressionInterplay:
    def test_justified_suppression_silences_rpr101(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "repro/core/a.py": """\
                import time
                # repro: allow[RPR101, RPR001] documented tie-break clock
                def stamp():
                    return time.time()
                """,
            },
        )
        config = LintConfig(ignore=frozenset({"RPR005", "RPR001"}))
        result = lint_paths([tmp_path], config)
        assert "RPR101" not in rule_ids(result)
        assert result.suppressed >= 1

    def test_bare_suppression_of_new_rule_is_rpr900(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "repro/core/a.py": """\
                import time
                # repro: allow[RPR101, RPR001]
                def stamp():
                    return time.time()
                """,
            },
        )
        config = LintConfig(ignore=frozenset({"RPR005", "RPR001"}))
        result = lint_paths([tmp_path], config)
        assert rule_ids(result) == ["RPR900"]

    def test_unknown_rule_id_still_rejected(self):
        with pytest.raises(LintError):
            LintConfig(select=frozenset({"RPR101", "RPR999"}))


# --------------------------------------------------------------------- #
# parallel runner


PARALLEL_TREE = {
    "repro/core/planner.py": """\
    import time
    def plan(jobs):
        return time.time()
    """,
    "repro/service/handlers.py": """\
    import time
    async def handle(req):
        time.sleep(1)
    """,
    "repro/durability/writer.py": COMMIT_FIXTURE_REORDERED,
    "repro/cache/clean.py": """\
    def untouched(x):
        return x
    """,
}


class TestParallelRunner:
    def test_parallel_output_identical_to_serial(self, tmp_path):
        write_tree(tmp_path, PARALLEL_TREE)
        serial = lint_paths([tmp_path], NO_DRIFT, jobs=1)
        parallel = lint_paths([tmp_path], NO_DRIFT, jobs=3)
        assert serial.findings == parallel.findings
        assert serial.suppressed == parallel.suppressed
        assert serial.files_checked == parallel.files_checked
        assert format_text(
            serial.findings, files_checked=serial.files_checked
        ) == format_text(
            parallel.findings, files_checked=parallel.files_checked
        )

    def test_invalid_jobs_rejected(self, tmp_path):
        write_tree(tmp_path, {"repro/core/a.py": "x = 1\n"})
        with pytest.raises(LintError):
            lint_paths([tmp_path], NO_DRIFT, jobs=0)


# --------------------------------------------------------------------- #
# the effect map and reporting


class TestEffectMap:
    def test_versioned_shape(self, tmp_path):
        write_tree(tmp_path, PARALLEL_TREE)
        result = lint_paths([tmp_path], NO_DRIFT, collect_effects=True)
        doc = result.effect_map
        assert doc is not None
        assert doc["version"] == EFFECT_MAP_VERSION
        plan = doc["functions"]["repro.core.planner.plan"]
        assert plan["effects"] == ["wall_clock"]
        assert plan["origins"][0]["call"] == "time.time()"
        handle = doc["functions"]["repro.service.handlers.handle"]
        assert handle["async"] is True
        assert "sleep" in handle["effects"]

    def test_map_json_serialisable_and_deterministic(self, tmp_path):
        write_tree(tmp_path, PARALLEL_TREE)
        first = lint_paths([tmp_path], NO_DRIFT, collect_effects=True)
        second = lint_paths([tmp_path], NO_DRIFT, collect_effects=True, jobs=2)
        assert json.dumps(first.effect_map) == json.dumps(second.effect_map)

    def test_unresolved_calls_surface_in_map(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "repro/core/dyn.py": """\
                TABLE = {}
                def run(name):
                    TABLE[name]()
                """,
            },
        )
        result = lint_paths([tmp_path], NO_DRIFT, collect_effects=True)
        unresolved = result.effect_map["unresolved"]
        assert any(u["call"] == "TABLE[name]" for u in unresolved)

    def test_no_map_unless_requested(self, tmp_path):
        write_tree(tmp_path, {"repro/core/a.py": "x = 1\n"})
        result = lint_paths([tmp_path], NO_DRIFT)
        assert result.effect_map is None


class TestWitnessReporting:
    def _result(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "repro/core/planner.py": """\
                import time
                def _now():
                    return time.time()
                def plan(jobs):
                    return _now()
                """,
            },
        )
        config = LintConfig(ignore=frozenset({"RPR005", "RPR001"}))
        return lint_paths([tmp_path], config)

    def test_text_report_renders_chain(self, tmp_path):
        result = self._result(tmp_path)
        text = format_text(
            result.findings, files_checked=result.files_checked
        )
        assert "witness:" in text
        assert "calls _now" in text
        assert "time.time()" in text

    def test_json_report_carries_witness_key(self, tmp_path):
        result = self._result(tmp_path)
        doc = json.loads(
            format_json(result.findings, files_checked=result.files_checked)
        )
        flagged = [f for f in doc["findings"] if f["rule"] == "RPR101"]
        assert flagged
        chain = next(
            f["witness"] for f in flagged if "'plan'" in f["message"]
        )
        assert len(chain) == 2
        # file-local findings must keep the exact version-1 key set
        for f in doc["findings"]:
            if f["rule"] != "RPR101":
                assert "witness" not in f


# --------------------------------------------------------------------- #
# CLI integration


class TestCli:
    def test_jobs_and_effects_flags(self, tmp_path, capsys):
        write_tree(tmp_path, {"repro/core/a.py": "def f(x):\n    return x\n"})
        out = tmp_path / "effects.json"
        code = main(
            [
                "lint",
                str(tmp_path),
                "--ignore",
                "RPR005",
                "--jobs",
                "2",
                "--effects",
                str(out),
            ]
        )
        assert code in (0, None)
        doc = json.loads(out.read_text())
        assert doc["version"] == EFFECT_MAP_VERSION
        assert "repro.core.a.f" in doc["functions"]

    def test_violation_exit_code_with_effects(self, tmp_path, capsys):
        write_tree(
            tmp_path,
            {
                "repro/service/h.py": """\
                import time
                async def handle(req):
                    time.sleep(1)
                """,
            },
        )
        out = tmp_path / "effects.json"
        code = main(
            ["lint", str(tmp_path), "--ignore", "RPR005",
             "--effects", str(out)]
        )
        assert code == 1
        captured = capsys.readouterr()
        assert "RPR102" in captured.out
        assert "witness:" in captured.out
        assert out.exists()  # the map is written even on findings
