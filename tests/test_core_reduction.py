"""Unit tests for the DKS <-> FBC reduction."""

import networkx as nx
import pytest

from repro.core.exact import solve_exact
from repro.core.reduction import (
    count_induced_edges,
    dks_to_fbc,
    fbc_files_to_dks_vertices,
)
from repro.errors import ConfigError


def test_encoding_shape():
    inst = dks_to_fbc([(1, 2), (2, 3)], k=2)
    assert len(inst.bundles) == 2
    assert all(len(b) == 2 for b in inst.bundles)
    assert all(v == 1.0 for v in inst.values)
    assert all(s == 1 for s in inst.sizes.values())
    assert inst.budget == 2


def test_self_loop_rejected():
    with pytest.raises(ConfigError):
        dks_to_fbc([(1, 1)], k=2)


def test_negative_k_rejected():
    with pytest.raises(ConfigError):
        dks_to_fbc([(1, 2)], k=-1)


def test_parallel_edges_collapse():
    inst = dks_to_fbc([(1, 2), (2, 1)], k=2)
    assert len(inst.bundles) == 1


def test_decode_vertices():
    assert fbc_files_to_dks_vertices(["v:1", "v:x"]) == {"1", "x"}


def test_decode_rejects_foreign_files():
    with pytest.raises(ConfigError):
        fbc_files_to_dks_vertices(["nope"])


def test_count_induced_edges():
    edges = [(1, 2), (2, 3), (3, 1), (3, 4)]
    assert count_induced_edges(edges, {1, 2, 3}) == 3
    assert count_induced_edges(edges, {1, 4}) == 0


def test_exact_fbc_solves_dks_triangle():
    # K4 minus one edge; densest 3-subgraph is the triangle (3 edges).
    g = nx.Graph([(0, 1), (1, 2), (2, 0), (2, 3), (1, 3)])
    inst = dks_to_fbc(g.edges(), k=3)
    sel = solve_exact(inst)
    vertices = fbc_files_to_dks_vertices(sel.files)
    assert len(vertices) <= 3
    assert sel.total_value == count_induced_edges(
        [(str(a), str(b)) for a, b in g.edges()], vertices
    )
    assert sel.total_value == 3.0


def test_exact_fbc_matches_networkx_enumeration():
    import itertools

    g = nx.gnp_random_graph(7, 0.5, seed=4)
    k = 4
    best = max(
        g.subgraph(vs).number_of_edges()
        for vs in itertools.combinations(g.nodes(), k)
    )
    inst = dks_to_fbc(g.edges(), k=k)
    sel = solve_exact(inst)
    assert sel.total_value == best
