"""Unit tests for size parsing/formatting."""

import pytest

from repro.errors import ConfigError
from repro.types import GB, KB, MB, TB
from repro.utils.units import format_size, parse_size


class TestParseSize:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("1", 1),
            ("512B", 512),
            ("1KB", KB),
            ("1kb", KB),
            ("1KiB", KB),
            ("1MB", MB),
            ("2.5MB", int(2.5 * MB)),
            ("1 GB", GB),
            ("1TB", TB),
            ("0.5kb", 512),
        ],
    )
    def test_valid(self, text, expected):
        assert parse_size(text) == expected

    def test_numeric_passthrough(self):
        assert parse_size(1234) == 1234
        assert parse_size(10.6) == 11

    @pytest.mark.parametrize("text", ["", "abc", "1XB", "-3MB", "MB"])
    def test_invalid(self, text):
        with pytest.raises(ConfigError):
            parse_size(text)

    def test_zero_rejected(self):
        with pytest.raises(ConfigError):
            parse_size("0")
        with pytest.raises(ConfigError):
            parse_size(0)


class TestFormatSize:
    @pytest.mark.parametrize(
        "size,expected",
        [
            (0, "0B"),
            (512, "512B"),
            (KB, "1.0KB"),
            (int(1.5 * KB), "1.5KB"),
            (MB, "1.0MB"),
            (GB, "1.0GB"),
            (TB, "1.0TB"),
        ],
    )
    def test_format(self, size, expected):
        assert format_size(size) == expected

    def test_precision(self):
        assert format_size(int(1.25 * MB), precision=2) == "1.25MB"

    def test_negative_rejected(self):
        with pytest.raises(ConfigError):
            format_size(-1)

    def test_roundtrip(self):
        for size in (1, 1536, 3 * MB, 7 * GB):
            assert parse_size(format_size(size, precision=6)) == pytest.approx(
                size, rel=1e-5
            )
