"""Unit tests for the exact FBC solvers."""

import itertools

import pytest

from repro.core.bundle import FileBundle
from repro.core.exact import MAX_EXACT_CANDIDATES, solve_exact, solve_knapsack_dp
from repro.core.optcacheselect import FBCInstance
from repro.errors import SolverError


def inst(bundles, values, sizes, budget):
    return FBCInstance(
        bundles=tuple(FileBundle(b) for b in bundles),
        values=tuple(float(v) for v in values),
        sizes=sizes,
        budget=budget,
    )


def brute_force_value(i: FBCInstance) -> float:
    best = 0.0
    n = len(i.bundles)
    for mask in itertools.product([0, 1], repeat=n):
        files = set()
        for k in range(n):
            if mask[k]:
                files |= i.bundles[k].files
        if sum(i.sizes[f] for f in files) <= i.budget:
            best = max(best, sum(i.values[k] for k in range(n) if mask[k]))
    return best


class TestSolveExact:
    def test_empty(self):
        sel = solve_exact(inst([], [], {}, 10))
        assert sel.total_value == 0.0

    def test_worked_example(self, example_instance):
        sel = solve_exact(example_instance)
        assert sel.total_value == 3.0
        assert sorted(sel.files) == ["f1", "f3", "f5"]

    def test_matches_brute_force_on_small_instances(self):
        import numpy as np

        rng = np.random.default_rng(3)
        for _ in range(25):
            n_files = int(rng.integers(3, 8))
            sizes = {f"f{i}": int(rng.integers(1, 10)) for i in range(n_files)}
            n_req = int(rng.integers(1, 7))
            bundles = []
            values = []
            for _ in range(n_req):
                k = int(rng.integers(1, min(3, n_files) + 1))
                fs = rng.choice(n_files, size=k, replace=False)
                bundles.append([f"f{i}" for i in fs])
                values.append(int(rng.integers(1, 9)))
            i = inst(bundles, values, sizes, int(rng.integers(1, 25)))
            assert solve_exact(i).total_value == pytest.approx(
                brute_force_value(i)
            )

    def test_solution_fits_budget(self):
        i = inst([["a", "b"], ["b", "c"]], [5, 5], {"a": 3, "b": 3, "c": 3}, 6)
        sel = solve_exact(i)
        assert sel.used_bytes <= 6

    def test_shared_files_counted_once(self):
        i = inst([["a", "b"], ["a", "c"]], [1, 1], {"a": 8, "b": 1, "c": 1}, 10)
        assert solve_exact(i).total_value == 2.0

    def test_too_large_rejected(self):
        n = MAX_EXACT_CANDIDATES + 1
        i = inst(
            [[f"f{k}"] for k in range(n)],
            [1] * n,
            {f"f{k}": 1 for k in range(n)},
            5,
        )
        with pytest.raises(SolverError):
            solve_exact(i)


class TestKnapsackDP:
    def test_disjoint_equals_exact(self):
        i = inst(
            [["a"], ["b"], ["c", "d"]],
            [6, 10, 12],
            {"a": 1, "b": 2, "c": 1, "d": 2},
            4,
        )
        assert solve_knapsack_dp(i).total_value == solve_exact(i).total_value

    def test_shared_file_rejected(self):
        i = inst([["a"], ["a", "b"]], [1, 1], {"a": 1, "b": 1}, 2)
        with pytest.raises(SolverError, match="shared"):
            solve_knapsack_dp(i)

    def test_classic_knapsack(self):
        # weights 1,3,4,5 / values 1,4,5,7 / capacity 7 -> best 9 (w3+w4)
        i = inst(
            [["w1"], ["w2"], ["w3"], ["w4"]],
            [1, 4, 5, 7],
            {"w1": 1, "w2": 3, "w3": 4, "w4": 5},
            7,
        )
        sel = solve_knapsack_dp(i)
        assert sel.total_value == 9.0

    def test_scaling_stays_feasible(self):
        i = inst(
            [["a"], ["b"]],
            [5, 5],
            {"a": 1000, "b": 1001},
            1500,
        )
        sel = solve_knapsack_dp(i, scale=100)
        assert sel.used_bytes <= 1500
        assert sel.total_value == 5.0

    def test_bad_scale_rejected(self):
        i = inst([["a"]], [1], {"a": 1}, 1)
        with pytest.raises(SolverError):
            solve_knapsack_dp(i, scale=0)

    def test_empty(self):
        assert solve_knapsack_dp(inst([], [], {}, 5)).total_value == 0.0
