"""Unit tests for request-pool generation."""

import pytest

from repro.errors import WorkloadError
from repro.types import FileCatalog
from repro.utils.rng import derive_rng
from repro.workload.requestpool import generate_request_pool


def catalog(n=20, size=10):
    return FileCatalog({f"f{i}": size for i in range(n)})


class TestGeneratePool:
    def test_count(self):
        pool = generate_request_pool(
            catalog(), 15, derive_rng(0, "p"), max_bundle_bytes=50
        )
        assert len(pool) == 15

    def test_bundle_byte_cap_respected(self):
        pool = generate_request_pool(
            catalog(), 30, derive_rng(1, "p"), max_bundle_bytes=35
        )
        sizes = catalog().as_dict()
        for b in pool:
            assert b.size_under(sizes) <= 35

    def test_file_count_range_respected(self):
        pool = generate_request_pool(
            catalog(),
            30,
            derive_rng(2, "p"),
            max_bundle_bytes=1000,
            files_per_request=(2, 4),
        )
        assert all(2 <= len(b) <= 4 for b in pool)

    def test_distinct_bundles(self):
        pool = generate_request_pool(
            catalog(),
            50,
            derive_rng(3, "p"),
            max_bundle_bytes=1000,
            files_per_request=(1, 3),
        )
        assert len(set(pool)) == 50

    def test_duplicates_allowed_when_disabled(self):
        # 3 files, singleton bundles, 10 requests: duplicates inevitable.
        pool = generate_request_pool(
            catalog(3),
            10,
            derive_rng(4, "p"),
            max_bundle_bytes=10,
            files_per_request=(1, 1),
            distinct=False,
        )
        assert len(pool) == 10

    def test_impossible_distinct_raises(self):
        with pytest.raises(WorkloadError, match="attempts"):
            generate_request_pool(
                catalog(2),
                10,
                derive_rng(5, "p"),
                max_bundle_bytes=10,
                files_per_request=(1, 1),
            )

    def test_all_files_too_big_raises(self):
        with pytest.raises(WorkloadError, match="larger"):
            generate_request_pool(
                catalog(5, size=100),
                3,
                derive_rng(6, "p"),
                max_bundle_bytes=50,
            )

    def test_bad_params_rejected(self):
        with pytest.raises(WorkloadError):
            generate_request_pool(
                catalog(), 0, derive_rng(0, "p"), max_bundle_bytes=10
            )
        with pytest.raises(WorkloadError):
            generate_request_pool(
                catalog(),
                5,
                derive_rng(0, "p"),
                max_bundle_bytes=10,
                files_per_request=(3, 2),
            )
        with pytest.raises(WorkloadError):
            generate_request_pool(
                catalog(), 5, derive_rng(0, "p"), max_bundle_bytes=0
            )

    def test_deterministic(self):
        a = generate_request_pool(
            catalog(), 10, derive_rng(9, "p"), max_bundle_bytes=50
        )
        b = generate_request_pool(
            catalog(), 10, derive_rng(9, "p"), max_bundle_bytes=50
        )
        assert a == b
