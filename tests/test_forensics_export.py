"""Chrome trace-event export: schema, timestamps, track mapping."""

import json

import pytest

from repro.core.bundle import FileBundle
from repro.errors import TelemetryError
from repro.core.request import Request, RequestStream
from repro.faults import FaultSpec
from repro.grid.srm import SRMConfig, run_timed_simulation
from repro.sim.simulator import SimulationConfig, simulate_trace
from repro.sim.timeseries import byte_miss_timeseries
from repro.telemetry import JsonlSink, TraceRecorder, use_recorder
from repro.telemetry.forensics import TraceLog, export_chrome, to_chrome_trace
from repro.types import FileCatalog
from repro.workload.generator import WorkloadSpec, generate_trace
from repro.workload.trace import Trace

SPEC = WorkloadSpec(
    cache_size=200_000_000,
    n_files=80,
    n_request_types=60,
    n_jobs=100,
    popularity="zipf",
    max_file_fraction=0.05,
    max_bundle_fraction=0.25,
    seed=5,
)

REQUIRED_KEYS = {"name", "ph", "ts", "pid", "tid"}


@pytest.fixture(scope="module")
def untimed_doc(tmp_path_factory):
    workload = generate_trace(SPEC)
    path = tmp_path_factory.mktemp("chrome") / "run.jsonl"
    with TraceRecorder(JsonlSink(path)) as rec:
        with use_recorder(rec):
            simulate_trace(
                workload,
                SimulationConfig(cache_size=SPEC.cache_size, policy="landlord"),
                recorder=rec,
            )
            byte_miss_timeseries(
                workload,
                SimulationConfig(cache_size=SPEC.cache_size, policy="lru"),
                window=20,
            )
    return to_chrome_trace(TraceLog.load(path))


@pytest.fixture(scope="module")
def timed_doc(tmp_path_factory):
    sizes = {f"f{i}": 100 for i in range(6)}
    bundles = [["f0"], ["f0", "f1"], ["f2"], ["f0", "f3"], ["f1"], ["f4", "f5"]]
    trace = Trace(
        FileCatalog(sizes),
        RequestStream(
            Request(i, FileBundle(b), arrival_time=i * 3.0)
            for i, b in enumerate(bundles)
        ),
    )
    cfg = SRMConfig(
        cache_size=300,
        policy="lru",
        backoff_jitter=0.0,
        staging_timeout=600.0,
        faults=FaultSpec.uniform(0.3, seed=7),
    )
    path = tmp_path_factory.mktemp("chrome") / "srm.jsonl"
    with TraceRecorder(JsonlSink(path)) as rec:
        run_timed_simulation(trace, cfg, recorder=rec)
    return to_chrome_trace(TraceLog.load(path)), TraceLog.load(path)


class TestChromeSchema:
    def test_document_shape_and_required_keys(self, untimed_doc):
        assert set(untimed_doc) >= {"traceEvents", "displayTimeUnit"}
        events = untimed_doc["traceEvents"]
        assert events
        for e in events:
            assert REQUIRED_KEYS <= set(e), e
            assert e["ph"] in {"X", "i", "b", "e", "C", "M"}

    def test_timestamps_monotone_non_decreasing(self, untimed_doc):
        tss = [e["ts"] for e in untimed_doc["traceEvents"]]
        assert all(b >= a for a, b in zip(tss, tss[1:]))

    def test_json_serializable_round_trip(self, untimed_doc):
        text = json.dumps(untimed_doc, sort_keys=True)
        assert json.loads(text) == untimed_doc

    def test_complete_events_have_duration(self, untimed_doc):
        jobs = [e for e in untimed_doc["traceEvents"] if e["ph"] == "X"]
        assert jobs
        assert all(e["dur"] >= 1.0 for e in jobs)
        assert all(e["cat"] == "job" for e in jobs)

    def test_counters_carry_window_metrics(self, untimed_doc):
        counters = [e for e in untimed_doc["traceEvents"] if e["ph"] == "C"]
        names = {e["name"] for e in counters}
        assert names == {"byte_miss_ratio", "request_hit_ratio"}
        assert all("value" in e["args"] for e in counters)

    def test_metadata_names_processes_and_tracks(self, untimed_doc):
        meta = [e for e in untimed_doc["traceEvents"] if e["ph"] == "M"]
        process_names = {
            e["args"]["name"] for e in meta if e["name"] == "process_name"
        }
        thread_names = {
            e["args"]["name"] for e in meta if e["name"] == "thread_name"
        }
        assert any("segment 0" in n for n in process_names)
        assert {"jobs", "cache", "staging", "faults", "metrics"} <= thread_names


class TestTimedExport:
    def test_async_staging_pairs_balance(self, timed_doc):
        doc, _ = timed_doc
        begins = [e for e in doc["traceEvents"] if e["ph"] == "b"]
        ends = [e for e in doc["traceEvents"] if e["ph"] == "e"]
        assert begins
        assert len(begins) == len(ends)
        assert sorted(e["id"] for e in begins) == sorted(e["id"] for e in ends)

    def test_timed_timestamps_track_simulated_time(self, timed_doc):
        doc, log = timed_doc
        begin_ts: dict[str, list[float]] = {}
        for e in doc["traceEvents"]:
            if e["ph"] == "b":
                begin_ts.setdefault(e["name"], []).append(e["ts"])
        started = [e for e in log if e.kind == "StageStarted"]
        assert started
        # a single-segment timed trace has offset 0: ts is exactly t * 1e6
        for ev in started:
            candidates = begin_ts[f"stage {ev.file}"]
            assert any(t == pytest.approx(ev.t * 1e6) for t in candidates)

    def test_monotone_even_with_faults(self, timed_doc):
        doc, _ = timed_doc
        tss = [e["ts"] for e in doc["traceEvents"]]
        assert all(b >= a for a, b in zip(tss, tss[1:]))


class TestExportChrome:
    def test_writes_valid_json_file(self, tmp_path):
        workload = generate_trace(SPEC)
        trace_path = tmp_path / "run.jsonl"
        with TraceRecorder(JsonlSink(trace_path)) as rec:
            with use_recorder(rec):
                simulate_trace(
                    workload,
                    SimulationConfig(cache_size=SPEC.cache_size, policy="lru"),
                    recorder=rec,
                )
        out = tmp_path / "run.chrome.json"
        n = export_chrome(trace_path, out)
        doc = json.loads(out.read_text())
        assert len(doc["traceEvents"]) == n > 0

    def test_unwritable_output_raises_clean_error(self, tmp_path):
        workload = generate_trace(SPEC)
        trace_path = tmp_path / "run.jsonl"
        with TraceRecorder(JsonlSink(trace_path)) as rec:
            with use_recorder(rec):
                simulate_trace(
                    workload,
                    SimulationConfig(cache_size=SPEC.cache_size, policy="lru"),
                    recorder=rec,
                )
        with pytest.raises(TelemetryError, match="cannot write Chrome trace"):
            export_chrome(trace_path, tmp_path / "no-such-dir" / "out.json")
