"""The fault-injection subsystem: spec validation and deterministic decisions."""

import pytest

from repro.errors import ConfigError, FaultInjectionError
from repro.faults import NO_FAULTS, FaultInjector, FaultSpec


class TestFaultSpec:
    def test_defaults_are_disabled(self):
        assert not FaultSpec().enabled
        assert not NO_FAULTS.enabled

    def test_any_rate_enables(self):
        assert FaultSpec(drive_failure_rate=0.1).enabled
        assert FaultSpec(transfer_failure_rate=0.1).enabled
        assert FaultSpec(latency_spike_rate=0.1).enabled
        assert FaultSpec(site_downtime_rate=0.1).enabled

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"seed": -1},
            {"drive_failure_rate": -0.1},
            {"drive_failure_rate": 1.5},
            {"transfer_failure_rate": 2.0},
            {"latency_spike_rate": -1.0},
            {"latency_spike_factor": 0.5},
            {"site_downtime_rate": 1.0},
            {"site_downtime_rate": -0.2},
            {"mean_downtime": 0.0},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            FaultSpec(**kwargs)

    def test_uniform_sets_every_class(self):
        spec = FaultSpec.uniform(0.2, seed=5)
        assert spec.drive_failure_rate == 0.2
        assert spec.transfer_failure_rate == 0.2
        assert spec.latency_spike_rate == 0.2
        assert spec.site_downtime_rate == 0.1
        assert spec.seed == 5
        with pytest.raises(ConfigError):
            FaultSpec.uniform(1.5)

    def test_mean_uptime_matches_down_fraction(self):
        spec = FaultSpec(site_downtime_rate=0.25, mean_downtime=100.0)
        # long-run down fraction = down / (down + up)
        frac = spec.mean_downtime / (spec.mean_downtime + spec.mean_uptime)
        assert frac == pytest.approx(0.25)
        assert FaultSpec().mean_uptime == float("inf")

    def test_with_seed(self):
        spec = FaultSpec.uniform(0.1, seed=1).with_seed(9)
        assert spec.seed == 9
        assert spec.drive_failure_rate == 0.1


class TestInjectorFastPaths:
    def test_zero_rates_never_fault(self):
        inj = FaultInjector(NO_FAULTS)
        for _ in range(50):
            assert inj.drive_fault("mss") is None
            assert inj.transfer_fault("link") is None
            assert inj.latency_spike("link") == 1.0
            assert not inj.is_down("site", 1e9)
        assert inj.counters() == {
            "drive_faults": 0,
            "transfer_faults": 0,
            "latency_spikes": 0,
        }
        # fast paths must not have materialised any rng streams
        assert not inj._streams

    def test_rate_one_always_faults(self):
        inj = FaultInjector(FaultSpec(drive_failure_rate=1.0))
        fractions = [inj.drive_fault("mss") for _ in range(20)]
        assert all(f is not None and 0.0 < f < 1.0 for f in fractions)
        assert inj.drive_faults == 20


class TestInjectorDeterminism:
    def test_same_spec_same_schedule(self):
        spec = FaultSpec.uniform(0.3, seed=42)
        a, b = FaultInjector(spec), FaultInjector(spec)
        seq_a = [
            (a.drive_fault("x"), a.transfer_fault("x"), a.latency_spike("x"))
            for _ in range(100)
        ]
        seq_b = [
            (b.drive_fault("x"), b.transfer_fault("x"), b.latency_spike("x"))
            for _ in range(100)
        ]
        assert seq_a == seq_b

    def test_different_seed_different_schedule(self):
        a = FaultInjector(FaultSpec.uniform(0.3, seed=1))
        b = FaultInjector(FaultSpec.uniform(0.3, seed=2))
        seq_a = [a.drive_fault("x") for _ in range(50)]
        seq_b = [b.drive_fault("x") for _ in range(50)]
        assert seq_a != seq_b

    def test_streams_are_independent_per_component(self):
        spec = FaultSpec.uniform(0.3, seed=7)
        solo = FaultInjector(spec)
        expected = [solo.transfer_fault("siteA") for _ in range(30)]

        mixed = FaultInjector(spec)
        for _ in range(17):  # drain unrelated streams first
            mixed.drive_fault("siteA")
            mixed.transfer_fault("siteB")
            mixed.latency_spike("siteA")
        got = [mixed.transfer_fault("siteA") for _ in range(30)]
        assert got == expected


class TestDowntimeWindows:
    SPEC = FaultSpec(site_downtime_rate=0.3, mean_downtime=50.0, seed=3)

    def test_windows_sorted_and_disjoint(self):
        inj = FaultInjector(self.SPEC)
        windows = inj.downtime_windows("s", 10_000.0)
        assert windows
        for (s0, e0), (s1, _e1) in zip(windows, windows[1:]):
            assert s0 < e0 <= s1

    def test_long_run_fraction_near_rate(self):
        inj = FaultInjector(self.SPEC)
        horizon = 200_000.0
        down = sum(
            min(end, horizon) - start
            for start, end in inj.downtime_windows("s", horizon)
            if start < horizon
        )
        assert 0.15 < down / horizon < 0.45

    def test_lazy_extension_consistent_with_fresh_query(self):
        lazy = FaultInjector(self.SPEC)
        fresh = FaultInjector(self.SPEC)
        probes = [10.0, 500.0, 499.0, 5_000.0, 4_000.0, 50_000.0]
        for t in probes:
            assert lazy.is_down("s", t) == FaultInjector(self.SPEC).is_down("s", t)
        assert lazy.downtime_windows("s", 5_000.0) == fresh.downtime_windows(
            "s", 5_000.0
        )

    def test_per_site_schedules_differ(self):
        inj = FaultInjector(self.SPEC)
        wa = inj.downtime_windows("a", 50_000.0)
        wb = inj.downtime_windows("b", 50_000.0)
        assert wa != wb

    def test_negative_time_rejected(self):
        inj = FaultInjector(self.SPEC)
        with pytest.raises(FaultInjectionError):
            inj.is_down("s", -1.0)

    def test_zero_rate_site_is_never_down(self):
        inj = FaultInjector(NO_FAULTS)
        assert inj.downtime_windows("s", 1e6) == []
