"""Unit tests for the service's minimal HTTP/1.1 framing."""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.errors import ServiceError
from repro.service.http import (
    MAX_BODY_BYTES,
    MAX_HEADER_BYTES,
    HttpRequest,
    error_response,
    json_response,
    read_request,
    read_response,
)


def _parse_request(data: bytes):
    async def go():
        reader = asyncio.StreamReader()
        reader.feed_data(data)
        reader.feed_eof()
        return await read_request(reader)

    return asyncio.run(go())


def _parse_response(data: bytes):
    async def go():
        reader = asyncio.StreamReader()
        reader.feed_data(data)
        reader.feed_eof()
        return await read_response(reader)

    return asyncio.run(go())


class TestReadRequest:
    def test_request_with_body(self):
        body = b'{"files":["f1"]}'
        raw = (
            b"POST /v1/jobs HTTP/1.1\r\nHost: x\r\n"
            + f"Content-Length: {len(body)}\r\n\r\n".encode()
            + body
        )
        request = _parse_request(raw)
        assert request.method == "POST"
        assert request.target == "/v1/jobs"
        assert request.headers["host"] == "x"
        assert request.json() == {"files": ["f1"]}

    def test_clean_eof_returns_none(self):
        assert _parse_request(b"") is None

    def test_mid_header_close_raises(self):
        with pytest.raises(ServiceError, match="mid-header"):
            _parse_request(b"GET /healthz HTTP/1.1\r\nHost")

    def test_malformed_request_line(self):
        with pytest.raises(ServiceError, match="malformed request line"):
            _parse_request(b"GETHTTP/1.1\r\n\r\n")

    def test_unsupported_protocol(self):
        with pytest.raises(ServiceError, match="unsupported protocol"):
            _parse_request(b"GET / SPDY/99\r\n\r\n")

    def test_malformed_header_line(self):
        with pytest.raises(ServiceError, match="malformed header"):
            _parse_request(b"GET / HTTP/1.1\r\nnocolonhere\r\n\r\n")

    def test_oversized_header_block(self):
        filler = b"X-Pad: " + b"a" * (MAX_HEADER_BYTES + 10) + b"\r\n"
        with pytest.raises(ServiceError, match="exceeds"):
            _parse_request(b"GET / HTTP/1.1\r\n" + filler + b"\r\n")

    def test_bad_content_length(self):
        for value in (b"nope", b"-5"):
            with pytest.raises(ServiceError, match="Content-Length"):
                _parse_request(
                    b"POST / HTTP/1.1\r\nContent-Length: " + value + b"\r\n\r\n"
                )

    def test_body_over_limit_rejected_without_reading(self):
        raw = (
            b"POST / HTTP/1.1\r\n"
            + f"Content-Length: {MAX_BODY_BYTES + 1}\r\n\r\n".encode()
        )
        with pytest.raises(ServiceError, match="exceeds"):
            _parse_request(raw)

    def test_truncated_body(self):
        with pytest.raises(ServiceError, match="mid-body"):
            _parse_request(b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc")

    def test_keep_alive_default_and_close(self):
        request = HttpRequest("GET", "/", {}, b"")
        assert request.keep_alive
        request = HttpRequest("GET", "/", {"connection": "Close"}, b"")
        assert not request.keep_alive

    def test_invalid_json_body(self):
        request = HttpRequest("POST", "/", {}, b"{nope")
        with pytest.raises(ServiceError, match="not valid JSON"):
            request.json()
        assert HttpRequest("POST", "/", {}, b"").json() is None


class TestReadResponse:
    def test_response_roundtrip(self):
        body = b'{"ok":true}'
        raw = (
            b"HTTP/1.1 200 OK\r\nContent-Type: application/json\r\n"
            + f"Content-Length: {len(body)}\r\n\r\n".encode()
            + body
        )
        response = _parse_response(raw)
        assert response.status == 200
        assert response.content_type == "application/json"
        assert response.json() == {"ok": True}

    def test_eof_before_response(self):
        with pytest.raises(ServiceError, match="before a response"):
            _parse_response(b"")

    def test_malformed_status(self):
        with pytest.raises(ServiceError, match="malformed status"):
            _parse_response(b"HTTP/1.1 abc OK\r\n\r\n")


class TestSerialization:
    def test_json_response_is_canonical(self):
        response = json_response({"b": 1, "a": 2})
        assert response.body == b'{"a":2,"b":1}'
        assert response.status == 200
        assert response.content_type == "application/json"

    def test_error_response_shape(self):
        response = error_response(404, "no route")
        assert response.status == 404
        assert json.loads(response.body) == {"error": "no route"}

    def test_wire_roundtrip_over_socket(self):
        """write_request/write_response over a real loopback socket."""
        from repro.service.http import write_request, write_response

        async def go():
            server_seen = {}

            async def handler(reader, writer):
                request = await read_request(reader)
                server_seen["request"] = request
                write_response(
                    writer, json_response({"echo": request.json()}),
                    keep_alive=False,
                )
                await writer.drain()
                writer.close()

            server = await asyncio.start_server(handler, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            write_request(writer, "POST", "/v1/jobs", body=b'{"n":1}')
            await writer.drain()
            response = await read_response(reader)
            writer.close()
            server.close()
            await server.wait_closed()
            return server_seen["request"], response

        request, response = asyncio.run(go())
        assert request.method == "POST" and request.json() == {"n": 1}
        assert response.status == 200
        assert response.json() == {"echo": {"n": 1}}
        assert response.headers["connection"] == "close"


class TestMalformedRequestAgainstService:
    def test_garbage_request_gets_400_close_and_one_error_count(self, tmp_path):
        """An unparseable request on a live coordinator: the server
        answers 400 with ``Connection: close``, actually closes the
        socket, and counts the exchange exactly once — on the bounded
        ``<unparsed>`` sentinel labels, never a per-garbage series."""
        import socket

        from repro.service import CoordinatorState, ServiceConfig
        from repro.service.testing import running_service
        from repro.types import MB
        from repro.workload.generator import WorkloadSpec, generate_trace

        trace = generate_trace(
            WorkloadSpec(
                cache_size=32 * MB,
                n_files=20,
                n_request_types=10,
                n_jobs=10,
                popularity="zipf",
                max_file_fraction=0.05,
                max_bundle_fraction=0.25,
                seed=5,
            )
        )
        workload = tmp_path / "w.jsonl"
        trace.dump(workload)
        state = CoordinatorState.create(
            ServiceConfig(
                workload=workload,
                cache_size=32 * MB,
                run_dir=tmp_path / "run",
                policy="landlord",
                checkpoint_every=5,
            )
        )
        with running_service(state) as svc:
            with socket.create_connection(
                ("127.0.0.1", svc.port), timeout=10
            ) as sock:
                sock.sendall(b"NOT-AN-HTTP-REQUEST\r\n\r\n")
                data = b""
                while True:  # drain until the server closes (EOF)
                    chunk = sock.recv(4096)
                    if not chunk:
                        break
                    data += chunk
        head = data.decode("latin-1")
        assert head.startswith("HTTP/1.1 400 ")
        assert "connection: close" in head.lower()
        assert state.registry.get("service_http_errors_total").value == 1
        family = state.registry.family("service_http_requests_total")
        assert [
            (labels, child.value) for labels, child in family.children()
        ] == [
            ({"method": "<other>", "route": "<unparsed>", "status": "400"}, 1)
        ]
        state.close()
