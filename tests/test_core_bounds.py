"""Unit tests for approximation-guarantee formulas."""

import math

import pytest

from repro.core.bounds import enum_guarantee, greedy_guarantee, max_file_degree
from repro.core.bundle import FileBundle
from repro.errors import ConfigError


class TestGuarantees:
    def test_known_values(self):
        assert enum_guarantee(1) == pytest.approx(1 - math.exp(-1))
        assert greedy_guarantee(1) == pytest.approx(0.5 * (1 - math.exp(-1)))

    def test_degree_zero_is_exact(self):
        assert enum_guarantee(0) == 1.0
        assert greedy_guarantee(0) == 1.0

    def test_monotone_decreasing_in_d(self):
        values = [enum_guarantee(d) for d in range(1, 20)]
        assert all(a > b for a, b in zip(values, values[1:]))

    def test_greedy_is_half_enum(self):
        for d in (1, 3, 10):
            assert greedy_guarantee(d) == pytest.approx(enum_guarantee(d) / 2)

    def test_negative_rejected(self):
        with pytest.raises(ConfigError):
            enum_guarantee(-1)

    def test_limits(self):
        # d -> inf: 1 - e^{-1/d} -> 1/d -> 0
        assert enum_guarantee(10_000) == pytest.approx(1e-4, rel=1e-3)


class TestMaxFileDegree:
    def test_empty(self):
        assert max_file_degree([]) == 0

    def test_counts_bundles_sharing_a_file(self):
        bundles = [
            FileBundle(["a", "b"]),
            FileBundle(["b"]),
            FileBundle(["b", "c"]),
            FileBundle(["c"]),
        ]
        assert max_file_degree(bundles) == 3  # file b

    def test_paper_example_degree_is_four(self, example_bundles):
        assert max_file_degree(example_bundles) == 4  # f5
