"""Cross-module integration tests.

These exercise realistic end-to-end paths: generated workloads through the
simulator under every policy, cross-policy accounting consistency, planner
vs. simulator agreement, scenario workloads, and the timed SRM against the
untimed simulator.
"""

import pytest

from repro.cache.registry import POLICY_REGISTRY
from repro.grid.srm import SRMConfig, run_timed_simulation
from repro.sim.simulator import SimulationConfig, simulate_trace
from repro.types import MB
from repro.workload.generator import WorkloadSpec, generate_trace
from repro.workload.scenarios import bitmap_index_trace, climate_trace, henp_trace

CACHE = 64 * MB


def small_spec(**kw):
    defaults = dict(
        cache_size=CACHE,
        n_files=120,
        n_request_types=80,
        n_jobs=300,
        popularity="zipf",
        max_file_fraction=0.05,
        max_bundle_fraction=0.25,
        seed=0,
    )
    defaults.update(kw)
    return WorkloadSpec(**defaults)


class TestAllPoliciesEndToEnd:
    @pytest.mark.parametrize("policy", sorted(POLICY_REGISTRY))
    def test_policy_completes_with_consistent_accounting(self, policy):
        trace = generate_trace(small_spec())
        result = simulate_trace(
            trace,
            SimulationConfig(
                cache_size=CACHE, policy=policy, check_invariants=True
            ),
        )
        m = result.metrics
        assert m.jobs + m.unserviceable == len(trace)
        # cache counters and metrics agree on bytes moved in
        assert result.cache_loads >= 1
        assert m.bytes_demand_loaded + m.bytes_prefetched > 0
        assert 0 <= m.byte_miss_ratio <= 1.0
        assert 0 <= m.request_hit_ratio <= 1.0

    def test_belady_is_best_or_close(self):
        trace = generate_trace(small_spec())
        ratios = {}
        for policy in ("belady", "lru", "landlord", "optbundle"):
            ratios[policy] = simulate_trace(
                trace, SimulationConfig(cache_size=CACHE, policy=policy)
            ).byte_miss_ratio
        assert ratios["belady"] <= min(ratios["lru"], ratios["landlord"]) + 1e-9


class TestPaperHeadline:
    def test_optbundle_beats_landlord_both_distributions(self):
        for popularity in ("uniform", "zipf"):
            trace = generate_trace(small_spec(popularity=popularity, n_jobs=500))
            opt = simulate_trace(
                trace, SimulationConfig(cache_size=CACHE, policy="optbundle")
            )
            land = simulate_trace(
                trace, SimulationConfig(cache_size=CACHE, policy="landlord")
            )
            assert opt.byte_miss_ratio <= land.byte_miss_ratio
            assert opt.request_hit_ratio >= land.request_hit_ratio

    def test_bigger_cache_never_worse(self):
        trace = generate_trace(small_spec())
        small = simulate_trace(
            trace, SimulationConfig(cache_size=CACHE, policy="optbundle")
        )
        big = simulate_trace(
            trace, SimulationConfig(cache_size=4 * CACHE, policy="optbundle")
        )
        assert big.byte_miss_ratio <= small.byte_miss_ratio + 0.02


class TestScenarioWorkloads:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda: henp_trace(
                n_datasets=4,
                n_attributes=10,
                n_channels=8,
                n_jobs=200,
                mean_attr_file_size=2 * MB,
                seed=1,
            ),
            lambda: climate_trace(
                n_runs=4,
                n_analyses=8,
                n_jobs=200,
                mean_var_file_size=3 * MB,
                seed=1,
            ),
            lambda: bitmap_index_trace(
                n_attributes=6,
                bins_per_attribute=8,
                n_jobs=200,
                mean_bitmap_size=MB,
                seed=1,
            ),
        ],
        ids=["henp", "climate", "bitmap"],
    )
    def test_scenarios_run_under_both_headline_policies(self, factory):
        trace = factory()
        cache = max(trace.catalog.total_bytes() // 4, 8 * MB)
        for policy in ("optbundle", "landlord"):
            result = simulate_trace(
                trace,
                SimulationConfig(
                    cache_size=cache, policy=policy, check_invariants=True
                ),
            )
            assert result.metrics.jobs > 0


class TestTimedVsUntimed:
    def test_bytes_staged_matches_untimed_demand(self):
        """With FCFS and no queueing, the timed SRM stages exactly the bytes
        the untimed simulator counts as demand misses."""
        spec = small_spec(n_jobs=150, arrival_rate=0.001)  # no overlap
        trace = generate_trace(spec)
        untimed = simulate_trace(
            trace, SimulationConfig(cache_size=CACHE, policy="lru")
        )
        timed = run_timed_simulation(
            trace, SRMConfig(cache_size=CACHE, policy="lru")
        )
        assert timed.bytes_staged == untimed.metrics.bytes_demand_loaded
        assert timed.jobs == untimed.metrics.jobs
        assert timed.request_hits == untimed.metrics.request_hits
