"""Unit tests for Request and RequestStream."""

import pytest

from repro.core.bundle import FileBundle
from repro.core.request import Request, RequestStream


def _req(i, files=("a",), t=0.0):
    return Request(request_id=i, bundle=FileBundle(files), arrival_time=t)


class TestRequest:
    def test_valid(self):
        r = _req(0)
        assert r.priority == 1.0

    def test_negative_id_rejected(self):
        with pytest.raises(ValueError):
            _req(-1)

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            _req(0, t=-1.0)

    def test_nonpositive_priority_rejected(self):
        with pytest.raises(ValueError):
            Request(0, FileBundle(["a"]), priority=0.0)


class TestRequestStream:
    def test_append_and_iterate(self):
        s = RequestStream([_req(0), _req(1, ("b",))])
        assert len(s) == 2
        assert [r.request_id for r in s] == [0, 1]
        assert s[1].bundle == FileBundle(["b"])

    def test_ids_must_increase(self):
        s = RequestStream([_req(0)])
        with pytest.raises(ValueError, match="strictly increasing"):
            s.append(_req(0))

    def test_times_must_not_decrease(self):
        s = RequestStream([_req(0, t=5.0)])
        with pytest.raises(ValueError, match="non-decreasing"):
            s.append(_req(1, t=4.0))

    def test_bundles_and_distinct(self):
        s = RequestStream([_req(0, ("a",)), _req(1, ("a",)), _req(2, ("b",))])
        assert len(s.bundles()) == 3
        assert s.distinct_bundles() == {FileBundle(["a"]), FileBundle(["b"])}

    def test_file_ids(self):
        s = RequestStream([_req(0, ("a", "b")), _req(1, ("b", "c"))])
        assert s.file_ids() == {"a", "b", "c"}

    def test_from_bundles(self):
        s = RequestStream.from_bundles([FileBundle(["a"]), FileBundle(["b"])])
        assert [r.request_id for r in s] == [0, 1]

    def test_from_bundles_start_id(self):
        s = RequestStream.from_bundles([FileBundle(["a"])], start_id=10)
        assert s[0].request_id == 10
