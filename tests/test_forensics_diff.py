"""Cross-policy trace diffing: first divergent decision with rationale."""

import pytest

from repro.sim.simulator import SimulationConfig, simulate_trace
from repro.telemetry import JsonlSink, TraceRecorder, use_recorder
from repro.telemetry.forensics import TraceLog, diff_traces
from repro.workload.generator import WorkloadSpec, generate_trace

SPEC = WorkloadSpec(
    cache_size=200_000_000,
    n_files=80,
    n_request_types=60,
    n_jobs=150,
    popularity="zipf",
    max_file_fraction=0.05,
    max_bundle_fraction=0.25,
    seed=11,
)


def record(tmp_path, policy, *, seed=11, name=None):
    workload = generate_trace(SPEC.with_seed(seed))
    path = tmp_path / f"{name or policy}.jsonl"
    with TraceRecorder(JsonlSink(path)) as rec:
        with use_recorder(rec):
            simulate_trace(
                workload,
                SimulationConfig(cache_size=SPEC.cache_size, policy=policy),
                recorder=rec,
            )
    return path


@pytest.fixture(scope="module")
def landlord_vs_optbundle(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("diff")
    return record(tmp, "landlord"), record(tmp, "optbundle")


class TestFirstDivergence:
    def test_reports_divergent_pair_with_both_rationales(
        self, landlord_vs_optbundle
    ):
        a, b = landlord_vs_optbundle
        diff = diff_traces(a, b)
        assert not diff.identical
        assert diff.policy_a == "landlord" and diff.policy_b == "optbundle"
        d = diff.divergence
        assert d.kind == "eviction"
        # the divergent pair carries each policy's own eviction rationale:
        # Landlord's residual credit vs. OptFileBundle's history degree
        assert d.a_event["kind"] == "FileEvicted"
        assert d.b_event["kind"] == "FileEvicted"
        assert "credit" in d.a_event["detail"]
        assert "last_refresh" in d.a_event["detail"]
        assert "degree" in d.b_event["detail"]
        assert d.a_event["file"] != d.b_event["file"]

    def test_caches_agree_up_to_the_divergence(self, landlord_vs_optbundle):
        a, b = landlord_vs_optbundle
        d = diff_traces(a, b).divergence
        # before the first divergent decision both policies saw the exact
        # same cache: same files, same bytes
        assert d.a_cache.residents == d.b_cache.residents
        assert d.a_cache.used == d.b_cache.used
        assert d.a_plan is not None and d.b_plan is not None

    def test_render_mentions_both_policies(self, landlord_vs_optbundle):
        a, b = landlord_vs_optbundle
        text = diff_traces(a, b).render()
        assert "landlord" in text and "optbundle" in text
        assert "first divergence" in text
        assert "credit" in text and "degree" in text

    def test_is_symmetric_in_location(self, landlord_vs_optbundle):
        a, b = landlord_vs_optbundle
        fwd = diff_traces(a, b).divergence
        rev = diff_traces(b, a).divergence
        assert (fwd.job, fwd.request_id) == (rev.job, rev.request_id)
        assert fwd.a_event["file"] == rev.b_event["file"]


class TestAgreementAndMismatch:
    def test_identical_traces_have_no_divergence(self, tmp_path):
        a = record(tmp_path, "lru", name="lru_a")
        b = record(tmp_path, "lru", name="lru_b")
        diff = diff_traces(a, b)
        assert diff.identical
        assert diff.jobs_compared == SPEC.n_jobs
        assert "agree" in diff.render()

    def test_different_workloads_flagged_not_compared(self, tmp_path):
        a = record(tmp_path, "lru", seed=11, name="seed11")
        b = record(tmp_path, "lru", seed=12, name="seed12")
        d = diff_traces(a, b).divergence
        assert d is not None
        assert d.kind == "workload"

    def test_truncated_trace_reports_trailing_jobs(self, tmp_path):
        path = record(tmp_path, "lru")
        full = TraceLog.load(path)
        cut = full.jobs()[40].start
        truncated = TraceLog(list(full.sequenced())[:cut])
        d = diff_traces(truncated, full).divergence
        assert d is not None
        assert d.kind == "trailing-jobs"
        assert d.a_event is None and d.b_event is not None
        assert d.job == 40
