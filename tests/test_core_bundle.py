"""Unit tests for FileBundle."""

import pytest

from repro.core.bundle import FileBundle


class TestConstruction:
    def test_order_independent_equality(self):
        assert FileBundle(["a", "b"]) == FileBundle(["b", "a"])

    def test_hash_consistent(self):
        assert hash(FileBundle(["a", "b"])) == hash(FileBundle(["b", "a"]))

    def test_duplicates_collapse(self):
        assert len(FileBundle(["a", "a", "b"])) == 2

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            FileBundle([])

    def test_non_string_rejected(self):
        with pytest.raises(TypeError):
            FileBundle([1, 2])  # type: ignore[list-item]

    def test_empty_string_rejected(self):
        with pytest.raises(TypeError):
            FileBundle([""])

    def test_equality_with_frozenset(self):
        assert FileBundle(["a"]) == frozenset({"a"})

    def test_inequality_with_other_types(self):
        assert FileBundle(["a"]) != "a"

    def test_usable_as_dict_key(self):
        d = {FileBundle(["a", "b"]): 1}
        assert d[FileBundle(["b", "a"])] == 1


class TestOperations:
    def test_contains_and_iter(self):
        b = FileBundle(["x", "y"])
        assert "x" in b and "z" not in b
        assert sorted(b) == ["x", "y"]

    def test_union(self):
        assert (FileBundle(["a"]) | FileBundle(["b"])) == FileBundle(["a", "b"])

    def test_intersection(self):
        assert (FileBundle(["a", "b"]) & FileBundle(["b", "c"])) == {"b"}

    def test_difference(self):
        assert (FileBundle(["a", "b"]) - FileBundle(["b"])) == {"a"}

    def test_issubset(self):
        b = FileBundle(["a", "b"])
        assert b.issubset({"a", "b", "c"})
        assert not b.issubset({"a"})
        assert b.issubset(["a", "b"])  # non-set iterable

    def test_intersects(self):
        b = FileBundle(["a", "b"])
        assert b.intersects({"b"})
        assert not b.intersects({"z"})
        assert b.intersects(["a", "q"])

    def test_size_under(self):
        assert FileBundle(["a", "b"]).size_under({"a": 3, "b": 4, "c": 9}) == 7

    def test_size_under_missing_raises(self):
        with pytest.raises(KeyError):
            FileBundle(["a"]).size_under({})

    def test_missing_from(self):
        b = FileBundle(["a", "b", "c"])
        assert b.missing_from({"a"}) == {"b", "c"}
        assert b.missing_from(["a", "b", "c"]) == frozenset()

    def test_sorted_ids(self):
        assert FileBundle(["c", "a", "b"]).sorted_ids() == ("a", "b", "c")

    def test_repr_is_canonical(self):
        assert repr(FileBundle(["b", "a"])) == "FileBundle({a,b})"
