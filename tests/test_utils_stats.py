"""Unit tests for streaming statistics."""

import math

import numpy as np
import pytest

from repro.utils.stats import (
    RunningStats,
    Summary,
    mean_confidence_interval,
    summarize,
)


class TestRunningStats:
    def test_empty_raises(self):
        s = RunningStats()
        with pytest.raises(ValueError):
            _ = s.mean
        with pytest.raises(ValueError):
            _ = s.variance
        with pytest.raises(ValueError):
            _ = s.min

    def test_single_value(self):
        s = RunningStats()
        s.push(4.0)
        assert s.mean == 4.0
        assert s.variance == 0.0
        assert s.min == s.max == 4.0
        assert s.count == 1

    def test_matches_numpy(self):
        rng = np.random.default_rng(0)
        xs = rng.normal(10, 3, size=500)
        s = RunningStats()
        s.extend(xs)
        assert s.mean == pytest.approx(np.mean(xs))
        assert s.variance == pytest.approx(np.var(xs, ddof=1))
        assert s.stdev == pytest.approx(np.std(xs, ddof=1))
        assert s.min == xs.min() and s.max == xs.max()
        assert s.total == pytest.approx(xs.sum())

    def test_merge_equals_combined(self):
        rng = np.random.default_rng(1)
        xs, ys = rng.random(100), rng.random(37)
        a, b, c = RunningStats(), RunningStats(), RunningStats()
        a.extend(xs)
        b.extend(ys)
        c.extend(np.concatenate([xs, ys]))
        m = a.merge(b)
        assert m.count == c.count
        assert m.mean == pytest.approx(c.mean)
        assert m.variance == pytest.approx(c.variance)
        assert m.min == c.min and m.max == c.max

    def test_merge_with_empty(self):
        a = RunningStats()
        b = RunningStats()
        b.push(3.0)
        m = a.merge(b)
        assert m.count == 1 and m.mean == 3.0
        assert RunningStats().merge(RunningStats()).count == 0


class TestMeanCI:
    def test_empty_raises(self):
        with pytest.raises(ValueError):
            mean_confidence_interval([])

    def test_single_value_zero_halfwidth(self):
        mean, half = mean_confidence_interval([2.0])
        assert mean == 2.0 and half == 0.0

    def test_constant_sample(self):
        mean, half = mean_confidence_interval([5.0] * 10)
        assert mean == 5.0 and half == 0.0

    def test_halfwidth_positive_and_shrinks(self):
        rng = np.random.default_rng(2)
        small = rng.normal(size=5)
        big = rng.normal(size=500)
        _, h_small = mean_confidence_interval(list(small))
        _, h_big = mean_confidence_interval(list(big))
        assert h_small > 0 and h_big > 0
        assert h_big < h_small

    def test_two_points_uses_t_table(self):
        mean, half = mean_confidence_interval([0.0, 2.0])
        assert mean == 1.0
        # dof=1 -> t = 12.706; sd = sqrt(2); half = t*sd/sqrt(2) = t
        assert half == pytest.approx(12.706, rel=1e-3)


class TestSummarize:
    def test_summary_fields(self):
        s = summarize([1.0, 2.0, 3.0])
        assert isinstance(s, Summary)
        assert s.count == 3
        assert s.mean == 2.0
        assert s.min == 1.0 and s.max == 3.0
        assert s.stdev == pytest.approx(1.0)
