"""Unit tests for trace analytics."""

import pytest

from repro.core.bundle import FileBundle
from repro.core.request import Request, RequestStream
from repro.errors import ConfigError
from repro.types import FileCatalog
from repro.workload.analytics import (
    gini,
    hot_set_drift,
    popularity_concentration,
    profile_trace,
)
from repro.workload.trace import Trace

SIZES = {"a": 1, "b": 2, "c": 3}


def trace_of(bundles):
    return Trace(
        FileCatalog(SIZES),
        RequestStream(Request(i, FileBundle(b)) for i, b in enumerate(bundles)),
    )


class TestGini:
    def test_equal_values_zero(self):
        assert gini([5, 5, 5, 5]) == pytest.approx(0.0)

    def test_concentrated_near_one(self):
        assert gini([0, 0, 0, 100]) == pytest.approx(0.75)

    def test_all_zero(self):
        assert gini([0, 0]) == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            gini([])

    def test_negative_rejected(self):
        with pytest.raises(ConfigError):
            gini([-1, 2])


class TestConcentration:
    def test_shares(self):
        t = trace_of([["a"], ["a"], ["a"], ["b"]])
        top1, top10 = popularity_concentration(t)
        assert top1 == pytest.approx(0.75)
        assert top10 == pytest.approx(1.0)

    def test_k_validation(self):
        with pytest.raises(ConfigError):
            popularity_concentration(trace_of([["a"]]), k=0)


class TestProfile:
    def test_fields(self):
        t = trace_of([["a", "b"], ["a"], ["b", "c"]])
        p = profile_trace(t)
        assert p.jobs == 3
        assert p.distinct_types == 3
        assert p.n_files == 3
        assert p.catalog_bytes == 6
        assert p.bundle_files.mean == pytest.approx(5 / 3)
        assert p.max_degree == 2  # a and b each in two types
        assert 0 <= p.gini_popularity <= 1

    def test_render(self):
        text = profile_trace(trace_of([["a"]])).render()
        assert "jobs=1" in text

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            profile_trace(
                Trace(FileCatalog(SIZES), RequestStream([]))
            )


class TestDrift:
    def test_stable_trace_high_similarity(self):
        t = trace_of([["a"], ["b"]] * 40)
        sims = hot_set_drift(t, window=20, top=2)
        assert sims and all(s == 1.0 for s in sims)

    def test_churning_trace_low_similarity(self):
        t = trace_of([["a"]] * 20 + [["b"]] * 20 + [["c"]] * 20)
        sims = hot_set_drift(t, window=20, top=1)
        assert sims and all(s == 0.0 for s in sims)

    def test_param_validation(self):
        with pytest.raises(ConfigError):
            hot_set_drift(trace_of([["a"]]), window=0)
