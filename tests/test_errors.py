"""The exception hierarchy contract."""

import pytest

from repro import errors


def test_all_derive_from_repro_error():
    for name in errors.__all__:
        exc = getattr(errors, name)
        assert issubclass(exc, errors.ReproError)


def test_config_error_is_value_error():
    assert issubclass(errors.ConfigError, ValueError)


def test_unknown_file_is_key_error():
    assert issubclass(errors.UnknownFileError, KeyError)


def test_cache_capacity_error_message_and_fields():
    exc = errors.CacheCapacityError(100, 40)
    assert exc.needed == 100
    assert exc.available == 40
    assert "100" in str(exc) and "40" in str(exc)


def test_cache_capacity_error_custom_message():
    exc = errors.CacheCapacityError(1, 2, "custom")
    assert str(exc) == "custom"


def test_catchable_as_repro_error():
    with pytest.raises(errors.ReproError):
        raise errors.TraceFormatError("bad")


def test_fault_errors_derive_from_repro_error():
    for exc in (
        errors.FaultInjectionError,
        errors.StagingTimeoutError,
        errors.RetryExhaustedError,
    ):
        assert issubclass(exc, errors.ReproError)
        assert exc.__name__ in errors.__all__


def test_staging_timeout_error_fields():
    exc = errors.StagingTimeoutError("f7", 30.0)
    assert exc.file_id == "f7"
    assert exc.timeout == 30.0
    assert "f7" in str(exc) and "30" in str(exc)
    assert str(errors.StagingTimeoutError("f7", 30.0, "custom")) == "custom"


def test_retry_exhausted_error_fields():
    exc = errors.RetryExhaustedError("f3", 4)
    assert exc.file_id == "f3"
    assert exc.attempts == 4
    assert "f3" in str(exc) and "4" in str(exc)
    assert str(errors.RetryExhaustedError("f3", 4, "custom")) == "custom"


def test_fault_errors_catchable_together():
    for exc in (
        errors.FaultInjectionError("x"),
        errors.StagingTimeoutError("f", 1.0),
        errors.RetryExhaustedError("f", 2),
    ):
        with pytest.raises(errors.ReproError):
            raise exc
