"""The exception hierarchy contract."""

import pytest

from repro import errors


def test_all_derive_from_repro_error():
    for name in errors.__all__:
        exc = getattr(errors, name)
        assert issubclass(exc, errors.ReproError)


def test_config_error_is_value_error():
    assert issubclass(errors.ConfigError, ValueError)


def test_unknown_file_is_key_error():
    assert issubclass(errors.UnknownFileError, KeyError)


def test_cache_capacity_error_message_and_fields():
    exc = errors.CacheCapacityError(100, 40)
    assert exc.needed == 100
    assert exc.available == 40
    assert "100" in str(exc) and "40" in str(exc)


def test_cache_capacity_error_custom_message():
    exc = errors.CacheCapacityError(1, 2, "custom")
    assert str(exc) == "custom"


def test_catchable_as_repro_error():
    with pytest.raises(errors.ReproError):
        raise errors.TraceFormatError("bad")
