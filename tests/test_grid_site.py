"""Unit tests for replica catalog and site selection."""

import pytest

from repro.errors import ConfigError, UnknownFileError
from repro.grid.network import NetworkLink
from repro.grid.site import DataGridSite, ReplicaCatalog
from repro.grid.srm import SRMConfig, run_timed_simulation
from repro.sim.engine import EventEngine
from repro.core.bundle import FileBundle
from repro.core.request import Request, RequestStream
from repro.types import FileCatalog
from repro.workload.trace import Trace


def two_sites(engine):
    slow = DataGridSite.build(
        engine,
        "slow",
        mount_latency=100.0,
        drive_bandwidth=10.0,
        link=NetworkLink(bandwidth=10.0, latency=1.0),
    )
    fast = DataGridSite.build(
        engine,
        "fast",
        mount_latency=1.0,
        drive_bandwidth=1000.0,
        link=NetworkLink(bandwidth=1000.0, latency=0.01),
    )
    return slow, fast


class TestReplicaCatalog:
    def test_duplicate_site_rejected(self):
        e = EventEngine()
        rc = ReplicaCatalog()
        slow, _ = two_sites(e)
        rc.add_site(slow)
        with pytest.raises(ConfigError):
            rc.add_site(slow)

    def test_replica_requires_known_site(self):
        rc = ReplicaCatalog()
        with pytest.raises(ConfigError):
            rc.add_replica("f", "ghost")

    def test_locations_and_idempotent_add(self):
        e = EventEngine()
        rc = ReplicaCatalog()
        slow, fast = two_sites(e)
        rc.add_site(slow)
        rc.add_site(fast)
        rc.add_replica("f", "slow")
        rc.add_replica("f", "slow")
        assert rc.locations("f") == ["slow"]
        assert rc.locations("ghost") == []

    def test_best_source_picks_fast_site(self):
        e = EventEngine()
        rc = ReplicaCatalog()
        slow, fast = two_sites(e)
        rc.add_site(slow)
        rc.add_site(fast)
        rc.add_replica("f", "slow")
        rc.add_replica("f", "fast")
        assert rc.best_source("f", 1000).name == "fast"

    def test_best_source_single_location(self):
        e = EventEngine()
        rc = ReplicaCatalog()
        slow, fast = two_sites(e)
        rc.add_site(slow)
        rc.add_site(fast)
        rc.add_replica("f", "slow")
        assert rc.best_source("f", 10).name == "slow"

    def test_no_replica_raises(self):
        rc = ReplicaCatalog()
        with pytest.raises(UnknownFileError):
            rc.best_source("f", 10)

    def test_site_lookup(self):
        e = EventEngine()
        rc = ReplicaCatalog()
        slow, _ = two_sites(e)
        rc.add_site(slow)
        assert rc.site("slow") is slow
        with pytest.raises(ConfigError):
            rc.site("nope")


class TestReplicatedSRM:
    def test_replicated_run_completes(self):
        sizes = {"a": 100, "b": 100}
        stream = RequestStream(
            [
                Request(0, FileBundle(["a"]), arrival_time=0.0),
                Request(1, FileBundle(["a", "b"]), arrival_time=1.0),
            ]
        )
        trace = Trace(FileCatalog(sizes), stream)

        engine = EventEngine()
        # run_timed_simulation builds its own engine, so construct replicas
        # bound to a fresh engine through the function under test instead:
        from repro.grid.srm import StorageResourceManager

        rc = ReplicaCatalog()
        slow, fast = two_sites(engine)
        rc.add_site(slow)
        rc.add_site(fast)
        for f in sizes:
            rc.add_replica(f, "slow")
            rc.add_replica(f, "fast")
        srm = StorageResourceManager(
            engine,
            sizes,
            SRMConfig(cache_size=500, policy="lru", processing_time=0.1),
            replicas=rc,
        )
        for request in trace:
            engine.schedule_at(request.arrival_time, lambda r=request: srm.submit(r))
        engine.run()
        assert srm.jobs_done == 2
        # the fast site should have served the retrievals
        assert fast.mss.retrievals == 2
        assert slow.mss.retrievals == 0
