"""Property-based tests (hypothesis) for the core FBC algorithms."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bounds import enum_guarantee, greedy_guarantee, max_file_degree
from repro.core.bundle import FileBundle
from repro.core.exact import solve_exact
from repro.core.kenum import opt_cache_select_enum
from repro.core.optcacheselect import FBCInstance, opt_cache_select

# ---------------------------------------------------------------------- #
# strategies


@st.composite
def fbc_instances(draw, max_requests=8, max_files=10):
    n_files = draw(st.integers(2, max_files))
    sizes = {
        f"f{i}": draw(st.integers(1, 30)) for i in range(n_files)
    }
    n_req = draw(st.integers(1, max_requests))
    bundles = []
    values = []
    for _ in range(n_req):
        k = draw(st.integers(1, min(4, n_files)))
        files = draw(
            st.lists(
                st.integers(0, n_files - 1),
                min_size=k,
                max_size=k,
                unique=True,
            )
        )
        bundles.append(FileBundle(f"f{i}" for i in files))
        values.append(float(draw(st.integers(1, 20))))
    budget = draw(st.integers(0, sum(sizes.values())))
    return FBCInstance(tuple(bundles), tuple(values), sizes, budget)


# ---------------------------------------------------------------------- #


@given(fbc_instances())
@settings(max_examples=150, deadline=None)
def test_greedy_never_exceeds_budget(inst):
    for refine in (True, False):
        sel = opt_cache_select(inst, refine=refine)
        real = sum(inst.sizes[f] for f in sel.files)
        assert real <= inst.budget or not sel.files


@given(fbc_instances())
@settings(max_examples=150, deadline=None)
def test_selected_requests_covered_by_files(inst):
    sel = opt_cache_select(inst)
    for i in sel.selected:
        assert inst.bundles[i].files <= sel.files


@given(fbc_instances())
@settings(max_examples=150, deadline=None)
def test_total_value_consistent(inst):
    sel = opt_cache_select(inst)
    assert sel.total_value == sum(inst.values[i] for i in sel.selected)


@given(fbc_instances())
@settings(max_examples=100, deadline=None)
def test_theorem_41_bound_holds(inst):
    """Greedy with Step 3 achieves >= 1/2 (1 - e^{-1/d}) of the optimum."""
    opt = solve_exact(inst)
    if opt.total_value == 0:
        return
    d = max(1, max_file_degree(inst.bundles))
    for refine in (True, False):
        sel = opt_cache_select(inst, refine=refine)
        assert sel.total_value >= greedy_guarantee(d) * opt.total_value - 1e-9


@given(fbc_instances(max_requests=6, max_files=8))
@settings(max_examples=60, deadline=None)
def test_enum_bound_holds(inst):
    """Partial enumeration achieves >= (1 - e^{-1/d}) of the optimum."""
    opt = solve_exact(inst)
    if opt.total_value == 0:
        return
    d = max(1, max_file_degree(inst.bundles))
    sel = opt_cache_select_enum(inst, k=2)
    assert sel.total_value >= enum_guarantee(d) * opt.total_value - 1e-9


@given(fbc_instances())
@settings(max_examples=100, deadline=None)
def test_exact_at_least_greedy(inst):
    greedy = opt_cache_select(inst)
    exact = solve_exact(inst)
    assert exact.total_value >= greedy.total_value - 1e-9


@given(fbc_instances())
@settings(max_examples=100, deadline=None)
def test_greedy_deterministic(inst):
    a = opt_cache_select(inst)
    b = opt_cache_select(inst)
    assert a.selected == b.selected
    assert a.files == b.files


@given(fbc_instances(), st.integers(0, 2))
@settings(max_examples=60, deadline=None)
def test_enum_monotone_in_k(inst, k):
    smaller = opt_cache_select_enum(inst, k=k)
    larger = opt_cache_select_enum(inst, k=k + 1)
    assert larger.total_value >= smaller.total_value - 1e-9


@given(st.integers(1, 100))
def test_guarantee_formulas_sane(d):
    g, e = greedy_guarantee(d), enum_guarantee(d)
    assert 0 < g < e <= 1 - math.exp(-1)
