"""Property-based tests for cache/simulator/workload invariants."""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bundle import FileBundle
from repro.core.request import Request, RequestStream
from repro.sim.simulator import SimulationConfig, simulate_trace
from repro.types import FileCatalog
from repro.utils.rng import derive_rng
from repro.workload.distributions import zipf_weights
from repro.workload.trace import Trace

POLICIES = ("lru", "lfu", "fifo", "landlord", "gdsf", "size", "optbundle")


@st.composite
def small_traces(draw):
    n_files = draw(st.integers(3, 8))
    sizes = {f"f{i}": draw(st.integers(1, 20)) for i in range(n_files)}
    n_jobs = draw(st.integers(1, 25))
    bundles = []
    for _ in range(n_jobs):
        k = draw(st.integers(1, min(3, n_files)))
        files = draw(
            st.lists(
                st.integers(0, n_files - 1), min_size=k, max_size=k, unique=True
            )
        )
        bundles.append([f"f{i}" for i in files])
    stream = RequestStream(
        Request(i, FileBundle(b)) for i, b in enumerate(bundles)
    )
    return Trace(FileCatalog(sizes), stream)


@given(small_traces(), st.sampled_from(POLICIES), st.integers(10, 60))
@settings(max_examples=80, deadline=None)
def test_simulation_preserves_cache_invariants(trace, policy, cache_size):
    result = simulate_trace(
        trace,
        SimulationConfig(
            cache_size=cache_size, policy=policy, check_invariants=True
        ),
    )
    m = result.metrics
    assert m.jobs + m.unserviceable == len(trace)
    assert 0.0 <= m.request_hit_ratio <= 1.0
    assert m.byte_miss_ratio >= 0.0
    assert m.bytes_demand_loaded <= m.bytes_requested


@given(small_traces(), st.sampled_from(POLICIES))
@settings(max_examples=40, deadline=None)
def test_big_cache_only_cold_misses(trace, policy):
    """With a cache larger than all files, every re-request is a hit."""
    total = trace.catalog.total_bytes()
    result = simulate_trace(
        trace, SimulationConfig(cache_size=total + 1, policy=policy)
    )
    distinct_bytes = sum(
        trace.catalog.size_of(f) for f in trace.stream.file_ids()
    )
    assert result.metrics.bytes_demand_loaded == distinct_bytes


@given(small_traces())
@settings(max_examples=50, deadline=None)
def test_trace_roundtrip(trace):
    again = Trace.load_lines(trace.dump_lines())
    assert again.bundles() == trace.bundles()
    assert again.catalog.as_dict() == trace.catalog.as_dict()
    assert json.dumps(again.meta) == json.dumps(trace.meta)


@given(st.integers(1, 200), st.floats(0.0, 3.0))
@settings(max_examples=50, deadline=None)
def test_zipf_weights_properties(n, alpha):
    w = zipf_weights(n, alpha)
    assert len(w) == n
    assert abs(w.sum() - 1.0) < 1e-9
    assert all(a >= b - 1e-12 for a, b in zip(w, w[1:]))  # non-increasing


@given(st.integers(0, 2**32 - 1), st.text(max_size=10))
@settings(max_examples=50, deadline=None)
def test_rng_streams_reproducible(seed, name):
    a = derive_rng(seed, name).random(3)
    b = derive_rng(seed, name).random(3)
    assert (a == b).all()


@st.composite
def bundle_sequences(draw):
    n_files = draw(st.integers(3, 7))
    sizes = {f"f{i}": draw(st.integers(1, 12)) for i in range(n_files)}
    n = draw(st.integers(1, 20))
    seq = []
    for _ in range(n):
        k = draw(st.integers(1, min(3, n_files)))
        files = draw(
            st.lists(
                st.integers(0, n_files - 1), min_size=k, max_size=k, unique=True
            )
        )
        seq.append(FileBundle([f"f{i}" for i in files]))
    return sizes, seq


@given(bundle_sequences(), st.integers(15, 60))
@settings(max_examples=60, deadline=None)
def test_planner_invariants_over_random_sequences(data, capacity):
    """OptFileBundle planner: capacity respected, bundle resident after plan."""
    from repro.core.optfilebundle import OptFileBundlePlanner
    from repro.errors import CacheCapacityError

    sizes, seq = data
    planner = OptFileBundlePlanner(capacity, sizes)
    resident: set = set()
    for bundle in seq:
        try:
            plan = planner.plan(bundle, resident)
        except CacheCapacityError:
            assert bundle.size_under(sizes) > capacity
            continue
        resident -= plan.evict
        resident |= plan.load | plan.prefetch
        planner.commit(plan)
        assert bundle.files <= resident
        assert sum(sizes[f] for f in resident) <= capacity
        assert planner.history.resident_view() == resident


@given(bundle_sequences(), st.integers(15, 60))
@settings(max_examples=60, deadline=None)
def test_landlord_credit_invariant(data, capacity):
    """Landlord: effective credits of resident files stay within [0, 1]."""
    from repro.cache.landlord import LandlordPolicy
    from repro.cache.state import CacheState

    sizes, seq = data
    policy = LandlordPolicy()
    cache = CacheState(capacity)
    policy.bind(cache, sizes)
    for bundle in seq:
        if bundle.size_under(sizes) > capacity:
            continue
        missing = cache.missing(bundle)
        policy.on_request(bundle)
        for f in missing:
            cache.load(f, sizes[f])
        policy.on_serviced(bundle, frozenset(missing), not missing)
        for f in cache.residents():
            assert -1e-9 <= policy.credit(f) <= 1.0 + 1e-9


@given(bundle_sequences(), st.integers(20, 60), st.integers(1, 3))
@settings(max_examples=40, deadline=None)
def test_timed_srm_conservation(data, capacity, slots):
    """Timed SRM: all serviceable jobs complete; cache stays within bounds."""
    from repro.core.request import Request, RequestStream
    from repro.grid.srm import SRMConfig, run_timed_simulation
    from repro.types import FileCatalog
    from repro.workload.trace import Trace

    sizes, seq = data
    stream = RequestStream(
        Request(i, b, arrival_time=float(i)) for i, b in enumerate(seq)
    )
    trace = Trace(FileCatalog(sizes), stream)
    result = run_timed_simulation(
        trace,
        SRMConfig(
            cache_size=capacity,
            policy="lru",
            n_drives=2,
            mount_latency=0.5,
            drive_bandwidth=50.0,
            processing_time=0.2,
            service_slots=slots,
        ),
    )
    oversized = sum(1 for b in seq if b.size_under(sizes) > capacity)
    assert result.jobs == len(seq) - oversized
    assert result.unserviceable == oversized
