"""Tests for the per-figure experiment drivers (smoke scale).

These assert the *shapes* the paper reports, not absolute numbers:
OptFileBundle below Landlord, byte miss ratio decreasing in cache size,
negligible history-truncation effect, queueing benefit for Zipf, and the
Theorem 4.1 bounds.
"""

import pytest

from repro.errors import ConfigError
from repro.experiments import EXPERIMENTS, run_experiment
from repro.experiments.example_tables import (
    EXAMPLE_BUNDLES,
    file_request_probabilities,
    request_hit_probability,
    run_tables,
)

pytestmark = pytest.mark.slow


class TestRegistry:
    def test_expected_ids(self):
        assert {
            "tables",
            "fig5",
            "fig6",
            "fig7",
            "fig8",
            "fig9",
            "thm41",
            "ablation",
            "zoo",
            "grid",
        } <= set(EXPERIMENTS)

    def test_unknown_rejected(self):
        with pytest.raises(ConfigError):
            run_experiment("fig99")


class TestWorkedExampleTables:
    def test_table1_probabilities(self):
        probs = file_request_probabilities()
        from fractions import Fraction

        assert probs["f5"] == Fraction(2, 3)
        assert probs["f6"] == Fraction(1, 2)
        assert probs["f7"] == Fraction(1, 2)
        assert probs["f1"] == Fraction(1, 3)
        assert probs["f2"] == Fraction(1, 6)

    def test_table2_rows(self):
        p_popular, supported = request_hit_probability(("f5", "f6", "f7"))
        assert float(p_popular) == pytest.approx(1 / 6)
        assert supported == [5]  # only r6
        p_best, supported = request_hit_probability(("f1", "f3", "f5"))
        assert float(p_best) == pytest.approx(1 / 2)
        assert supported == [0, 2, 4]  # r1, r3, r5
        p_none, _ = request_hit_probability(("f1", "f2", "f3"))
        assert float(p_none) == 0.0

    def test_driver_output(self):
        out = run_tables()
        assert out.data["greedy_files"] == ["f1", "f3", "f5"]
        assert out.data["greedy_value"] == 3.0
        assert out.data["exact_value"] == 3.0


class TestFigureShapes:
    @pytest.fixture(scope="class")
    def fig6(self):
        return run_experiment("fig6", "smoke")

    def test_fig6_optbundle_beats_landlord(self, fig6):
        for popularity in ("uniform", "zipf"):
            rows = fig6.data[popularity]
            opt = {r["x"]: r["byte_miss_ratio"] for r in rows if r["policy"] == "optbundle"}
            land = {r["x"]: r["byte_miss_ratio"] for r in rows if r["policy"] == "landlord"}
            assert all(opt[x] <= land[x] + 0.02 for x in opt)
            # strictly better on average
            assert sum(opt.values()) < sum(land.values())

    def test_fig6_zipf_below_uniform(self, fig6):
        uni = [r["byte_miss_ratio"] for r in fig6.data["uniform"] if r["policy"] == "optbundle"]
        zipf = [r["byte_miss_ratio"] for r in fig6.data["zipf"] if r["policy"] == "optbundle"]
        assert sum(zipf) < sum(uni)

    def test_fig6_decreasing_in_cache_size(self, fig6):
        rows = [r for r in fig6.data["zipf"] if r["policy"] == "optbundle"]
        ys = [r["byte_miss_ratio"] for r in sorted(rows, key=lambda r: r["x"])]
        assert ys[-1] < ys[0]

    def test_fig5_truncation_negligible(self):
        out = run_experiment("fig5", "smoke")
        for popularity in ("uniform", "zipf"):
            ratios = [row["byte_miss_ratio"] for row in out.data[popularity]]
            assert max(ratios) - min(ratios) < 0.08

    def test_fig8_volume_decreasing(self):
        out = run_experiment("fig8", "smoke")
        rows = [
            r
            for r in out.data["zipf"]
            if r["policy"] == "optbundle"
        ]
        ys = [r["mean_volume_per_request"] for r in sorted(rows, key=lambda r: r["x"])]
        assert ys[-1] < ys[0]

    def test_fig9_queueing_does_not_hurt_much(self):
        out = run_experiment("fig9", "smoke")
        for popularity in ("uniform", "zipf"):
            rows = sorted(out.data[popularity], key=lambda r: r["x"])
            assert rows[-1]["byte_miss_ratio"] <= rows[0]["byte_miss_ratio"] + 0.02

    def test_thm41_no_violations(self):
        out = run_experiment("thm41", "smoke")
        assert out.data["violations"] == 0
        assert out.data["min_ratio"]["enum-k2"] >= out.data["min_ratio"]["plain"] - 1e-9

    def test_zoo_optbundle_beats_landlord(self):
        out = run_experiment("zoo", "smoke")
        for popularity in ("uniform", "zipf"):
            panel = out.data[popularity]
            # byte-miss within noise at smoke scale; request hits strictly.
            assert (
                panel["optbundle"]["byte_miss_ratio"]
                <= panel["landlord"]["byte_miss_ratio"] + 0.01
            )
            assert (
                panel["optbundle"]["request_hit_ratio"]
                > panel["landlord"]["request_hit_ratio"]
            )

    def test_grid_optbundle_fastest(self):
        out = run_experiment("grid", "smoke")
        for popularity in ("uniform", "zipf"):
            panel = out.data[popularity]
            assert (
                panel["optbundle"]["mean_response_time"]
                <= panel["landlord"]["mean_response_time"]
            )

    def test_ablation_runs_and_reports_all_variants(self):
        out = run_experiment("ablation", "smoke")
        assert len(out.data["zipf"]) >= 10

    def test_outputs_render(self):
        out = run_experiment("fig7", "smoke")
        text = out.render()
        assert "fig7" in text and "landlord" in text
