"""Unit tests for popularity distributions."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.utils.rng import derive_rng
from repro.workload.distributions import (
    UniformSampler,
    ZipfSampler,
    make_sampler,
    zipf_weights,
)


class TestZipfWeights:
    def test_normalized(self):
        assert zipf_weights(100).sum() == pytest.approx(1.0)

    def test_proportional_to_inverse_rank(self):
        w = zipf_weights(10, alpha=1.0)
        assert w[0] / w[1] == pytest.approx(2.0)
        assert w[0] / w[9] == pytest.approx(10.0)

    def test_alpha_zero_is_uniform(self):
        w = zipf_weights(5, alpha=0.0)
        assert np.allclose(w, 0.2)

    def test_monotone_decreasing(self):
        w = zipf_weights(50, alpha=1.2)
        assert np.all(np.diff(w) < 0)

    def test_invalid_args(self):
        with pytest.raises(ConfigError):
            zipf_weights(0)
        with pytest.raises(ConfigError):
            zipf_weights(5, alpha=-1)


class TestUniformSampler:
    def test_range_and_coverage(self):
        s = UniformSampler(10)
        draws = s.sample(derive_rng(0, "u"), 5000)
        assert draws.min() >= 0 and draws.max() <= 9
        assert len(np.unique(draws)) == 10

    def test_probabilities(self):
        assert np.allclose(UniformSampler(4).probabilities(), 0.25)

    def test_approximately_uniform(self):
        s = UniformSampler(5)
        draws = s.sample(derive_rng(1, "u"), 20000)
        freq = np.bincount(draws, minlength=5) / 20000
        assert np.allclose(freq, 0.2, atol=0.02)

    def test_negative_size_rejected(self):
        with pytest.raises(ConfigError):
            UniformSampler(3).sample(derive_rng(0, "u"), -1)


class TestZipfSampler:
    def test_empirical_matches_theoretical(self):
        s = ZipfSampler(20, alpha=1.0)
        draws = s.sample(derive_rng(2, "z"), 50000)
        freq = np.bincount(draws, minlength=20) / 50000
        assert np.allclose(freq, s.probabilities(), atol=0.01)

    def test_rank_zero_most_popular(self):
        s = ZipfSampler(50)
        draws = s.sample(derive_rng(3, "z"), 10000)
        freq = np.bincount(draws, minlength=50)
        assert freq[0] == freq.max()

    def test_indices_in_range(self):
        s = ZipfSampler(7)
        draws = s.sample(derive_rng(4, "z"), 1000)
        assert draws.min() >= 0 and draws.max() <= 6

    def test_zero_pool_rejected(self):
        with pytest.raises(ConfigError):
            ZipfSampler(0)


class TestFactory:
    def test_kinds(self):
        assert isinstance(make_sampler("uniform", 5), UniformSampler)
        z = make_sampler("zipf", 5, alpha=2.0)
        assert isinstance(z, ZipfSampler) and z.alpha == 2.0

    def test_unknown_kind(self):
        with pytest.raises(ConfigError):
            make_sampler("pareto", 5)
