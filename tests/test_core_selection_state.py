"""The incremental selection state vs the rebuild-per-arrival path.

The contract is *byte-for-byte* equivalence: an incremental planner and a
freshly-rebuilding planner fed the same arrival stream must produce equal
``LoadPlan`` dataclasses (including the backing ``CacheSelection``) at
every step, across truncation modes, value decay, and fault-injected
eviction notifications neither planner asked for.
"""

import random

import pytest

from repro.core.bundle import FileBundle
from repro.core.history import RequestHistory, TruncationMode
from repro.core.optcacheselect import FBCInstance, opt_cache_select
from repro.core.optfilebundle import OptFileBundlePlanner
from repro.core.selection_state import SelectionState


def _workload(seed=7, n_files=40, n_types=30, max_files=4):
    rng = random.Random(seed)
    files = [f"f{i:03d}" for i in range(n_files)]
    sizes = {f: rng.randint(1, 50) for f in files}
    types, seen = [], set()
    while len(types) < n_types:
        b = FileBundle(rng.sample(files, rng.randint(1, max_files)))
        if b.files in seen:
            continue
        seen.add(b.files)
        types.append(b)
    return rng, sizes, types


class TestDifferential:
    """Incremental planner ≡ rebuild planner, plan for plan."""

    @pytest.mark.parametrize(
        "truncation,window,decay",
        [
            (TruncationMode.CACHE_SUPPORTED, None, 1.0),
            (TruncationMode.FULL, None, 1.0),
            (TruncationMode.WINDOW, 13, 1.0),
            (TruncationMode.CACHE_SUPPORTED, None, 0.9),
            (TruncationMode.FULL, None, 0.85),
            (TruncationMode.WINDOW, 7, 0.95),
        ],
    )
    def test_plans_identical(self, truncation, window, decay):
        rng, sizes, types = _workload()
        capacity = sum(sizes.values()) // 3
        kwargs = dict(truncation=truncation, window=window, decay=decay)
        inc = OptFileBundlePlanner(capacity, sizes, incremental=True, **kwargs)
        reb = OptFileBundlePlanner(capacity, sizes, incremental=False, **kwargs)
        assert inc.incremental and not reb.incremental

        resident: set = set()
        for step in range(400):
            bundle = types[rng.randrange(len(types))]
            pa = inc.plan(bundle, resident)
            pb = reb.plan(bundle, resident)
            assert pa == pb, f"plans diverge at step {step}"
            inc.commit(pa)
            reb.commit(pb)
            resident -= pa.evict
            resident |= pa.load | pa.prefetch
            if step % 7 == 6 and resident:
                # a grid fault evicts a file neither planner chose
                victim = sorted(resident)[rng.randrange(len(resident))]
                resident.discard(victim)
                inc.observe_eviction(victim)
                reb.observe_eviction(victim)

    def test_select_matches_opt_cache_select(self):
        """SelectionState.select ≡ opt_cache_select on a fresh instance."""
        rng, sizes, types = _workload(seed=11)
        history = RequestHistory(TruncationMode.FULL)
        state = SelectionState(history, sizes)
        budget = sum(sizes.values()) // 4
        for i, b in enumerate(types):
            history.record(b)
            free = types[rng.randrange(len(types))].files if i % 3 else frozenset()
            got = state.select(budget, free=free)
            inst = FBCInstance.from_history(history, sizes, budget)
            want = opt_cache_select(inst, free_files=free)
            assert got == want


class TestNoRebuildOnWarmPath:
    """The warm plan() path must not rebuild per-arrival structures."""

    def test_plan_avoids_from_history_and_opt_cache_select(self, monkeypatch):
        _, sizes, types = _workload(seed=3)
        planner = OptFileBundlePlanner(
            sum(sizes.values()) // 3,
            sizes,
            truncation=TruncationMode.FULL,
            incremental=True,
        )
        for b in types:
            planner.history.record(b)

        def boom(*a, **k):  # any call would be a per-arrival rebuild
            raise AssertionError("warm plan() rebuilt selection inputs")

        import repro.core.optfilebundle as ofb

        monkeypatch.setattr(ofb.FBCInstance, "from_history", boom)
        monkeypatch.setattr(ofb, "opt_cache_select", boom)
        plan = planner.plan(types[0], set())
        assert plan.keep  # the selection still ran (via SelectionState)

    def test_listener_attaches_to_warm_history(self):
        _, sizes, types = _workload(seed=5)
        history = RequestHistory(TruncationMode.FULL)
        for b in types[:10]:
            history.record(b)
        state = SelectionState(history, sizes)  # replays existing entries
        assert [b for b in state._bundles] == [e.bundle for e in history.entries()]
        for b in types[10:]:
            history.record(b)
        assert len(state._bundles) == len(history)

    def test_rerecording_existing_type_does_not_notify(self):
        _, sizes, types = _workload(seed=6)
        history = RequestHistory(TruncationMode.FULL)
        state = SelectionState(history, sizes)
        history.record(types[0])
        before = len(state._bundles)
        history.record(types[0])  # same type: value bump only
        assert len(state._bundles) == before


class TestSupportedIndex:
    """_supported keeps CACHE_SUPPORTED candidates without history scans."""

    def test_matches_bruteforce_filter(self):
        rng, sizes, types = _workload(seed=9)
        history = RequestHistory(TruncationMode.CACHE_SUPPORTED)
        resident: set = set()
        files = sorted(sizes)
        for step in range(300):
            roll = rng.random()
            if roll < 0.4:
                history.record(types[rng.randrange(len(types))])
            elif roll < 0.7:
                f = files[rng.randrange(len(files))]
                resident.add(f)
                history.on_file_loaded(f)
            elif resident:
                f = sorted(resident)[rng.randrange(len(resident))]
                resident.discard(f)
                history.on_file_evicted(f)
            expected = [
                e for e in history.entries() if e.bundle.issubset(resident)
            ]
            assert history.candidates() == expected  # same entries, same order

    def test_max_degree_matches_bruteforce(self):
        rng, sizes, types = _workload(seed=13)
        history = RequestHistory(TruncationMode.FULL)
        assert history.max_degree() == 0
        for b in types:
            history.record(b)
            degrees = history.degrees()
            assert history.max_degree() == max(degrees.values())


class TestTrustedConstruction:
    def test_trusted_equals_validated(self):
        _, sizes, types = _workload(seed=21)
        bundles = tuple(types[:8])
        values = tuple(float(i + 1) for i in range(8))
        budget = sum(sizes.values()) // 2
        fast = FBCInstance.trusted(bundles, values, sizes, budget)
        slow = FBCInstance(bundles, values, sizes, budget)
        assert fast == slow
        assert opt_cache_select(fast) == opt_cache_select(slow)
