"""Unit tests for the discrete-event engine."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import EventEngine


class TestScheduling:
    def test_events_run_in_time_order(self):
        e = EventEngine()
        order = []
        e.schedule(2.0, lambda: order.append("b"))
        e.schedule(1.0, lambda: order.append("a"))
        e.schedule(3.0, lambda: order.append("c"))
        e.run()
        assert order == ["a", "b", "c"]
        assert e.now == 3.0

    def test_fifo_tiebreak_at_same_time(self):
        e = EventEngine()
        order = []
        for i in range(5):
            e.schedule(1.0, lambda i=i: order.append(i))
        e.run()
        assert order == [0, 1, 2, 3, 4]

    def test_nested_scheduling(self):
        e = EventEngine()
        hits = []

        def first():
            hits.append(("first", e.now))
            e.schedule(5.0, lambda: hits.append(("second", e.now)))

        e.schedule(1.0, first)
        e.run()
        assert hits == [("first", 1.0), ("second", 6.0)]

    def test_past_scheduling_rejected(self):
        e = EventEngine()
        with pytest.raises(SimulationError):
            e.schedule(-1.0, lambda: None)
        e.schedule(1.0, lambda: None)
        e.run()
        with pytest.raises(SimulationError):
            e.schedule_at(0.5, lambda: None)

    def test_step(self):
        e = EventEngine()
        e.schedule(1.0, lambda: None)
        assert e.step() is True
        assert e.step() is False
        assert e.processed == 1


class TestRunLimits:
    def test_until_stops_clock(self):
        e = EventEngine()
        ran = []
        e.schedule(1.0, lambda: ran.append(1))
        e.schedule(10.0, lambda: ran.append(2))
        e.run(until=5.0)
        assert ran == [1]
        assert e.now == 5.0
        assert e.pending == 1
        e.run()
        assert ran == [1, 2]

    def test_until_advances_clock_with_no_events(self):
        e = EventEngine()
        e.run(until=7.0)
        assert e.now == 7.0

    def test_max_events(self):
        e = EventEngine()
        for i in range(10):
            e.schedule(float(i + 1), lambda: None)
        e.run(max_events=3)
        assert e.processed == 3
        assert e.pending == 7
