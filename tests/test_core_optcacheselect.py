"""Unit tests for OptCacheSelect (Algorithm 1)."""

import pytest

from repro.core.bundle import FileBundle
from repro.core.history import RequestHistory, TruncationMode
from repro.core.optcacheselect import (
    FBCInstance,
    opt_cache_select,
    relative_value,
)
from repro.errors import ConfigError


def inst(bundles, values, sizes, budget, degrees=None):
    return FBCInstance(
        bundles=tuple(FileBundle(b) for b in bundles),
        values=tuple(float(v) for v in values),
        sizes=sizes,
        budget=budget,
        degrees=degrees,
    )


class TestFBCInstance:
    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ConfigError):
            inst([["a"]], [1, 2], {"a": 1}, 5)

    def test_negative_budget_rejected(self):
        with pytest.raises(ConfigError):
            inst([["a"]], [1], {"a": 1}, -1)

    def test_nonpositive_value_rejected(self):
        with pytest.raises(ConfigError):
            inst([["a"]], [0], {"a": 1}, 5)

    def test_unknown_file_size_rejected(self):
        with pytest.raises(ConfigError):
            inst([["a", "b"]], [1], {"a": 1}, 5)

    def test_nonpositive_size_rejected(self):
        with pytest.raises(ConfigError):
            inst([["a"]], [1], {"a": 0}, 5)

    def test_effective_degrees_local(self):
        i = inst([["a", "b"], ["b"]], [1, 1], {"a": 1, "b": 1}, 5)
        assert i.effective_degrees() == {"a": 1, "b": 2}

    def test_effective_degrees_floor_supplied(self):
        i = inst(
            [["a", "b"], ["b"]],
            [1, 1],
            {"a": 1, "b": 1},
            5,
            degrees={"a": 5, "b": 1},  # b understated; floored to local 2
        )
        assert i.effective_degrees() == {"a": 5, "b": 2}

    def test_from_history_uses_candidates_and_global_degrees(self):
        h = RequestHistory(TruncationMode.CACHE_SUPPORTED)
        ab, bc = FileBundle(["a", "b"]), FileBundle(["b", "c"])
        h.record(ab)
        h.record(bc)
        h.sync_resident({"a", "b"})
        i = FBCInstance.from_history(h, {"a": 1, "b": 1, "c": 1}, 10)
        assert i.bundles == (ab,)
        assert i.degrees["b"] == 2  # global degree despite bc not candidate


class TestRelativeValue:
    def test_formula(self):
        # v'(r) = v / sum(s(f)/d(f))
        b = FileBundle(["x", "y"])
        v = relative_value(6.0, b, {"x": 2, "y": 4}, {"x": 2, "y": 4})
        assert v == pytest.approx(6.0 / (1.0 + 1.0))

    def test_unknown_degree_treated_as_one(self):
        b = FileBundle(["x"])
        assert relative_value(1.0, b, {"x": 4}, {}) == pytest.approx(0.25)


class TestWorkedExample:
    def test_refined_recovers_optimum(self, example_instance):
        sel = opt_cache_select(example_instance)
        assert sorted(sel.files) == ["f1", "f3", "f5"]
        assert sel.total_value == 3.0
        assert sel.used_bytes == 3
        assert not sel.single_fallback

    def test_popular_files_would_lose(self, example_bundles):
        resident = {"f5", "f6", "f7"}
        supported = [b for b in example_bundles if b.issubset(resident)]
        assert len(supported) == 1  # the popularity fallacy


class TestGreedyBasics:
    def test_empty_instance(self):
        sel = opt_cache_select(inst([], [], {}, 10))
        assert sel.selected == () and sel.total_value == 0.0

    def test_zero_budget(self):
        sel = opt_cache_select(inst([["a"]], [1], {"a": 1}, 0))
        assert sel.selected == ()

    def test_everything_fits(self):
        sel = opt_cache_select(
            inst([["a"], ["b"]], [1, 2], {"a": 1, "b": 1}, 10)
        )
        assert set(sel.selected) == {0, 1}
        assert sel.total_value == 3.0

    def test_budget_respected(self):
        sel = opt_cache_select(
            inst([["a"], ["b"], ["c"]], [3, 2, 1], {"a": 4, "b": 4, "c": 4}, 8)
        )
        assert sel.used_bytes <= 8
        assert sel.total_value == 5.0

    def test_oversized_candidate_skipped(self):
        sel = opt_cache_select(
            inst([["big"], ["s"]], [100, 1], {"big": 50, "s": 1}, 10)
        )
        assert sel.files == {"s"}

    def test_shared_files_charged_once_in_refined(self):
        # Two requests share file 'a' (size 9); budget fits union {a,b,c}
        # only if the shared file is charged once.
        sel = opt_cache_select(
            inst(
                [["a", "b"], ["a", "c"]],
                [1, 1],
                {"a": 9, "b": 1, "c": 1},
                11,
            ),
            refine=True,
        )
        assert sel.total_value == 2.0
        assert sel.files == {"a", "b", "c"}

    def test_plain_double_charges_shared_files(self):
        sel = opt_cache_select(
            inst(
                [["a", "b"], ["a", "c"]],
                [1, 1],
                {"a": 9, "b": 1, "c": 1},
                11,
            ),
            refine=False,
        )
        # 10 + 10 > 11 under per-request charging: only one selected.
        assert sel.total_value == 1.0

    def test_deterministic(self):
        i = inst(
            [["a", "b"], ["b", "c"], ["c"]],
            [2, 2, 1],
            {"a": 2, "b": 2, "c": 2},
            4,
        )
        first = opt_cache_select(i)
        for _ in range(5):
            again = opt_cache_select(i)
            assert again.selected == first.selected


class TestStepThreeSafeguard:
    def _adversarial(self):
        # The decoy has the best adjusted relative value (10/1) and blocks
        # the big high-value request (50/10) from fitting.
        return inst(
            [["s1"], ["big"]],
            [10, 50],
            {"s1": 1, "big": 10},
            10,
        )

    def test_safeguard_picks_single_when_better(self):
        sel = opt_cache_select(self._adversarial())
        assert sel.single_fallback
        assert sel.total_value == 50.0
        assert sel.files == {"big"}

    def test_safeguard_off(self):
        sel = opt_cache_select(self._adversarial(), safeguard=False)
        assert not sel.single_fallback
        assert sel.total_value == 10.0

    def test_single_must_fit_budget(self):
        sel = opt_cache_select(
            inst([["s"], ["big"]], [1, 99], {"s": 1, "big": 100}, 10)
        )
        assert sel.files == {"s"}


class TestFreeFiles:
    def test_free_files_not_charged(self):
        sel = opt_cache_select(
            inst([["a", "b"]], [1], {"a": 100, "b": 1}, 1),
            free_files=frozenset({"a"}),
        )
        assert sel.total_value == 1.0
        assert sel.used_bytes == 1

    def test_fully_free_request_selected_at_zero_budget_plus_one(self):
        sel = opt_cache_select(
            inst([["a"]], [5], {"a": 100}, 1),
            free_files=frozenset({"a"}),
        )
        assert sel.total_value == 5.0
        assert sel.used_bytes == 0

    def test_free_files_affect_single_fallback_fit(self):
        sel = opt_cache_select(
            inst([["a", "big"]], [9], {"a": 1, "big": 100}, 5),
            free_files=frozenset({"big"}),
        )
        assert sel.total_value == 9.0


class TestDegreeBlindRanking:
    def test_effective_degrees_blind(self):
        i = inst([["a", "b"], ["b"]], [1, 1], {"a": 1, "b": 1}, 5)
        assert i.effective_degrees(degree_blind=True) == {"a": 1, "b": 1}

    def test_blind_ranking_misled_by_shared_file(self):
        # File 'h' is shared by three valuable requests.  The paper's
        # adjusted ranking (s'(h) = s(h)/3) ranks them above the decoy and
        # packs all three; degree-blind ranking picks the decoy first and
        # the big requests no longer fit.
        i = inst(
            [["h", "x"], ["h", "y"], ["h", "z"], ["s"]],
            [4, 4, 4, 1],
            {"h": 27, "x": 1, "y": 1, "z": 1, "s": 3},
            30,
        )
        adjusted = opt_cache_select(i, safeguard=False)
        blind = opt_cache_select(i, safeguard=False, degree_blind=True)
        assert adjusted.total_value == 12.0
        assert blind.total_value == 1.0

    def test_blind_equals_adjusted_when_no_sharing(self):
        i = inst(
            [["a"], ["b"], ["c"]],
            [3, 2, 1],
            {"a": 2, "b": 2, "c": 2},
            4,
        )
        a = opt_cache_select(i)
        b = opt_cache_select(i, degree_blind=True)
        assert a.files == b.files
