"""Unit tests for the telemetry package: events, sinks, metrics, recorder."""

import json
import math

import pytest

from repro.errors import ConfigError, TelemetryError
from repro.telemetry import (
    EVENT_SCHEMA,
    EVENT_TYPES,
    Counter,
    FileAdmitted,
    FileEvicted,
    Histogram,
    JobArrived,
    JsonlSink,
    MetricsRegistry,
    NullSink,
    RingSink,
    StageRetried,
    TraceRecorder,
    WindowRolled,
    current_recorder,
    event_from_dict,
    event_to_dict,
    recorder_from_spec,
    span,
    span_profile,
    timed,
    use_recorder,
    validate_event,
    validate_trace_file,
)
from repro.telemetry.recorder import NULL_RECORDER


class TestEvents:
    def test_every_kind_has_a_schema(self):
        assert set(EVENT_TYPES) == set(EVENT_SCHEMA)

    def test_round_trip(self):
        ev = JobArrived(job=3, request_id=17, n_files=2, bytes_requested=512)
        record = event_to_dict(9, ev)
        assert record["seq"] == 9 and record["kind"] == "JobArrived"
        assert event_from_dict(record) == ev

    def test_round_trip_with_detail(self):
        ev = FileEvicted(file="f1", bytes=10, policy="landlord", detail={"credit": 0.5})
        assert event_from_dict(event_to_dict(0, ev)) == ev

    def test_validate_rejects_unknown_kind(self):
        with pytest.raises(TelemetryError, match="unknown event kind"):
            validate_event({"seq": 0, "kind": "Nope"})

    def test_validate_rejects_bad_seq(self):
        record = event_to_dict(0, FileAdmitted(file="f", bytes=1, cause="demand"))
        record["seq"] = -1
        with pytest.raises(TelemetryError, match="seq"):
            validate_event(record)
        record["seq"] = True  # bool is not an acceptable int here
        with pytest.raises(TelemetryError, match="seq"):
            validate_event(record)

    def test_validate_rejects_missing_and_extra_fields(self):
        record = event_to_dict(0, FileAdmitted(file="f", bytes=1, cause="demand"))
        missing = dict(record)
        del missing["cause"]
        with pytest.raises(TelemetryError, match="missing field"):
            validate_event(missing)
        extra = dict(record)
        extra["host"] = "laptop"
        with pytest.raises(TelemetryError, match="unexpected fields"):
            validate_event(extra)

    def test_validate_rejects_bad_enums(self):
        record = event_to_dict(0, FileAdmitted(file="f", bytes=1, cause="magic"))
        with pytest.raises(TelemetryError, match="cause"):
            validate_event(record)

    def test_validate_trace_file(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        events = [
            FileAdmitted(file="a", bytes=1, cause="demand"),
            WindowRolled(index=0, jobs=5, byte_miss_ratio=0.5, request_hit_ratio=0.2),
        ]
        path.write_text(
            "".join(
                json.dumps(event_to_dict(i, e), sort_keys=True) + "\n"
                for i, e in enumerate(events)
            )
        )
        assert validate_trace_file(path) == 2

    def test_validate_trace_file_rejects_seq_gap(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        ev = event_to_dict(1, FileAdmitted(file="a", bytes=1, cause="demand"))
        path.write_text(json.dumps(ev) + "\n")
        with pytest.raises(TelemetryError, match="out of order"):
            validate_trace_file(path)

    def test_validate_trace_file_locates_corrupted_mid_file_line(self, tmp_path):
        """The error names the 1-based line number and the offending field
        of the first invalid record."""
        from repro.errors import TraceValidationError

        events = [
            event_to_dict(i, FileAdmitted(file=f"f{i}", bytes=1, cause="demand"))
            for i in range(5)
        ]
        events[2]["bytes"] = "lots"  # corrupt line 3 only
        path = tmp_path / "trace.jsonl"
        path.write_text("".join(json.dumps(e) + "\n" for e in events))
        with pytest.raises(TraceValidationError, match="line 3") as exc_info:
            validate_trace_file(path)
        exc = exc_info.value
        assert exc.lineno == 3
        assert exc.field == "bytes"
        assert exc.path == str(path)
        assert "bytes" in str(exc)

    def test_validate_trace_file_locates_broken_json(self, tmp_path):
        from repro.errors import TraceValidationError

        good = event_to_dict(0, FileAdmitted(file="a", bytes=1, cause="demand"))
        path = tmp_path / "trace.jsonl"
        path.write_text(json.dumps(good) + "\n" + "{not json\n")
        with pytest.raises(TraceValidationError, match="line 2") as exc_info:
            validate_trace_file(path)
        assert exc_info.value.lineno == 2
        assert exc_info.value.field is None


class TestSinks:
    def test_null_sink_is_inactive(self):
        assert NullSink().active is False

    def test_jsonl_sink_writes_canonical_lines(self, tmp_path):
        path = tmp_path / "t.jsonl"
        sink = JsonlSink(path)
        sink.emit(0, FileAdmitted(file="a", bytes=3, cause="demand"))
        sink.close()
        line = path.read_text().strip()
        assert json.loads(line) == {
            "seq": 0,
            "kind": "FileAdmitted",
            "file": "a",
            "bytes": 3,
            "cause": "demand",
        }
        assert " " not in line  # compact separators, reproducible bytes

    def test_ring_sink_capacity(self):
        sink = RingSink(capacity=2)
        for i in range(5):
            sink.emit(i, FileAdmitted(file=f"f{i}", bytes=1, cause="demand"))
        assert len(sink) == 2
        assert [e.file for e in sink.events] == ["f3", "f4"]
        assert [s for s, _ in sink.sequenced] == [3, 4]

    def test_ring_sink_exact_capacity_boundary(self):
        """Filling to exactly capacity keeps every event; one more drops
        exactly the oldest."""
        sink = RingSink(capacity=3)
        for i in range(3):
            sink.emit(i, FileAdmitted(file=f"f{i}", bytes=1, cause="demand"))
        assert len(sink) == 3
        assert [e.file for e in sink.events] == ["f0", "f1", "f2"]
        sink.emit(3, FileAdmitted(file="f3", bytes=1, cause="demand"))
        assert len(sink) == 3
        assert [e.file for e in sink.events] == ["f1", "f2", "f3"]

    def test_ring_sink_replay_order_after_overflow(self):
        """After wraparound, replaying the ring into a recorder preserves
        arrival order and the original sequence numbers survive in
        ``sequenced``."""
        sink = RingSink(capacity=4)
        rec = TraceRecorder(sink)
        for i in range(10):
            rec.emit(FileAdmitted(file=f"f{i}", bytes=1, cause="demand"))
        # the ring holds the latest 4 events, oldest → newest
        assert [s for s, _ in sink.sequenced] == [6, 7, 8, 9]
        assert [e.file for e in sink.events] == ["f6", "f7", "f8", "f9"]
        # replaying the survivors into a fresh recorder re-sequences them
        # contiguously but keeps their relative order
        replay_sink = RingSink(capacity=4)
        replay_rec = TraceRecorder(replay_sink)
        replay_rec.replay(sink.events)
        assert [s for s, _ in replay_sink.sequenced] == [0, 1, 2, 3]
        assert [e.file for e in replay_sink.events] == ["f6", "f7", "f8", "f9"]

    def test_ring_sink_wrapped_contents_remain_coherent(self):
        """Wraparound drops whole events, never tears one: every surviving
        (seq, event) pair is intact and seqs stay strictly increasing."""
        sink = RingSink(capacity=5)
        rec = TraceRecorder(sink)
        for i in range(23):
            rec.emit(FileAdmitted(file=f"f{i}", bytes=i, cause="demand"))
        pairs = list(sink.sequenced)
        assert len(pairs) == 5
        assert all(e.file == f"f{s}" and e.bytes == s for s, e in pairs)
        seqs = [s for s, _ in pairs]
        assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)


class TestRecorder:
    def test_null_recorder_is_inert(self):
        assert NULL_RECORDER.active is False
        NULL_RECORDER.emit(FileAdmitted(file="f", bytes=1, cause="demand"))
        assert NULL_RECORDER.events_emitted == 0

    def test_sequencing_and_replay(self):
        sink = RingSink()
        rec = TraceRecorder(sink)
        a = FileAdmitted(file="a", bytes=1, cause="demand")
        b = FileAdmitted(file="b", bytes=2, cause="prefetch")
        rec.emit(a)
        rec.replay([b, a])
        assert [s for s, _ in sink.sequenced] == [0, 1, 2]
        assert [e for _, e in sink.sequenced] == [a, b, a]

    def test_ambient_recorder_nesting(self):
        assert current_recorder() is NULL_RECORDER
        outer = TraceRecorder(RingSink())
        inner = TraceRecorder(RingSink())
        with use_recorder(outer):
            assert current_recorder() is outer
            with use_recorder(inner):
                assert current_recorder() is inner
            assert current_recorder() is outer
        assert current_recorder() is NULL_RECORDER

    def test_recorder_from_spec(self, tmp_path):
        assert recorder_from_spec("null").active is False
        assert recorder_from_spec("off").active is False
        jsonl = recorder_from_spec(f"jsonl:{tmp_path / 'x.jsonl'}")
        assert jsonl.active and isinstance(jsonl.sink, JsonlSink)
        jsonl.close()
        ring = recorder_from_spec("ring:64")
        assert isinstance(ring.sink, RingSink)
        for bad in ("jsonl:", "ring:many", "carrier-pigeon"):
            with pytest.raises(ConfigError):
                recorder_from_spec(bad)

    def test_recorder_from_spec_rejects_trailing_junk(self):
        """``null:`` / ``none:`` / ``off:`` take no argument — trailing
        junk is a typo, not a silently inert recorder."""
        for spec in ("null:junk", "none:", "off:jsonl"):
            with pytest.raises(ConfigError, match="takes no argument"):
                recorder_from_spec(spec)

    def test_recorder_from_spec_errors_quote_offending_spec(self):
        """Every malformed spec's error message quotes the full spec the
        user typed, so the typo is visible in the error itself."""
        cases = {
            "jsonl:": "needs a path",
            "ring:many": "must be an int",
            "null:junk": "takes no argument",
            "carrier-pigeon": "unknown telemetry spec",
        }
        for spec, fragment in cases.items():
            with pytest.raises(ConfigError) as exc_info:
                recorder_from_spec(spec)
            message = str(exc_info.value)
            assert repr(spec) in message
            assert fragment in message

    def test_context_manager_closes_sink_on_error(self, tmp_path):
        """A JsonlSink is flushed to disk even when the traced block
        raises — the partial trace stays usable."""
        path = tmp_path / "partial.jsonl"
        with pytest.raises(RuntimeError, match="boom"):
            with TraceRecorder(JsonlSink(path)) as rec:
                rec.emit(FileAdmitted(file="a", bytes=1, cause="demand"))
                raise RuntimeError("boom")
        assert validate_trace_file(path) == 1

    def test_span_records_into_registry(self):
        rec = TraceRecorder(RingSink())
        with rec.span("unit.test"):
            pass
        hist = rec.registry.get("span_unit_test_seconds")
        assert hist.count == 1 and hist.max >= 0.0

    def test_null_recorder_span_is_noop(self):
        rec = TraceRecorder(NullSink(), profile=False)
        with rec.span("unit.test"):
            pass
        assert rec.profiling is False


class TestMetrics:
    def test_counter_monotonic(self):
        c = Counter("x_total")
        c.inc()
        c.inc(4)
        assert c.value == 5
        with pytest.raises(TelemetryError):
            c.inc(-1)

    def test_histogram_stats_and_buckets(self):
        h = Histogram("h", buckets=(1.0, 10.0))
        for v in (0.5, 5.0, 50.0):
            h.observe(v)
        assert h.count == 3
        assert h.mean == pytest.approx(55.5 / 3)
        assert h.min == 0.5 and h.max == 50.0
        assert h.bucket_counts() == [(1.0, 1), (10.0, 2), (math.inf, 3)]

    def test_registry_get_or_create_and_collision(self):
        reg = MetricsRegistry()
        assert reg.counter("a_total") is reg.counter("a_total")
        with pytest.raises(TelemetryError, match="already registered"):
            reg.gauge("a_total")

    def test_exporters(self):
        reg = MetricsRegistry()
        reg.counter("jobs_total", "jobs").inc(3)
        reg.histogram("lat_seconds", buckets=(1.0,)).observe(0.5)
        text = reg.to_prometheus()
        assert "# TYPE jobs_total counter" in text
        assert "jobs_total 3" in text
        assert 'lat_seconds_bucket{le="1.0"} 1' in text
        as_dict = reg.as_dict()
        assert as_dict["jobs_total"] == {"type": "counter", "value": 3}
        assert as_dict["lat_seconds"]["count"] == 1

    def test_merge_counters(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("n_total").inc(1)
        b.counter("n_total").inc(2)
        b.gauge("g").set(9)
        a.merge_counters(b)
        assert a.counter("n_total").value == 3
        assert "g" not in a  # gauges are not merged


class TestPrometheusConformance:
    """Text exposition format 0.0.4: escaping, headers, parseability."""

    def test_content_type_constant(self):
        from repro.telemetry import PROMETHEUS_CONTENT_TYPE

        assert PROMETHEUS_CONTENT_TYPE == (
            "text/plain; version=0.0.4; charset=utf-8"
        )

    def test_help_escaping_round_trips(self):
        reg = MetricsRegistry()
        original = 'jobs with a \\ backslash\nand a newline'
        reg.counter("jobs_total", original).inc(1)
        text = reg.to_prometheus()
        help_line = next(
            line for line in text.splitlines() if line.startswith("# HELP")
        )
        escaped = help_line.removeprefix("# HELP jobs_total ")
        assert "\n" not in escaped
        assert escaped == "jobs with a \\\\ backslash\\nand a newline"
        # the format's unescape recovers the original text exactly
        unescaped = escaped.replace("\\\\", "\x00").replace("\\n", "\n")
        assert unescaped.replace("\x00", "\\") == original

    def test_label_value_escaping(self):
        from repro.telemetry.metrics import _escape_label_value

        assert _escape_label_value('a"b\\c\nd') == 'a\\"b\\\\c\\nd'

    def test_type_and_help_once_per_family(self):
        reg = MetricsRegistry()
        reg.counter("jobs_total", "jobs").inc(3)
        reg.histogram("lat_seconds", "latency", buckets=(0.5, 2.5)).observe(1.0)
        text = reg.to_prometheus()
        lines = text.splitlines()
        assert lines.count("# TYPE lat_seconds histogram") == 1
        assert lines.count("# HELP lat_seconds latency") == 1
        # bucket/sum/count series share the family header — no extra
        # TYPE/HELP lines for the suffixed series.  The estimated-quantile
        # companion is its own gauge family (one header of its own).
        suffixed = [line for line in lines if "TYPE lat_seconds_" in line]
        assert suffixed == ["# TYPE lat_seconds_quantile gauge"]
        assert lines.count("# TYPE lat_seconds_quantile gauge") == 1
        assert text.endswith("\n")

    def test_exposition_parses_back(self):
        """Round-trip: every sample line re-parses, histogram buckets
        are cumulative and end at +Inf."""
        import re

        reg = MetricsRegistry()
        reg.counter("jobs_total", "jobs").inc(3)
        reg.gauge("occupancy_bytes").set(12.5)
        h = reg.histogram("lat_seconds", "latency", buckets=(0.5, 2.5))
        for v in (0.1, 1.0, 9.0):
            h.observe(v)
        sample_re = re.compile(
            r"^([a-zA-Z_:][a-zA-Z0-9_:]*)"              # metric name
            r'(?:\{(le|quantile)="([^"]*)"\})?'         # optional le/quantile
            r" (-?[0-9.e+infINF]+)$"                    # value
        )
        buckets: list[tuple[float, float]] = []
        quantiles: dict[float, float] = {}
        parsed = {}
        for line in reg.to_prometheus().splitlines():
            if line.startswith("#"):
                continue
            match = sample_re.match(line)
            assert match, f"unparseable sample line: {line!r}"
            name, label, label_value, value = match.groups()
            if label == "le":
                buckets.append(
                    (
                        math.inf if label_value == "+Inf" else float(label_value),
                        float(value),
                    )
                )
            elif label == "quantile":
                quantiles[float(label_value)] = float(value)
            else:
                parsed[name] = float(value)
        assert parsed["jobs_total"] == 3.0
        assert parsed["occupancy_bytes"] == 12.5
        assert parsed["lat_seconds_count"] == 3.0
        assert parsed["lat_seconds_sum"] == pytest.approx(10.1)
        assert buckets[-1][0] == math.inf and buckets[-1][1] == 3
        counts = [c for _le, c in buckets]
        assert counts == sorted(counts)  # cumulative
        # the quantile companion gauges cover the exported quantiles and
        # stay within the observed value range
        assert set(quantiles) == {0.5, 0.95, 0.99}
        for q_value in quantiles.values():
            assert 0.1 <= q_value <= 9.0


class TestProfiling:
    def test_ambient_span_and_timed(self):
        rec = TraceRecorder(RingSink())
        with use_recorder(rec):
            with span("outer.block"):
                pass

            @timed("inner.fn")
            def f(x):
                return x + 1

            assert f(1) == 2
        rows = span_profile(rec.registry)
        names = {r["span"] for r in rows}
        assert names == {"outer_block", "inner_fn"}
        assert all(r["calls"] == 1 for r in rows)


class TestEventEmissionHelpers:
    def test_stage_retried_schema_accepts_floats(self):
        record = event_to_dict(0, StageRetried(file="f", attempt=1, delay=2.5, t=7.0))
        validate_event(record)
