"""Unit tests for trace transformations."""

import numpy as np
import pytest

from repro.core.bundle import FileBundle
from repro.core.request import Request, RequestStream
from repro.errors import ConfigError
from repro.types import FileCatalog
from repro.utils.rng import derive_rng
from repro.workload.trace import Trace
from repro.workload.transforms import (
    concatenate,
    explode_to_single_file_jobs,
    filter_trace,
    hybrid_trace,
    interleave,
    truncate,
)

SIZES = {"a": 1, "b": 2, "c": 3, "d": 4}


def trace_of(bundles, times=None):
    stream = RequestStream(
        Request(
            i,
            FileBundle(b),
            arrival_time=times[i] if times else 0.0,
        )
        for i, b in enumerate(bundles)
    )
    return Trace(FileCatalog(SIZES), stream)


class TestTruncate:
    def test_keeps_prefix(self):
        t = truncate(trace_of([["a"], ["b"], ["c"]]), 2)
        assert t.bundles() == [FileBundle(["a"]), FileBundle(["b"])]
        assert t.meta["truncated_to"] == 2

    def test_zero(self):
        assert len(truncate(trace_of([["a"]]), 0)) == 0

    def test_negative_rejected(self):
        with pytest.raises(ConfigError):
            truncate(trace_of([["a"]]), -1)


class TestFilter:
    def test_predicate_and_renumber(self):
        t = filter_trace(
            trace_of([["a"], ["b", "c"], ["d"]]), lambda r: len(r.bundle) == 1
        )
        assert len(t) == 2
        assert [r.request_id for r in t] == [0, 1]


class TestConcatenate:
    def test_appends_and_offsets_times(self):
        a = trace_of([["a"]], times=[5.0])
        b = trace_of([["b"]], times=[1.0])
        t = concatenate(a, b)
        assert len(t) == 2
        assert t.stream[1].arrival_time == 6.0

    def test_conflicting_sizes_rejected(self):
        a = trace_of([["a"]])
        other = Trace(
            FileCatalog({"a": 99}),
            RequestStream([Request(0, FileBundle(["a"]))]),
        )
        with pytest.raises(ConfigError, match="conflicting"):
            concatenate(a, other)


class TestExplode:
    def test_one_job_per_file(self):
        t = explode_to_single_file_jobs(trace_of([["a", "b"], ["c"]]))
        assert len(t) == 3
        assert all(len(r.bundle) == 1 for r in t)
        assert t.meta["exploded"] is True

    def test_same_total_bytes_requested(self):
        original = trace_of([["a", "b"], ["c", "d"]])
        exploded = explode_to_single_file_jobs(original)
        assert (
            exploded.total_requested_bytes()
            == original.total_requested_bytes()
        )


class TestInterleave:
    def test_preserves_internal_order(self):
        a = trace_of([["a"], ["b"]])
        b = trace_of([["c"], ["d"]])
        t = interleave(a, b, derive_rng(0, "i"))
        seq = t.bundles()
        assert seq.index(FileBundle(["a"])) < seq.index(FileBundle(["b"]))
        assert seq.index(FileBundle(["c"])) < seq.index(FileBundle(["d"]))
        assert len(t) == 4

    def test_p_first_extremes(self):
        a = trace_of([["a"], ["b"]])
        b = trace_of([["c"], ["d"]])
        t = interleave(a, b, derive_rng(0, "i"), p_first=1.0)
        assert t.bundles()[:2] == [FileBundle(["a"]), FileBundle(["b"])]

    def test_invalid_p_rejected(self):
        with pytest.raises(ConfigError):
            interleave(
                trace_of([["a"]]), trace_of([["b"]]), derive_rng(0, "i"), p_first=2.0
            )


class TestHybrid:
    def test_fraction_zero_is_identity_modulo_order(self):
        base = trace_of([["a", "b"], ["c"]])
        t = hybrid_trace(base, derive_rng(1, "h"), single_file_fraction=0.0)
        assert sorted(map(len, t.bundles())) == [1, 2]

    def test_fraction_one_all_singletons(self):
        base = trace_of([["a", "b"], ["c", "d"]])
        t = hybrid_trace(base, derive_rng(1, "h"), single_file_fraction=1.0)
        assert all(len(b) == 1 for b in t.bundles())
        assert len(t) == 4

    def test_meta_recorded(self):
        t = hybrid_trace(
            trace_of([["a"]]), derive_rng(0, "h"), single_file_fraction=0.5
        )
        assert t.meta["hybrid"] is True

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ConfigError):
            hybrid_trace(
                trace_of([["a"]]), derive_rng(0, "h"), single_file_fraction=1.5
            )

    def test_deterministic(self):
        base = trace_of([["a", "b"], ["c"], ["d"], ["a", "c"]])
        t1 = hybrid_trace(base, derive_rng(3, "h"), single_file_fraction=0.5)
        t2 = hybrid_trace(base, derive_rng(3, "h"), single_file_fraction=0.5)
        assert t1.bundles() == t2.bundles()
