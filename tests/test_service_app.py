"""End-to-end coordinator service tests: HTTP surface + differential.

The headline contracts:

* at client concurrency 1 the service's decision trace is
  **byte-identical** to the batch simulator's on the same workload;
* at higher concurrency the trace still passes invariant checking and
  reconstructs the live cache exactly (only arrival order interleaves);
* an injected crash mid-load, followed by ``--resume`` and a loadgen
  continuation from ``/healthz``, yields a stitched trace and final
  metrics byte-identical to an uninterrupted run (SIGKILL variant runs
  through the real CLI in a subprocess).
"""

from __future__ import annotations

import http.client
import json
import os
import re
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.errors import InjectedCrashError
from repro.faults.crash import CrashSpec
from repro.faults.spec import FaultSpec
from repro.service import (
    ROUTES,
    CoordinatorState,
    ServiceConfig,
    run_loadgen,
)
from repro.service.testing import running_service
from repro.sim.simulator import SimulationConfig, simulate_trace
from repro.telemetry.metrics import PROMETHEUS_CONTENT_TYPE
from repro.telemetry.recorder import TraceRecorder
from repro.telemetry.sinks import JsonlSink
from repro.telemetry.forensics.reconstruct import (
    reconstruct,
    verify_against_cache,
)
from repro.types import MB
from repro.workload.generator import WorkloadSpec, generate_trace

CACHE = 32 * MB
POLICY = "landlord"
CKPT_EVERY = 25


@pytest.fixture(scope="module")
def trace():
    return generate_trace(
        WorkloadSpec(
            cache_size=CACHE,
            n_files=80,
            n_request_types=40,
            n_jobs=100,
            popularity="zipf",
            max_file_fraction=0.05,
            max_bundle_fraction=0.25,
            seed=23,
        )
    )


@pytest.fixture(scope="module")
def workload_path(trace, tmp_path_factory):
    path = tmp_path_factory.mktemp("svc") / "workload.jsonl"
    trace.dump(path)
    return path


def _config(workload_path, run_dir, **kw) -> ServiceConfig:
    return ServiceConfig(
        workload=workload_path,
        cache_size=CACHE,
        run_dir=run_dir,
        policy=POLICY,
        checkpoint_every=CKPT_EVERY,
        **kw,
    )


def _get(port: int, path: str, method: str = "GET", body=None):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=10)
    try:
        payload = json.dumps(body) if body is not None else None
        conn.request(method, path, body=payload)
        response = conn.getresponse()
        data = response.read()
        return response.status, response.getheader("Content-Type"), data
    finally:
        conn.close()


def _batch_reference(trace, path) -> object:
    with TraceRecorder(JsonlSink(path)) as rec:
        return simulate_trace(
            trace,
            SimulationConfig(cache_size=CACHE, policy=POLICY),
            recorder=rec,
        )


class TestHttpSurface:
    def test_read_endpoints_and_job_submission(self, workload_path, tmp_path):
        state = CoordinatorState.create(_config(workload_path, tmp_path / "run"))
        with running_service(state) as svc:
            status, ctype, body = _get(svc.port, "/healthz")
            assert status == 200 and ctype == "application/json"
            health = json.loads(body)
            assert health["status"] == "ok" and health["jobs"] == 0
            assert health["policy"] == POLICY

            status, _, body = _get(svc.port, "/v1/config")
            config = json.loads(body)
            assert config["policy"] == POLICY
            assert config["cache_size"] == CACHE
            assert config["checkpoint_every"] == CKPT_EVERY

            files = sorted(state.sizes)[:2]
            status, _, body = _get(
                svc.port, "/v1/jobs", "POST",
                {"files": files, "priority": 2.0},
            )
            assert status == 200
            doc = json.loads(body)
            assert doc["outcome"]["job"] == 0
            assert doc["outcome"]["loaded"] == files
            assert doc["retries"] == 0
            assert [e["kind"] for e in doc["events"]][0] == "JobArrived"

            status, _, body = _get(svc.port, "/v1/cache")
            cache = json.loads(body)
            assert cache["capacity"] == CACHE and cache["jobs"] == 1
            resident_ids = {fid for fid, _size in cache["residents"]}
            assert set(files) <= resident_ids
            assert cache["used"] == sum(s for _f, s in cache["residents"])

            status, ctype, body = _get(svc.port, "/metrics")
            assert status == 200 and ctype == PROMETHEUS_CONTENT_TYPE
            text = body.decode()
            assert "service_http_requests_total" in text
            assert "service_decision_seconds_count" in text

    def test_error_statuses(self, workload_path, tmp_path):
        state = CoordinatorState.create(_config(workload_path, tmp_path / "run"))
        with running_service(state) as svc:
            assert _get(svc.port, "/nope")[0] == 404
            assert _get(svc.port, "/v1/jobs", "GET")[0] == 405
            assert _get(svc.port, "/healthz", "POST")[0] == 405

            for bad in (
                [1, 2],                        # not an object
                {"files": "f1"},               # files not a list
                {"files": []},                 # empty bundle
                {"files": ["not-a-file"]},     # outside the catalog
                {"files": ["f000001"], "priority": True},  # bool priority
            ):
                status, _, body = _get(svc.port, "/v1/jobs", "POST", bad)
                assert status == 400, bad
                assert "error" in json.loads(body)

            # malformed JSON body
            conn = http.client.HTTPConnection("127.0.0.1", svc.port, timeout=10)
            conn.request("POST", "/v1/jobs", body="{nope")
            assert conn.getresponse().status == 400
            conn.close()

            # rejected jobs are not persisted
            status, _, body = _get(svc.port, "/healthz")
            assert json.loads(body)["jobs"] == 0

    def test_routes_table_matches_served_surface(self, workload_path, tmp_path):
        """Every ROUTES entry answers 200; ROUTES is exhaustive."""
        state = CoordinatorState.create(_config(workload_path, tmp_path / "run"))
        files = sorted(state.sizes)[:1]
        with running_service(state) as svc:
            for method, path in ROUTES:
                body = {"files": files} if method == "POST" else None
                status, _, _ = _get(svc.port, path, method, body)
                assert status == 200, (method, path)


class TestDifferential:
    def test_sequential_load_byte_identical_to_batch(
        self, trace, workload_path, tmp_path
    ):
        reference = _batch_reference(trace, tmp_path / "batch.jsonl")
        run_dir = tmp_path / "run"
        state = CoordinatorState.create(_config(workload_path, run_dir))
        with running_service(state) as svc:
            report = run_loadgen(trace, svc.host, svc.port, concurrency=1)
        assert report.jobs == len(list(trace)) and report.errors == 0
        assert (run_dir / "trace.jsonl").read_bytes() == (
            tmp_path / "batch.jsonl"
        ).read_bytes()
        snap = state.metrics.snapshot()
        assert snap.byte_miss_ratio == reference.metrics.byte_miss_ratio
        assert report.byte_miss_ratio == pytest.approx(
            reference.metrics.byte_miss_ratio
        )

    def test_concurrent_load_reconstructs_live_cache(
        self, trace, workload_path, tmp_path
    ):
        run_dir = tmp_path / "run"
        state = CoordinatorState.create(
            _config(workload_path, run_dir, check_invariants=True)
        )
        with running_service(state) as svc:
            report = run_loadgen(trace, svc.host, svc.port, concurrency=4)
        assert report.jobs == len(list(trace)) and report.errors == 0
        recon = reconstruct(run_dir / "trace.jsonl", capacity=CACHE)
        recon.raise_if_violations()
        assert verify_against_cache(recon, state.cache) == []

    def test_fault_injection_stays_out_of_the_trace(
        self, trace, workload_path, tmp_path
    ):
        """Chaos surfaces as retries + a counter, never as trace events."""
        reference = tmp_path / "batch.jsonl"
        _batch_reference(trace, reference)
        run_dir = tmp_path / "run"
        state = CoordinatorState.create(
            _config(
                workload_path,
                run_dir,
                fault=FaultSpec(seed=3, transfer_failure_rate=0.2),
            )
        )
        with running_service(state) as svc:
            report = run_loadgen(trace, svc.host, svc.port, concurrency=1)
        assert report.retries > 0
        assert (run_dir / "trace.jsonl").read_bytes() == reference.read_bytes()


class TestCrashResume:
    def test_injected_crash_then_resume_byte_identical(
        self, trace, workload_path, tmp_path
    ):
        reference = tmp_path / "batch.jsonl"
        reference_result = _batch_reference(trace, reference)
        run_dir = tmp_path / "run"
        crash_at = CKPT_EVERY + 7  # past a checkpoint boundary
        state = CoordinatorState.create(
            _config(
                workload_path,
                run_dir,
                crash=CrashSpec(at_mutation=crash_at, mode="raise"),
            )
        )
        with pytest.raises(InjectedCrashError):
            with running_service(state) as svc:
                report = run_loadgen(trace, svc.host, svc.port, concurrency=1)
                assert report.errors >= 1  # the in-flight job died

        resumed = CoordinatorState.resume(run_dir)
        assert resumed.resumed_from_job == CKPT_EVERY
        with running_service(resumed) as svc:
            report = run_loadgen(
                trace, svc.host, svc.port, concurrency=1, start_job="auto"
            )
        assert report.errors == 0
        assert (run_dir / "trace.jsonl").read_bytes() == reference.read_bytes()
        snap = resumed.metrics.snapshot()
        assert snap.byte_miss_ratio == reference_result.metrics.byte_miss_ratio
        assert snap.jobs == reference_result.metrics.jobs

    def test_sigkill_mid_load_then_cli_resume(
        self, trace, workload_path, tmp_path
    ):
        """The real thing: serve in a subprocess, SIGKILL it mid-load,
        resume through the CLI, finish with --start-job auto, and the
        stitched trace equals the uninterrupted reference's bytes."""
        reference = tmp_path / "batch.jsonl"
        _batch_reference(trace, reference)
        run_dir = tmp_path / "run"
        env = dict(os.environ)
        env["PYTHONPATH"] = str(Path(__file__).resolve().parents[1] / "src")

        def _spawn(extra):
            return subprocess.Popen(
                [
                    sys.executable, "-m", "repro.cli", "serve",
                    "--run-dir", str(run_dir),
                    "--policy", POLICY,
                    "--cache-size", str(CACHE),
                    "--checkpoint-every", str(CKPT_EVERY),
                    *extra,
                ],
                stdout=subprocess.PIPE,
                stderr=subprocess.STDOUT,
                text=True,
                env=env,
            )

        def _port_of(proc):
            deadline = time.monotonic() + 30
            line = ""
            while time.monotonic() < deadline:
                line = proc.stdout.readline()
                match = re.search(r"listening on http://[^:]+:(\d+)", line)
                if match:
                    return int(match.group(1))
            raise AssertionError(f"no listening line, last: {line!r}")

        server = _spawn([str(workload_path)])
        try:
            port = _port_of(server)
            run_loadgen(trace, "127.0.0.1", port, concurrency=1, limit=40)
            os.kill(server.pid, signal.SIGKILL)
            server.wait(timeout=30)
        finally:
            if server.poll() is None:
                server.kill()

        server = _spawn(["--resume"])
        try:
            port = _port_of(server)
            report = run_loadgen(
                trace, "127.0.0.1", port, concurrency=1, start_job="auto"
            )
            assert report.errors == 0
            os.kill(server.pid, signal.SIGTERM)
            assert server.wait(timeout=30) == 0
        finally:
            if server.poll() is None:
                server.kill()

        assert (run_dir / "trace.jsonl").read_bytes() == reference.read_bytes()
        recon = reconstruct(run_dir / "trace.jsonl", capacity=CACHE)
        recon.raise_if_violations()


class TestStateValidation:
    def test_create_refuses_existing_run(self, workload_path, tmp_path):
        run_dir = tmp_path / "run"
        CoordinatorState.create(_config(workload_path, run_dir)).close()
        with pytest.raises(Exception, match="already"):
            CoordinatorState.create(_config(workload_path, run_dir))

    def test_submit_after_close_rejected(self, workload_path, tmp_path):
        state = CoordinatorState.create(_config(workload_path, tmp_path / "r"))
        files = sorted(state.sizes)[:1]
        state.close()
        from repro.errors import ServiceError

        with pytest.raises(ServiceError, match="closed"):
            state.submit(files)
        state.close()  # idempotent
