"""Unit tests for ASCII table rendering."""

from repro.utils.tables import render_table


def test_basic_render():
    out = render_table(["a", "b"], [[1, 2.5]])
    lines = out.splitlines()
    assert lines[0].startswith("a")
    assert "2.5000" in lines[2]


def test_title():
    out = render_table(["x"], [[1]], title="T")
    assert out.splitlines()[0] == "T"


def test_text_left_numeric_right_alignment():
    out = render_table(["name", "val"], [["abc", 1], ["x", 22]])
    lines = out.splitlines()
    assert lines[2].startswith("abc")
    # numeric column right-aligned: '22' touches the right edge of its column
    assert lines[3].rstrip().endswith("22")


def test_short_rows_padded():
    out = render_table(["a", "b"], [["only"]])
    assert "only" in out


def test_float_format_override():
    out = render_table(["v"], [[1.23456]], floatfmt=".1f")
    assert "1.2" in out and "1.2346" not in out


def test_column_width_accounts_for_data():
    out = render_table(["a"], [["a-very-long-cell"]])
    header, sep, row = out.splitlines()
    assert len(sep) >= len("a-very-long-cell")


def test_empty_rows():
    out = render_table(["a", "b"], [])
    assert len(out.splitlines()) == 2
