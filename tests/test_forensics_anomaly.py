"""Rolling median + MAD anomaly detection over metric series."""

import pytest

from repro.errors import ConfigError
from repro.telemetry.events import WindowRolled
from repro.telemetry.forensics import TraceLog, detect_anomalies, window_anomalies


def rolled(values, start_index=0):
    return [
        WindowRolled(
            index=start_index + i,
            jobs=10,
            byte_miss_ratio=v,
            request_hit_ratio=1.0 - v,
        )
        for i, v in enumerate(values)
    ]


class TestDetectAnomalies:
    def test_flags_spike_against_flat_history(self):
        series = [0.5] * 20 + [0.9] + [0.5] * 10
        found = detect_anomalies(series)
        assert [a.index for a in found] == [20]
        a = found[0]
        assert a.value == 0.9
        assert a.median == pytest.approx(0.5)
        assert a.score > 3.5

    def test_quiet_series_has_no_anomalies(self):
        series = [0.5 + 0.01 * (i % 3) for i in range(40)]
        assert detect_anomalies(series) == []

    def test_noisy_baseline_absorbs_small_jumps(self):
        # cycling 0.4/0.5/0.6 gives median 0.5 and MAD 0.1; a 0.7 is only
        # 0.6745 * 0.2 / 0.1 = 1.3 robust z away
        series = [0.4, 0.5, 0.6] * 7 + [0.7]
        assert detect_anomalies(series) == []
        # ... but a 2.0 is 10 z away
        assert [a.index for a in detect_anomalies(series[:-1] + [2.0])] == [21]

    def test_first_points_never_flagged(self):
        series = [0.5, 9.9, 0.5, 0.5, 0.5, 0.5]
        found = detect_anomalies(series, min_history=5)
        assert all(a.index >= 5 for a in found)

    def test_trailing_window_keeps_anomaly_out_of_its_own_baseline(self):
        # the spike is judged against the points before it only; the
        # points after it are judged against a history containing the
        # spike, which the median shrugs off
        series = [0.5] * 10 + [5.0] + [0.5] * 10
        found = detect_anomalies(series)
        assert [a.index for a in found] == [10]

    def test_threshold_is_respected(self):
        series = [0.5] * 10 + [0.9]
        assert detect_anomalies(series, threshold=1e12, min_mad=1.0) == []

    def test_parameter_validation(self):
        with pytest.raises(ConfigError):
            detect_anomalies([1.0], window=1)
        with pytest.raises(ConfigError):
            detect_anomalies([1.0], min_history=1)
        with pytest.raises(ConfigError):
            detect_anomalies([1.0], threshold=0.0)
        with pytest.raises(ConfigError):
            detect_anomalies([1.0], min_mad=0.0)


class TestWindowAnomalies:
    def test_locates_anomaly_in_trace_windows(self):
        log = TraceLog(rolled([0.5] * 12 + [0.95] + [0.5] * 3))
        found = window_anomalies(log)
        assert len(found) == 1
        wa = found[0]
        assert wa.run == 0
        assert wa.window_index == 12
        assert wa.jobs == 10
        assert wa.anomaly.value == 0.95

    def test_runs_are_analysed_independently(self):
        # run 0 settles at 0.8, run 1 at 0.2: neither level is anomalous
        # within its own run even though each would be against the other
        log = TraceLog(rolled([0.8] * 15) + rolled([0.2] * 15))
        assert window_anomalies(log) == []

    def test_trace_without_windows_is_empty(self):
        assert window_anomalies(TraceLog([])) == []
