"""Unit tests for LRU-K."""

import pytest

from repro.cache.lruk import LRUKPolicy
from repro.cache.state import CacheState
from repro.core.bundle import FileBundle
from repro.errors import ConfigError

SIZES = {f"f{i}": 10 for i in range(8)}


def serve(policy, cache, bundle):
    missing = cache.missing(bundle)
    d = policy.on_request(bundle)
    for f in missing:
        cache.load(f, SIZES[f])
    policy.on_serviced(bundle, frozenset(missing), not missing)
    return d


class TestLRUK:
    def test_k_validation(self):
        with pytest.raises(ConfigError):
            LRUKPolicy(k=0)

    def test_scan_resistant(self):
        """A twice-referenced file survives one-off scan traffic."""
        p, c = LRUKPolicy(k=2), CacheState(30)
        p.bind(c, SIZES)
        serve(p, c, FileBundle(["f0"]))
        serve(p, c, FileBundle(["f0"]))  # f0 now has 2 references
        serve(p, c, FileBundle(["f1"]))  # scan
        serve(p, c, FileBundle(["f2"]))  # scan
        serve(p, c, FileBundle(["f3"]))  # needs eviction
        assert "f0" in c  # LRU would have evicted f0 here... (oldest touch)
        # the single-reference scans are preferred victims
        assert ("f1" not in c) or ("f2" not in c)

    def test_among_k_referenced_evicts_oldest_kth(self):
        p, c = LRUKPolicy(k=2), CacheState(30)
        p.bind(c, SIZES)
        for _ in range(2):
            serve(p, c, FileBundle(["f0"]))
        for _ in range(2):
            serve(p, c, FileBundle(["f1"]))
        for _ in range(2):
            serve(p, c, FileBundle(["f2"]))
        dec = serve(p, c, FileBundle(["f3"]))
        assert dec.evicted == {"f0"}

    def test_k1_behaves_like_lru(self):
        from repro.cache.lru import LRUPolicy

        seq = [["f0"], ["f1"], ["f2"], ["f0"], ["f3"], ["f1"], ["f4"], ["f2"]]
        evictions = {}
        for cls, kwargs in ((LRUKPolicy, {"k": 1}), (LRUPolicy, {})):
            p, c = cls(**kwargs), CacheState(30)
            p.bind(c, SIZES)
            ev = []
            for b in seq:
                ev.append(serve(p, c, FileBundle(b)).evicted)
            evictions[cls.__name__] = ev
        assert evictions["LRUKPolicy"] == evictions["LRUPolicy"]

    def test_registered(self):
        from repro.cache.registry import POLICY_REGISTRY

        assert POLICY_REGISTRY["lruk"] is LRUKPolicy

    def test_reset(self):
        p = LRUKPolicy()
        p.bind(CacheState(30), SIZES)
        p.reset()
        p.bind(CacheState(30), SIZES)
