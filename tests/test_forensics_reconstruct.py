"""Differential tests: trace reconstruction vs. the live simulator.

Every recorded run must be self-verifying — replaying its trace events
yields exactly the final cache residency the live simulator ended with,
byte for byte, for every registered policy, for every history truncation
mode, and for timed SRM runs with and without fault injection.  And the
invariant checker that makes this possible must fail *loudly* on a
corrupted trace, not shrug.
"""

import json

import pytest

from repro.cache.registry import POLICY_REGISTRY, make_policy
from repro.core.bundle import FileBundle
from repro.core.history import TruncationMode
from repro.core.request import Request, RequestStream
from repro.errors import TraceInvariantError
from repro.faults import FaultSpec
from repro.grid.srm import SRMConfig, StorageResourceManager
from repro.sim.engine import EventEngine
from repro.sim.simulator import SimulationConfig, simulate_trace
from repro.telemetry import JsonlSink, RingSink, TraceRecorder, use_recorder
from repro.telemetry.events import (
    FileAdmitted,
    FileEvicted,
    JobArrived,
    PlanComputed,
)
from repro.telemetry.forensics import (
    TraceLog,
    iter_trace,
    reconstruct,
    verify_against_cache,
)
from repro.types import FileCatalog
from repro.workload.generator import WorkloadSpec, generate_trace
from repro.workload.trace import Trace

SPEC = WorkloadSpec(
    cache_size=200_000_000,
    n_files=80,
    n_request_types=60,
    n_jobs=150,
    popularity="zipf",
    max_file_fraction=0.05,
    max_bundle_fraction=0.25,
    seed=11,
)


@pytest.fixture(scope="module")
def workload():
    return generate_trace(SPEC)


def record_run(tmp_path, workload, policy_name, **policy_kwargs):
    """Run one traced simulation; return (trace path, live policy)."""
    path = tmp_path / f"{policy_name}.jsonl"
    policy = make_policy(policy_name, future=workload.bundles(), **policy_kwargs)
    config = SimulationConfig(cache_size=SPEC.cache_size, policy=policy_name)
    with TraceRecorder(JsonlSink(path)) as rec:
        with use_recorder(rec):
            simulate_trace(workload, config, policy=policy, recorder=rec)
    return path, policy


class TestDifferentialUntimed:
    @pytest.mark.parametrize("policy_name", sorted(POLICY_REGISTRY))
    def test_reconstruction_matches_live_cache(
        self, tmp_path, workload, policy_name
    ):
        path, policy = record_run(tmp_path, workload, policy_name)
        report = reconstruct(path, capacity=SPEC.cache_size)
        assert report.violations == []
        assert verify_against_cache(report, policy.cache) == []

    @pytest.mark.parametrize(
        "mode",
        [TruncationMode.FULL, TruncationMode.WINDOW, TruncationMode.CACHE_SUPPORTED],
    )
    def test_optbundle_truncation_modes(self, tmp_path, workload, mode):
        kwargs = {"truncation": mode}
        if mode is TruncationMode.WINDOW:
            kwargs["window"] = 64
        path, policy = record_run(tmp_path, workload, "optbundle", **kwargs)
        report = reconstruct(path, capacity=SPEC.cache_size)
        assert report.violations == []
        assert verify_against_cache(report, policy.cache) == []

    def test_streaming_source_equals_loaded(self, tmp_path, workload):
        path, _ = record_run(tmp_path, workload, "lru")
        from_stream = reconstruct(iter_trace(path), capacity=SPEC.cache_size)
        from_log = reconstruct(TraceLog.load(path), capacity=SPEC.cache_size)
        assert from_stream.final_residency() == from_log.final_residency()
        assert from_stream.events == from_log.events

    def test_ring_sink_contents_are_reconstructible(self, workload):
        sink = RingSink(capacity=1_000_000)
        policy = make_policy("lru")
        with TraceRecorder(sink) as rec:
            with use_recorder(rec):
                simulate_trace(
                    workload,
                    SimulationConfig(cache_size=SPEC.cache_size, policy="lru"),
                    policy=policy,
                    recorder=rec,
                )
        report = reconstruct(sink.sequenced, capacity=SPEC.cache_size)
        assert report.violations == []
        assert verify_against_cache(report, policy.cache) == []


SRM_SIZES = {f"f{i}": 100 for i in range(6)}
SRM_BUNDLES = [["f0"], ["f0", "f1"], ["f2"], ["f0", "f3"], ["f1"], ["f4", "f5"]]


def srm_trace(gap=3.0):
    stream = RequestStream(
        Request(i, FileBundle(b), arrival_time=i * gap)
        for i, b in enumerate(SRM_BUNDLES)
    )
    return Trace(FileCatalog(SRM_SIZES), stream)


def srm_config(**kw):
    defaults = dict(
        cache_size=300,
        policy="lru",
        n_drives=2,
        mount_latency=1.0,
        drive_bandwidth=100.0,
        processing_time=0.5,
        backoff_jitter=0.0,
        max_retries=3,
        staging_timeout=600.0,
    )
    defaults.update(kw)
    return SRMConfig(**defaults)


def record_srm_run(path, cfg):
    """Timed SRM run under a recorder; returns the SRM (for srm.cache)."""
    trace = srm_trace()
    with TraceRecorder(JsonlSink(path)) as rec:
        with use_recorder(rec):
            engine = EventEngine()
            srm = StorageResourceManager(engine, trace.catalog.as_dict(), cfg)
            for request in trace:
                engine.schedule_at(
                    request.arrival_time, lambda r=request: srm.submit(r)
                )
            engine.run()
    return srm


class TestDifferentialTimed:
    @pytest.mark.parametrize("policy_name", ["lru", "landlord", "optbundle"])
    def test_srm_without_faults(self, tmp_path, policy_name):
        path = tmp_path / "srm.jsonl"
        srm = record_srm_run(path, srm_config(policy=policy_name))
        report = reconstruct(path, capacity=300)
        assert report.violations == []
        assert verify_against_cache(report, srm.cache) == []

    @pytest.mark.parametrize("rate", [0.2, 0.5])
    def test_srm_with_fault_injection(self, tmp_path, rate):
        path = tmp_path / "srm_faulty.jsonl"
        srm = record_srm_run(
            path, srm_config(faults=FaultSpec.uniform(rate, seed=7))
        )
        report = reconstruct(path, capacity=300)
        assert report.violations == []
        assert verify_against_cache(report, srm.cache) == []

    def test_concatenated_timed_runs_split_on_time_reset(self, tmp_path):
        path = tmp_path / "two_runs.jsonl"
        trace = srm_trace()
        with TraceRecorder(JsonlSink(path)) as rec:
            with use_recorder(rec):
                for _ in range(2):
                    engine = EventEngine()
                    srm = StorageResourceManager(
                        engine, trace.catalog.as_dict(), srm_config()
                    )
                    for request in trace:
                        engine.schedule_at(
                            request.arrival_time, lambda r=request: srm.submit(r)
                        )
                    engine.run()
        flagged = reconstruct(path, capacity=300)
        assert any(v.rule == "time-regression" for v in flagged.violations)
        split = reconstruct(path, capacity=300, split_on_time_reset=True)
        assert split.violations == []
        assert len(split.segments) == 2
        assert verify_against_cache(split, srm.cache, segment=-1) == []


class TestCorruptionIsLoud:
    def _lines(self, path):
        return path.read_text().splitlines()

    def test_duplicated_admission_detected(self, tmp_path, workload):
        path, _ = record_run(tmp_path, workload, "lru")
        lines = self._lines(path)
        admit_at = next(
            i for i, l in enumerate(lines) if '"kind":"FileAdmitted"' in l
        )
        # replay the same admission right after itself (fixing up seq so
        # only the residency invariant, not seq checking, fires)
        dup = json.loads(lines[admit_at])
        corrupted = []
        for i, line in enumerate(lines):
            record = json.loads(line)
            if i > admit_at:
                record["seq"] += 1
            corrupted.append(json.dumps(record, sort_keys=True))
            if i == admit_at:
                again = dict(dup)
                again["seq"] += 1
                corrupted.append(json.dumps(again, sort_keys=True))
        bad = tmp_path / "dup.jsonl"
        bad.write_text("\n".join(corrupted) + "\n")
        report = reconstruct(bad, capacity=SPEC.cache_size)
        assert any(v.rule == "duplicate-admission" for v in report.violations)
        with pytest.raises(TraceInvariantError, match="duplicate-admission"):
            report.raise_if_violations()

    def test_evicting_nonresident_file_detected(self, tmp_path, workload):
        path, _ = record_run(tmp_path, workload, "lru")
        lines = self._lines(path)
        evict_at = next(
            i for i, l in enumerate(lines) if '"kind":"FileEvicted"' in l
        )
        record = json.loads(lines[evict_at])
        record["file"] = "not-a-real-file"
        lines[evict_at] = json.dumps(record, sort_keys=True)
        bad = tmp_path / "ghost.jsonl"
        bad.write_text("\n".join(lines) + "\n")
        report = reconstruct(bad)
        assert any(v.rule == "evict-nonresident" for v in report.violations)

    def test_tiny_capacity_trips_occupancy_invariant(self, tmp_path, workload):
        path, _ = record_run(tmp_path, workload, "lru")
        report = reconstruct(path, capacity=1)
        assert any(v.rule == "capacity-exceeded" for v in report.violations)
        clean = reconstruct(path, capacity=SPEC.cache_size)
        assert clean.ok

    def test_plan_load_mismatch_detected(self):
        events = [
            JobArrived(job=0, request_id=0, n_files=1, bytes_requested=10),
            PlanComputed(
                policy="lru", loads=2, prefetches=0, evictions=0, hit=False
            ),
            FileAdmitted(file="a", bytes=10, cause="demand"),
            JobArrived(job=1, request_id=1, n_files=1, bytes_requested=10),
        ]
        report = reconstruct(events)
        assert any(v.rule == "plan-load-mismatch" for v in report.violations)

    def test_hit_claim_with_demand_load_detected(self):
        events = [
            JobArrived(job=0, request_id=0, n_files=1, bytes_requested=10),
            PlanComputed(
                policy="lru", loads=0, prefetches=0, evictions=0, hit=True
            ),
            FileAdmitted(file="a", bytes=10, cause="demand"),
        ]
        report = reconstruct(events)
        assert any(v.rule == "hit-with-demand-load" for v in report.violations)

    def test_evict_size_mismatch_detected(self):
        events = [
            FileAdmitted(file="a", bytes=10, cause="demand"),
            FileEvicted(file="a", bytes=99, policy="lru", detail=None),
        ]
        report = reconstruct(events)
        assert any(v.rule == "evict-size-mismatch" for v in report.violations)


class TestReportShape:
    def test_segment_counters_and_render(self, tmp_path, workload):
        path, policy = record_run(tmp_path, workload, "landlord")
        report = reconstruct(path, capacity=SPEC.cache_size)
        assert len(report.segments) == 1
        seg = report.segments[0]
        assert seg.jobs == len(workload)
        assert seg.admissions - seg.evictions == len(report.final_residency())
        assert seg.peak_used <= SPEC.cache_size
        assert seg.used == policy.cache.used
        text = report.render()
        assert "segments: 1" in text and "violations: 0" in text

    def test_experiment_style_concatenated_runs_segment(self, tmp_path, workload):
        path = tmp_path / "two.jsonl"
        with TraceRecorder(JsonlSink(path)) as rec:
            with use_recorder(rec):
                for policy_name in ("lru", "fifo"):
                    simulate_trace(
                        workload,
                        SimulationConfig(
                            cache_size=SPEC.cache_size, policy=policy_name
                        ),
                        recorder=rec,
                    )
        report = reconstruct(path, capacity=SPEC.cache_size)
        assert report.violations == []
        assert len(report.segments) == 2
        assert all(seg.jobs == len(workload) for seg in report.segments)
