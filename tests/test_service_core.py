"""CoordinatorCore extraction: one decision body, every execution mode.

The refactor's contract is that the per-request plan → decide → apply
logic lives in exactly one place (:class:`CoordinatorCore`) and that the
batch simulator is a thin driver over it — so a core driven by hand
produces a telemetry trace *byte-for-byte* identical to
:func:`simulate_trace` on the same workload, for every registered
policy.  That byte-equality is what later lets the HTTP service's trace
be compared against the batch run's directly.
"""

from __future__ import annotations

import pytest

from repro.cache.registry import POLICY_REGISTRY, make_policy
from repro.cache.state import CacheState
from repro.core.bundle import FileBundle
from repro.core.request import Request
from repro.errors import SimulationError, UnknownFileError
from repro.sim import CoordinatorCore, JobOutcome
from repro.sim.metrics import MetricsCollector
from repro.sim.simulator import SimulationConfig, service_request, simulate_trace
from repro.telemetry.recorder import TraceRecorder, use_recorder
from repro.telemetry.sinks import JsonlSink
from repro.types import MB
from repro.workload.generator import WorkloadSpec, generate_trace

CACHE = 32 * MB


@pytest.fixture(scope="module")
def trace():
    return generate_trace(
        WorkloadSpec(
            cache_size=CACHE,
            n_files=80,
            n_request_types=40,
            n_jobs=120,
            popularity="zipf",
            max_file_fraction=0.05,
            max_bundle_fraction=0.25,
            seed=11,
        )
    )


def _drive_core(trace, policy_name: str, path) -> list[JobOutcome]:
    """Drive a bare CoordinatorCore over the trace, recording to path.

    Mirrors the drivers' convention: the policy is bound and the core
    constructed *inside* the recorder context, so the policy's own
    events (PlanComputed/FileEvicted) land in the same trace.
    """
    sizes = trace.catalog.as_dict()
    cache = CacheState(CACHE)
    rec = TraceRecorder(JsonlSink(path))
    with use_recorder(rec):
        policy = make_policy(policy_name, future=trace.bundles())
        policy.bind(cache, sizes)
        core = CoordinatorCore(
            cache=cache,
            policy=policy,
            sizes=sizes,
            metrics=MetricsCollector(warmup=0),
            check_invariants=True,
        )
        outcomes = [core.submit(i, request) for i, request in enumerate(trace)]
    rec.close()
    return outcomes


@pytest.mark.parametrize("policy_name", sorted(POLICY_REGISTRY))
def test_core_trace_byte_identical_to_batch(trace, tmp_path, policy_name):
    batch_path = tmp_path / f"{policy_name}-batch.jsonl"
    core_path = tmp_path / f"{policy_name}-core.jsonl"
    with TraceRecorder(JsonlSink(batch_path)) as rec:
        result = simulate_trace(
            trace,
            SimulationConfig(cache_size=CACHE, policy=policy_name),
            recorder=rec,
        )
    outcomes = _drive_core(trace, policy_name, core_path)
    assert core_path.read_bytes() == batch_path.read_bytes()
    # and the in-memory outcomes aggregate to the simulator's metrics
    assert sum(o.hit for o in outcomes) == result.metrics.request_hits
    assert (
        sum(o.demand_bytes for o in outcomes)
        == result.metrics.bytes_demand_loaded
    )


def test_service_request_shim_matches_batch(trace, tmp_path):
    """The compatibility shim (transient core per call) stays exact."""
    config = SimulationConfig(cache_size=CACHE, policy="landlord")
    reference = simulate_trace(trace, config)

    sizes = trace.catalog.as_dict()
    cache = CacheState(CACHE)
    policy = make_policy("landlord", future=trace.bundles())
    policy.bind(cache, sizes)
    metrics = MetricsCollector(warmup=0)
    rec = TraceRecorder(JsonlSink(tmp_path / "shim.jsonl"))
    for i, request in enumerate(trace):
        service_request(
            i,
            request,
            cache=cache,
            policy=policy,
            sizes=sizes,
            metrics=metrics,
            config=config,
            rec=rec,
        )
    rec.close()
    snap = metrics.snapshot()
    assert snap.byte_miss_ratio == reference.metrics.byte_miss_ratio
    assert snap.request_hits == reference.metrics.request_hits


def test_outcome_fields_and_as_dict(small_catalog):
    sizes = small_catalog.as_dict()
    cache = CacheState(100)
    policy = make_policy("lru")
    policy.bind(cache, sizes)
    core = CoordinatorCore(
        cache=cache, policy=policy, sizes=sizes, metrics=MetricsCollector()
    )
    request = Request(request_id=0, bundle=FileBundle(["g1", "g2"]))
    outcome = core.submit(0, request)
    assert outcome.loaded == ("g1", "g2")
    assert not outcome.hit and not outcome.unserviceable
    assert outcome.demand_bytes == sizes["g1"] + sizes["g2"]
    doc = outcome.as_dict()
    assert doc["loaded"] == ["g1", "g2"]
    assert doc["job"] == 0 and doc["hit"] is False
    # a repeat of the same bundle is a pure hit
    again = core.submit(1, Request(request_id=1, bundle=FileBundle(["g1"])))
    assert again.hit and again.loaded == ()


def test_unknown_file_raises_before_mutation(small_catalog):
    sizes = small_catalog.as_dict()
    cache = CacheState(100)
    policy = make_policy("lru")
    policy.bind(cache, sizes)
    core = CoordinatorCore(
        cache=cache, policy=policy, sizes=sizes, metrics=MetricsCollector()
    )
    with pytest.raises(UnknownFileError):
        core.submit(0, Request(request_id=0, bundle=FileBundle(["nope"])))
    assert cache.used == 0 and core.metrics.snapshot().jobs == 0


def test_oversized_bundle_is_unserviceable(small_catalog):
    sizes = small_catalog.as_dict()
    cache = CacheState(15)  # smaller than g2 (20 bytes)
    policy = make_policy("lru")
    policy.bind(cache, sizes)
    core = CoordinatorCore(
        cache=cache, policy=policy, sizes=sizes, metrics=MetricsCollector()
    )
    outcome = core.submit(0, Request(request_id=0, bundle=FileBundle(["g2"])))
    assert outcome.unserviceable and outcome.loaded == ()
    assert cache.used == 0


def test_space_contract_violation_is_simulation_error(small_catalog):
    """A policy that fails to free enough space is a SimulationError."""
    from repro.cache.policy import PolicyDecision

    sizes = small_catalog.as_dict()
    cache = CacheState(30)
    policy = make_policy("lru")
    policy.bind(cache, sizes)
    core = CoordinatorCore(
        cache=cache, policy=policy, sizes=sizes, metrics=MetricsCollector()
    )
    core.submit(0, Request(request_id=0, bundle=FileBundle(["g3"])))  # 30 used

    class _NoEvict:
        """Violates the contract: makes no room for the next bundle."""

        name = "no-evict"

        def on_request(self, bundle):
            return PolicyDecision()

        def on_serviced(self, *a, **k):
            pass

    core.policy = _NoEvict()
    with pytest.raises(SimulationError, match="free"):
        core.submit(1, Request(request_id=1, bundle=FileBundle(["g2"])))
