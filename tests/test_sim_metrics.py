"""Unit tests for the metrics collector."""

import pytest

from repro.errors import SimulationError
from repro.sim.metrics import MetricsCollector, WindowAccumulator, ratio_of


class TestRecording:
    def test_empty_snapshot(self):
        s = MetricsCollector().snapshot()
        assert s.jobs == 0
        assert s.byte_miss_ratio == 0.0
        assert s.byte_hit_ratio == 1.0
        assert s.request_hit_ratio == 0.0

    def test_hit_and_miss_accounting(self):
        m = MetricsCollector()
        m.record_job(requested_bytes=100, demand_loaded_bytes=0, hit=True)
        m.record_job(requested_bytes=100, demand_loaded_bytes=60, hit=False)
        s = m.snapshot()
        assert s.jobs == 2
        assert s.request_hits == 1
        assert s.request_hit_ratio == 0.5
        assert s.request_miss_ratio == 0.5
        assert s.byte_miss_ratio == pytest.approx(60 / 200)
        assert s.byte_hit_ratio == pytest.approx(1 - 60 / 200)

    def test_prefetch_separate_from_demand(self):
        m = MetricsCollector()
        m.record_job(
            requested_bytes=100,
            demand_loaded_bytes=50,
            prefetched_bytes=30,
            hit=False,
        )
        s = m.snapshot()
        assert s.byte_miss_ratio == pytest.approx(0.5)
        assert s.byte_movement_ratio == pytest.approx(0.8)
        assert s.bytes_loaded == 80

    def test_volume_stats(self):
        m = MetricsCollector()
        m.record_job(requested_bytes=10, demand_loaded_bytes=10, hit=False)
        m.record_job(requested_bytes=10, demand_loaded_bytes=4, hit=False)
        s = m.snapshot()
        assert s.mean_volume_per_request == pytest.approx(7.0)
        assert s.max_volume_per_request == 10.0

    def test_hit_with_demand_bytes_rejected(self):
        m = MetricsCollector()
        with pytest.raises(SimulationError):
            m.record_job(requested_bytes=10, demand_loaded_bytes=1, hit=True)

    def test_negative_bytes_rejected(self):
        m = MetricsCollector()
        with pytest.raises(SimulationError):
            m.record_job(requested_bytes=-1, demand_loaded_bytes=0, hit=True)

    def test_unserviceable_counted(self):
        m = MetricsCollector()
        m.record_unserviceable()
        s = m.snapshot()
        assert s.unserviceable == 1 and s.jobs == 0


class TestWarmup:
    def test_warmup_jobs_excluded(self):
        m = MetricsCollector(warmup=2)
        m.record_job(requested_bytes=10, demand_loaded_bytes=10, hit=False)
        m.record_job(requested_bytes=10, demand_loaded_bytes=10, hit=False)
        m.record_job(requested_bytes=10, demand_loaded_bytes=0, hit=True)
        s = m.snapshot()
        assert s.jobs == 1
        assert s.request_hit_ratio == 1.0

    def test_warmup_applies_to_unserviceable(self):
        m = MetricsCollector(warmup=1)
        m.record_unserviceable()
        m.record_unserviceable()
        assert m.snapshot().unserviceable == 1

    def test_negative_warmup_rejected(self):
        with pytest.raises(SimulationError):
            MetricsCollector(warmup=-1)


class TestRatioOf:
    def test_plain_division(self):
        assert ratio_of(3, 4) == 0.75

    def test_zero_denominator_defaults_to_zero(self):
        assert ratio_of(0, 0) == 0.0
        assert ratio_of(5, 0) == 0.0

    def test_empty_override(self):
        assert ratio_of(0, 0, empty=1.0) == 1.0


class TestBoundaries:
    def test_zero_jobs_snapshot_conventions(self):
        s = MetricsCollector().snapshot()
        assert s.byte_miss_ratio == 0.0
        assert s.byte_movement_ratio == 0.0
        assert s.byte_hit_ratio == 1.0
        assert s.request_hit_ratio == 0.0
        assert s.request_miss_ratio == 1.0
        assert s.mean_volume_per_request == 0.0
        assert s.max_volume_per_request == 0.0

    def test_zero_byte_jobs(self):
        m = MetricsCollector()
        m.record_job(requested_bytes=0, demand_loaded_bytes=0, hit=True)
        s = m.snapshot()
        assert s.jobs == 1 and s.bytes_requested == 0
        assert s.byte_miss_ratio == 0.0
        assert s.byte_hit_ratio == 1.0
        assert s.request_hit_ratio == 1.0

    def test_window_accumulator_empty(self):
        w = WindowAccumulator()
        assert w.jobs == 0
        assert w.byte_miss_ratio == 0.0
        assert w.request_hit_ratio == 0.0

    def test_window_accumulator_matches_snapshot_ratios(self):
        w = WindowAccumulator()
        m = MetricsCollector()
        for requested, loaded, hit in ((100, 60, False), (50, 0, True)):
            w.add(requested_bytes=requested, loaded_bytes=loaded, hit=hit)
            m.record_job(
                requested_bytes=requested, demand_loaded_bytes=loaded, hit=hit
            )
        s = m.snapshot()
        assert w.byte_miss_ratio == pytest.approx(s.byte_miss_ratio)
        assert w.request_hit_ratio == pytest.approx(s.request_hit_ratio)

    def test_window_accumulator_reset(self):
        w = WindowAccumulator()
        w.add(requested_bytes=10, loaded_bytes=10, hit=False)
        w.reset()
        assert w.jobs == 0 and w.bytes_requested == 0
        assert w.byte_miss_ratio == 0.0


class TestSnapshot:
    def test_as_dict_keys(self):
        m = MetricsCollector()
        m.record_job(requested_bytes=10, demand_loaded_bytes=5, hit=False)
        d = m.snapshot().as_dict()
        for key in (
            "jobs",
            "byte_miss_ratio",
            "byte_movement_ratio",
            "request_hit_ratio",
            "mean_volume_per_request",
        ):
            assert key in d
