"""Unit tests for replica-placement strategies."""

import pytest

from repro.core.bundle import FileBundle
from repro.core.request import Request, RequestStream
from repro.errors import ConfigError
from repro.grid.replication import (
    build_two_tier_catalog,
    place_bundle_aware,
    place_by_popularity,
    place_random,
)
from repro.grid.site import DataGridSite
from repro.sim.engine import EventEngine
from repro.types import FileCatalog
from repro.utils.rng import derive_rng
from repro.workload.trace import Trace

SIZES = {"a": 10, "b": 10, "c": 10, "d": 10, "e": 10}


def trace_of(bundles):
    return Trace(
        FileCatalog(SIZES),
        RequestStream(Request(i, FileBundle(b)) for i, b in enumerate(bundles)),
    )


HOT_TRACE = trace_of(
    [["a", "b"]] * 6 + [["c"]] * 3 + [["d", "e"]] * 1
)


class TestPlacements:
    def test_budget_respected_all_strategies(self):
        budget = 20
        for placement in (
            place_random(HOT_TRACE, budget, derive_rng(0, "r")),
            place_by_popularity(HOT_TRACE, budget),
            place_bundle_aware(HOT_TRACE, budget),
        ):
            assert sum(SIZES[f] for f in placement) <= budget

    def test_negative_budget_rejected(self):
        with pytest.raises(ConfigError):
            place_by_popularity(HOT_TRACE, -1)

    def test_zero_budget_empty(self):
        assert place_by_popularity(HOT_TRACE, 0) == set()
        assert place_bundle_aware(HOT_TRACE, 0) == set()

    def test_popularity_picks_hottest_files(self):
        # a and b each appear 6 times; c 3, d/e once.
        assert place_by_popularity(HOT_TRACE, 20) == {"a", "b"}

    def test_bundle_aware_mirrors_whole_bundles(self):
        placed = place_bundle_aware(HOT_TRACE, 20)
        assert placed == {"a", "b"}  # the hottest bundle, complete

    def test_bundle_aware_avoids_partial_bundles(self):
        # Budget for one file only: popularity would strand half a bundle;
        # bundle-aware picks the complete singleton bundle {c}.
        placed = place_bundle_aware(HOT_TRACE, 10)
        assert placed == {"c"}
        assert place_by_popularity(HOT_TRACE, 10) == {"a"}

    def test_random_deterministic_under_seed(self):
        a = place_random(HOT_TRACE, 30, derive_rng(4, "r"))
        b = place_random(HOT_TRACE, 30, derive_rng(4, "r"))
        assert a == b

    def test_empty_trace(self):
        empty = Trace(FileCatalog(SIZES), RequestStream([]))
        assert place_bundle_aware(empty, 10) == set()


class TestTwoTierCatalog:
    def test_every_file_on_archive_subset_on_mirror(self):
        engine = EventEngine()
        archive = DataGridSite.build(engine, "archive")
        mirror = DataGridSite.build(engine, "mirror")
        catalog = build_two_tier_catalog(
            HOT_TRACE, archive, mirror, {"a", "b"}
        )
        for fid in SIZES:
            assert "archive" in catalog.locations(fid)
        assert set(catalog.locations("a")) == {"archive", "mirror"}
        assert catalog.locations("c") == ["archive"]
