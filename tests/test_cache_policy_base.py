"""Unit tests for the policy interface and the PerFilePolicy eviction loop."""

import pytest

from repro.cache.lru import LRUPolicy
from repro.cache.policy import PolicyDecision
from repro.cache.state import CacheState
from repro.core.bundle import FileBundle
from repro.errors import PolicyError

SIZES = {f"f{i}": 10 for i in range(8)}


def serve(policy, cache, bundle):
    missing = cache.missing(bundle)
    decision = policy.on_request(bundle)
    for f in missing | decision.prefetch:
        if f not in cache:
            cache.load(f, SIZES[f])
    policy.on_serviced(bundle, frozenset(missing), not missing)
    return decision


class TestBinding:
    def test_unbound_access_rejected(self):
        p = LRUPolicy()
        with pytest.raises(PolicyError):
            _ = p.cache
        with pytest.raises(PolicyError):
            _ = p.sizes

    def test_double_bind_rejected(self):
        p = LRUPolicy()
        c = CacheState(100)
        p.bind(c, SIZES)
        with pytest.raises(PolicyError):
            p.bind(c, SIZES)

    def test_reset_allows_rebind(self):
        p = LRUPolicy()
        p.bind(CacheState(100), SIZES)
        p.reset()
        p.bind(CacheState(100), SIZES)

    def test_default_score_is_none(self):
        assert LRUPolicy().score(FileBundle(["f0"])) is None


class TestEvictionLoop:
    def test_no_eviction_when_room(self):
        p = LRUPolicy()
        c = CacheState(100)
        p.bind(c, SIZES)
        dec = serve(p, c, FileBundle(["f0", "f1"]))
        assert dec.evicted == frozenset()

    def test_evicts_enough_for_missing(self):
        p = LRUPolicy()
        c = CacheState(30)
        p.bind(c, SIZES)
        for b in ("f0", "f1", "f2"):
            serve(p, c, FileBundle([b]))
        dec = serve(p, c, FileBundle(["f3", "f4"]))
        assert len(dec.evicted) == 2
        assert c.used <= 30

    def test_never_evicts_requested_files(self):
        p = LRUPolicy()
        c = CacheState(30)
        p.bind(c, SIZES)
        serve(p, c, FileBundle(["f0", "f1", "f2"]))
        dec = serve(p, c, FileBundle(["f0", "f3"]))
        assert "f0" not in dec.evicted
        assert "f0" in c

    def test_policy_decision_defaults(self):
        d = PolicyDecision()
        assert d.prefetch == frozenset() and d.evicted == frozenset()
