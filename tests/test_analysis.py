"""Unit tests for charts and reports."""

import pytest

from repro.analysis.ascii_chart import render_chart
from repro.analysis.report import ExperimentOutput
from repro.errors import ConfigError


class TestRenderChart:
    def test_basic_render(self):
        out = render_chart({"s": [(0, 0.0), (1, 1.0)]}, width=20, height=6)
        assert "o=s" in out
        assert "o" in out.replace("o=s", "")

    def test_title_and_label(self):
        out = render_chart(
            {"s": [(0, 1.0)]}, title="My Chart", y_label="ratio"
        )
        assert out.splitlines()[0] == "My Chart"
        assert "y: ratio" in out

    def test_multiple_series_get_distinct_markers(self):
        out = render_chart({"a": [(0, 0.0)], "b": [(1, 1.0)]})
        assert "o=a" in out and "x=b" in out

    def test_constant_series_does_not_crash(self):
        render_chart({"s": [(0, 5.0), (1, 5.0)]})

    def test_single_point(self):
        render_chart({"s": [(2.0, 3.0)]})

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            render_chart({})
        with pytest.raises(ConfigError):
            render_chart({"s": []})

    def test_too_small_rejected(self):
        with pytest.raises(ConfigError):
            render_chart({"s": [(0, 1)]}, width=2, height=2)

    def test_axis_bounds_in_output(self):
        out = render_chart({"s": [(0, 0.25), (10, 0.75)]})
        assert "0.75" in out and "0.25" in out


class TestExperimentOutput:
    def test_render_contains_sections(self):
        out = ExperimentOutput(
            exp_id="x",
            title="T",
            description="D",
            sections=(("cap1", "body1"), ("cap2", "body2")),
        )
        text = out.render()
        assert "== x: T ==" in text
        assert "-- cap1 --" in text and "body2" in text
