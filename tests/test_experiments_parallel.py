"""Parallel sweep fan-out: identical results, deterministic ordering.

``parallel_map`` promises that a ``--jobs N`` run is byte-identical to a
serial one; these tests pin that down for the primitive itself and
end-to-end for two figure drivers.
"""

import pytest

from repro.errors import ConfigError
from repro.experiments.common import parallel_map
from repro.experiments.fig5_history import run_fig5
from repro.experiments.fig6_small_files import run_fig6
from repro.experiments.registry import EXPERIMENTS, run_experiment


def _square(x):  # module-level: picklable for worker processes
    return x * x


class TestParallelMap:
    def test_serial_modes(self):
        items = list(range(10))
        expected = [x * x for x in items]
        for jobs in (None, 0, 1):
            assert parallel_map(_square, items, jobs=jobs) == expected

    def test_parallel_preserves_order(self):
        items = list(range(20))
        assert parallel_map(_square, items, jobs=2) == [x * x for x in items]

    def test_parallel_matches_serial(self):
        items = list(range(7))
        assert parallel_map(_square, items, jobs=3) == parallel_map(
            _square, items
        )

    def test_negative_jobs_rejected(self):
        with pytest.raises(ConfigError):
            parallel_map(_square, [1, 2], jobs=-1)

    def test_single_item_stays_in_process(self):
        assert parallel_map(_square, [4], jobs=8) == [16]

    def test_empty(self):
        assert parallel_map(_square, [], jobs=4) == []


class TestRegistryJobs:
    def test_jobs_forwarded_to_supporting_driver(self, monkeypatch):
        calls = {}

        def fake(scale, *, jobs=None):
            calls["jobs"] = jobs
            return "out"

        monkeypatch.setitem(EXPERIMENTS, "fig6", fake)
        assert run_experiment("fig6", "smoke", jobs=3) == "out"
        assert calls["jobs"] == 3

    def test_jobs_dropped_for_serial_only_driver(self, monkeypatch):
        def fake(scale):
            return "serial"

        monkeypatch.setitem(EXPERIMENTS, "tables", fake)
        assert run_experiment("tables", "smoke", jobs=3) == "serial"

    def test_negative_jobs_rejected(self):
        with pytest.raises(ConfigError):
            run_experiment("fig6", "smoke", jobs=-2)


@pytest.mark.slow
class TestDriversIdenticalUnderJobs:
    """--jobs N must reproduce the serial outputs exactly (two drivers)."""

    def test_fig6_parallel_equals_serial(self):
        serial = run_fig6("smoke")
        fanned = run_fig6("smoke", jobs=2)
        assert fanned.data == serial.data
        assert fanned.sections == serial.sections

    def test_fig5_parallel_equals_serial(self):
        serial = run_fig5("smoke")
        fanned = run_fig5("smoke", jobs=2)
        assert fanned.data == serial.data
        assert fanned.sections == serial.sections
