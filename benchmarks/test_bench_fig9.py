"""Figure 9: effect of the admission-queue length (value scheduling)."""

import pytest


@pytest.mark.benchmark(group="fig9")
def test_fig9_queue_length(run_exp):
    out = run_exp("fig9", "quick")
    for popularity in ("uniform", "zipf"):
        rows = sorted(out.data[popularity], key=lambda r: r["x"])
        first, last = rows[0]["byte_miss_ratio"], rows[-1]["byte_miss_ratio"]
        # Queueing never hurts (much); the win concentrates in the Zipf panel.
        assert last <= first + 0.02, popularity
    zipf = sorted(out.data["zipf"], key=lambda r: r["x"])
    assert zipf[-1]["byte_miss_ratio"] <= zipf[0]["byte_miss_ratio"]
