"""Coordinator-service throughput benchmark: the online serving path.

The paper's Section 1.2 requires replacement decisions "evaluated in an
almost negligible time"; the online coordinator adds HTTP framing, the
write-ahead journal and the arrivals record on top of each decision.
This benchmark replays the seeded bench workload over real loopback
HTTP per policy and gates the record that lands in ``BENCH_core.json``
(schema v5): every job must be serviced without error, the achieved
decision quality must equal the batch simulator's exactly, and the
service must sustain a sane throughput floor at smoke scale.
"""

import pytest

from repro.experiments.bench import (
    BENCH_SCHEMA_VERSION,
    CACHE_IN_REQUESTS,
    DEFAULT_POLICIES,
    MAX_FILE_FRACTION,
    POPULARITY,
    service_throughput,
)
from repro.experiments.common import CACHE_SIZE, bundle_trace, get_scale
from repro.sim.simulator import SimulationConfig, simulate_trace


def _bench_trace():
    return bundle_trace(
        get_scale("smoke"),
        popularity=POPULARITY,
        cache_in_requests=CACHE_IN_REQUESTS,
        max_file_fraction=MAX_FILE_FRACTION,
        seed=0,
    )


def test_bench_schema_is_v5():
    """The service section is part of the v5 BENCH layout."""
    assert BENCH_SCHEMA_VERSION == 5


@pytest.mark.benchmark(group="service-throughput")
def test_service_throughput_record(benchmark):
    trace = _bench_trace()
    records = benchmark.pedantic(
        service_throughput, args=(trace,), rounds=1, iterations=1
    )
    benchmark.extra_info["service"] = records
    assert [r["policy"] for r in records] == list(DEFAULT_POLICIES)
    for record in records:
        # every job serviced, none dropped, latency percentiles ordered
        assert record["errors"] == 0
        assert record["n_jobs"] == len(trace)
        assert record["latency_p50_ms"] <= record["latency_p99_ms"]
        assert record["jobs_per_sec"] > 0
        # the online system must not change the paper's metric: the
        # byte-miss ratio over HTTP equals the batch simulator's
        batch = simulate_trace(
            trace,
            SimulationConfig(cache_size=CACHE_SIZE, policy=record["policy"]),
        )
        assert record["byte_miss_ratio"] == pytest.approx(
            batch.metrics.byte_miss_ratio, abs=1e-12
        )
    # a soft floor: loopback HTTP + journal should comfortably clear
    # 100 jobs/sec at smoke scale on any machine that runs the suite
    assert max(r["jobs_per_sec"] for r in records) > 100
