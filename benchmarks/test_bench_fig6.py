"""Figure 6: byte miss ratio, small files (1% of cache), both distributions."""

import pytest


@pytest.mark.benchmark(group="fig6")
def test_fig6_small_files(run_exp):
    out = run_exp("fig6", "quick")
    for popularity in ("uniform", "zipf"):
        rows = out.data[popularity]
        opt = {r["x"]: r["byte_miss_ratio"] for r in rows if r["policy"] == "optbundle"}
        land = {r["x"]: r["byte_miss_ratio"] for r in rows if r["policy"] == "landlord"}
        # OptFileBundle at or below Landlord at every point...
        assert all(opt[x] <= land[x] + 0.02 for x in opt), popularity
        # ...and strictly better in aggregate.
        assert sum(opt.values()) < sum(land.values()), popularity
    # Zipf well below uniform (the paper's second observation).
    uni = [r["byte_miss_ratio"] for r in out.data["uniform"] if r["policy"] == "optbundle"]
    zipf = [r["byte_miss_ratio"] for r in out.data["zipf"] if r["policy"] == "optbundle"]
    assert sum(zipf) < sum(uni)
