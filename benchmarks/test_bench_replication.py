"""Extension: replica placement on a two-tier data grid."""

import pytest


@pytest.mark.benchmark(group="replication")
def test_replica_placement(run_exp):
    out = run_exp("replication", "quick")
    # Informed placements beat random by a wide margin.
    assert out.data["popularity"] < out.data["random"]
    assert out.data["bundle-aware"] < out.data["random"]
