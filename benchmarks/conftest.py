"""Benchmark harness configuration.

Every paper table/figure has one benchmark that (a) regenerates the
rows/series the paper reports, (b) writes the rendered tables/charts to
``benchmarks/results/<experiment>.txt`` (pytest captures stdout, so the
artefacts are persisted rather than only printed), and (c) asserts the
qualitative shape (who wins, which way curves trend).  Each experiment
runs exactly once per session (``rounds=1``): these are simulation
regenerations, not micro-benchmarks, and their cost *is* the measurement.

Set ``REPRO_BENCH_SCALE`` to ``smoke`` / ``quick`` / ``paper`` to override
the per-benchmark default scales (``paper`` reproduces the original job
counts and takes tens of minutes).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.experiments import run_experiment

RESULTS_DIR = Path(__file__).parent / "results"


def bench_scale(default: str) -> str:
    return os.environ.get("REPRO_BENCH_SCALE", default)


@pytest.fixture()
def run_exp(benchmark):
    """Run an experiment driver once under pytest-benchmark.

    Prints the rendered output (visible with ``-s``), saves it under
    ``benchmarks/results/``, and returns the ``ExperimentOutput`` for
    shape assertions.
    """

    def _run(exp_id: str, default_scale: str):
        scale = bench_scale(default_scale)
        out = benchmark.pedantic(
            run_experiment, args=(exp_id, scale), rounds=1, iterations=1
        )
        rendered = out.render()
        print()
        print(rendered)
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{exp_id}.txt").write_text(
            rendered + f"\n[scale={scale}]\n", encoding="utf-8"
        )
        benchmark.extra_info["experiment"] = exp_id
        benchmark.extra_info["scale"] = scale
        return out

    return _run
