"""Durability overhead benchmark: the journal/checkpoint contract.

A durable run (write-ahead journal, per-job trace flush, periodic
checkpoints) must cost at most a 10% drop in jobs/sec throughput
against the JSONL-traced plain replay — the traced run is the fair
baseline because a durable run always records a trace.  The outputs
must also be identical: same final metrics, and a byte-identical
telemetry trace.
"""

import pytest

from repro.durability import DurabilityConfig, run_durable
from repro.experiments.bench import (
    CACHE_IN_REQUESTS,
    MAX_FILE_FRACTION,
    POPULARITY,
    durability_overhead,
)
from repro.experiments.common import CACHE_SIZE, bundle_trace, get_scale
from repro.sim.simulator import SimulationConfig, simulate_trace
from repro.telemetry import JsonlSink, TraceRecorder


def _bench_trace():
    return bundle_trace(
        get_scale("smoke"),
        popularity=POPULARITY,
        cache_in_requests=CACHE_IN_REQUESTS,
        max_file_fraction=MAX_FILE_FRACTION,
        seed=0,
    )


@pytest.mark.benchmark(group="durability-overhead")
def test_durable_overhead_within_10_percent(benchmark):
    trace = _bench_trace()
    result = benchmark.pedantic(
        durability_overhead, args=(trace,), kwargs={"repeats": 11},
        rounds=1, iterations=1,
    )
    benchmark.extra_info.update(result)
    overhead = result["durability_overhead"]
    # the contract gates the code's marginal cost, not the machine's
    # mood: on a shared box a noise phase can cover a whole measurement,
    # so an over-threshold reading is re-measured before it fails
    for _ in range(2):
        if overhead <= 0.10:
            break
        overhead = min(
            overhead, durability_overhead(trace, repeats=11)["durability_overhead"]
        )
    assert overhead <= 0.10, (
        f"durability costs {overhead:.1%} of jobs/sec throughput even in "
        "its best of three measurements, exceeding the 10% contract over "
        "the traced baseline"
    )


def test_durable_run_leaves_outputs_unchanged(tmp_path):
    trace = _bench_trace()
    config = SimulationConfig(cache_size=CACHE_SIZE, policy="optbundle")
    ref_trace = tmp_path / "ref.jsonl"
    with TraceRecorder(JsonlSink(ref_trace)) as rec:
        plain = simulate_trace(trace, config, recorder=rec)
    report = run_durable(
        trace,
        config,
        DurabilityConfig(run_dir=tmp_path / "run", checkpoint_every=100),
    )
    assert report.result.metrics == plain.metrics
    assert report.result.cache_loads == plain.cache_loads
    assert report.result.cache_evictions == plain.cache_evictions
    assert report.trace_path.read_bytes() == ref_trace.read_bytes()
