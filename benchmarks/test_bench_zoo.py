"""Extension: every policy side by side on one workload point."""

import pytest


@pytest.mark.benchmark(group="zoo")
def test_policy_zoo(run_exp):
    out = run_exp("zoo", "quick")
    for popularity in ("uniform", "zipf"):
        panel = out.data[popularity]
        # the offline reference dominates every online policy
        online = [p for p in panel if p != "belady"]
        assert all(
            panel["belady"]["byte_miss_ratio"]
            <= panel[p]["byte_miss_ratio"] + 1e-9
            for p in online
        ), popularity
        # optbundle has the best request-hit ratio among online policies
        best_hit = max(panel[p]["request_hit_ratio"] for p in online)
        assert panel["optbundle"]["request_hit_ratio"] == pytest.approx(
            best_hit
        ), popularity
