"""Micro-benchmarks of the OptCacheSelect decision latency.

Section 1.2: a replacement decision "should be evaluated in an almost
negligible time relative to the time it takes to cache an object".  These
benchmarks measure the greedy's wall time against candidate-set size; even
hundreds of candidates decide in single-digit milliseconds — negligible
next to staging gigabyte files over a WAN.
"""

import numpy as np
import pytest

from repro.core.bundle import FileBundle
from repro.core.optcacheselect import FBCInstance, opt_cache_select


def make_instance(n_candidates: int, n_files: int, seed: int = 0) -> FBCInstance:
    rng = np.random.default_rng(seed)
    sizes = {f"f{i}": int(rng.integers(1, 100)) for i in range(n_files)}
    bundles, values = [], []
    for _ in range(n_candidates):
        k = int(rng.integers(1, 9))
        files = rng.choice(n_files, size=min(k, n_files), replace=False)
        bundles.append(FileBundle(f"f{i}" for i in files))
        values.append(float(rng.integers(1, 50)))
    budget = int(sum(sizes.values()) * 0.3)
    return FBCInstance(tuple(bundles), tuple(values), sizes, budget)


@pytest.mark.benchmark(group="selection-speed")
@pytest.mark.parametrize("n", [50, 200, 800])
def test_selection_latency(benchmark, n):
    inst = make_instance(n, max(n, 100))
    result = benchmark(opt_cache_select, inst)
    assert result.total_value > 0
    # "almost negligible": even 800 candidates decide well under 100 ms
    assert benchmark.stats["mean"] < 0.1


@pytest.mark.benchmark(group="selection-speed")
def test_plain_vs_refined_latency(benchmark):
    inst = make_instance(300, 300)
    refined = benchmark(lambda: opt_cache_select(inst, refine=True))
    assert refined.total_value > 0


@pytest.mark.benchmark(group="warm-planner")
@pytest.mark.parametrize("n", [200, 800])
def test_warm_planner_incremental_vs_rebuild(benchmark, n):
    """Warm-history plan latency: persistent SelectionState vs rebuild.

    The incremental path must win outright from 200 candidates on and by
    at least 2x at 800 — the regime where the rebuild path's per-arrival
    O(history) passes dominate the shared greedy cost.
    """
    from repro.experiments.bench import warm_planner_timings

    result = benchmark.pedantic(
        warm_planner_timings, args=(n,), rounds=1, iterations=1
    )
    benchmark.extra_info.update(result)
    assert result["incremental_s_per_plan"] < result["rebuild_s_per_plan"]
    if n >= 800:
        assert result["speedup"] >= 2.0
