"""Figure 7: byte miss ratio, large files (10% of cache)."""

import pytest


@pytest.mark.benchmark(group="fig7")
def test_fig7_large_files(run_exp):
    out = run_exp("fig7", "quick")
    for popularity in ("uniform", "zipf"):
        rows = out.data[popularity]
        opt = sum(
            r["byte_miss_ratio"] for r in rows if r["policy"] == "optbundle"
        )
        land = sum(
            r["byte_miss_ratio"] for r in rows if r["policy"] == "landlord"
        )
        assert opt < land + 0.02, popularity
