"""Ablation benchmarks for the design choices called out in DESIGN.md."""

import pytest


@pytest.mark.benchmark(group="ablation")
def test_ablation_design_choices(run_exp):
    out = run_exp("ablation", "smoke")
    for popularity in ("uniform", "zipf"):
        panel = out.data[popularity]
        # Lazy eviction should not lose to the literal eager replacement.
        assert (
            panel["eviction/lazy (default)"]
            <= panel["eviction/eager (Fig.4 literal)"] + 0.01
        ), popularity
        # Value-based queue scheduling at q=25 at least matches FCFS.
        assert (
            panel["queue/q=25 value"] <= panel["queue/q=25 fcfs"] + 0.01
        ), popularity
        # Aged-value (lockout avoidance) costs almost nothing vs pure value.
        assert (
            panel["queue/q=25 aged-value"]
            <= panel["queue/q=25 value"] + 0.02
        ), popularity
