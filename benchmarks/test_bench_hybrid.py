"""Extension: hybrid one-file-at-a-time / bundle execution model."""

import pytest


@pytest.mark.benchmark(group="hybrid")
def test_hybrid_execution_model(run_exp):
    out = run_exp("hybrid", "smoke")
    for popularity in ("uniform", "zipf"):
        panel = out.data[popularity]
        # OptFileBundle never loses to Landlord at any mixing fraction:
        # bundle-awareness is safe on mixed workloads.
        for row in panel:
            assert row["optbundle"] <= row["landlord"] + 0.02, (
                popularity,
                row,
            )
