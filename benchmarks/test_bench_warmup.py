"""Extension: learning curves (per-window byte miss ratio)."""

import pytest


@pytest.mark.benchmark(group="warmup")
def test_learning_curves(run_exp):
    out = run_exp("warmup", "smoke")
    for popularity in ("uniform", "zipf"):
        panel = out.data[popularity]
        # Second half of the run is better than the cold-start window for
        # the learning policy.
        curve = panel["optbundle"]
        later = sum(curve[len(curve) // 2 :]) / (len(curve) - len(curve) // 2)
        assert later < curve[0] + 0.02, popularity
    # Once warmed, OptFileBundle's Zipf curve sits below Landlord's.
    zipf = out.data["zipf"]
    half = len(zipf["optbundle"]) // 2
    assert sum(zipf["optbundle"][half:]) <= sum(zipf["landlord"][half:]) + 0.02
