"""Request-tracing overhead benchmark: the ≤5% ring contract.

The span ring is on by default in the coordinator service, so its cost
rides on every serviced job.  The contract: submitting the seeded bench
workload with the default 256-entry ring costs at most 5% of jobs/sec
throughput against the same run with tracing disabled (``debug_ring=0``
— the :meth:`~repro.telemetry.tracing.RequestTracer.request` context
manager degenerates to a no-op).  The paired-alternating min-estimator
mirrors the durability benchmark's.
"""

import pytest

from repro.experiments.bench import (
    CACHE_IN_REQUESTS,
    MAX_FILE_FRACTION,
    POPULARITY,
    tracing_overhead,
)
from repro.experiments.common import bundle_trace, get_scale


def _bench_trace():
    return bundle_trace(
        get_scale("smoke"),
        popularity=POPULARITY,
        cache_in_requests=CACHE_IN_REQUESTS,
        max_file_fraction=MAX_FILE_FRACTION,
        seed=0,
    )


@pytest.mark.benchmark(group="tracing-overhead")
def test_tracing_overhead_within_5_percent(benchmark):
    trace = _bench_trace()
    result = benchmark.pedantic(
        tracing_overhead, args=(trace,), kwargs={"repeats": 7},
        rounds=1, iterations=1,
    )
    benchmark.extra_info.update(result)
    overhead = result["tracing_overhead"]
    assert result["debug_ring"] == 256
    assert result["baseline_jobs_per_sec"] > 0
    assert result["traced_jobs_per_sec"] > 0
    # the contract gates the code's marginal cost, not the machine's
    # mood: on a shared box a noise phase can cover a whole measurement,
    # so an over-threshold reading is re-measured before it fails
    for _ in range(2):
        if overhead <= 0.05:
            break
        overhead = min(
            overhead, tracing_overhead(trace, repeats=7)["tracing_overhead"]
        )
    assert overhead <= 0.05, (
        f"the request-tracing ring costs {overhead:.1%} of jobs/sec "
        "throughput even in its best of three measurements, exceeding "
        "the 5% contract over the tracing-disabled baseline"
    )
