"""Telemetry overhead benchmark: the NullSink contract.

The instrumentation added for event tracing cannot be compiled out, so
the default-off cost must be provably negligible: a replay under an
explicitly installed inert recorder (every ``rec.active`` guard still
hit) must stay within 3% of the no-recorder baseline, and — since both
paths run the identical simulation — produce identical outputs.
"""

import pytest

from repro.experiments.bench import (
    CACHE_IN_REQUESTS,
    MAX_FILE_FRACTION,
    POPULARITY,
    telemetry_overhead,
)
from repro.experiments.common import CACHE_SIZE, bundle_trace, get_scale
from repro.sim.simulator import SimulationConfig, simulate_trace
from repro.telemetry import NullSink, TraceRecorder


def _bench_trace():
    return bundle_trace(
        get_scale("smoke"),
        popularity=POPULARITY,
        cache_in_requests=CACHE_IN_REQUESTS,
        max_file_fraction=MAX_FILE_FRACTION,
        seed=0,
    )


@pytest.mark.benchmark(group="telemetry-overhead")
def test_nullsink_overhead_within_3_percent(benchmark):
    trace = _bench_trace()
    result = benchmark.pedantic(
        telemetry_overhead, args=(trace,), kwargs={"repeats": 5},
        rounds=1, iterations=1,
    )
    benchmark.extra_info.update(result)
    assert result["nullsink_overhead"] <= 0.03, (
        f"NullSink overhead {result['nullsink_overhead']:.1%} exceeds the "
        "3% contract over the no-recorder baseline"
    )


def test_nullsink_leaves_outputs_unchanged():
    trace = _bench_trace()
    config = SimulationConfig(cache_size=CACHE_SIZE, policy="optbundle")
    plain = simulate_trace(trace, config)
    nulled = simulate_trace(
        trace, config, recorder=TraceRecorder(NullSink(), profile=False)
    )
    assert plain.metrics == nulled.metrics
    assert plain.cache_evictions == nulled.cache_evictions
    assert plain.cache_loads == nulled.cache_loads
