"""Figure 5: history-truncation length has a negligible effect."""

import pytest


@pytest.mark.benchmark(group="fig5")
def test_fig5_history_truncation(run_exp):
    out = run_exp("fig5", "smoke")
    for popularity in ("uniform", "zipf"):
        ratios = [row["byte_miss_ratio"] for row in out.data[popularity]]
        spread = max(ratios) - min(ratios)
        # The paper's finding: truncation effects are negligible.
        assert spread < 0.08, f"{popularity}: truncation spread {spread:.3f}"
