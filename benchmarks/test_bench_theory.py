"""Theorem 4.1: approximation ratios vs the exact optimum."""

import pytest


@pytest.mark.benchmark(group="thm41")
def test_theorem41_bounds(run_exp):
    out = run_exp("thm41", "quick")
    assert out.data["violations"] == 0
    # refinement helps; partial enumeration helps more
    assert (
        out.data["mean_ratio"]["refined"]
        >= out.data["mean_ratio"]["plain"] - 1e-9
    )
    assert (
        out.data["mean_ratio"]["enum-k2"]
        >= out.data["mean_ratio"]["refined"] - 1e-9
    )
    # greedy is far better in practice than the worst-case bound
    assert out.data["min_ratio"]["refined"] > 0.5
