"""Extension: timed SRM response time / throughput comparison."""

import pytest


@pytest.mark.benchmark(group="grid")
def test_timed_grid(run_exp):
    out = run_exp("grid", "quick")
    for popularity in ("uniform", "zipf"):
        panel = out.data[popularity]
        assert (
            panel["optbundle"]["mean_response_time"]
            <= panel["landlord"]["mean_response_time"]
        ), popularity
        assert (
            panel["optbundle"]["staged_mb"] <= panel["landlord"]["staged_mb"]
        ), popularity
