"""Figure 8: volume of data moved per request vs cache size."""

import pytest


@pytest.mark.benchmark(group="fig8")
def test_fig8_volume_per_request(run_exp):
    out = run_exp("fig8", "quick")
    for popularity in ("uniform", "zipf"):
        rows = [r for r in out.data[popularity] if r["policy"] == "optbundle"]
        rows.sort(key=lambda r: r["x"])
        ys = [r["mean_volume_per_request"] for r in rows]
        # Volume per request falls as the cache accommodates more requests.
        assert ys[-1] < ys[0], popularity
    # OptFileBundle moves less data than Landlord, most pronounced for Zipf.
    zipf = out.data["zipf"]
    opt = sum(r["mean_volume_per_request"] for r in zipf if r["policy"] == "optbundle")
    land = sum(r["mean_volume_per_request"] for r in zipf if r["policy"] == "landlord")
    assert opt < land
