"""Tables 1-2: the worked example (file vs request-hit probabilities)."""

import pytest


@pytest.mark.benchmark(group="tables")
def test_tables_worked_example(run_exp):
    out = run_exp("tables", "quick")
    # Table 1: most popular file is f5 with P = 2/3.
    assert out.data["file_probs"]["f5"] == (2, 3)
    # Table 2: popularity-based content supports 1/6, optimal 1/2.
    hit = {tuple(r["content"]): r["hit_prob"] for r in out.data["table2"]}
    assert hit[("f5", "f6", "f7")] == pytest.approx(1 / 6)
    assert hit[("f1", "f3", "f5")] == pytest.approx(1 / 2)
    # OptCacheSelect recovers the optimal content.
    assert out.data["greedy_files"] == ["f1", "f3", "f5"]
    assert out.data["greedy_value"] == out.data["exact_value"] == 3.0
