#!/usr/bin/env python
"""Bit-sliced-index range queries (the paper's third motivating example).

A bitmap index stores one compressed bitmap file per (attribute, bin); a
range query must have *every* bitmap of its bin ranges resident to evaluate
the boolean combination — a textbook file bundle.  This example compares
policies on such a query stream and then uses the exact FBC solver to show
how far the greedy OptCacheSelect is from the true optimum on small
snapshots of the query history.

Run:  python examples/bitmap_queries.py
"""

from collections import Counter

from repro.core import FBCInstance, opt_cache_select, solve_exact
from repro.sim import SimulationConfig, simulate_trace
from repro.types import GB, MB
from repro.utils.tables import render_table
from repro.workload import bitmap_index_trace

CACHE = 512 * MB


def policy_comparison(trace) -> None:
    rows = []
    for policy in ("optbundle", "landlord", "lru", "gdsf"):
        result = simulate_trace(
            trace, SimulationConfig(cache_size=CACHE, policy=policy)
        )
        rows.append([policy, result.byte_miss_ratio, result.request_hit_ratio])
    rows.sort(key=lambda r: r[1])
    print(render_table(["policy", "byte_miss_ratio", "request_hit_ratio"], rows))


def greedy_vs_exact(trace) -> None:
    """Solve small query-history snapshots exactly and compare."""
    counts = Counter(r.bundle for r in trace)
    top = counts.most_common(14)  # small enough for branch-and-bound
    sizes = trace.catalog.as_dict()
    instance = FBCInstance(
        bundles=tuple(b for b, _ in top),
        values=tuple(float(c) for _, c in top),
        sizes=sizes,
        budget=CACHE // 4,
    )
    greedy = opt_cache_select(instance)
    exact = solve_exact(instance)
    print("\nGreedy vs exact on the 14 hottest query types:")
    print(
        render_table(
            ["solver", "supported value", "files kept", "bytes used [MB]"],
            [
                [
                    "OptCacheSelect",
                    greedy.total_value,
                    len(greedy.files),
                    greedy.used_bytes / MB,
                ],
                ["exact B&B", exact.total_value, len(exact.files), exact.used_bytes / MB],
            ],
        )
    )
    print(f"greedy/exact value ratio: {greedy.total_value / exact.total_value:.3f}")


def main() -> None:
    trace = bitmap_index_trace(
        n_attributes=12,
        bins_per_attribute=20,
        n_jobs=2_500,
        mean_bitmap_size=4 * MB,
        seed=3,
    )
    print(
        f"Bitmap workload: {len(trace)} range queries over "
        f"{len(trace.catalog)} bitmap files "
        f"({trace.catalog.total_bytes() / MB:.0f} MB), cache {CACHE / MB:.0f} MB"
    )
    policy_comparison(trace)
    greedy_vs_exact(trace)


if __name__ == "__main__":
    main()
