#!/usr/bin/env python
"""Hybrid workloads, trace profiling, and statistically sound comparison.

Three things the library provides beyond the headline algorithms:

1. the paper's *future-work* hybrid execution model — mixing
   one-file-at-a-time jobs with file-bundle jobs — built with the trace
   transformation toolkit;
2. workload profiling (sharing degrees, popularity concentration, hot-set
   drift) so you can characterise a workload before simulating it;
3. a paired statistical comparison of two policies across seeds, which is
   how a claim like "OptFileBundle consistently beats Landlord" should be
   backed up.

Run:  python examples/hybrid_and_stats.py
"""

from repro.analysis import compare_paired
from repro.sim import SimulationConfig, simulate_trace
from repro.types import MB
from repro.utils.rng import derive_rng
from repro.utils.tables import render_table
from repro.workload import (
    WorkloadSpec,
    generate_trace,
    hybrid_trace,
    hot_set_drift,
    profile_trace,
)

CACHE = 256 * MB


def base_spec(seed: int) -> WorkloadSpec:
    return WorkloadSpec(
        cache_size=CACHE,
        n_files=250,
        n_request_types=150,
        n_jobs=800,
        popularity="zipf",
        max_file_fraction=0.02,
        max_bundle_fraction=0.15,
        seed=seed,
    )


def profile_section() -> None:
    trace = generate_trace(base_spec(0))
    print("== workload profile ==")
    print(profile_trace(trace).render())
    drift = hot_set_drift(trace, window=200, top=15)
    print(f"hot-set stability (windowed Jaccard): "
          f"{sum(drift) / len(drift):.3f}\n")


def hybrid_section() -> None:
    print("== hybrid execution model (paper future work) ==")
    rows = []
    for fraction in (0.0, 0.5, 1.0):
        trace = hybrid_trace(
            generate_trace(base_spec(1)),
            derive_rng(1, "hybrid"),
            single_file_fraction=fraction,
        )
        row = [fraction, len(trace)]
        for policy in ("optbundle", "landlord"):
            result = simulate_trace(
                trace, SimulationConfig(cache_size=CACHE, policy=policy)
            )
            row.append(result.byte_miss_ratio)
        rows.append(row)
    print(render_table(
        ["single-file fraction", "jobs", "optbundle", "landlord"], rows
    ))
    print()


def stats_section() -> None:
    print("== paired comparison across 8 seeds (byte miss ratio) ==")
    opt, land = [], []
    for seed in range(8):
        trace = generate_trace(base_spec(seed))
        for policy, sink in (("optbundle", opt), ("landlord", land)):
            sink.append(
                simulate_trace(
                    trace, SimulationConfig(cache_size=CACHE, policy=policy)
                ).byte_miss_ratio
            )
    comparison = compare_paired(opt, land)
    print(comparison.summary("optbundle", "landlord"))
    verdict = "significant" if comparison.significant else "not significant"
    print(f"=> difference is {verdict} at the 95% level")


if __name__ == "__main__":
    profile_section()
    hybrid_section()
    stats_section()
