#!/usr/bin/env python
"""Climate-analysis jobs on a multi-site timed data grid.

The paper's second motivating example (Fig. 1): climate simulation output
is vertically partitioned — one file per (run, variable) — and analysis
jobs correlate several variables of a run simultaneously.  Here the files
live on two replica sites behind different WAN links; an SRM stages missing
files through its disk cache.  The timed simulation reports what end users
feel: job response time and throughput, per replacement policy.

Run:  python examples/climate_grid.py
"""

import numpy as np

from repro.grid import (
    DataGridSite,
    NetworkLink,
    ReplicaCatalog,
    SRMConfig,
    StorageResourceManager,
)
from repro.sim import EventEngine
from repro.types import GB, MB
from repro.utils.tables import render_table
from repro.workload import climate_trace

CACHE = 2 * GB


def build_grid(engine: EventEngine, file_ids, rng) -> ReplicaCatalog:
    """Two storage sites; every file on the archive, hot files mirrored."""
    replicas = ReplicaCatalog()
    archive = DataGridSite.build(
        engine,
        "tape-archive",
        n_drives=4,
        mount_latency=25.0,
        drive_bandwidth=40 * MB,
        link=NetworkLink(bandwidth=50 * MB, latency=0.08),
    )
    mirror = DataGridSite.build(
        engine,
        "disk-mirror",
        n_drives=8,
        mount_latency=0.5,  # disk, not tape
        drive_bandwidth=120 * MB,
        link=NetworkLink(bandwidth=200 * MB, latency=0.02),
    )
    replicas.add_site(archive)
    replicas.add_site(mirror)
    for fid in file_ids:
        replicas.add_replica(fid, "tape-archive")
        if rng.random() < 0.3:  # 30% of files also on the fast mirror
            replicas.add_replica(fid, "disk-mirror")
    return replicas


def main() -> None:
    trace = climate_trace(n_runs=10, n_analyses=20, n_jobs=800, seed=11)
    print(
        f"Climate workload: {len(trace)} jobs over {len(trace.catalog)} "
        f"(run, variable) files ({trace.catalog.total_bytes() / GB:.1f} GB)"
    )

    rows = []
    for policy in ("optbundle", "landlord", "lru"):
        engine = EventEngine()
        replicas = build_grid(engine, trace.catalog.ids(), np.random.default_rng(5))
        srm = StorageResourceManager(
            engine,
            trace.catalog.as_dict(),
            SRMConfig(cache_size=CACHE, policy=policy, processing_time=2.0),
            replicas=replicas,
        )
        # Poisson arrivals, identical across policies (fixed seed).
        arr_rng = np.random.default_rng(99)
        t = 0.0
        for request in trace:
            t += float(arr_rng.exponential(20.0))
            engine.schedule_at(t, lambda r=request: srm.submit(r))
        engine.run()
        rows.append(
            [
                policy,
                srm.response_times.mean,
                srm.jobs_done / srm.last_completion * 3600,
                srm.bytes_staged / GB,
                srm.request_hits / srm.jobs_done,
            ]
        )
    print(render_table(
        ["policy", "mean resp [s]", "jobs/hour", "staged [GB]", "hit ratio"],
        rows,
    ))


if __name__ == "__main__":
    main()
