#!/usr/bin/env python
"""Quickstart: bundle-aware caching in ~60 lines.

Builds a tiny synthetic data-grid workload, replays it against the paper's
OptFileBundle policy and the Landlord baseline, and prints the byte miss
ratio and request-hit ratio of each — the comparison at the heart of the
paper.  Also demonstrates the core `OptCacheSelect` API directly on the
worked example from the paper's Section 3 (Fig. 3 / Tables 1-2).

Run:  python examples/quickstart.py
"""

from repro.core import FBCInstance, FileBundle, opt_cache_select
from repro.sim import SimulationConfig, simulate_trace
from repro.types import GB
from repro.utils.tables import render_table
from repro.workload import WorkloadSpec, generate_trace


def worked_example() -> None:
    """The paper's Fig. 3: popularity-based caching picks the wrong files."""
    bundles = (
        FileBundle(["f1", "f3", "f5"]),  # r1
        FileBundle(["f2", "f6", "f7"]),  # r2
        FileBundle(["f1", "f5"]),        # r3
        FileBundle(["f4", "f6", "f7"]),  # r4
        FileBundle(["f3", "f5"]),        # r5
        FileBundle(["f5", "f6", "f7"]),  # r6
    )
    sizes = {f"f{i}": 1 for i in range(1, 8)}  # unit-size files
    instance = FBCInstance(
        bundles=bundles,
        values=tuple(1.0 for _ in bundles),  # all requests equally likely
        sizes=sizes,
        budget=3,  # the cache holds three files
    )
    selection = opt_cache_select(instance)
    print("Worked example (Fig. 3):")
    print(f"  three most popular files : f5,f6,f7 -> supports 1/6 requests")
    print(
        f"  OptCacheSelect picks     : {','.join(sorted(selection.files))} "
        f"-> supports {int(selection.total_value)}/6 requests"
    )
    print()


def synthetic_comparison() -> None:
    """OptFileBundle vs Landlord on a paper-style synthetic workload."""
    spec = WorkloadSpec(
        cache_size=1 * GB,
        n_files=500,          # file population (catalog ~2.5x the cache)
        n_request_types=300,  # distinct bundle types jobs draw from
        n_jobs=2_000,
        popularity="zipf",    # the i-th popular request has P ~ 1/i
        max_file_fraction=0.01,   # files are 1MB .. 1% of the cache
        max_bundle_fraction=0.1,  # a bundle uses at most 10% of the cache
        seed=42,
    )
    trace = generate_trace(spec)
    print(
        f"Synthetic workload: {len(trace)} jobs over {len(trace.catalog)} "
        f"files, {trace.distinct_request_types()} request types"
    )

    rows = []
    for policy in ("optbundle", "landlord", "lru"):
        result = simulate_trace(
            trace, SimulationConfig(cache_size=spec.cache_size, policy=policy)
        )
        rows.append(
            [policy, result.byte_miss_ratio, result.request_hit_ratio]
        )
    print(render_table(["policy", "byte_miss_ratio", "request_hit_ratio"], rows))


if __name__ == "__main__":
    worked_example()
    synthetic_comparison()
