#!/usr/bin/env python
"""HENP event-analysis scenario (the paper's first motivating example).

High-energy physics events are vertically partitioned: each dataset stores
every event attribute (energy, momentum, particle counts, ...) in its own
file.  An analysis channel reads a characteristic *combination* of
attribute files of one dataset — a file bundle.  This example generates
such a workload, replays it under every cache policy, and shows how
admission-queue scheduling (Fig. 9) squeezes out further byte savings for
the bundle-aware policy.

Run:  python examples/henp_analysis.py
"""

from repro.sim import QueueDiscipline, SimulationConfig, simulate_trace
from repro.types import GB, MB
from repro.utils.tables import render_table
from repro.workload import henp_trace

CACHE = 2 * GB


def main() -> None:
    trace = henp_trace(
        n_datasets=15,
        n_attributes=40,
        n_channels=25,
        attrs_per_channel=(3, 8),
        n_jobs=3_000,
        mean_attr_file_size=15 * MB,
        seed=7,
    )
    catalog_gb = trace.catalog.total_bytes() / GB
    print(
        f"HENP workload: {len(trace)} analysis jobs, "
        f"{len(trace.catalog)} attribute files ({catalog_gb:.1f} GB), "
        f"cache {CACHE / GB:.0f} GB"
    )

    rows = []
    for policy in ("optbundle", "landlord", "lru", "lfu", "gdsf", "belady"):
        result = simulate_trace(
            trace, SimulationConfig(cache_size=CACHE, policy=policy)
        )
        rows.append(
            [
                policy,
                result.byte_miss_ratio,
                result.request_hit_ratio,
                result.metrics.mean_volume_per_request / MB,
            ]
        )
    rows.sort(key=lambda r: r[1])
    print(render_table(
        ["policy", "byte_miss_ratio", "request_hit_ratio", "MB/job"], rows
    ))

    print("\nAdmission-queue scheduling (OptFileBundle, highest value first):")
    q_rows = []
    for q in (1, 10, 50):
        result = simulate_trace(
            trace,
            SimulationConfig(
                cache_size=CACHE,
                policy="optbundle",
                queue_length=q,
                discipline=QueueDiscipline.VALUE,
            ),
        )
        q_rows.append([q, result.byte_miss_ratio, result.max_queue_wait])
    print(render_table(
        ["queue length", "byte_miss_ratio", "max wait [rounds]"], q_rows
    ))


if __name__ == "__main__":
    main()
