"""Legacy-editable-install shim.

The offline environment lacks the `wheel` package, so pip's PEP 660
editable path (which needs bdist_wheel) fails; this file lets
`pip install -e . --no-build-isolation` fall back to setup.py develop.
All metadata lives in pyproject.toml.
"""
from setuptools import setup

setup()
