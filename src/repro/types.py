"""Shared primitive types and unit constants.

The library identifies files by opaque string ids (``FileId``) and measures
all sizes in integer bytes (``SizeBytes``).  Keeping sizes integral avoids
floating-point drift in occupancy accounting over millions of simulated
operations — equality checks like ``used == sum(sizes)`` stay exact.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.errors import ConfigError

__all__ = [
    "FileId",
    "SizeBytes",
    "KB",
    "MB",
    "GB",
    "TB",
    "FileInfo",
    "FileCatalog",
    "total_size",
]

FileId = str
SizeBytes = int

KB: SizeBytes = 1024
MB: SizeBytes = 1024 * KB
GB: SizeBytes = 1024 * MB
TB: SizeBytes = 1024 * GB


@dataclass(frozen=True, slots=True)
class FileInfo:
    """Immutable description of one grid file.

    Attributes
    ----------
    file_id:
        Opaque identifier, unique within a catalog.
    size:
        File size in bytes; must be positive.
    """

    file_id: FileId
    size: SizeBytes

    def __post_init__(self) -> None:
        if not self.file_id:
            raise ConfigError("file_id must be a non-empty string")
        if self.size <= 0:
            raise ConfigError(f"file size must be positive, got {self.size}")


class FileCatalog:
    """Mapping from file ids to sizes for a fixed file population.

    A catalog is the authoritative source of file sizes shared by workload
    generators, caches and policies.  It is insert-only: files never change
    size or disappear, mirroring the write-once data sets of the paper's
    scientific setting.
    """

    __slots__ = ("_sizes",)

    def __init__(self, files: Iterable[FileInfo] | Mapping[FileId, SizeBytes] = ()):
        self._sizes: dict[FileId, SizeBytes] = {}
        if isinstance(files, Mapping):
            for fid, size in files.items():
                self.add(FileInfo(fid, size))
        else:
            for info in files:
                self.add(info)

    def add(self, info: FileInfo) -> None:
        """Register a file; raises on duplicate ids with conflicting sizes."""
        existing = self._sizes.get(info.file_id)
        if existing is not None:
            if existing != info.size:
                raise ConfigError(
                    f"file {info.file_id!r} already registered with size "
                    f"{existing}, conflicting size {info.size}"
                )
            return
        self._sizes[info.file_id] = info.size

    def size_of(self, file_id: FileId) -> SizeBytes:
        """Size of one file in bytes; raises ``KeyError`` if unknown."""
        return self._sizes[file_id]

    def get(self, file_id: FileId, default: SizeBytes | None = None) -> SizeBytes | None:
        return self._sizes.get(file_id, default)

    def __contains__(self, file_id: object) -> bool:
        return file_id in self._sizes

    def __len__(self) -> int:
        return len(self._sizes)

    def __iter__(self):
        return iter(self._sizes)

    def items(self):
        return self._sizes.items()

    def ids(self) -> list[FileId]:
        return list(self._sizes)

    def total_bytes(self) -> SizeBytes:
        """Total size of every file in the catalog."""
        return sum(self._sizes.values())

    def bundle_size(self, file_ids: Iterable[FileId]) -> SizeBytes:
        """Total size of a set of files (each counted once)."""
        sizes = self._sizes
        return sum(sizes[f] for f in set(file_ids))

    def as_dict(self) -> dict[FileId, SizeBytes]:
        """A copy of the id → size mapping."""
        return dict(self._sizes)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"FileCatalog(n={len(self._sizes)}, bytes={self.total_bytes()})"


def total_size(sizes: Mapping[FileId, SizeBytes], file_ids: Iterable[FileId]) -> SizeBytes:
    """Sum sizes of the distinct ``file_ids`` under the ``sizes`` mapping."""
    return sum(sizes[f] for f in set(file_ids))
