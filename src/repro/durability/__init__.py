"""Durable state for long-running FBC runs: WAL, checkpoints, recovery.

The paper's algorithms (and the competitive guarantees they inherit from
Landlord-style analyses) assume state — request history, credits, heap
orders — carried across the *whole* request sequence.  A coordinator
that forgets that state on a crash silently voids those guarantees, so
this subsystem makes simulation state durable:

* :mod:`repro.durability.atomicio` — crash-safe file primitives
  (temp-file + fsync + rename, directory fsync);
* :mod:`repro.durability.journal` — a write-ahead journal of
  length-prefixed, CRC32-checked frames with segment rotation, one frame
  per state-mutating job (admissions, evictions, per-policy rationale);
* :mod:`repro.durability.checkpoint` — versioned, atomically-written
  snapshots of :class:`~repro.cache.state.CacheState`, the policy's
  exported state (history, credits, heaps), metrics, and queue state,
  with journal truncation once a checkpoint lands;
* :mod:`repro.durability.runner` — :func:`run_durable` /
  :func:`resume_run`: the journaled simulation loop and the recovery
  path that re-executes the journal tail and continues byte-identically.
"""

from repro.durability.atomicio import (
    atomic_write_bytes,
    atomic_write_json,
    atomic_write_text,
    fsync_dir,
)
from repro.durability.checkpoint import (
    CHECKPOINT_SCHEMA_VERSION,
    Checkpoint,
    latest_checkpoint,
    list_checkpoints,
    load_checkpoint,
    write_checkpoint,
)
from repro.durability.journal import (
    JOURNAL_MAGIC,
    JournalFrame,
    JournalReader,
    JournalWriter,
    read_journal_dir,
)
from repro.durability.runner import (
    DurabilityConfig,
    DurableReport,
    resume_run,
    run_durable,
)

__all__ = [
    "atomic_write_bytes",
    "atomic_write_text",
    "atomic_write_json",
    "fsync_dir",
    "JOURNAL_MAGIC",
    "JournalFrame",
    "JournalWriter",
    "JournalReader",
    "read_journal_dir",
    "CHECKPOINT_SCHEMA_VERSION",
    "Checkpoint",
    "write_checkpoint",
    "load_checkpoint",
    "latest_checkpoint",
    "list_checkpoints",
    "DurabilityConfig",
    "DurableReport",
    "run_durable",
    "resume_run",
]
