"""The write-ahead journal: length-prefixed, CRC32-checked frames.

One frame is appended per state-mutating job *after* the telemetry
trace lines for that job are written (and, in ``always`` mode, forced
to disk — there the journal never acknowledges a decision whose trace
evidence could be lost; in the buffered default, recovery instead drops
any frame whose trace evidence did not survive).  Frame layout::

    +----------------+----------------+------------------------+
    | length (u32 BE)| crc32 (u32 BE) | payload (canonical JSON)|
    +----------------+----------------+------------------------+

inside segment files ``wal-NNNNNN.log`` that each begin with an 8-byte
magic.  A crash can only tear the *final* frame of the *final* segment
(appends are sequential), so the reader silently discards a short tail
there; a full-length frame whose CRC32 mismatches, or a torn tail in an
interior segment, is genuine corruption and raises
:class:`~repro.errors.JournalCorruptError`.

Checkpointing truncates the journal by rotating to a fresh segment and
deleting every older one — the checkpoint subsumes their frames.
"""

from __future__ import annotations

import json
import os
import re
import struct
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterator

from repro.durability.atomicio import fsync_dir
from repro.errors import JournalCorruptError, JournalError

__all__ = [
    "JOURNAL_MAGIC",
    "JournalFrame",
    "JournalWriter",
    "JournalReader",
    "read_journal_dir",
]

#: segment file preamble: format name + version
JOURNAL_MAGIC = b"FBCWAL01"

_HEADER = struct.Struct(">II")  # (payload length, payload crc32)
_SEGMENT_RE = re.compile(r"^wal-(\d{6})\.log$")

#: rotate segments beyond this many payload bytes (checkpoints usually
#: truncate long before this is reached)
DEFAULT_SEGMENT_BYTES = 8 * 1024 * 1024


def _encode_payload(payload: dict[str, Any]) -> bytes:
    # compact, insertion-ordered JSON: the CRC covers the raw bytes as
    # written, so no canonical key order is required
    return json.dumps(payload, separators=(",", ":")).encode("utf-8")


def _segment_name(index: int) -> str:
    return f"wal-{index:06d}.log"


def segment_index(path: Path) -> int:
    """The numeric index of a ``wal-NNNNNN.log`` path."""
    m = _SEGMENT_RE.match(path.name)
    if m is None:
        raise JournalError(f"not a journal segment file: {path.name!r}")
    return int(m.group(1))


def list_segments(journal_dir: str | Path) -> list[Path]:
    """Segment files under ``journal_dir``, ordered by index."""
    d = Path(journal_dir)
    if not d.is_dir():
        return []
    found = [p for p in d.iterdir() if _SEGMENT_RE.match(p.name)]
    return sorted(found, key=segment_index)


@dataclass(frozen=True)
class JournalFrame:
    """One decoded journal frame."""

    payload: dict[str, Any]
    segment: str
    offset: int

    @property
    def job(self) -> int:
        """The simulation job index this frame records."""
        return int(self.payload["job"])


class JournalWriter:
    """Appends frames to the current segment, rotating as needed.

    ``fsync`` policy:

    * ``"rotate"`` (default) — appends are buffered; a kill (or power
      cut) may lose the buffered tail, which shrinks the replay oracle
      and degrades recovery to re-execution from the newest surviving
      checkpoint rather than breaking it (segments are fsync'd only on
      size rotation);
    * ``"always"`` — additionally fsync every frame and every
      truncation; power-failure-proof at a substantial throughput cost.
    """

    def __init__(
        self,
        journal_dir: str | Path,
        *,
        max_segment_bytes: int = DEFAULT_SEGMENT_BYTES,
        fsync: str = "rotate",
    ):
        if fsync not in ("rotate", "always"):
            raise JournalError(f"fsync must be 'rotate' or 'always', got {fsync!r}")
        if max_segment_bytes < 1:
            raise JournalError(
                f"max_segment_bytes must be positive, got {max_segment_bytes}"
            )
        self.journal_dir = Path(journal_dir)
        self.journal_dir.mkdir(parents=True, exist_ok=True)
        self._max_segment_bytes = max_segment_bytes
        self._fsync_mode = fsync
        existing = list_segments(self.journal_dir)
        self._next_index = segment_index(existing[-1]) + 1 if existing else 0
        self._fh: Any = None
        self._segment_path: Path | None = None
        self._segment_bytes = 0
        self.frames_appended = 0
        self._open_segment()

    # ------------------------------------------------------------------ #

    @property
    def current_segment(self) -> Path:
        assert self._segment_path is not None
        return self._segment_path

    def _open_segment(self) -> None:
        path = self.journal_dir / _segment_name(self._next_index)
        self._next_index += 1
        fh = open(path, "xb")
        fh.write(JOURNAL_MAGIC)
        fh.flush()
        self._fh = fh
        self._segment_path = path
        self._segment_bytes = len(JOURNAL_MAGIC)

    def append(
        self, payload: dict[str, Any], *, encoded: bytes | None = None
    ) -> None:
        """Append one frame (buffered; flushed + fsync'd in ``always`` mode).

        In ``rotate`` mode frames sit in the writer's buffer until it
        fills, the segment rotates, :meth:`flush` is called, or the
        writer closes.  Losing buffered frames to a kill is safe:
        recovery re-executes every unacknowledged job from the newest
        checkpoint, and drops any surviving frame whose trace evidence
        was lost with the other buffer.

        ``encoded`` lets a hot caller supply the serialized payload
        bytes itself; it must equal ``_encode_payload(payload)`` (the
        CRC covers whatever bytes are given).
        """
        if self._fh is None:
            raise JournalError("journal writer is closed")
        data = _encode_payload(payload) if encoded is None else encoded
        frame = _HEADER.pack(len(data), zlib.crc32(data)) + data
        self._fh.write(frame)
        if self._fsync_mode == "always":
            self._fh.flush()
            os.fsync(self._fh.fileno())
        self._segment_bytes += len(frame)
        self.frames_appended += 1
        if self._segment_bytes >= self._max_segment_bytes:
            self.rotate()

    def flush(self) -> None:
        """Push buffered frames to the OS (page cache)."""
        if self._fh is not None:
            self._fh.flush()

    def rotate(self) -> None:
        """fsync + close the current segment and start the next one."""
        self._close_current(sync=True)
        self._open_segment()

    def truncate_to_checkpoint(self) -> None:
        """Delete every journaled frame: the checkpoint subsumes them.

        The outgoing segment is closed *without* an fsync — it is
        unlinked in the same breath, so there is nothing worth pushing
        to stable storage.  Losing the unlinks to a power cut is also
        harmless: stale segments only hold pre-checkpoint frames, which
        recovery filters out by job index.
        """
        if self._fh is not None:
            self._fh.flush()
            self._fh.close()
            self._fh = None
        for seg in list_segments(self.journal_dir):
            seg.unlink()
        self._open_segment()
        if self._fsync_mode == "always":
            fsync_dir(self.journal_dir)

    def _close_current(self, *, sync: bool) -> None:
        if self._fh is not None:
            self._fh.flush()
            if sync:
                os.fsync(self._fh.fileno())
            self._fh.close()
            self._fh = None

    def close(self) -> None:
        # ``rotate`` mode only fsyncs at size-rotation boundaries; the
        # closing flush is kill-safe on its own (page cache is
        # kernel-side), so stable storage is "always"-mode territory.
        self._close_current(sync=self._fsync_mode == "always")

    def __enter__(self) -> "JournalWriter":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


class JournalReader:
    """Streams frames from one segment file."""

    def __init__(self, path: str | Path, *, tolerate_torn_tail: bool = False):
        self.path = Path(path)
        self.tolerate_torn_tail = tolerate_torn_tail
        #: set after iteration: True when a torn final frame was discarded
        self.torn = False

    def __iter__(self) -> Iterator[JournalFrame]:
        with open(self.path, "rb") as fh:
            magic = fh.read(len(JOURNAL_MAGIC))
            if magic != JOURNAL_MAGIC:
                raise JournalCorruptError(
                    f"{self.path}: bad journal magic {magic!r}",
                    path=str(self.path),
                    offset=0,
                )
            offset = len(JOURNAL_MAGIC)
            while True:
                header = fh.read(_HEADER.size)
                if not header:
                    return
                if len(header) < _HEADER.size:
                    self._torn(offset, "truncated frame header")
                    return
                length, crc = _HEADER.unpack(header)
                data = fh.read(length)
                if len(data) < length:
                    self._torn(offset, "truncated frame payload")
                    return
                if zlib.crc32(data) != crc:
                    raise JournalCorruptError(
                        f"{self.path}: frame at offset {offset} fails its "
                        "CRC32 check",
                        path=str(self.path),
                        offset=offset,
                    )
                payload = json.loads(data.decode("utf-8"))
                yield JournalFrame(
                    payload=payload, segment=str(self.path), offset=offset
                )
                offset += _HEADER.size + length

    def _torn(self, offset: int, what: str) -> None:
        if not self.tolerate_torn_tail:
            raise JournalCorruptError(
                f"{self.path}: {what} at offset {offset}",
                path=str(self.path),
                offset=offset,
            )
        self.torn = True


def read_journal_dir(journal_dir: str | Path) -> tuple[list[JournalFrame], bool]:
    """All valid frames across a journal directory, in append order.

    Tolerates a torn final frame in the *last* segment only (the only
    place a crash can leave one); returns ``(frames, torn)``.  Raises
    :class:`~repro.errors.JournalCorruptError` for interior corruption.
    """
    segments = list_segments(journal_dir)
    frames: list[JournalFrame] = []
    torn = False
    for i, seg in enumerate(segments):
        reader = JournalReader(seg, tolerate_torn_tail=(i == len(segments) - 1))
        frames.extend(reader)
        torn = reader.torn
    return frames, torn
