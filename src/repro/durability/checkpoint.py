"""Versioned, atomically-written simulation checkpoints.

A checkpoint is one JSON document ``ckpt-NNNNNN.json`` (``N`` = index of
the next job to execute) carrying the full serialized simulation state
(every component's ``export_state()``), the telemetry high-water marks
(trace byte offset and next sequence number) and a whole-document CRC32.
Writes go through :func:`repro.durability.atomicio.atomic_write_text`,
so a crash leaves either the previous checkpoint set or the new one —
never a torn file.  The loader walks checkpoints newest-first and falls
back past any that fail the CRC or schema check, so a corrupted latest
checkpoint degrades recovery (more journal replay) instead of killing
it.

The documented on-disk format is **checkpoint schema v1**; bump
:data:`CHECKPOINT_SCHEMA_VERSION` on any incompatible change (the
RPR005 drift linter cross-checks the README against this constant).
"""

from __future__ import annotations

import json
import re
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.durability.atomicio import atomic_write_text
from repro.errors import CheckpointError

__all__ = [
    "CHECKPOINT_SCHEMA_VERSION",
    "Checkpoint",
    "write_checkpoint",
    "load_checkpoint",
    "latest_checkpoint",
    "list_checkpoints",
]

#: on-disk checkpoint format version (see module docstring)
CHECKPOINT_SCHEMA_VERSION = 1

#: how many checkpoints to retain (the newest may be torn-adjacent in
#: pathological filesystems; one predecessor is the fallback)
KEEP_CHECKPOINTS = 2

#: top-level keys every checkpoint document must carry
CHECKPOINT_REQUIRED_KEYS = frozenset(
    {"schema_version", "job", "arrivals_consumed", "trace_offset",
     "trace_seq", "state", "crc32"}
)

_CKPT_RE = re.compile(r"^ckpt-(\d{6})\.json$")


def _canonical(doc: dict[str, Any]) -> bytes:
    return json.dumps(doc, sort_keys=True, separators=(",", ":")).encode("utf-8")


@dataclass(frozen=True)
class Checkpoint:
    """One validated checkpoint document."""

    path: Path
    doc: dict[str, Any]

    @property
    def job(self) -> int:
        """Index of the next job to execute after restoring this state."""
        return int(self.doc["job"])

    @property
    def arrivals_consumed(self) -> int:
        return int(self.doc["arrivals_consumed"])

    @property
    def trace_offset(self) -> int:
        """Telemetry-trace byte length at the checkpoint boundary."""
        return int(self.doc["trace_offset"])

    @property
    def trace_seq(self) -> int:
        """Next telemetry sequence number at the checkpoint boundary."""
        return int(self.doc["trace_seq"])

    @property
    def state(self) -> dict[str, Any]:
        return self.doc["state"]


def list_checkpoints(checkpoint_dir: str | Path) -> list[Path]:
    """Checkpoint files under ``checkpoint_dir``, oldest first."""
    d = Path(checkpoint_dir)
    if not d.is_dir():
        return []
    found = [p for p in d.iterdir() if _CKPT_RE.match(p.name)]
    return sorted(found, key=lambda p: int(_CKPT_RE.match(p.name).group(1)))  # type: ignore[union-attr]


def write_checkpoint(
    checkpoint_dir: str | Path,
    *,
    job: int,
    arrivals_consumed: int,
    trace_offset: int,
    trace_seq: int,
    state: dict[str, Any],
    keep: int = KEEP_CHECKPOINTS,
    fsync: bool = True,
) -> Path:
    """Atomically write a checkpoint and prune old ones; returns its path.

    ``fsync=False`` keeps the temp-file + rename atomicity (kill-safe)
    but skips pushing the bytes to stable storage — the durable runner's
    default ``"rotate"`` mode uses this, accepting that a power cut may
    fall back to an older checkpoint.
    """
    d = Path(checkpoint_dir)
    d.mkdir(parents=True, exist_ok=True)
    doc: dict[str, Any] = {
        "schema_version": CHECKPOINT_SCHEMA_VERSION,
        "job": int(job),
        "arrivals_consumed": int(arrivals_consumed),
        "trace_offset": int(trace_offset),
        "trace_seq": int(trace_seq),
        "state": state,
    }
    # Serialize once: the CRC covers the canonical form *without* the
    # crc32 key (mirroring load_checkpoint, which pops it and
    # re-canonicalizes the parsed dict — so on-disk key order is free),
    # and the stored document is that same body with the CRC spliced on.
    body = _canonical(doc)
    crc = zlib.crc32(body)
    doc["crc32"] = crc
    missing = CHECKPOINT_REQUIRED_KEYS - set(doc)
    if missing:
        raise CheckpointError(f"checkpoint missing keys: {sorted(missing)}")
    path = d / f"ckpt-{job:06d}.json"
    text = body[:-1].decode("utf-8") + f',"crc32":{crc}}}'
    atomic_write_text(path, text, fsync=fsync)
    for old in list_checkpoints(d)[:-keep]:
        old.unlink()
    return path


def load_checkpoint(path: str | Path) -> Checkpoint:
    """Load and validate one checkpoint file (CRC + schema version)."""
    path = Path(path)
    try:
        doc = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise CheckpointError(f"{path}: unreadable checkpoint: {exc}") from None
    if not isinstance(doc, dict):
        raise CheckpointError(f"{path}: checkpoint is not a JSON object")
    missing = CHECKPOINT_REQUIRED_KEYS - set(doc)
    if missing:
        raise CheckpointError(f"{path}: checkpoint missing keys {sorted(missing)}")
    recorded_crc = doc.pop("crc32")
    actual_crc = zlib.crc32(_canonical(doc))
    if recorded_crc != actual_crc:
        raise CheckpointError(
            f"{path}: checkpoint CRC mismatch "
            f"(recorded {recorded_crc}, actual {actual_crc})"
        )
    doc["crc32"] = recorded_crc
    if doc["schema_version"] != CHECKPOINT_SCHEMA_VERSION:
        raise CheckpointError(
            f"{path}: unsupported checkpoint schema "
            f"v{doc['schema_version']} (this build reads "
            f"v{CHECKPOINT_SCHEMA_VERSION})"
        )
    return Checkpoint(path=path, doc=doc)


def latest_checkpoint(checkpoint_dir: str | Path) -> Checkpoint | None:
    """The newest checkpoint that validates; falls back past corrupt ones."""
    for path in reversed(list_checkpoints(checkpoint_dir)):
        try:
            return load_checkpoint(path)
        except CheckpointError:
            continue
    return None
