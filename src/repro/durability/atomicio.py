"""Crash-safe filesystem primitives.

Every durable artifact in this package (checkpoints, manifests, bench
records, final results) goes through :func:`atomic_write_bytes`: write to
a temporary file in the *same directory*, flush + fsync the data, rename
over the destination, then fsync the directory so the rename itself is
durable.  A reader therefore observes either the old complete file or
the new complete file — never a torn mixture — under both process
crashes (SIGKILL) and power loss.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any

__all__ = [
    "atomic_write_bytes",
    "atomic_write_text",
    "atomic_write_json",
    "fsync_dir",
]


def fsync_dir(path: str | Path) -> None:
    """fsync a directory so renames/creations inside it are durable."""
    fd = os.open(str(path), os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def atomic_write_bytes(path: str | Path, data: bytes, *, fsync: bool = True) -> None:
    """Replace ``path`` with ``data`` atomically (temp + fsync + rename)."""
    path = Path(path)
    fd, tmp_name = tempfile.mkstemp(
        prefix=path.name + ".", suffix=".tmp", dir=str(path.parent)
    )
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(data)
            fh.flush()
            if fsync:
                os.fsync(fh.fileno())
        os.replace(tmp_name, path)
        if fsync:
            fsync_dir(path.parent)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def atomic_write_text(path: str | Path, text: str, *, fsync: bool = True) -> None:
    """Replace ``path`` with UTF-8 ``text`` atomically."""
    atomic_write_bytes(path, text.encode("utf-8"), fsync=fsync)


def atomic_write_json(
    path: str | Path, obj: Any, *, indent: int | None = 2, fsync: bool = True
) -> None:
    """Serialize ``obj`` as JSON and write it atomically (trailing newline)."""
    atomic_write_text(
        path, json.dumps(obj, indent=indent, sort_keys=True) + "\n", fsync=fsync
    )
