"""The durable simulation loop: journaled, checkpointed, resumable.

:func:`run_durable` executes a workload inside a *run directory*::

    <run_dir>/
        manifest.json     simulation + durability parameters (atomic)
        workload.jsonl    the trace being replayed (self-contained run)
        trace.jsonl       telemetry trace (flushed at every checkpoint)
        journal/          write-ahead log, one frame per serviced job
        checkpoints/      versioned state snapshots (+ journal truncation)
        result.json       final metrics (atomic, only on completion)

The per-job commit order is **trace first, journal second**: a job's
telemetry lines are written before its journal frame.  In the default
``"rotate"`` mode both files are OS-buffered between checkpoints (a
checkpoint always flushes the trace before recording its offset), so a
kill may lose the buffered tail of either file; recovery keeps only
journal frames whose trace evidence survived and re-executes everything
else from the newest checkpoint.  In ``"always"`` mode each job's trace
bytes are forced to disk before its frame is appended and fsync'd,
making the journal a strict per-job commit record.  Every
``checkpoint_every`` jobs the full simulation state — cache residency,
the policy's exported state, metrics, the admission queue — is
snapshotted atomically and the journal is truncated.

:func:`resume_run` recovers by **re-execution**: it restores the latest
valid checkpoint, truncates the telemetry trace to the checkpoint's byte
offset, and re-runs the workload from there.  The surviving journal tail
acts as an oracle: each frame records its job's *trace byte range* (the
trace lines themselves are the event payload), and the resume captures
those original bytes before truncating, after dropping any trailing
frames whose trace bytes did not survive the crash.  Each re-executed job must
reproduce its journaled frame and its trace bytes exactly, otherwise
:class:`~repro.errors.ReplayDivergenceError` fires.  Because every
component restores *exactly* (heap orders, RNG state, tie-break
counters), the stitched trace is byte-identical to an uninterrupted
run's; ``verify`` additionally replays the stitched trace through
:func:`repro.telemetry.forensics.reconstruct` and checks the
reconstructed residency against the live cache.
"""

from __future__ import annotations

import enum
import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterator

from repro.cache.registry import make_policy
from repro.cache.state import CacheState
from repro.core.history import TruncationMode
from repro.core.request import Request
from repro.durability.atomicio import (
    atomic_write_bytes,
    atomic_write_json,
    atomic_write_text,
    fsync_dir,
)
from repro.durability.checkpoint import latest_checkpoint, write_checkpoint
from repro.durability.journal import (
    _HEADER,
    DEFAULT_SEGMENT_BYTES,
    JournalFrame,
    JournalWriter,
    list_segments,
    read_journal_dir,
)
from repro.errors import ConfigError, DurabilityError, ReplayDivergenceError
from repro.faults.crash import CrashInjector, CrashSpec
from repro.sim.metrics import MetricsCollector
from repro.sim.queueing import AdmissionQueue, QueueDiscipline
from repro.sim.coordinator import CoordinatorCore
from repro.sim.simulator import (
    SimulationConfig,
    SimulationResult,
    _queued,
)
from repro.telemetry.events import TraceEvent, event_to_dict
from repro.telemetry.recorder import TraceRecorder, use_recorder
from repro.telemetry.sinks import JsonlSink, TraceSink
from repro.workload.trace import Trace

__all__ = [
    "MANIFEST_SCHEMA_VERSION",
    "DurabilityConfig",
    "DurableReport",
    "run_durable",
    "resume_run",
]

#: on-disk manifest format version
MANIFEST_SCHEMA_VERSION = 1

#: policy kwargs that arrive as enums and must round-trip through JSON
_ENUM_KWARGS: dict[str, type[enum.Enum]] = {"truncation": TruncationMode}


@dataclass(frozen=True)
class DurabilityConfig:
    """Parameters of the durable runner (orthogonal to the simulation).

    Attributes
    ----------
    run_dir:
        The run directory (created if missing; must not already contain
        another run's manifest).
    checkpoint_every:
        Snapshot the full state every N jobs (journal is truncated at
        each snapshot, bounding recovery re-execution to < N jobs).
    fsync:
        ``"rotate"`` (default) — trace and journal are OS-buffered
        between checkpoints and all artifacts are written atomically; a
        kill (or power cut) may lose the buffered tail of either file,
        which shrinks the replay oracle or falls back to an older
        checkpoint — recovery always succeeds by re-execution.
        ``"always"`` — flush + fsync every journal frame, checkpoint
        and per-job trace boundary; a strict per-job commit record,
        power-failure-proof, slow.
    max_segment_bytes:
        Journal segment rotation threshold.
    verify_on_resume:
        After a resume completes, reconstruct the stitched trace and
        check it against the live cache state.
    crash:
        Optional :class:`~repro.faults.crash.CrashSpec` injecting a
        deterministic crash (testing/chaos only).
    """

    run_dir: Path
    checkpoint_every: int = 100
    fsync: str = "rotate"
    max_segment_bytes: int = DEFAULT_SEGMENT_BYTES
    verify_on_resume: bool = True
    crash: CrashSpec | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "run_dir", Path(self.run_dir))
        if self.checkpoint_every < 1:
            raise ConfigError(
                f"checkpoint_every must be >= 1, got {self.checkpoint_every}"
            )
        if self.fsync not in ("rotate", "always"):
            raise ConfigError(
                f"fsync must be 'rotate' or 'always', got {self.fsync!r}"
            )
        if self.max_segment_bytes < 1:
            raise ConfigError(
                f"max_segment_bytes must be positive, got {self.max_segment_bytes}"
            )


@dataclass(frozen=True)
class DurableReport:
    """Outcome of a completed durable (or resumed) run."""

    result: SimulationResult
    run_dir: Path
    trace_path: Path
    #: jobs serviced by *this* process (a resume excludes checkpointed jobs)
    jobs_executed: int
    #: index of the first job this process executed (0 for a cold run)
    resumed_from_job: int
    #: re-executed jobs that were verified against surviving journal frames
    replayed_jobs: int
    checkpoints_written: int


class _TeeSink(TraceSink):
    """Writes through to a :class:`JsonlSink`; while ``capture`` is set,
    additionally buffers the serialized lines (replay verification)."""

    def __init__(self, inner: JsonlSink):
        self.inner = inner
        self.capture: list[str] | None = None

    def emit(self, seq: int, event: TraceEvent) -> None:
        line = json.dumps(
            event_to_dict(seq, event), sort_keys=True, separators=(",", ":")
        )
        self.inner.emit_line(line)
        if self.capture is not None:
            self.capture.append(line)

    def close(self) -> None:
        self.inner.close()


# ---------------------------------------------------------------------- #
# manifest (de)serialization


def _config_to_manifest(
    config: SimulationConfig, durability: DurabilityConfig
) -> dict[str, Any]:
    kwargs: dict[str, Any] = {}
    for key, value in config.policy_kwargs.items():
        kwargs[key] = value.value if isinstance(value, enum.Enum) else value
    try:
        json.dumps(kwargs)
    except TypeError as exc:
        raise ConfigError(
            f"policy_kwargs are not JSON-serializable ({exc}); durable runs "
            "require a replayable manifest"
        ) from None
    return {
        "schema_version": MANIFEST_SCHEMA_VERSION,
        "workload": "workload.jsonl",
        "config": {
            "cache_size": config.cache_size,
            "policy": config.policy,
            "policy_kwargs": kwargs,
            "queue_length": config.queue_length,
            "discipline": config.discipline.value,
            "queue_mode": config.queue_mode,
            "warmup": config.warmup,
            "check_invariants": config.check_invariants,
        },
        "durability": {
            "checkpoint_every": durability.checkpoint_every,
            "fsync": durability.fsync,
            "max_segment_bytes": durability.max_segment_bytes,
        },
    }


def _config_from_manifest(doc: dict[str, Any]) -> SimulationConfig:
    cfg = doc["config"]
    kwargs = dict(cfg.get("policy_kwargs") or {})
    for key, enum_cls in _ENUM_KWARGS.items():
        if key in kwargs and isinstance(kwargs[key], str):
            kwargs[key] = enum_cls(kwargs[key])
    return SimulationConfig(
        cache_size=int(cfg["cache_size"]),
        policy=str(cfg["policy"]),
        policy_kwargs=kwargs,
        queue_length=int(cfg["queue_length"]),
        discipline=QueueDiscipline(cfg["discipline"]),
        queue_mode=str(cfg["queue_mode"]),
        warmup=int(cfg["warmup"]),
        check_invariants=bool(cfg["check_invariants"]),
    )


def _load_manifest(run_dir: Path) -> dict[str, Any]:
    path = run_dir / "manifest.json"
    try:
        doc = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise DurabilityError(f"{path}: unreadable run manifest: {exc}") from None
    if doc.get("schema_version") != MANIFEST_SCHEMA_VERSION:
        raise DurabilityError(
            f"{path}: unsupported manifest schema "
            f"v{doc.get('schema_version')!r} (this build reads "
            f"v{MANIFEST_SCHEMA_VERSION})"
        )
    return doc


# ---------------------------------------------------------------------- #
# entry points


def run_durable(
    trace: Trace,
    config: SimulationConfig,
    durability: DurabilityConfig,
    *,
    workload_source: "str | Path | None" = None,
) -> DurableReport:
    """Execute ``trace`` under ``config`` with journaling and checkpoints.

    The run directory is laid out as documented in the module docstring;
    a crash (injected or real) at any point leaves a state
    :func:`resume_run` recovers from.  Refuses to start in a directory
    that already holds a run manifest (resume instead, or use a fresh
    directory).

    ``workload_source`` names the JSONL file ``trace`` was loaded from,
    when there is one: the bytes are staged into the run directory as-is
    instead of re-serializing the in-memory trace (input staging, not
    part of the journal/checkpoint overhead).  The file must be the dump
    of ``trace`` — a resume replays from the staged copy.
    """
    run_dir = durability.run_dir
    if (run_dir / "manifest.json").exists():
        raise DurabilityError(
            f"{run_dir} already contains a durable run; use resume_run() "
            "or a fresh directory"
        )
    run_dir.mkdir(parents=True, exist_ok=True)
    sync = durability.fsync == "always"
    if workload_source is not None:
        data = Path(workload_source).read_bytes()
        # cheap shape check: one header line plus one line per job
        if data.count(b"\n") != len(trace) + 1 or not data.endswith(b"\n"):
            raise DurabilityError(
                f"{workload_source} does not look like the dump of the "
                f"supplied trace ({len(trace)} jobs)"
            )
        atomic_write_bytes(run_dir / "workload.jsonl", data, fsync=sync)
    else:
        atomic_write_text(
            run_dir / "workload.jsonl",
            "\n".join(trace.dump_lines()) + "\n",
            fsync=sync,
        )
    atomic_write_json(
        run_dir / "manifest.json",
        _config_to_manifest(config, durability),
        fsync=sync,
    )
    return _execute(
        trace,
        config,
        durability,
        start_job=0,
        arrivals_consumed=0,
        restored=None,
        tail_frames=[],
        oracle=b"",
        start_seq=0,
        verify=False,
    )


def resume_run(
    run_dir: str | Path,
    *,
    verify: bool | None = None,
    crash: CrashSpec | None = None,
) -> DurableReport:
    """Recover an interrupted durable run and drive it to completion.

    Restores the newest valid checkpoint (falling back past corrupt
    ones; a run crashed before its first checkpoint restarts from job
    0), truncates the telemetry trace to the checkpoint's byte offset,
    and re-executes the remaining workload.  Journal frames that
    survived the crash are used as an oracle: each re-executed job must
    reproduce its frame exactly or
    :class:`~repro.errors.ReplayDivergenceError` is raised.

    ``verify`` overrides the manifest's ``verify_on_resume``; ``crash``
    optionally injects a *new* crash into the resumed portion (crash
    sweeps resume repeatedly).
    """
    run_dir = Path(run_dir)
    manifest = _load_manifest(run_dir)
    config = _config_from_manifest(manifest)
    dur = manifest["durability"]
    durability = DurabilityConfig(
        run_dir=run_dir,
        checkpoint_every=int(dur["checkpoint_every"]),
        fsync=str(dur["fsync"]),
        max_segment_bytes=int(dur["max_segment_bytes"]),
        crash=crash,
    )
    trace = Trace.load(run_dir / manifest["workload"])

    ckpt = latest_checkpoint(run_dir / "checkpoints")
    frames, _torn = read_journal_dir(run_dir / "journal")
    if ckpt is not None:
        start_job = ckpt.job
        arrivals_consumed = ckpt.arrivals_consumed
        restored: dict[str, Any] | None = ckpt.state
        trace_offset = ckpt.trace_offset
        start_seq = ckpt.trace_seq
    else:
        start_job = 0
        arrivals_consumed = 0
        restored = None
        trace_offset = 0
        start_seq = 0
    # A crash between checkpoint write and journal truncation leaves
    # frames the checkpoint already subsumes; only the tail re-executes.
    tail = [f for f in frames if f.job >= start_job]

    trace_path = run_dir / "trace.jsonl"
    existing = trace_path.read_bytes() if trace_path.exists() else b""
    if len(existing) < trace_offset:
        raise DurabilityError(
            f"{trace_path} holds {len(existing)} bytes but the checkpoint "
            f"records {trace_offset}"
        )
    # Capture the journal-acknowledged trace bytes of the tail jobs
    # before truncating: they are the replay oracle.  In the default
    # buffered ("rotate") mode the two files flush independently, so a
    # kill can leave frames whose trace bytes never reached disk; those
    # frames have no evidence to verify against — drop them and let
    # re-execution regenerate their jobs.  trace_offset is monotone
    # across frames, so trimming from the end keeps a verifiable prefix.
    while tail and int(tail[-1].payload["trace_offset"]) > len(existing):
        tail.pop()
    oracle = b""
    if tail:
        oracle = existing[trace_offset : int(tail[-1].payload["trace_offset"])]
    if not trace_path.exists():
        trace_path.touch()
    with open(trace_path, "rb+") as fh:
        fh.truncate(trace_offset)
        fh.flush()
        os.fsync(fh.fileno())
    # The journal tail is now held in memory (the oracle); re-executed
    # jobs re-journal themselves, so old segments are cleared first.
    for segment in list_segments(run_dir / "journal"):
        segment.unlink()
    fsync_dir(run_dir / "journal")

    return _execute(
        trace,
        config,
        durability,
        start_job=start_job,
        arrivals_consumed=arrivals_consumed,
        restored=restored,
        tail_frames=tail,
        oracle=oracle,
        start_seq=start_seq,
        verify=durability.verify_on_resume if verify is None else verify,
    )


# ---------------------------------------------------------------------- #
# the journaled loop


def _append_torn_frame(journal: JournalWriter) -> None:
    # a header promising more payload than follows: exactly the tail a
    # mid-write crash leaves
    journal.flush()  # keep buffered frames ahead of the injected tear
    with open(journal.current_segment, "ab") as fh:
        fh.write(_HEADER.pack(1 << 16, 0) + b'{"torn":')
        fh.flush()


def _check_frame(
    expected: JournalFrame,
    actual: dict[str, Any],
    *,
    actual_bytes: bytes,
    oracle: bytes,
    oracle_base: int,
) -> None:
    """One re-executed job against its surviving journal frame + trace bytes."""
    if expected.payload != actual:
        diff_keys = sorted(
            k
            for k in set(expected.payload) | set(actual)
            if expected.payload.get(k) != actual.get(k)
        )
        raise ReplayDivergenceError(
            f"job {actual['job']}: re-execution diverged from journal frame "
            f"({expected.segment} @ {expected.offset}) on {diff_keys}"
        )
    start = int(actual["trace_start"]) - oracle_base
    end = int(actual["trace_offset"]) - oracle_base
    if oracle[start:end] != actual_bytes:
        raise ReplayDivergenceError(
            f"job {actual['job']}: re-executed trace bytes differ from the "
            f"journaled originals (trace range {actual['trace_start']}.."
            f"{actual['trace_offset']})"
        )


def _execute(
    trace: Trace,
    config: SimulationConfig,
    durability: DurabilityConfig,
    *,
    start_job: int,
    arrivals_consumed: int,
    restored: dict[str, Any] | None,
    tail_frames: list[JournalFrame],
    oracle: bytes,
    start_seq: int,
    verify: bool,
) -> DurableReport:
    run_dir = durability.run_dir
    trace_path = run_dir / "trace.jsonl"
    sizes = trace.catalog.as_dict()
    all_requests: list[Request] = list(trace)
    if arrivals_consumed > len(all_requests):
        raise DurabilityError(
            f"checkpoint consumed {arrivals_consumed} arrivals but the "
            f"workload has only {len(all_requests)}"
        )

    consumed = arrivals_consumed

    def arrivals() -> Iterator[Request]:
        nonlocal consumed
        while consumed < len(all_requests):
            request = all_requests[consumed]
            consumed += 1
            yield request

    jsonl = JsonlSink(trace_path, append=restored is not None)
    # the tee layer only earns its per-event cost when there are journal
    # frames to verify against; fresh runs write straight to the file
    sink: JsonlSink | _TeeSink = _TeeSink(jsonl) if tail_frames else jsonl
    recorder = TraceRecorder(sink, start_seq=start_seq)
    with use_recorder(recorder):
        cache = (
            CacheState.restore(restored["cache"])
            if restored is not None
            else CacheState(config.cache_size)
        )
        policy = make_policy(
            config.policy, future=trace.bundles(), **config.policy_kwargs
        )
        policy.bind(cache, sizes)
        if restored is not None:
            policy.import_state(restored["policy"])
        metrics = MetricsCollector(warmup=config.warmup)
        if restored is not None:
            metrics.import_state(restored["metrics"])

        if config.queue_length > 1:
            queue: AdmissionQueue | None = AdmissionQueue(
                config.queue_length, config.discipline, sizes=sizes
            )
            if restored is not None and restored.get("queue") is not None:
                queue.import_state(restored["queue"])
            drain_first = (
                restored is not None
                and config.queue_mode == "drain"
                and len(queue) > 0
            )
            requests: Iterator[Request] = _queued(
                arrivals(),
                queue,
                policy.score,
                config.queue_mode,
                drain_first=drain_first,
            )
        else:
            queue = None
            requests = arrivals()

        core = CoordinatorCore(
            cache=cache,
            policy=policy,
            sizes=sizes,
            metrics=metrics,
            recorder=recorder,
            check_invariants=config.check_invariants,
        )
        journal = JournalWriter(
            run_dir / "journal",
            max_segment_bytes=durability.max_segment_bytes,
            fsync=durability.fsync,
        )
        injector = (
            CrashInjector(durability.crash) if durability.crash is not None else None
        )
        oracle_base = jsonl.bytes_written
        n_tail = len(tail_frames)
        strict = durability.fsync == "always"
        checkpoints_written = 0
        replayed = 0
        jobs_executed = 0
        try:
            for job_index, request in enumerate(requests, start=start_job):
                if replayed < n_tail:
                    sink.capture = []
                trace_start = jsonl.bytes_written
                core.submit(job_index, request)
                # commit order: the job's trace lines are written before its
                # frame.  "always" additionally forces them to disk first,
                # making the frame a strict per-job commit record; the
                # buffered default lets resume trim evidence-less frames.
                if strict:
                    jsonl.flush(sync=True)
                trace_offset = jsonl.bytes_written
                seq = recorder.events_emitted
                frame = {
                    "job": job_index,
                    "request_id": request.request_id,
                    "trace_start": trace_start,
                    "trace_offset": trace_offset,
                    "seq": seq,
                    "arrivals_consumed": consumed,
                }
                # hand-rolled serialization of the all-int frame; must
                # match _encode_payload(frame) byte-for-byte (~6x faster
                # than json.dumps on this hot path)
                encoded = (
                    f'{{"job":{job_index},"request_id":{request.request_id},'
                    f'"trace_start":{trace_start},"trace_offset":{trace_offset},'
                    f'"seq":{seq},"arrivals_consumed":{consumed}}}'
                ).encode("ascii")
                if replayed < n_tail:
                    captured = sink.capture or []
                    _check_frame(
                        tail_frames[replayed],
                        frame,
                        actual_bytes="".join(
                            line + "\n" for line in captured
                        ).encode("utf-8"),
                        oracle=oracle,
                        oracle_base=oracle_base,
                    )
                    replayed += 1
                    sink.capture = None
                journal.append(frame, encoded=encoded)
                jobs_executed += 1
                if injector is not None:
                    injector.tick(torn_hook=lambda: _append_torn_frame(journal))
                if (job_index + 1) % durability.checkpoint_every == 0:
                    # the trace is always flushed before the checkpoint that
                    # records its offset, so a surviving checkpoint never
                    # points past the end of the surviving trace
                    jsonl.flush(sync=strict)
                    write_checkpoint(
                        run_dir / "checkpoints",
                        job=job_index + 1,
                        arrivals_consumed=consumed,
                        trace_offset=jsonl.bytes_written,
                        trace_seq=recorder.events_emitted,
                        state={
                            "cache": cache.export_state(),
                            "policy": policy.export_state(),
                            "metrics": metrics.export_state(),
                            "queue": queue.export_state()
                            if queue is not None
                            else None,
                        },
                        fsync=strict,
                    )
                    journal.truncate_to_checkpoint()
                    checkpoints_written += 1

        except BaseException:
            # deterministic teardown: an escaping exception (including an
            # injected crash) must not leave open buffered writers behind
            # — a later GC would flush their stale tails into files a
            # resume may already be rewriting
            journal.close()
            sink.close()
            raise
        journal.close()
        jsonl.flush(sync=strict)

    if replayed < len(tail_frames):
        raise ReplayDivergenceError(
            f"journal holds {len(tail_frames)} frames past job {start_job} "
            f"but re-execution produced only {replayed}"
        )
    if verify:
        from repro.telemetry.forensics import reconstruct, verify_against_cache

        report = reconstruct(str(trace_path), capacity=config.cache_size)
        report.raise_if_violations()
        mismatches = verify_against_cache(report, cache)
        if mismatches:
            raise ReplayDivergenceError(
                "stitched trace disagrees with the live cache: "
                + "; ".join(mismatches)
            )

    result = SimulationResult(
        policy=policy.name,
        cache_size=config.cache_size,
        metrics=metrics.snapshot(),
        cache_loads=cache.load_count,
        cache_evictions=cache.evict_count,
        cache_bytes_evicted=cache.bytes_evicted,
        max_queue_wait=queue.max_observed_wait() if queue is not None else 0,
        config=config,
    )
    atomic_write_json(
        run_dir / "result.json",
        result.as_dict(),
        fsync=durability.fsync == "always",
    )
    sink.close()
    return DurableReport(
        result=result,
        run_dir=run_dir,
        trace_path=trace_path,
        jobs_executed=jobs_executed,
        resumed_from_job=start_job,
        replayed_jobs=replayed,
        checkpoints_written=checkpoints_written,
    )
