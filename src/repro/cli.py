"""Command-line interface: ``repro-fbc`` (or ``python -m repro.cli``).

Subcommands
-----------
* ``list``      — list experiments and policies.
* ``run``       — run a paper experiment at a chosen scale (``--jobs N``
  fans sweep work items out over worker processes, same results;
  ``--telemetry jsonl:<path>`` records an event trace alongside).
* ``trace``     — run an experiment with a JSONL event trace + span profile.
* ``bench``     — record jobs/sec + selection latency to ``BENCH_<name>.json``.
* ``simulate``  — one-off simulation of a synthetic workload
  (``--telemetry jsonl:TRACE_{policy}.jsonl`` records one telemetry
  trace per policy).
* ``generate``  — write a synthetic workload trace to a JSONL file.
* ``replay``    — replay a JSONL workload trace under one or more policies.
* ``chaos``     — policy comparison under seeded grid fault injection.
* ``analyze``   — forensics on a recorded telemetry trace: cache-state
  reconstruction, invariant checks, anomaly detection.
* ``diff-traces``   — first divergent decision between two same-workload
  telemetry traces.
* ``export-chrome`` — convert a telemetry trace to Chrome trace-event
  JSON (Perfetto / ``chrome://tracing``).
* ``lint``      — determinism & conformance linter (RPR001–RPR005) over
  Python source; non-zero exit on findings.
* ``serve``     — run the online cache-coordinator HTTP service (durable
  run directory, checkpoint/resume, chaos injection, request tracing
  + debug endpoints, live SLO monitoring).
* ``loadgen``   — replay a workload trace against a running coordinator,
  reporting throughput, latency percentiles (client vs server split)
  and byte-miss ratio.
* ``slo``       — SLO report: query a live coordinator (``--port``) or
  run the windowed anomaly detector over a finished telemetry trace.

Argument errors (unknown subcommand, malformed flags) uniformly print
``error: <message>`` to stderr and exit with status 2; ``--version``
prints the package version.

Two kinds of JSONL file flow through this tool and the metavars keep
them apart: a ``WORKLOAD_TRACE`` is an *input* to simulation (requests +
file catalog, written by ``generate``, consumed by ``replay`` /
``profile``), while a ``TELEMETRY_TRACE`` is an *output* of simulation
(the event log written by ``trace`` / ``--telemetry``, consumed by
``analyze`` / ``diff-traces`` / ``export-chrome``).
"""

from __future__ import annotations

import argparse
import sys
from typing import NoReturn, Sequence

from repro import __version__
from repro.cache.registry import POLICY_REGISTRY
from repro.errors import ConfigError, ReproError
from repro.experiments import EXPERIMENTS, run_experiment
from repro.sim.simulator import SimulationConfig, simulate_trace
from repro.utils.tables import render_table
from repro.utils.units import format_size, parse_size
from repro.workload.generator import WorkloadSpec, generate_trace
from repro.workload.trace import Trace

__all__ = ["main", "build_parser"]


class _Parser(argparse.ArgumentParser):
    """ArgumentParser with the CLI's uniform error contract.

    Malformed arguments and unknown subcommands print
    ``error: <message>`` to stderr and exit with status 2 — the same
    shape :func:`main` uses for runtime :class:`ReproError` failures, so
    scripts can match one prefix.  (Subparsers inherit this class via
    argparse's ``parser_class`` default.)
    """

    def error(self, message: str) -> NoReturn:
        self.print_usage(sys.stderr)
        print(f"error: {message}", file=sys.stderr)
        raise SystemExit(2)  # repro: allow[RPR004] argparse's exit contract; the process boundary, not a catchable simulation error


def build_parser() -> argparse.ArgumentParser:
    parser = _Parser(
        prog="repro-fbc",
        description="File-bundle caching for data grids (SC'04 reproduction)",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list experiments and policies")

    p_run = sub.add_parser("run", help="run a paper experiment")
    p_run.add_argument("experiment", choices=sorted(EXPERIMENTS))
    p_run.add_argument(
        "--scale", default="quick", choices=("smoke", "quick", "paper")
    )
    p_run.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes for sweep fan-out (default: serial); "
        "results are identical to a serial run",
    )
    p_run.add_argument(
        "--telemetry",
        default=None,
        metavar="SPEC",
        help="event-trace sink: 'null', 'jsonl:<path>' or 'ring[:capacity]' "
        "(default: no tracing)",
    )

    p_trace = sub.add_parser(
        "trace", help="run an experiment with a JSONL event trace"
    )
    p_trace.add_argument("experiment", choices=sorted(EXPERIMENTS))
    p_trace.add_argument(
        "--scale", default="smoke", choices=("smoke", "quick", "paper")
    )
    p_trace.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes for sweep fan-out; the trace is identical "
        "to a serial run",
    )
    p_trace.add_argument(
        "--out",
        default=None,
        metavar="TELEMETRY_TRACE",
        help="telemetry trace path (default: TRACE_<experiment>.jsonl)",
    )
    p_trace.add_argument(
        "--validate",
        action="store_true",
        help="validate every trace line against the event schema after the run",
    )

    p_bench = sub.add_parser(
        "bench", help="record throughput/latency to BENCH_<name>.json"
    )
    p_bench.add_argument(
        "--scale", default="smoke", choices=("smoke", "quick", "paper")
    )
    p_bench.add_argument("--name", default="core")
    p_bench.add_argument(
        "--policy",
        action="append",
        choices=sorted(POLICY_REGISTRY),
        default=None,
        help="policies to time (default: optbundle, landlord)",
    )
    p_bench.add_argument("--out-dir", default=".")
    p_bench.add_argument("--seed", type=int, default=0)

    p_sim = sub.add_parser("simulate", help="simulate a synthetic workload")
    p_sim.add_argument("--cache-size", default="1GB")
    p_sim.add_argument(
        "--policy", action="append", choices=sorted(POLICY_REGISTRY), default=None
    )
    p_sim.add_argument("--jobs", type=int, default=2000)
    p_sim.add_argument("--files", type=int, default=300)
    p_sim.add_argument("--request-types", type=int, default=300)
    p_sim.add_argument("--popularity", default="zipf", choices=("uniform", "zipf"))
    p_sim.add_argument("--zipf-alpha", type=float, default=1.0)
    p_sim.add_argument("--max-file-frac", type=float, default=0.01)
    p_sim.add_argument("--max-bundle-frac", type=float, default=0.125)
    p_sim.add_argument("--queue-length", type=int, default=1)
    p_sim.add_argument("--seed", type=int, default=0)
    p_sim.add_argument(
        "--telemetry",
        default=None,
        metavar="SPEC",
        help="per-policy event-trace sink: 'null', 'jsonl:<path>' or "
        "'ring[:capacity]'; a '{policy}' placeholder in a jsonl path is "
        "replaced by each policy name (required when simulating more "
        "than one policy to a jsonl sink)",
    )

    p_gen = sub.add_parser(
        "generate", help="write a synthetic workload trace (JSONL)"
    )
    p_gen.add_argument(
        "output",
        metavar="WORKLOAD_TRACE",
        help="output path for the workload trace (requests + file catalog; "
        "not a telemetry event trace)",
    )
    p_gen.add_argument("--cache-size", default="1GB")
    p_gen.add_argument("--jobs", type=int, default=2000)
    p_gen.add_argument("--files", type=int, default=300)
    p_gen.add_argument("--request-types", type=int, default=300)
    p_gen.add_argument("--popularity", default="zipf", choices=("uniform", "zipf"))
    p_gen.add_argument("--zipf-alpha", type=float, default=1.0)
    p_gen.add_argument("--max-file-frac", type=float, default=0.01)
    p_gen.add_argument("--max-bundle-frac", type=float, default=0.125)
    p_gen.add_argument("--arrival-rate", type=float, default=None)
    p_gen.add_argument("--seed", type=int, default=0)

    p_rep = sub.add_parser("replay", help="replay a JSONL workload trace")
    p_rep.add_argument(
        "trace",
        metavar="WORKLOAD_TRACE",
        help="workload trace written by 'generate' (not a telemetry "
        "event trace — analyze those with 'analyze')",
    )
    p_rep.add_argument("--cache-size", default="1GB")
    p_rep.add_argument(
        "--policy", action="append", choices=sorted(POLICY_REGISTRY), default=None
    )
    p_rep.add_argument("--queue-length", type=int, default=1)

    p_timed = sub.add_parser(
        "timed", help="timed SRM simulation (response time / throughput)"
    )
    p_timed.add_argument("--cache-size", default="1GB")
    p_timed.add_argument(
        "--policy", action="append", choices=sorted(POLICY_REGISTRY), default=None
    )
    p_timed.add_argument("--jobs", type=int, default=500)
    p_timed.add_argument("--files", type=int, default=300)
    p_timed.add_argument("--request-types", type=int, default=200)
    p_timed.add_argument("--popularity", default="zipf", choices=("uniform", "zipf"))
    p_timed.add_argument("--zipf-alpha", type=float, default=1.0)
    p_timed.add_argument("--max-file-frac", type=float, default=0.05)
    p_timed.add_argument("--max-bundle-frac", type=float, default=0.2)
    p_timed.add_argument("--arrival-rate", type=float, default=0.05)
    p_timed.add_argument("--service-slots", type=int, default=1)
    p_timed.add_argument("--seed", type=int, default=0)

    p_chaos = sub.add_parser(
        "chaos", help="timed SRM comparison under fault injection"
    )
    p_chaos.add_argument("--cache-size", default="1GB")
    p_chaos.add_argument(
        "--policy",
        action="append",
        choices=sorted(POLICY_REGISTRY),
        default=None,
        help="policies to compare (default: optbundle, landlord)",
    )
    p_chaos.add_argument(
        "--fault-rate",
        action="append",
        type=float,
        default=None,
        help="repeatable; per-operation fault probability "
        "(default: 0.0 0.05 0.15)",
    )
    p_chaos.add_argument("--jobs", type=int, default=200)
    p_chaos.add_argument("--files", type=int, default=300)
    p_chaos.add_argument("--request-types", type=int, default=150)
    p_chaos.add_argument("--max-retries", type=int, default=3)
    p_chaos.add_argument(
        "--staging-timeout",
        type=float,
        default=600.0,
        help="per-file staging attempt timeout in seconds (0 disables)",
    )
    p_chaos.add_argument("--seed", type=int, default=0)

    p_prof = sub.add_parser("profile", help="profile a JSONL workload trace")
    p_prof.add_argument(
        "trace",
        metavar="WORKLOAD_TRACE",
        help="workload trace written by 'generate' (not a telemetry "
        "event trace)",
    )

    p_an = sub.add_parser(
        "analyze",
        help="forensics on a telemetry trace: reconstruction, invariant "
        "checks, anomaly detection",
    )
    p_an.add_argument(
        "trace",
        metavar="TELEMETRY_TRACE",
        help="telemetry event trace written by 'trace' or '--telemetry'",
    )
    p_an.add_argument(
        "--capacity",
        default=None,
        help="cache capacity (e.g. '1GB') enabling the occupancy invariant",
    )
    p_an.add_argument(
        "--check-invariants",
        action="store_true",
        help="exit non-zero if the trace violates any invariant",
    )
    p_an.add_argument(
        "--split-on-time-reset",
        action="store_true",
        help="treat simulated time running backwards as a run boundary "
        "(concatenated timed-SRM runs) instead of a violation",
    )
    p_an.add_argument("--anomaly-window", type=int, default=9)
    p_an.add_argument("--anomaly-threshold", type=float, default=3.5)

    p_diff = sub.add_parser(
        "diff-traces",
        help="first divergent decision between two same-workload "
        "telemetry traces",
    )
    p_diff.add_argument("trace_a", metavar="TELEMETRY_TRACE_A")
    p_diff.add_argument("trace_b", metavar="TELEMETRY_TRACE_B")
    p_diff.add_argument(
        "--segment",
        type=int,
        default=0,
        help="trace segment (simulation run) to compare (default: 0)",
    )

    p_chrome = sub.add_parser(
        "export-chrome",
        help="convert a telemetry trace to Chrome trace-event JSON "
        "(Perfetto / chrome://tracing)",
    )
    p_chrome.add_argument(
        "trace",
        metavar="TELEMETRY_TRACE",
        help="telemetry event trace written by 'trace' or '--telemetry'",
    )
    p_chrome.add_argument(
        "--out",
        default=None,
        help="output path (default: <TELEMETRY_TRACE stem>.chrome.json)",
    )
    p_chrome.add_argument(
        "--spans",
        action="store_true",
        help="treat the input as a /v1/debug/requests JSON dump and "
        "render its request span trees instead of a telemetry trace",
    )

    p_lint = sub.add_parser(
        "lint",
        help="determinism & conformance linter (RPR rules) over Python "
        "source; exits 1 on findings",
    )
    p_lint.add_argument(
        "paths",
        nargs="*",
        metavar="PATH",
        help="files or directories to lint (default: the installed "
        "repro package source)",
    )
    p_lint.add_argument(
        "--format",
        dest="fmt",
        default="text",
        choices=("text", "json"),
        help="report format (json is the versioned CI-artifact shape)",
    )
    p_lint.add_argument(
        "--select",
        action="append",
        default=None,
        metavar="RULE",
        help="repeatable; run only these rule ids (e.g. RPR003)",
    )
    p_lint.add_argument(
        "--ignore",
        action="append",
        default=None,
        metavar="RULE",
        help="repeatable; skip these rule ids",
    )
    p_lint.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="parallelise per-file checking over N processes "
        "(output is identical to serial)",
    )
    p_lint.add_argument(
        "--effects",
        default=None,
        metavar="PATH",
        help="write the whole-program effect map (versioned JSON: "
        "per-function effect sets + unresolved dynamic calls) to PATH",
    )

    p_cmp = sub.add_parser(
        "compare", help="paired statistical comparison of two policies"
    )
    p_cmp.add_argument("policy_a", choices=sorted(POLICY_REGISTRY))
    p_cmp.add_argument("policy_b", choices=sorted(POLICY_REGISTRY))
    p_cmp.add_argument("--cache-size", default="1GB")
    p_cmp.add_argument("--jobs", type=int, default=1000)
    p_cmp.add_argument("--files", type=int, default=300)
    p_cmp.add_argument("--request-types", type=int, default=300)
    p_cmp.add_argument("--popularity", default="zipf", choices=("uniform", "zipf"))
    p_cmp.add_argument("--zipf-alpha", type=float, default=1.0)
    p_cmp.add_argument("--max-file-frac", type=float, default=0.01)
    p_cmp.add_argument("--max-bundle-frac", type=float, default=0.125)
    p_cmp.add_argument("--seeds", type=int, default=8)
    p_cmp.add_argument("--seed", type=int, default=0)

    p_ckpt = sub.add_parser(
        "checkpoint",
        help="replay a workload durably: write-ahead journal + periodic "
        "checkpoints in a resumable run directory",
    )
    p_ckpt.add_argument(
        "trace",
        metavar="WORKLOAD_TRACE",
        help="workload trace written by 'generate' (not a telemetry "
        "event trace)",
    )
    p_ckpt.add_argument(
        "--run-dir",
        required=True,
        help="run directory (journal, checkpoints, telemetry trace); "
        "must not already hold another run",
    )
    p_ckpt.add_argument("--cache-size", default="1GB")
    p_ckpt.add_argument(
        "--policy", default="optbundle", choices=sorted(POLICY_REGISTRY)
    )
    p_ckpt.add_argument("--queue-length", type=int, default=1)
    p_ckpt.add_argument(
        "--checkpoint-every",
        type=int,
        default=100,
        help="snapshot full state every N jobs (bounds recovery replay)",
    )
    p_ckpt.add_argument(
        "--fsync",
        default="rotate",
        choices=("rotate", "always"),
        help="'rotate' buffers between checkpoints (kill-safe); 'always' "
        "fsyncs every frame (power-failure-proof, slow)",
    )
    p_ckpt.add_argument(
        "--crash-at",
        type=int,
        default=None,
        metavar="N",
        help="inject a deterministic crash at the Nth state mutation "
        "(chaos testing; resume afterwards with 'resume')",
    )
    p_ckpt.add_argument(
        "--crash-mode",
        default="raise",
        choices=("raise", "sigkill", "torn"),
        help="how the injected crash dies (torn also half-writes a "
        "journal frame)",
    )

    p_res = sub.add_parser(
        "resume",
        help="recover an interrupted durable run (last valid checkpoint "
        "+ journal replay) and drive it to completion",
    )
    p_res.add_argument(
        "run_dir",
        metavar="RUN_DIR",
        help="run directory of an interrupted 'checkpoint' run",
    )
    p_res.add_argument(
        "--no-verify",
        action="store_true",
        help="skip the post-resume forensics reconstruction check",
    )

    p_serve = sub.add_parser(
        "serve",
        help="run the online cache-coordinator HTTP service (durable run "
        "directory, checkpoint/resume, POST /v1/jobs decisions)",
    )
    p_serve.add_argument(
        "workload",
        metavar="WORKLOAD_TRACE",
        nargs="?",
        default=None,
        help="workload trace written by 'generate'; supplies the file "
        "catalog and the optimal policies' future knowledge (omit with "
        "--resume, which reads it from the run directory)",
    )
    p_serve.add_argument(
        "--run-dir",
        required=True,
        help="durable run directory (manifest, arrivals, trace, journal, "
        "checkpoints); a fresh serve refuses a directory that already "
        "holds a run — use --resume for that",
    )
    p_serve.add_argument(
        "--resume",
        action="store_true",
        help="recover an interrupted service run from --run-dir and keep "
        "serving from the first unserviced job",
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument(
        "--port",
        type=int,
        default=0,
        help="listening port (0 picks an ephemeral port; the chosen one "
        "is printed as 'listening on http://HOST:PORT')",
    )
    p_serve.add_argument("--cache-size", default="1GB")
    p_serve.add_argument(
        "--policy", default="optbundle", choices=sorted(POLICY_REGISTRY)
    )
    p_serve.add_argument("--warmup", type=int, default=0)
    p_serve.add_argument(
        "--check-invariants",
        action="store_true",
        help="verify telemetry invariants while recording (slower)",
    )
    p_serve.add_argument(
        "--checkpoint-every",
        type=int,
        default=100,
        help="snapshot full state every N jobs (bounds recovery replay)",
    )
    p_serve.add_argument(
        "--fsync",
        default="rotate",
        choices=("rotate", "always"),
        help="'rotate' buffers between checkpoints (kill-safe); 'always' "
        "fsyncs every frame (power-failure-proof, slow)",
    )
    p_serve.add_argument(
        "--crash-at",
        type=int,
        default=None,
        metavar="N",
        help="inject a deterministic crash at the Nth journal commit "
        "(chaos testing; restart with --resume afterwards)",
    )
    p_serve.add_argument(
        "--crash-mode",
        default="raise",
        choices=("raise", "sigkill", "torn"),
        help="how the injected crash dies (torn also half-writes a "
        "journal frame)",
    )
    p_serve.add_argument(
        "--fault-rate",
        type=float,
        default=0.0,
        help="probability a demand transfer fails and is retried "
        "(surfaces as 'retries' in responses, never in the trace)",
    )
    p_serve.add_argument("--fault-seed", type=int, default=0)
    p_serve.add_argument(
        "--latency-spike-rate",
        type=float,
        default=0.0,
        help="probability a staged file hits a simulated latency spike "
        "(feeds the SLO latency signal only, never the trace)",
    )
    p_serve.add_argument(
        "--latency-spike-factor",
        type=float,
        default=10.0,
        help="multiplier a latency spike applies to the nominal staging "
        "time",
    )
    p_serve.add_argument(
        "--debug-ring",
        type=int,
        default=256,
        help="request-tracing ring capacity behind /v1/debug/requests "
        "(0 disables tracing; the decision trace is identical either way)",
    )
    p_serve.add_argument(
        "--slow-threshold-ms",
        type=float,
        default=100.0,
        help="requests at or over this server-side latency land in "
        "/v1/debug/slow",
    )
    p_serve.add_argument(
        "--profile-stream",
        action="store_true",
        help="append one JSON line per traced request to "
        "<run-dir>/profile.jsonl (host timings, separate from trace.jsonl)",
    )
    p_serve.add_argument(
        "--slo-window-jobs",
        type=int,
        default=50,
        help="jobs per SLO evaluation window",
    )
    p_serve.add_argument(
        "--slo-byte-miss-target",
        type=float,
        default=0.5,
        help="byte-miss-ratio SLO target (burn rate = window value / target)",
    )
    p_serve.add_argument(
        "--slo-latency-target-ms",
        type=float,
        default=50.0,
        help="mean request-latency SLO target per window, in ms",
    )

    p_load = sub.add_parser(
        "loadgen",
        help="replay a workload trace against a running coordinator and "
        "report throughput, latency percentiles and byte-miss ratio",
    )
    p_load.add_argument(
        "workload",
        metavar="WORKLOAD_TRACE",
        help="workload trace to replay (normally the same one the "
        "server was started with)",
    )
    p_load.add_argument("--host", default="127.0.0.1")
    p_load.add_argument("--port", type=int, required=True)
    p_load.add_argument(
        "--concurrency",
        type=int,
        default=1,
        help="closed-loop workers (1 preserves trace order exactly)",
    )
    p_load.add_argument(
        "--rate",
        type=float,
        default=None,
        metavar="JOBS_PER_S",
        help="open-loop offered rate; job i is released at i/rate "
        "seconds regardless of completions (default: closed loop)",
    )
    p_load.add_argument(
        "--limit", type=int, default=None, help="replay at most N jobs"
    )
    p_load.add_argument(
        "--start-job",
        default="0",
        metavar="N|auto",
        help="skip jobs the server already serviced; 'auto' asks the "
        "server via GET /healthz (the crash-resume driving mode)",
    )
    p_load.add_argument(
        "--json",
        action="store_true",
        help="print the full report as JSON instead of a summary",
    )

    p_slo = sub.add_parser(
        "slo",
        help="SLO report: query a live coordinator (--port) or run the "
        "windowed anomaly detector over a finished telemetry trace",
    )
    p_slo.add_argument(
        "trace",
        metavar="TELEMETRY_TRACE",
        nargs="?",
        default=None,
        help="finished telemetry trace to analyse offline (omit with "
        "--port to query a live server's /healthz SLO block)",
    )
    p_slo.add_argument("--host", default="127.0.0.1")
    p_slo.add_argument(
        "--port",
        type=int,
        default=None,
        help="query the coordinator listening on this port instead of "
        "reading a trace file",
    )
    p_slo.add_argument(
        "--window",
        type=int,
        default=9,
        help="anomaly detector window (windows of trailing history)",
    )
    p_slo.add_argument(
        "--threshold",
        type=float,
        default=3.5,
        help="robust z-score threshold for flagging a window",
    )
    p_slo.add_argument(
        "--byte-miss-target",
        type=float,
        default=0.5,
        help="byte-miss-ratio target used for offline burn-rate reporting",
    )
    p_slo.add_argument(
        "--json",
        action="store_true",
        help="print the report as JSON instead of a summary",
    )
    return parser


def _spec_from_args(args: argparse.Namespace) -> WorkloadSpec:
    return WorkloadSpec(
        cache_size=parse_size(args.cache_size),
        n_files=args.files,
        n_request_types=args.request_types,
        n_jobs=args.jobs,
        popularity=args.popularity,
        zipf_alpha=args.zipf_alpha,
        max_file_fraction=args.max_file_frac,
        max_bundle_fraction=args.max_bundle_frac,
        arrival_rate=getattr(args, "arrival_rate", None),
        seed=args.seed,
    )


def _report(
    trace: Trace,
    cache_size: int,
    policies,
    queue_length: int,
    *,
    telemetry: str | None = None,
) -> str:
    if (
        telemetry
        and telemetry.startswith("jsonl:")
        and len(policies) > 1
        and "{policy}" not in telemetry
    ):
        raise ConfigError(
            "simulating multiple policies to one jsonl telemetry path would "
            "overwrite it; add a '{policy}' placeholder, e.g. "
            "--telemetry jsonl:TRACE_{policy}.jsonl"
        )
    rows = []
    for policy in policies:
        config = SimulationConfig(
            cache_size=cache_size,
            policy=policy,
            queue_length=queue_length,
        )
        if telemetry:
            from repro.telemetry import recorder_from_spec, use_recorder

            spec = telemetry.replace("{policy}", policy)
            with recorder_from_spec(spec) as recorder:
                with use_recorder(recorder):
                    result = simulate_trace(trace, config, recorder=recorder)
        else:
            result = simulate_trace(trace, config)
        m = result.metrics
        rows.append(
            [
                policy,
                m.byte_miss_ratio,
                m.request_hit_ratio,
                m.mean_volume_per_request / (1024 * 1024),
                result.cache_evictions,
            ]
        )
    rows.sort(key=lambda r: r[1])
    return render_table(
        ["policy", "byte_miss_ratio", "request_hit_ratio", "MB/request", "evictions"],
        rows,
    )


def _run_serve(args: argparse.Namespace) -> None:
    """Handler for ``repro-fbc serve`` (fresh start or ``--resume``)."""
    import asyncio
    import signal
    from pathlib import Path

    from repro.faults.crash import CrashSpec
    from repro.faults.spec import FaultSpec
    from repro.service import CoordinatorService, CoordinatorState, ServiceConfig
    from repro.service.slo import SloConfig

    crash = (
        CrashSpec(at_mutation=args.crash_at, mode=args.crash_mode)
        if args.crash_at is not None
        else None
    )
    slo = SloConfig(
        window_jobs=args.slo_window_jobs,
        byte_miss_target=args.slo_byte_miss_target,
        latency_target_ms=args.slo_latency_target_ms,
    )
    if args.resume:
        state = CoordinatorState.resume(
            Path(args.run_dir),
            crash=crash,
            debug_ring=args.debug_ring,
            slow_threshold_ms=args.slow_threshold_ms,
            profile_stream=args.profile_stream,
            slo=slo,
        )
        print(
            f"resumed from job {state.resumed_from_job} "
            f"({state.next_job} jobs already serviced)",
            flush=True,
        )
    else:
        if args.workload is None:
            raise ConfigError(
                "serve needs a WORKLOAD_TRACE unless --resume is given"
            )
        fault = (
            FaultSpec(
                seed=args.fault_seed,
                transfer_failure_rate=args.fault_rate,
                latency_spike_rate=args.latency_spike_rate,
                latency_spike_factor=args.latency_spike_factor,
            )
            if args.fault_rate > 0 or args.latency_spike_rate > 0
            else None
        )
        state = CoordinatorState.create(
            ServiceConfig(
                workload=Path(args.workload),
                cache_size=parse_size(args.cache_size),
                run_dir=Path(args.run_dir),
                policy=args.policy,
                warmup=args.warmup,
                check_invariants=args.check_invariants,
                checkpoint_every=args.checkpoint_every,
                fsync=args.fsync,
                crash=crash,
                fault=fault,
                debug_ring=args.debug_ring,
                slow_threshold_ms=args.slow_threshold_ms,
                profile_stream=args.profile_stream,
                slo=slo,
            )
        )
    service = CoordinatorService(state)

    async def _serve() -> None:
        server = await service.start(args.host, args.port)
        addr = server.sockets[0].getsockname()
        # machine-readable startup line: CI and scripts parse the port
        print(f"listening on http://{addr[0]}:{addr[1]}", flush=True)
        print(f"run dir: {state.run_dir}", flush=True)
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            loop.add_signal_handler(sig, service.stop)
        await service.run(server)

    asyncio.run(_serve())
    served = state.next_job - state.resumed_from_job
    print(
        f"shut down cleanly: {served} jobs serviced this run, "
        f"{state.checkpoints_written} checkpoints"
    )


def _run_loadgen(args: argparse.Namespace) -> None:
    """Handler for ``repro-fbc loadgen``."""
    import json

    from repro.service import run_loadgen

    if args.start_job == "auto":
        start_job: int | str = "auto"
    else:
        try:
            start_job = int(args.start_job)
        except ValueError:
            raise ConfigError(
                f"--start-job must be an integer or 'auto', "
                f"got {args.start_job!r}"
            ) from None
    trace = Trace.load(args.workload)
    report = run_loadgen(
        trace,
        args.host,
        args.port,
        concurrency=args.concurrency,
        rate=args.rate,
        limit=args.limit,
        start_job=start_job,
    )
    if args.json:
        print(json.dumps(report.as_dict(), indent=2, sort_keys=True))
        return
    rate = "closed-loop" if report.rate is None else f"{report.rate:g}/s"
    print(
        f"loadgen: {report.jobs} jobs in {report.duration_s:.2f}s "
        f"({report.throughput_jobs_per_s:.1f} jobs/s, "
        f"concurrency {report.concurrency}, {rate})"
    )
    print(
        f"  errors {report.errors}, retries {report.retries}, "
        f"unserviceable {report.unserviceable}"
    )
    print(
        f"  hit ratio {report.request_hit_ratio:.4f}, "
        f"byte miss ratio {report.byte_miss_ratio:.4f}"
    )
    print(
        f"  latency ms: p50 {report.latency_p50_ms:.2f}, "
        f"p90 {report.latency_p90_ms:.2f}, "
        f"p99 {report.latency_p99_ms:.2f}, "
        f"max {report.latency_max_ms:.2f}"
    )
    if report.server_mean_ms > 0:
        print(
            f"  server ms: p50 {report.server_p50_ms:.2f}, "
            f"p99 {report.server_p99_ms:.2f}, mean {report.server_mean_ms:.2f} "
            f"(queue {report.queue_wait_mean_ms:.2f}, "
            f"plan {report.plan_mean_ms:.2f}, "
            f"apply {report.apply_mean_ms:.2f}); "
            f"net overhead mean {report.net_overhead_mean_ms:.2f}"
        )


def _run_slo(args: argparse.Namespace) -> None:
    """Handler for ``repro-fbc slo`` (live server or finished trace)."""
    import json

    if (args.port is None) == (args.trace is None):
        raise ConfigError(
            "slo needs exactly one of --port (live server) or a "
            "TELEMETRY_TRACE file (offline analysis)"
        )
    if args.port is not None:
        import asyncio

        from repro.service.loadgen import _request_json

        health = asyncio.run(
            _request_json(args.host, args.port, "GET", "/healthz")
        )
        slo = health.get("slo", {})
        if args.json:
            print(json.dumps(slo, indent=2, sort_keys=True))
            return
        alerting = slo.get("alerting", False)
        print(
            f"slo: {'ALERTING' if alerting else 'ok'} "
            f"(window {slo.get('window_jobs')} jobs, "
            f"{health.get('jobs')} jobs serviced)"
        )
        for name, sig in sorted(slo.get("signals", {}).items()):
            state_txt = "ALERT" if sig.get("alert") else "ok"
            print(
                f"  {name}: {state_txt}, value {sig.get('value', 0.0):.4f} "
                f"vs target {sig.get('target', 0.0):.4f} "
                f"(burn rate {sig.get('burn_rate', 0.0):.2f}, "
                f"robust z {sig.get('score', 0.0):.1f}, "
                f"{sig.get('windows', 0)} windows)"
            )
        return

    from repro.telemetry.forensics import TraceLog, window_anomalies

    log = TraceLog.load(args.trace)
    runs = log.windows()
    anomalies = window_anomalies(
        log, window=args.window, threshold=args.threshold
    )
    burn_windows = 0
    total_windows = 0
    for run in runs:
        for w in run:
            total_windows += 1
            if w.byte_miss_ratio > args.byte_miss_target:
                burn_windows += 1
    if args.json:
        print(
            json.dumps(
                {
                    "trace": args.trace,
                    "windows": total_windows,
                    "byte_miss_target": args.byte_miss_target,
                    "windows_over_target": burn_windows,
                    "anomalies": [
                        {
                            "run": wa.run,
                            "window_index": wa.window_index,
                            "value": wa.anomaly.value,
                            "median": wa.anomaly.median,
                            "score": wa.anomaly.score,
                        }
                        for wa in anomalies
                    ],
                },
                indent=2,
                sort_keys=True,
            )
        )
        return
    print(
        f"slo: {total_windows} windows, {burn_windows} over byte-miss "
        f"target {args.byte_miss_target:g}, {len(anomalies)} anomalies"
    )
    for wa in anomalies:
        a = wa.anomaly
        print(
            f"  run {wa.run} window {wa.window_index}: byte_miss_ratio "
            f"{a.value:.4f} vs median {a.median:.4f} (robust z = {a.score:.1f})"
        )


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.command == "list":
            print("experiments:")
            for name in sorted(EXPERIMENTS):
                print(f"  {name}")
            print("policies:")
            for name in sorted(POLICY_REGISTRY):
                print(f"  {name}")
        elif args.command == "run":
            if args.telemetry:
                from repro.telemetry import recorder_from_spec, use_recorder

                # the recorder context manager closes (and flushes a
                # JsonlSink) even when the run raises mid-experiment
                with recorder_from_spec(args.telemetry) as recorder:
                    with use_recorder(recorder):
                        output = run_experiment(
                            args.experiment, args.scale, jobs=args.jobs
                        )
                print(output.render())
                if recorder.active:
                    print(
                        f"telemetry: {recorder.events_emitted} events "
                        f"({args.telemetry})"
                    )
            else:
                print(
                    run_experiment(
                        args.experiment, args.scale, jobs=args.jobs
                    ).render()
                )
        elif args.command == "trace":
            from repro.telemetry import (
                JsonlSink,
                TraceRecorder,
                span_profile,
                use_recorder,
                validate_trace_file,
            )

            out = args.out or f"TRACE_{args.experiment}.jsonl"
            with TraceRecorder(JsonlSink(out)) as recorder:
                with use_recorder(recorder):
                    output = run_experiment(
                        args.experiment, args.scale, jobs=args.jobs
                    )
            print(output.render())
            print(f"wrote {recorder.events_emitted} events to {out}")
            profile_rows = span_profile(recorder.registry)
            if profile_rows:
                print(
                    render_table(
                        ["span", "calls", "mean [s]", "max [s]", "total [s]"],
                        [
                            [
                                r["span"],
                                r["calls"],
                                r["mean_s"],
                                r["max_s"],
                                r["total_s"],
                            ]
                            for r in profile_rows
                        ],
                        title="profiling spans (host time, not in the trace)",
                    )
                )
            if args.validate:
                n = validate_trace_file(out)
                print(f"validated {n} events against the schema")
        elif args.command == "bench":
            from repro.experiments.bench import render_bench, run_bench

            record = run_bench(
                args.scale,
                policies=tuple(args.policy or ("optbundle", "landlord")),
                name=args.name,
                out_dir=args.out_dir,
                seed=args.seed,
            )
            print(render_bench(record))
            print(f"wrote {record['path']}")
        elif args.command == "simulate":
            trace = generate_trace(_spec_from_args(args))
            policies = args.policy or ["optbundle", "landlord"]
            print(
                f"workload: {len(trace)} jobs, {len(trace.catalog)} files "
                f"({format_size(trace.catalog.total_bytes())}), cache "
                f"{format_size(parse_size(args.cache_size))}"
            )
            print(
                _report(
                    trace,
                    parse_size(args.cache_size),
                    policies,
                    args.queue_length,
                    telemetry=args.telemetry,
                )
            )
            if args.telemetry and args.telemetry.startswith("jsonl:"):
                for policy in policies:
                    path = args.telemetry.replace("{policy}", policy)[
                        len("jsonl:") :
                    ]
                    print(f"telemetry ({policy}): {path}")
        elif args.command == "generate":
            trace = generate_trace(_spec_from_args(args))
            trace.dump(args.output)
            print(
                f"wrote {len(trace)} jobs / {len(trace.catalog)} files to "
                f"{args.output}"
            )
        elif args.command == "replay":
            trace = Trace.load(args.trace)
            policies = args.policy or ["optbundle", "landlord"]
            print(
                _report(
                    trace, parse_size(args.cache_size), policies, args.queue_length
                )
            )
        elif args.command == "timed":
            from repro.grid.srm import SRMConfig, run_timed_simulation

            trace = generate_trace(_spec_from_args(args))
            rows = []
            for policy in args.policy or ["optbundle", "landlord", "lru"]:
                r = run_timed_simulation(
                    trace,
                    SRMConfig(
                        cache_size=parse_size(args.cache_size),
                        policy=policy,
                        service_slots=args.service_slots,
                    ),
                )
                rows.append(
                    [
                        policy,
                        r.mean_response_time,
                        r.throughput * 3600,
                        r.bytes_staged / (1024 * 1024),
                        r.request_hit_ratio,
                    ]
                )
            rows.sort(key=lambda row: row[1])
            print(
                render_table(
                    ["policy", "resp [s]", "jobs/h", "staged MB", "hit ratio"],
                    rows,
                )
            )
        elif args.command == "chaos":
            from repro.experiments.chaos import chaos_trace, run_chaos_once

            cache_size = parse_size(args.cache_size)
            policies = args.policy or ["optbundle", "landlord"]
            rates = args.fault_rate or [0.0, 0.05, 0.15]
            timeout = args.staging_timeout if args.staging_timeout > 0 else None
            trace = chaos_trace(
                cache_size=cache_size,
                n_files=args.files,
                n_request_types=args.request_types,
                n_jobs=args.jobs,
                seed=args.seed,
            )
            print(
                f"chaos: {len(trace)} jobs, {len(trace.catalog)} files, "
                f"cache {format_size(cache_size)}, seed {args.seed}, "
                f"fault rates {', '.join(f'{r:g}' for r in rates)}"
            )
            rows = []
            for rate in rates:
                for policy in policies:
                    r = run_chaos_once(
                        trace,
                        policy,
                        rate,
                        cache_size=cache_size,
                        fault_seed=args.seed,
                        max_retries=args.max_retries,
                        staging_timeout=timeout,
                    )
                    rows.append(
                        [
                            f"{rate:g}",
                            policy,
                            r.mean_response_time,
                            r.byte_miss_ratio,
                            r.retries,
                            r.failovers,
                            r.timeouts,
                            r.failed_jobs,
                            r.time_lost_to_faults,
                        ]
                    )
            print(
                render_table(
                    [
                        "rate",
                        "policy",
                        "resp [s]",
                        "byte miss",
                        "retries",
                        "failovers",
                        "timeouts",
                        "failed",
                        "lost [s]",
                    ],
                    rows,
                )
            )
        elif args.command == "profile":
            from repro.workload.analytics import hot_set_drift, profile_trace

            trace = Trace.load(args.trace)
            print(profile_trace(trace).render())
            drift = hot_set_drift(trace)
            if drift:
                mean_drift = sum(drift) / len(drift)
                print(f"hot-set stability (windowed Jaccard): {mean_drift:.3f}")
        elif args.command == "analyze":
            from repro.telemetry.forensics import (
                TraceLog,
                reconstruct,
                window_anomalies,
            )

            log = TraceLog.load(args.trace)
            capacity = parse_size(args.capacity) if args.capacity else None
            report = reconstruct(
                log,
                capacity=capacity,
                split_on_time_reset=args.split_on_time_reset,
            )
            print(f"trace: {args.trace}")
            print(report.render())
            anomalies = window_anomalies(
                log,
                window=args.anomaly_window,
                threshold=args.anomaly_threshold,
            )
            if anomalies:
                print(f"anomalies ({len(anomalies)}):")
                for wa in anomalies:
                    a = wa.anomaly
                    print(
                        f"  run {wa.run} window {wa.window_index}: "
                        f"byte_miss_ratio {a.value:.4f} vs median "
                        f"{a.median:.4f} (robust z = {a.score:.1f})"
                    )
            elif log.windows():
                print("anomalies: none")
            if args.check_invariants:
                report.raise_if_violations()
                print("invariants: ok")
        elif args.command == "diff-traces":
            from repro.telemetry.forensics import diff_traces

            print(
                diff_traces(
                    args.trace_a, args.trace_b, segment=args.segment
                ).render()
            )
        elif args.command == "export-chrome":
            import json as _json
            from pathlib import Path

            from repro.telemetry.forensics import export_chrome, spans_to_chrome

            out = args.out or str(Path(args.trace).with_suffix("")) + ".chrome.json"
            if args.spans:
                from repro.errors import TelemetryError

                try:
                    with open(args.trace, encoding="utf-8") as fh:
                        requests = _json.load(fh)
                except OSError as exc:
                    raise TelemetryError(
                        f"cannot read span dump {args.trace!r}: {exc}"
                    ) from exc
                except _json.JSONDecodeError as exc:
                    raise TelemetryError(
                        f"span dump {args.trace!r} is not valid JSON: {exc}"
                    ) from exc
                doc = spans_to_chrome(requests)
                try:
                    with open(out, "w", encoding="utf-8") as fh:
                        _json.dump(
                            doc, fh, separators=(",", ":"), sort_keys=True
                        )
                        fh.write("\n")
                except OSError as exc:
                    raise TelemetryError(
                        f"cannot write Chrome trace {out!r}: {exc}"
                    ) from exc
                n = len(doc["traceEvents"])
            else:
                n = export_chrome(args.trace, out)
            print(f"wrote {n} Chrome trace events to {out}")
        elif args.command == "lint":
            from pathlib import Path

            import repro
            from repro.analysis.lint import (
                LintConfig,
                format_json,
                format_text,
                lint_paths,
            )
            from repro.errors import LintError

            paths = args.paths or [Path(repro.__file__).parent]
            result = lint_paths(
                paths,
                LintConfig.from_cli(args.select, args.ignore),
                jobs=args.jobs,
                collect_effects=args.effects is not None,
            )
            formatter = format_json if args.fmt == "json" else format_text
            print(
                formatter(result.findings, files_checked=result.files_checked)
            )
            if args.effects is not None:
                import json as _json

                effects_out = Path(args.effects)
                try:
                    effects_out.write_text(
                        _json.dumps(result.effect_map, indent=2) + "\n"
                    )
                except OSError as exc:
                    raise LintError(
                        f"cannot write effect map {args.effects!r}: {exc}"
                    ) from exc
            if not result.ok:
                return 1
        elif args.command == "compare":
            from repro.analysis.compare import compare_paired

            a_vals, b_vals = [], []
            for seed in range(args.seed, args.seed + args.seeds):
                spec = _spec_from_args(args).with_seed(seed)
                trace = generate_trace(spec)
                for policy, sink in (
                    (args.policy_a, a_vals),
                    (args.policy_b, b_vals),
                ):
                    result = simulate_trace(
                        trace,
                        SimulationConfig(
                            cache_size=parse_size(args.cache_size), policy=policy
                        ),
                    )
                    sink.append(result.byte_miss_ratio)
            comparison = compare_paired(a_vals, b_vals)
            print("byte miss ratio, paired across seeds:")
            print(comparison.summary(args.policy_a, args.policy_b))
        elif args.command == "checkpoint":
            from pathlib import Path

            from repro.durability import DurabilityConfig, run_durable
            from repro.faults.crash import CrashSpec

            trace = Trace.load(args.trace)
            crash = (
                CrashSpec(at_mutation=args.crash_at, mode=args.crash_mode)
                if args.crash_at is not None
                else None
            )
            report = run_durable(
                trace,
                SimulationConfig(
                    cache_size=parse_size(args.cache_size),
                    policy=args.policy,
                    queue_length=args.queue_length,
                ),
                DurabilityConfig(
                    run_dir=Path(args.run_dir),
                    checkpoint_every=args.checkpoint_every,
                    fsync=args.fsync,
                    crash=crash,
                ),
                workload_source=args.trace,
            )
            print(
                f"durable run complete: {report.jobs_executed} jobs, "
                f"{report.checkpoints_written} checkpoints, "
                f"byte miss ratio "
                f"{report.result.metrics.byte_miss_ratio:.4f}"
            )
            print(f"run dir: {report.run_dir}")
            print(f"telemetry trace: {report.trace_path}")
        elif args.command == "resume":
            from repro.durability import resume_run

            report = resume_run(args.run_dir, verify=not args.no_verify)
            print(
                f"resumed from job {report.resumed_from_job}: "
                f"re-executed {report.jobs_executed} jobs "
                f"({report.replayed_jobs} verified against the journal), "
                f"byte miss ratio "
                f"{report.result.metrics.byte_miss_ratio:.4f}"
            )
            if not args.no_verify:
                print("verify: stitched trace reconstruction ok")
            print(f"telemetry trace: {report.trace_path}")
        elif args.command == "serve":
            _run_serve(args)
        elif args.command == "loadgen":
            _run_loadgen(args)
        elif args.command == "slo":
            _run_slo(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":
    sys.exit(main())
