"""Figure 7: byte miss ratio with *large* files (max 10% of cache size).

Expected shape (paper): OptFileBundle still wins, but by less than in the
small-file regime of Figure 6 — with a handful of big files per bundle the
combinatorial advantage of bundle-aware selection shrinks.
"""

from __future__ import annotations

from repro.analysis.report import ExperimentOutput
from repro.experiments.byte_miss_sweeps import sweep_experiment

__all__ = ["run_fig7", "MAX_FILE_FRACTION"]

MAX_FILE_FRACTION = 0.10


def run_fig7(scale: str = "quick", *, jobs: int | None = None) -> ExperimentOutput:
    return sweep_experiment(
        "fig7",
        "Byte miss-rate for large files (<= 10% of cache)",
        "As Figure 6 but with files up to 10% of the cache size; the "
        "OptFileBundle advantage narrows relative to Figure 6.",
        scale,
        max_file_fraction=MAX_FILE_FRACTION,
        # With files up to 10% of the cache, bundles of > cache/12 bytes
        # stop being bundles at all — the x-range is inherently shorter.
        points=(2, 3, 4, 6, 8, 12),
        jobs=jobs,
    )
