"""Ablation studies of OptFileBundle's design choices (extensions).

DESIGN.md calls out five knobs; each gets a row group here, measured on
one mid-range workload point per distribution:

* ``refine``    — recompute-and-resort inside OptCacheSelect vs one sort;
* ``safeguard`` — Algorithm 1 Step 3 single-request comparison on/off;
* ``eviction``  — lazy (evict only for space) vs eager (Fig. 4 literal);
* ``decay``     — exponential value decay of the history counters;
* ``queue``     — FCFS / SJF / highest-value / aged-value at q = 25.
"""

from __future__ import annotations

from repro.analysis.report import ExperimentOutput
from repro.experiments.common import CACHE_SIZE, bundle_trace, get_scale
from repro.sim.queueing import QueueDiscipline
from repro.sim.simulator import SimulationConfig, simulate_trace
from repro.utils.stats import mean_confidence_interval
from repro.utils.tables import render_table

__all__ = ["run_ablation", "ABLATION_VARIANTS"]

CACHE_IN_REQUESTS = 8
MAX_FILE_FRACTION = 0.01

#: group -> variant name -> (policy kwargs, config kwargs)
ABLATION_VARIANTS: dict[str, dict[str, tuple[dict, dict]]] = {
    "refine": {
        "refine=on (paper note)": ({"refine": True}, {}),
        "refine=off (literal Alg.1)": ({"refine": False}, {}),
    },
    "safeguard": {
        "step3=on": ({"safeguard": True}, {}),
        "step3=off": ({"safeguard": False}, {}),
    },
    "eviction": {
        "lazy (default)": ({"eager_evict": False}, {}),
        "eager (Fig.4 literal)": ({"eager_evict": True}, {}),
    },
    "ranking": {
        "v/s'(adjusted, paper)": ({"degree_blind": False}, {}),
        "v/s (degree-blind)": ({"degree_blind": True}, {}),
    },
    "decay": {
        "decay=1.0 (counter)": ({"decay": 1.0}, {}),
        "decay=0.999": ({"decay": 0.999}, {}),
        "decay=0.99": ({"decay": 0.99}, {}),
    },
    "queue": {
        "q=25 fcfs": ({}, {"queue_length": 25, "discipline": QueueDiscipline.FCFS}),
        "q=25 sjf": ({}, {"queue_length": 25, "discipline": QueueDiscipline.SJF}),
        "q=25 value": ({}, {"queue_length": 25, "discipline": QueueDiscipline.VALUE}),
        "q=25 aged-value": (
            {},
            {"queue_length": 25, "discipline": QueueDiscipline.AGED_VALUE},
        ),
    },
}


def run_ablation(scale: str = "quick") -> ExperimentOutput:
    scale = get_scale(scale)
    sections: list[tuple[str, str]] = []
    data: dict = {}
    for popularity in ("uniform", "zipf"):
        traces = {
            seed: bundle_trace(
                scale,
                popularity=popularity,
                cache_in_requests=CACHE_IN_REQUESTS,
                max_file_fraction=MAX_FILE_FRACTION,
                seed=seed,
            )
            for seed in scale.seeds
        }
        rows = []
        panel: dict = {}
        for group, variants in ABLATION_VARIANTS.items():
            for name, (policy_kwargs, config_kwargs) in variants.items():
                results = [
                    simulate_trace(
                        traces[seed],
                        SimulationConfig(
                            cache_size=CACHE_SIZE,
                            policy="optbundle",
                            policy_kwargs=policy_kwargs,
                            **config_kwargs,
                        ),
                    )
                    for seed in scale.seeds
                ]
                mean, ci = mean_confidence_interval(
                    [r.byte_miss_ratio for r in results]
                )
                rows.append([group, name, mean, ci])
                panel[f"{group}/{name}"] = mean
        sections.append(
            (
                f"{popularity} request distribution",
                render_table(["group", "variant", "byte_miss_ratio", "±95%"], rows),
            )
        )
        data[popularity] = panel
    return ExperimentOutput(
        exp_id="ablation",
        title="Design-choice ablations of OptFileBundle",
        description="Byte miss ratio deltas of each design knob at one "
        f"mid-range point (cache ≈ {CACHE_IN_REQUESTS} requests).",
        sections=tuple(sections),
        data=data,
    )
