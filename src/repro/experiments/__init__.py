"""Per-figure/table experiment drivers reproducing the paper's evaluation.

Every table and figure of the paper has a driver here returning an
:class:`~repro.analysis.report.ExperimentOutput`; the ``benchmarks/``
harness and the CLI (``repro-fbc run <exp>``) both go through these.

================  =====================================================
``table1``        File request probabilities of the worked example
``table2``        Request-hit probabilities; popularity ≠ request-hits
``fig5``          Effect of history-truncation length (≈ none)
``fig6``          Byte miss ratio, small files (1% of cache), both dists
``fig7``          Byte miss ratio, large files (10% of cache)
``fig8``          Data volume per request vs cache size
``fig9``          Effect of admission-queue length
``thm41``         Greedy vs exact: Theorem 4.1 approximation bounds
``ablation``      Design-choice ablations (refine, safeguard, eviction,
                  value decay, queue disciplines) — extensions
``zoo``           All policies side by side on one workload — extension
``grid``          Timed SRM response-time/throughput study — extension
``chaos``         Policies under seeded grid fault injection — extension
``hybrid``        Mixed one-file/bundle execution (paper future work)
``replication``   Replica placement on a two-tier grid — extension
================  =====================================================
"""

from repro.experiments.registry import EXPERIMENTS, run_experiment

__all__ = ["EXPERIMENTS", "run_experiment"]
