"""Policy zoo (extension): every implemented policy on one workload.

The paper compares against Landlord only; this driver adds the classic
per-file baselines (LRU/LFU/FIFO/Random/SIZE/GDSF) and the offline
farthest-next-use reference so OptFileBundle's position in the wider
landscape is visible.
"""

from __future__ import annotations

from functools import partial

from repro.analysis.report import ExperimentOutput
from repro.experiments.common import CACHE_SIZE, bundle_trace, get_scale, parallel_map
from repro.sim.simulator import SimulationConfig, simulate_trace
from repro.utils.stats import mean_confidence_interval
from repro.utils.tables import render_table

__all__ = ["run_zoo", "ZOO_POLICIES"]

ZOO_POLICIES = (
    "optbundle",
    "landlord",
    "lru",
    "lruk",
    "lfu",
    "fifo",
    "random",
    "size",
    "gdsf",
    "belady",
)

CACHE_IN_REQUESTS = 8
MAX_FILE_FRACTION = 0.01


def _seed_unit(scale, popularity, seed: int) -> dict[str, tuple[float, float]]:
    """One work item: every zoo policy over one seeded trace."""
    trace = bundle_trace(
        scale,
        popularity=popularity,
        cache_in_requests=CACHE_IN_REQUESTS,
        max_file_fraction=MAX_FILE_FRACTION,
        seed=seed,
    )
    out: dict[str, tuple[float, float]] = {}
    for policy in ZOO_POLICIES:
        r = simulate_trace(
            trace, SimulationConfig(cache_size=CACHE_SIZE, policy=policy)
        )
        out[policy] = (r.byte_miss_ratio, r.request_hit_ratio)
    return out


def run_zoo(scale: str = "quick", *, jobs: int | None = None) -> ExperimentOutput:
    scale = get_scale(scale)
    sections: list[tuple[str, str]] = []
    data: dict = {}
    for popularity in ("uniform", "zipf"):
        per_seed = parallel_map(
            partial(_seed_unit, scale, popularity), scale.seeds, jobs=jobs
        )
        rows = []
        panel: dict = {}
        for policy in ZOO_POLICIES:
            bmr, bmr_ci = mean_confidence_interval(
                [res[policy][0] for res in per_seed]
            )
            hit, hit_ci = mean_confidence_interval(
                [res[policy][1] for res in per_seed]
            )
            rows.append([policy, bmr, bmr_ci, hit, hit_ci])
            panel[policy] = {"byte_miss_ratio": bmr, "request_hit_ratio": hit}
        rows.sort(key=lambda r: r[1])
        sections.append(
            (
                f"{popularity} request distribution",
                render_table(
                    ["policy", "byte_miss_ratio", "±", "request_hit_ratio", "±"],
                    rows,
                ),
            )
        )
        data[popularity] = panel
    return ExperimentOutput(
        exp_id="zoo",
        title="All replacement policies side by side (extension)",
        description="Byte miss and request-hit ratios at one mid-range point; "
        "belady is an offline reference with full future knowledge.",
        sections=tuple(sections),
        data=data,
    )
