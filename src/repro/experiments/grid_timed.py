"""Timed SRM study (extension; the paper's stated future work).

Jobs arrive as a Poisson stream at an SRM whose cache fronts a tape-backed
MSS across a WAN.  Staging a missed file costs a mount plus transfer time,
so a policy that keeps the right file *combinations* resident turns jobs
around faster.  Reported: mean response time, saturated throughput, bytes
staged — for OptFileBundle, Landlord and LRU.
"""

from __future__ import annotations

from repro.analysis.report import ExperimentOutput
from repro.experiments.common import CACHE_SIZE, get_scale
from repro.grid.srm import SRMConfig, run_timed_simulation
from repro.types import MB
from repro.utils.stats import mean_confidence_interval
from repro.utils.tables import render_table
from repro.workload.generator import WorkloadSpec, generate_trace

__all__ = ["run_grid", "GRID_POLICIES"]

GRID_POLICIES = ("optbundle", "landlord", "lru")


def run_grid(scale: str = "quick") -> ExperimentOutput:
    scale = get_scale(scale)
    n_jobs = max(scale.n_jobs // 5, 150)
    sections: list[tuple[str, str]] = []
    data: dict = {}
    for popularity in ("uniform", "zipf"):
        rows = []
        panel: dict = {}
        for policy in GRID_POLICIES:
            per_seed = []
            for seed in scale.seeds:
                trace = generate_trace(
                    WorkloadSpec(
                        cache_size=CACHE_SIZE,
                        n_files=scale.n_files,
                        n_request_types=scale.n_request_types,
                        n_jobs=n_jobs,
                        popularity=popularity,
                        max_file_fraction=0.05,
                        max_bundle_fraction=0.2,
                        arrival_rate=0.05,
                        seed=seed,
                    )
                )
                per_seed.append(
                    run_timed_simulation(
                        trace, SRMConfig(cache_size=CACHE_SIZE, policy=policy)
                    )
                )
            resp, resp_ci = mean_confidence_interval(
                [r.mean_response_time for r in per_seed]
            )
            thr, _ = mean_confidence_interval(
                [r.throughput * 3600 for r in per_seed]
            )
            staged, _ = mean_confidence_interval(
                [r.bytes_staged / MB for r in per_seed]
            )
            hit, _ = mean_confidence_interval(
                [r.request_hit_ratio for r in per_seed]
            )
            rows.append([policy, resp, resp_ci, thr, staged, hit])
            panel[policy] = {
                "mean_response_time": resp,
                "throughput_per_hour": thr,
                "staged_mb": staged,
                "request_hit_ratio": hit,
            }
        sections.append(
            (
                f"{popularity} request distribution",
                render_table(
                    [
                        "policy",
                        "resp time [s]",
                        "±",
                        "jobs/hour",
                        "staged [MB]",
                        "hit ratio",
                    ],
                    rows,
                ),
            )
        )
        data[popularity] = panel
    return ExperimentOutput(
        exp_id="grid",
        title="Timed SRM: response time and throughput (extension)",
        description=(
            "Poisson arrivals at an SRM over a 4-drive MSS and WAN link; "
            "the byte-miss advantage translates into faster job turnaround."
        ),
        sections=tuple(sections),
        data=data,
    )
