"""Figure 6: byte miss ratio with *small* files (max 1% of cache size).

Expected shape (paper): OptFileBundle's byte miss ratio is well below
Landlord's across the whole cache-size range for both distributions; the
advantage is largest in this small-file regime; Zipf curves lie below the
uniform ones.
"""

from __future__ import annotations

from repro.analysis.report import ExperimentOutput
from repro.experiments.byte_miss_sweeps import sweep_experiment

__all__ = ["run_fig6", "MAX_FILE_FRACTION"]

MAX_FILE_FRACTION = 0.01


def run_fig6(scale: str = "quick", *, jobs: int | None = None) -> ExperimentOutput:
    return sweep_experiment(
        "fig6",
        "Byte miss-rate for small files (<= 1% of cache)",
        "OptFileBundle vs Landlord, uniform and Zipf request popularity; "
        "x = cache size in average requests, y = byte miss ratio.",
        scale,
        max_file_fraction=MAX_FILE_FRACTION,
        jobs=jobs,
    )
