"""Shared sweep machinery for Figures 6, 7 and 8.

All three figures sweep the cache-size-in-requests ratio for both request
popularity distributions and compare OptFileBundle against Landlord; they
differ only in the file-size regime (1% vs 10% of cache) and the reported
metric (byte miss ratio vs data volume per request).
"""

from __future__ import annotations

from functools import partial

from repro.analysis.ascii_chart import render_chart
from repro.analysis.report import ExperimentOutput
from repro.experiments.common import CACHE_SIZE, Scale, bundle_trace, get_scale
from repro.sim.runner import SweepResult, sweep
from repro.sim.simulator import SimulationConfig
from repro.types import MB

__all__ = ["byte_miss_sweep", "sweep_experiment", "CACHE_POINTS"]

#: Cache-size-in-requests x-axis, truncated per scale.
CACHE_POINTS: tuple[int, ...] = (2, 4, 8, 16, 32, 64)

DEFAULT_POLICIES = ("optbundle", "landlord")


def _make_trace(scale, popularity, max_file_fraction, point, seed):
    """Module-level (picklable) trace factory for parallel sweeps."""
    return bundle_trace(
        scale,
        popularity=popularity,
        cache_in_requests=point,
        max_file_fraction=max_file_fraction,
        seed=seed,
    )


def _make_config(point):
    return SimulationConfig(cache_size=CACHE_SIZE, warmup=0)


def byte_miss_sweep(
    scale: Scale,
    *,
    popularity: str,
    max_file_fraction: float,
    policies=DEFAULT_POLICIES,
    points: "tuple[int, ...] | None" = None,
    jobs: int | None = None,
) -> SweepResult:
    """One panel: sweep cache-in-requests for one popularity distribution."""
    points = (points if points is not None else CACHE_POINTS)[: scale.points]

    return sweep(
        points,
        policies,
        partial(_make_trace, scale, popularity, max_file_fraction),
        _make_config,
        seeds=scale.seeds,
        x_label="cache size [#requests]",
        jobs=jobs,
    )


def sweep_experiment(
    exp_id: str,
    title: str,
    description: str,
    scale: "str | Scale",
    *,
    max_file_fraction: float,
    metric: str = "byte_miss_ratio",
    metric_label: str = "byte miss ratio",
    volume_in_mb: bool = False,
    policies=DEFAULT_POLICIES,
    points: "tuple[int, ...] | None" = None,
    jobs: int | None = None,
) -> ExperimentOutput:
    """Run both panels (uniform, Zipf) and package the output."""
    scale = get_scale(scale)
    sections: list[tuple[str, str]] = []
    data: dict = {}
    for panel, popularity in (("a", "uniform"), ("b", "zipf")):
        result = byte_miss_sweep(
            scale,
            popularity=popularity,
            max_file_fraction=max_file_fraction,
            policies=policies,
            points=points,
            jobs=jobs,
        )
        rows = result.rows
        if volume_in_mb:
            rows = tuple(
                {
                    **r,
                    metric: r[metric] / MB,
                    f"{metric}_ci": r[f"{metric}_ci"] / MB,
                }
                for r in rows
            )
            result = SweepResult(x_label=result.x_label, rows=rows)
        sections.append(
            (
                f"({panel}) {popularity} request distribution [{metric_label}]",
                result.render(y=metric),
            )
        )
        chart = render_chart(
            {p: result.series(p, y=metric) for p in result.policies()},
            title=f"{exp_id}({panel}) {popularity}",
            y_label=metric_label,
        )
        sections.append((f"({panel}) chart", chart))
        data[popularity] = [dict(r) for r in rows]
    return ExperimentOutput(
        exp_id=exp_id,
        title=title,
        description=description,
        sections=tuple(sections),
        data=data,
    )
