"""Warm-up / learning-curve study (extension).

OptFileBundle's decisions improve as the history ``L(R)`` observes the
request population; Landlord carries no cross-request state beyond
credits.  Plotting per-window byte miss ratios over the run shows (a) the
cold-start window where both policies pay compulsory misses, and (b)
OptFileBundle separating from Landlord once the history has seen the hot
request types — evidence the advantage comes from learned bundle
popularity, not from the eviction mechanics alone.
"""

from __future__ import annotations

from repro.analysis.ascii_chart import render_chart
from repro.analysis.report import ExperimentOutput
from repro.experiments.common import CACHE_SIZE, bundle_trace, get_scale
from repro.sim.simulator import SimulationConfig
from repro.sim.timeseries import byte_miss_timeseries
from repro.utils.tables import render_table

__all__ = ["run_warmup"]

CACHE_IN_REQUESTS = 8
MAX_FILE_FRACTION = 0.01


def run_warmup(scale: str = "quick") -> ExperimentOutput:
    scale = get_scale(scale)
    window = max(scale.n_jobs // 10, 25)
    sections: list[tuple[str, str]] = []
    data: dict = {}
    for popularity in ("uniform", "zipf"):
        trace = bundle_trace(
            scale,
            popularity=popularity,
            cache_in_requests=CACHE_IN_REQUESTS,
            max_file_fraction=MAX_FILE_FRACTION,
            seed=scale.seeds[0],
        )
        series: dict[str, list[tuple[float, float]]] = {}
        rows = []
        panel: dict = {}
        for policy in ("optbundle", "landlord"):
            points = byte_miss_timeseries(
                trace,
                SimulationConfig(cache_size=CACHE_SIZE, policy=policy),
                window=window,
            )
            series[policy] = [
                (p.window_index, p.byte_miss_ratio) for p in points
            ]
            panel[policy] = [p.byte_miss_ratio for p in points]
        for i in range(len(panel["optbundle"])):
            rows.append(
                [i, panel["optbundle"][i], panel["landlord"][i]]
            )
        sections.append(
            (
                f"{popularity}: byte miss ratio per window of {window} jobs",
                render_table(["window", "optbundle", "landlord"], rows),
            )
        )
        sections.append(
            (
                f"{popularity} chart",
                render_chart(series, y_label="byte miss ratio"),
            )
        )
        data[popularity] = panel
    return ExperimentOutput(
        exp_id="warmup",
        title="Learning curves: per-window byte miss ratio (extension)",
        description=(
            "Both policies start at the compulsory-miss ceiling; "
            "OptFileBundle separates once L(R) has observed the hot types."
        ),
        sections=tuple(sections),
        data=data,
    )
