"""Figure 5: effect of truncating the request-history length.

The paper explores history truncations "from arbitrarily limiting the
history to the requests in the cache to a full history of all requests"
and finds the effect negligible, justifying the cheap cache-supported
candidate set used everywhere else.  This driver compares:

* ``cache``   — candidates are the requests supported by the cache;
* ``window-S``/``window-L`` — last-N-arrivals windows (short, long);
* ``full``    — every request type ever seen (with Algorithm 2's
  ``F(Opt) \\ F(C)`` prefetching of selected non-resident files).

Expected shape: byte miss ratios within a small band across variants.
"""

from __future__ import annotations

from functools import partial

from repro.analysis.report import ExperimentOutput
from repro.core.history import TruncationMode
from repro.experiments.common import CACHE_SIZE, bundle_trace, get_scale, parallel_map
from repro.sim.simulator import SimulationConfig, simulate_trace
from repro.utils.stats import mean_confidence_interval
from repro.utils.tables import render_table

__all__ = ["run_fig5", "HISTORY_VARIANTS"]

CACHE_IN_REQUESTS = 8
MAX_FILE_FRACTION = 0.01


def HISTORY_VARIANTS(n_jobs: int) -> dict[str, dict]:
    """Variant name -> OptFileBundle policy kwargs."""
    return {
        "cache": {"truncation": TruncationMode.CACHE_SUPPORTED},
        "window-short": {
            "truncation": TruncationMode.WINDOW,
            "window": max(n_jobs // 20, 25),
        },
        "window-long": {
            "truncation": TruncationMode.WINDOW,
            "window": max(n_jobs // 4, 100),
        },
        "full": {"truncation": TruncationMode.FULL},
    }


def _seed_unit(scale, popularity, variants: dict[str, dict], seed: int) -> dict[str, float]:
    """One work item: every history variant over one seeded trace."""
    trace = bundle_trace(
        scale,
        popularity=popularity,
        cache_in_requests=CACHE_IN_REQUESTS,
        max_file_fraction=MAX_FILE_FRACTION,
        seed=seed,
    )
    return {
        name: simulate_trace(
            trace,
            SimulationConfig(
                cache_size=CACHE_SIZE, policy="optbundle", policy_kwargs=kwargs
            ),
        ).byte_miss_ratio
        for name, kwargs in variants.items()
    }


def run_fig5(scale: str = "quick", *, jobs: int | None = None) -> ExperimentOutput:
    scale = get_scale(scale)
    variants = HISTORY_VARIANTS(scale.n_jobs)
    sections: list[tuple[str, str]] = []
    data: dict = {}
    for popularity in ("uniform", "zipf"):
        per_seed = parallel_map(
            partial(_seed_unit, scale, popularity, variants),
            scale.seeds,
            jobs=jobs,
        )
        rows = []
        panel_data = []
        for name in variants:
            mean, ci = mean_confidence_interval(
                [ratios[name] for ratios in per_seed]
            )
            rows.append([name, mean, ci])
            panel_data.append(
                {"variant": name, "byte_miss_ratio": mean, "ci": ci}
            )
        sections.append(
            (
                f"{popularity} request distribution",
                render_table(["history", "byte_miss_ratio", "±95%"], rows),
            )
        )
        data[popularity] = panel_data
    return ExperimentOutput(
        exp_id="fig5",
        title="Effect of varying the history length",
        description=(
            "OptFileBundle byte miss ratio under history truncations from "
            "cache-supported to full; the paper finds (and this reproduces) "
            "a negligible effect, so cache-supported is the default."
        ),
        sections=tuple(sections),
        data=data,
    )
