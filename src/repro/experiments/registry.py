"""Experiment registry: id → driver."""

from __future__ import annotations

from typing import Callable

from repro.analysis.report import ExperimentOutput
from repro.errors import ConfigError
from repro.experiments.ablation import run_ablation
from repro.experiments.chaos import run_chaos
from repro.experiments.crashdrill import run_crashdrill
from repro.experiments.example_tables import run_tables
from repro.experiments.fig5_history import run_fig5
from repro.experiments.fig6_small_files import run_fig6
from repro.experiments.fig7_large_files import run_fig7
from repro.experiments.fig8_cache_size import run_fig8
from repro.experiments.fig9_queue_length import run_fig9
from repro.experiments.grid_timed import run_grid
from repro.experiments.hybrid import run_hybrid
from repro.experiments.replication import run_replication
from repro.experiments.warmup import run_warmup
from repro.experiments.policy_zoo import run_zoo
from repro.experiments.theory_bounds import run_thm41

__all__ = ["EXPERIMENTS", "run_experiment"]

EXPERIMENTS: dict[str, Callable[[str], ExperimentOutput]] = {
    "tables": run_tables,
    "fig5": run_fig5,
    "fig6": run_fig6,
    "fig7": run_fig7,
    "fig8": run_fig8,
    "fig9": run_fig9,
    "thm41": run_thm41,
    "ablation": run_ablation,
    "zoo": run_zoo,
    "grid": run_grid,
    "chaos": run_chaos,
    "crashdrill": run_crashdrill,
    "hybrid": run_hybrid,
    "replication": run_replication,
    "warmup": run_warmup,
}


def run_experiment(
    exp_id: str, scale: str = "quick", *, jobs: int | None = None
) -> ExperimentOutput:
    """Run one experiment by id at the given scale.

    ``jobs`` fans sweep points × seeds out over worker processes for the
    drivers that support it (the figure sweeps and the zoo); drivers
    without a ``jobs`` parameter simply run serially.
    """
    try:
        driver = EXPERIMENTS[exp_id]
    except KeyError:
        raise ConfigError(
            f"unknown experiment {exp_id!r}; known: {', '.join(EXPERIMENTS)}"
        ) from None
    if jobs is not None and jobs < 0:
        raise ConfigError(f"jobs must be >= 0, got {jobs}")
    if jobs is not None and jobs > 1:
        import inspect

        if "jobs" in inspect.signature(driver).parameters:
            return driver(scale, jobs=jobs)
    return driver(scale)
