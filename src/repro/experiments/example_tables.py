"""Tables 1 and 2: the worked example of Section 3 (Fig. 3).

Six requests over seven unit-size files, cache of three files, all
requests equally likely.  Table 1 lists per-file request probabilities;
Table 2 shows that the three most *popular* files (f5, f6, f7) support only
one request while the optimal content (f1, f3, f5) supports three — the
popularity fallacy motivating bundle-aware caching.  The driver also runs
``OptCacheSelect`` and the exact solver to confirm both recover the
optimal content.

Note: the paper's Table 1 lists f4 with probability 1/3 despite "No of
Requests = 1"; that is a typo in the original (1 of 6 requests is 1/6),
which this reproduction corrects.
"""

from __future__ import annotations

from fractions import Fraction

from repro.analysis.report import ExperimentOutput
from repro.core.bundle import FileBundle
from repro.core.exact import solve_exact
from repro.core.optcacheselect import FBCInstance, opt_cache_select
from repro.utils.tables import render_table

__all__ = [
    "EXAMPLE_BUNDLES",
    "EXAMPLE_SIZES",
    "EXAMPLE_CACHE_FILES",
    "file_request_probabilities",
    "request_hit_probability",
    "run_tables",
]

#: The request set reconstructed from Fig. 3 / Tables 1–2 (r1..r6).
EXAMPLE_BUNDLES: tuple[FileBundle, ...] = (
    FileBundle(["f1", "f3", "f5"]),  # r1
    FileBundle(["f2", "f6", "f7"]),  # r2
    FileBundle(["f1", "f5"]),        # r3
    FileBundle(["f4", "f6", "f7"]),  # r4
    FileBundle(["f3", "f5"]),        # r5
    FileBundle(["f5", "f6", "f7"]),  # r6
)

EXAMPLE_SIZES: dict[str, int] = {f"f{i}": 1 for i in range(1, 8)}

EXAMPLE_CACHE_FILES = 3

#: The cache contents examined by Table 2.
TABLE2_CONTENTS: tuple[tuple[str, ...], ...] = (
    ("f5", "f6", "f7"),
    ("f1", "f3", "f5"),
    ("f1", "f5", "f6"),
    ("f3", "f5", "f6"),
    ("f1", "f2", "f3"),
)


def file_request_probabilities(
    bundles: tuple[FileBundle, ...] = EXAMPLE_BUNDLES,
) -> dict[str, Fraction]:
    """P(file needed by a uniformly random request) — Table 1."""
    n = len(bundles)
    counts: dict[str, int] = {}
    for b in bundles:
        for f in b:
            counts[f] = counts.get(f, 0) + 1
    return {f: Fraction(c, n) for f, c in sorted(counts.items())}


def request_hit_probability(
    cache_files: tuple[str, ...],
    bundles: tuple[FileBundle, ...] = EXAMPLE_BUNDLES,
) -> tuple[Fraction, list[int]]:
    """Hit probability of a cache content and the supported request indices."""
    resident = set(cache_files)
    supported = [i for i, b in enumerate(bundles) if b.issubset(resident)]
    return Fraction(len(supported), len(bundles)), supported


def run_tables(scale: str = "quick") -> ExperimentOutput:
    """Reproduce Tables 1 and 2 and verify OptCacheSelect's choice."""
    del scale  # the worked example has a single, fixed size

    probs = file_request_probabilities()
    table1_rows = [
        [f, int(p * len(EXAMPLE_BUNDLES)), f"{p.numerator}/{p.denominator}"]
        for f, p in probs.items()
    ]
    table1 = render_table(["File", "No of Requests", "P(file requested)"], table1_rows)

    table2_rows = []
    for content in TABLE2_CONTENTS:
        p, supported = request_hit_probability(content)
        table2_rows.append(
            [
                ",".join(content),
                ",".join(f"r{i+1}" for i in supported) or "-",
                f"{p.numerator}/{p.denominator}",
            ]
        )
    table2 = render_table(
        ["Cache contents", "Requests supported", "Request-hit probability"],
        table2_rows,
    )

    inst = FBCInstance(
        bundles=EXAMPLE_BUNDLES,
        values=tuple(1.0 for _ in EXAMPLE_BUNDLES),
        sizes=EXAMPLE_SIZES,
        budget=EXAMPLE_CACHE_FILES,
    )
    greedy = opt_cache_select(inst)
    exact = solve_exact(inst)
    verdict = render_table(
        ["Solver", "Cache content", "Requests supported"],
        [
            ["OptCacheSelect", ",".join(sorted(greedy.files)), greedy.total_value],
            ["Exact (B&B)", ",".join(sorted(exact.files)), exact.total_value],
        ],
        floatfmt=".0f",
    )

    return ExperimentOutput(
        exp_id="table1+table2",
        title="Worked example: popularity vs request-hits (Tables 1-2, Fig. 3)",
        description=(
            "The three most popular files (f5,f6,f7) support 1 of 6 requests; "
            "the optimal content (f1,f3,f5) supports 3 of 6. OptCacheSelect "
            "recovers the optimal content."
        ),
        sections=(
            ("Table 1: file request probabilities", table1),
            ("Table 2: request-hit probabilities", table2),
            ("Algorithm verification", verdict),
        ),
        data={
            "file_probs": {f: (p.numerator, p.denominator) for f, p in probs.items()},
            "table2": [
                {
                    "content": list(c),
                    "hit_prob": float(request_hit_probability(c)[0]),
                }
                for c in TABLE2_CONTENTS
            ],
            "greedy_files": sorted(greedy.files),
            "greedy_value": greedy.total_value,
            "exact_value": exact.total_value,
        },
    )
