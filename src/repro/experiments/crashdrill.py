"""Crash drill: kill durable runs mid-flight and prove recovery is exact.

The durability contract (:mod:`repro.durability`) is that a run crashed
at *any* point and resumed produces a telemetry trace and final metrics
**byte-identical** to the same run left uninterrupted.  This driver
exercises that contract end-to-end, the way an operator would hit it:

1. run the workload durably to completion — the reference;
2. re-run it with a seeded :class:`~repro.faults.crash.CrashSpec`
   injecting a crash at the Nth state mutation (both a clean in-process
   failure and a ``torn``-frame variant that leaves a half-written
   journal record, the signature of a real kill);
3. :func:`~repro.durability.resume_run` the wreckage;
4. compare the stitched trace byte-for-byte and the metrics snapshot
   field-for-field against the reference, and let the resume's
   ``verify`` pass replay the stitched trace through
   :func:`repro.telemetry.forensics.reconstruct`.

Crash points cover early (before the first checkpoint), mid-stream and
final-job territory, for both headline policies.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.analysis.report import ExperimentOutput
from repro.durability import DurabilityConfig, DurableReport, resume_run, run_durable
from repro.errors import InjectedCrashError
from repro.experiments.common import CACHE_SIZE, bundle_trace, get_scale
from repro.faults.crash import CrashSpec
from repro.sim.simulator import SimulationConfig
from repro.utils.tables import render_table
from repro.workload.trace import Trace

__all__ = ["run_crashdrill", "drill_once", "DRILL_POLICIES", "CHECKPOINT_EVERY"]

DRILL_POLICIES = ("optbundle", "landlord")

#: checkpoint cadence for the drill (crash points straddle it)
CHECKPOINT_EVERY = 50


def drill_once(
    trace: Trace,
    policy: str,
    crash_at: int,
    mode: str,
    *,
    cache_size: int = CACHE_SIZE,
) -> dict:
    """Crash one durable run at mutation ``crash_at``, resume, compare.

    Returns a JSON-ready record; ``byte_identical`` and
    ``metrics_equal`` are the contract fields.
    """
    config = SimulationConfig(cache_size=cache_size, policy=policy)
    with tempfile.TemporaryDirectory(prefix="crashdrill-") as td:
        root = Path(td)
        reference = run_durable(
            trace,
            config,
            DurabilityConfig(
                run_dir=root / "reference", checkpoint_every=CHECKPOINT_EVERY
            ),
        )
        ref_bytes = reference.trace_path.read_bytes()

        crashed_dir = root / "crashed"
        crashed = False
        try:
            run_durable(
                trace,
                config,
                DurabilityConfig(
                    run_dir=crashed_dir,
                    checkpoint_every=CHECKPOINT_EVERY,
                    crash=CrashSpec(at_mutation=crash_at, mode=mode),
                ),
            )
        except InjectedCrashError:
            crashed = True

        resumed: DurableReport = resume_run(crashed_dir)
        stitched = resumed.trace_path.read_bytes()
        return {
            "policy": policy,
            "crash_at": crash_at,
            "mode": mode,
            "crash_fired": crashed,
            "resumed_from_job": resumed.resumed_from_job,
            "replayed_jobs": resumed.replayed_jobs,
            "byte_identical": stitched == ref_bytes,
            "metrics_equal": resumed.result.metrics == reference.result.metrics,
        }


def run_crashdrill(scale: str = "quick") -> ExperimentOutput:
    sc = get_scale(scale)
    trace = bundle_trace(
        sc, popularity="zipf", cache_in_requests=8, max_file_fraction=0.01, seed=0
    )
    n = len(trace)
    # early (journal-only), just past a checkpoint, and final-job crashes
    crash_points = sorted({max(1, n // 8), CHECKPOINT_EVERY + 3, n - 1})
    rows = []
    records = []
    for policy in DRILL_POLICIES:
        for at in crash_points:
            for mode in ("raise", "torn"):
                rec = drill_once(trace, policy, at, mode)
                records.append(rec)
                rows.append(
                    [
                        rec["policy"],
                        rec["crash_at"],
                        rec["mode"],
                        rec["resumed_from_job"],
                        rec["replayed_jobs"],
                        "yes" if rec["byte_identical"] else "NO",
                        "yes" if rec["metrics_equal"] else "NO",
                    ]
                )
    table = render_table(
        ["policy", "crash@", "mode", "resumed@", "replayed",
         "trace byte-identical", "metrics equal"],
        rows,
    )
    all_exact = all(r["byte_identical"] and r["metrics_equal"] for r in records)
    verdict = (
        "every crashed run recovered byte-identically"
        if all_exact
        else "DIVERGENCE DETECTED — durability contract violated"
    )
    return ExperimentOutput(
        exp_id="crashdrill",
        title="Crash-recovery drill: journaled runs resume byte-identically",
        description=(
            f"{n}-job workload, checkpoint every {CHECKPOINT_EVERY} jobs; "
            f"crashes injected at mutations {crash_points} in both "
            f"'raise' and 'torn' modes. {verdict}."
        ),
        sections=(("recovery matrix", table),),
        data={"records": records, "all_exact": all_exact},
    )
