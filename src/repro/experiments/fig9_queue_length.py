"""Figure 9: effect of aggregating jobs in an admission queue.

Jobs are collected into a queue of length q; once full, the queued request
with the highest adjusted relative value is serviced first and the queue
drained (the paper's scheme).  Expected shape: queueing barely helps the
uniform distribution but lowers the byte miss ratio noticeably for Zipf at
large q (q = 100).
"""

from __future__ import annotations

from functools import partial

from repro.analysis.ascii_chart import render_chart
from repro.analysis.report import ExperimentOutput
from repro.experiments.common import CACHE_SIZE, bundle_trace, get_scale
from repro.sim.queueing import QueueDiscipline
from repro.sim.runner import sweep
from repro.sim.simulator import SimulationConfig

__all__ = ["run_fig9", "QUEUE_LENGTHS"]

QUEUE_LENGTHS: tuple[int, ...] = (1, 5, 10, 25, 50, 100)
CACHE_IN_REQUESTS = 8
MAX_FILE_FRACTION = 0.01


def _lengths_for(points: int) -> tuple[int, ...]:
    """Queue lengths per scale; q=100 (the paper's headline) from 4 points."""
    if points <= 3:
        return (1, 5, 25)
    if points <= 4:
        return (1, 5, 25, 100)
    return QUEUE_LENGTHS


def _make_trace(scale, popularity, point, seed):
    """Module-level (picklable) trace factory; queue length is not a
    workload parameter, so the trace ignores ``point``."""
    return bundle_trace(
        scale,
        popularity=popularity,
        cache_in_requests=CACHE_IN_REQUESTS,
        max_file_fraction=MAX_FILE_FRACTION,
        seed=seed,
    )


def _make_config(point):
    return SimulationConfig(
        cache_size=CACHE_SIZE,
        queue_length=int(point),
        discipline=QueueDiscipline.VALUE,
        queue_mode="drain",
    )


def run_fig9(scale: str = "quick", *, jobs: int | None = None) -> ExperimentOutput:
    scale = get_scale(scale)
    lengths = _lengths_for(scale.points)
    sections: list[tuple[str, str]] = []
    data: dict = {}
    for panel, popularity in (("a", "uniform"), ("b", "zipf")):
        result = sweep(
            lengths,
            ("optbundle",),
            partial(_make_trace, scale, popularity),
            _make_config,
            seeds=scale.seeds,
            x_label="queue length",
            jobs=jobs,
        )
        sections.append(
            (
                f"({panel}) {popularity} request distribution",
                result.render(),
            )
        )
        sections.append(
            (
                f"({panel}) chart",
                render_chart(
                    {"optbundle": result.series("optbundle")},
                    title=f"fig9({panel}) {popularity}",
                    y_label="byte miss ratio",
                ),
            )
        )
        data[popularity] = [dict(r) for r in result.rows]
    return ExperimentOutput(
        exp_id="fig9",
        title="Effect of varying the admission-queue length",
        description=(
            "OptFileBundle with highest-relative-value queue scheduling; "
            "q=1 is FCFS. The queueing win concentrates in the Zipf panel."
        ),
        sections=tuple(sections),
        data=data,
    )
