"""Shared experiment scaffolding: scales and workload builders.

The paper burned >1000 CPU-hours on a 2004 Opteron cluster; the drivers
here expose a ``scale`` knob instead:

* ``smoke`` — seconds; CI/tests exercise every driver end to end.
* ``quick`` — a couple of minutes for the full suite; the default for the
  benchmark harness.  Shapes (orderings, trends) already hold.
* ``paper`` — the paper's job counts (10 000 jobs/point, more seeds) for a
  faithful laptop-scale rerun.

Bytes are simulated, so the absolute cache size is arbitrary; 1 GB is used
throughout and sweeps vary the *request size relative to the cache* — the
paper's own x-axis is "cache size in number of requests".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, TypeVar

from repro.errors import ConfigError, WorkloadError
from repro.telemetry import RingSink, TraceRecorder, current_recorder, use_recorder
from repro.types import GB, SizeBytes
from repro.workload.generator import WorkloadSpec, generate_trace
from repro.workload.trace import Trace

__all__ = [
    "Scale",
    "SCALES",
    "get_scale",
    "CACHE_SIZE",
    "bundle_trace",
    "parallel_map",
]

_T = TypeVar("_T")
_R = TypeVar("_R")

CACHE_SIZE: SizeBytes = 1 * GB


@dataclass(frozen=True)
class Scale:
    """Run-size preset for experiment drivers."""

    name: str
    n_jobs: int
    n_files: int
    n_request_types: int
    seeds: tuple[int, ...]
    points: int  # how many x-axis points sweeps use
    catalog_pressure: float  # total file bytes as a multiple of the cache


SCALES: dict[str, Scale] = {
    "smoke": Scale("smoke", 400, 150, 120, (0,), 3, 3.0),
    "quick": Scale("quick", 2_000, 300, 300, (0, 1), 4, 5.0),
    "paper": Scale("paper", 10_000, 400, 400, (0, 1, 2), 6, 8.0),
}


def get_scale(scale: "str | Scale") -> Scale:
    if isinstance(scale, Scale):
        return scale
    try:
        return SCALES[scale]
    except KeyError:
        raise ConfigError(
            f"unknown scale {scale!r}; known: {', '.join(SCALES)}"
        ) from None


def _traced_item(fn: Callable[[_T], _R], item: _T) -> "tuple[_R, list]":
    """Worker-side wrapper: run one item under a buffering recorder.

    Module-level so :func:`parallel_map` can ship it as a partial.  The
    worker's events come back with the result and are replayed into the
    parent recorder in input order — the same grouping a serial run
    produces naturally, so traces are byte-identical either way.
    """
    sink = RingSink()
    with use_recorder(TraceRecorder(sink, profile=False)):
        result = fn(item)
    return result, list(sink.events)


def parallel_map(
    fn: Callable[[_T], _R],
    items: Iterable[_T],
    *,
    jobs: int | None = None,
) -> list[_R]:
    """Map ``fn`` over ``items``, optionally across worker processes.

    Results are returned in input order regardless of completion order
    (``ProcessPoolExecutor.map`` merges ordered), so a parallel run is
    byte-identical to the serial one as long as ``fn`` is deterministic —
    which every experiment work item is, since traces are seeded.

    ``jobs`` of ``None``/``0``/``1`` runs serially in-process (no executor,
    no pickling requirement); higher values fan out over up to ``jobs``
    processes, which requires ``fn`` to be picklable (a module-level
    function or a :func:`functools.partial` of one).

    When the ambient telemetry recorder is active, each worker buffers
    its trace events in memory and the parent replays the buffers in
    input order, so ``jobs=N`` emits the same event stream as a serial
    run.  Worker-side profiling spans are not merged (their registries
    die with the worker).
    """
    work = list(items)
    if jobs is not None and jobs < 0:
        raise ConfigError(f"jobs must be >= 0, got {jobs}")
    if jobs in (None, 0, 1) or len(work) <= 1:
        return [fn(item) for item in work]
    from concurrent.futures import ProcessPoolExecutor
    from functools import partial

    recorder = current_recorder()
    with ProcessPoolExecutor(max_workers=min(jobs, len(work))) as pool:
        if not recorder.active:
            return list(pool.map(fn, work))
        results: list[_R] = []
        for result, events in pool.map(partial(_traced_item, fn), work):
            recorder.replay(events)
            results.append(result)
        return results


def bundle_trace(
    scale: Scale,
    *,
    popularity: str,
    cache_in_requests: float,
    max_file_fraction: float,
    seed: int,
    n_jobs: int | None = None,
) -> Trace:
    """The paper's synthetic workload for one sweep point.

    Follows Section 5.1's construction: file sizes uniform in
    ``[1MB, max_file_fraction · s(C)]``; request bundles drawn randomly with
    total size below ``s(C) / cache_in_requests`` so the cache accommodates
    roughly ``cache_in_requests`` requests (the measured value is available
    via :func:`repro.workload.generator.cache_size_in_requests`).  The file
    population is sized so total catalog bytes are ``catalog_pressure``
    times the cache — without that pressure every file fits and all
    policies degenerate to cold misses.
    """
    if cache_in_requests < 1:
        raise ConfigError(
            f"cache_in_requests must be >= 1, got {cache_in_requests}"
        )
    from repro.types import MB

    avg_file = (MB + max_file_fraction * CACHE_SIZE) / 2.0
    n_files = int(round(scale.catalog_pressure * CACHE_SIZE / avg_file))
    n_files = max(60, min(n_files, 2500))

    bundle_cap = int(CACHE_SIZE / cache_in_requests)
    hi_count = max(1, round(bundle_cap / avg_file))
    files_per_request = (max(1, hi_count // 3), hi_count)

    spec = WorkloadSpec(
        cache_size=CACHE_SIZE,
        n_files=n_files,
        n_request_types=scale.n_request_types,
        n_jobs=n_jobs if n_jobs is not None else scale.n_jobs,
        popularity=popularity,
        max_file_fraction=max_file_fraction,
        max_bundle_fraction=min(1.0 / cache_in_requests, 0.95),
        files_per_request=files_per_request,
        seed=seed,
    )
    try:
        return generate_trace(spec)
    except WorkloadError:
        # Tight corners (e.g. large files with a small bundle cap) cannot
        # yield enough *distinct* bundles; fall back to sampling with
        # repetition — popularity is still imposed by the sampler.
        from dataclasses import replace

        return generate_trace(replace(spec, distinct_requests=False))
