"""``repro bench`` — a recorded end-to-end performance trajectory.

Two measurements, both written to ``BENCH_<name>.json`` at the repo root so
successive commits leave a machine-readable speed trail next to the code:

* **Throughput + selection latency per policy** — replay one seeded
  synthetic workload (the paper's Section 5.1 construction) under each
  policy, timing the whole run (jobs/sec) and every individual
  ``on_request`` replacement decision (mean/p50/p95/max seconds).  This is
  the paper's Section 1.2 claim — a decision "should be evaluated in an
  almost negligible time relative to the time it takes to cache an
  object" — made measurable.

* **Warm-planner micro-benchmark** — the incremental
  :class:`~repro.core.selection_state.SelectionState` plan path against
  the rebuild-per-arrival path on a warm history of ``n`` candidate
  request types, reporting seconds/plan for both and the speedup.

* **Telemetry overhead** — the same seeded replay with no recorder,
  with the inert :class:`~repro.telemetry.sinks.NullSink` recorder and
  with a live :class:`~repro.telemetry.sinks.JsonlSink`; the NullSink
  column is the cost of having instrumentation compiled into the hot
  paths at all (contract: ≤ 3% over the no-recorder baseline).

* **Durability overhead** — the same seeded replay through
  :func:`~repro.durability.runner.run_durable` (write-ahead journal +
  periodic checkpoints) against the JSONL-traced plain run, since a
  durable run always records a trace (contract: ≤ 10% over the traced
  baseline in jobs/sec).

* **Service throughput** — the same seeded workload replayed over real
  HTTP against the in-process coordinator service (durable run dir,
  journal, checkpoints), per policy: achieved jobs/sec plus the
  client-observed p50/p99 request latency — the online system's answer
  to the same Section 1.2 "negligible decision time" claim.

* **Tracing overhead** — the same jobs submitted directly to the
  durable coordinator state with request tracing on (ring capacity 256,
  span trees built per job) against tracing off (ring 0); the marginal
  cost of the observability layer (contract: ≤ 5% in jobs/sec).

The workloads are fully seeded, so numbers differ across machines but the
*shape* (speedup ratios, relative policy costs) is reproducible.
"""

from __future__ import annotations

import json
import platform
import random
import statistics
import time
from pathlib import Path
from typing import Sequence

from repro.cache.registry import make_policy
from repro.core.bundle import FileBundle
from repro.core.history import TruncationMode
from repro.core.optfilebundle import OptFileBundlePlanner
from repro.experiments.common import CACHE_SIZE, bundle_trace, get_scale
from repro.sim.simulator import SimulationConfig, simulate_trace
from repro.types import FileId, SizeBytes
from repro.utils.tables import render_table
from repro.workload.trace import Trace

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "DEFAULT_POLICIES",
    "bench_policy",
    "planner_workload",
    "warm_planner",
    "warm_planner_timings",
    "telemetry_overhead",
    "durability_overhead",
    "tracing_overhead",
    "service_throughput",
    "run_bench",
    "render_bench",
]

#: Bump when the JSON layout changes incompatibly.
BENCH_SCHEMA_VERSION = 5

DEFAULT_POLICIES: tuple[str, ...] = ("optbundle", "landlord")

# Workload knobs shared with the figure drivers (mid-range point).
CACHE_IN_REQUESTS = 8
MAX_FILE_FRACTION = 0.01
POPULARITY = "zipf"

# Warm-planner regime: a large low-overlap catalog (6 distinct files per
# candidate type on average) is where the rebuild path's per-arrival
# O(history) passes dominate; this mirrors a data grid's wide file
# population rather than a hot shared core.
PLANNER_FILES_PER_TYPE = 6
PLANNER_BUNDLE_FILES = (3, 6)
PLANNER_CANDIDATES = (200, 800)
PLANNER_PLANS = 60


# --------------------------------------------------------------------- #
# per-policy throughput + selection latency


def _instrument(policy) -> list[float]:
    """Shadow ``policy.on_request`` with a timing wrapper; return samples."""
    samples: list[float] = []
    orig = policy.on_request

    def timed(bundle):
        t0 = time.perf_counter()
        decision = orig(bundle)
        samples.append(time.perf_counter() - t0)
        return decision

    policy.on_request = timed
    return samples


def _latency_stats(samples: Sequence[float]) -> dict:
    ordered = sorted(samples)
    n = len(ordered)
    return {
        "n": n,
        "mean_s": sum(ordered) / n,
        "p50_s": ordered[(n - 1) // 2],
        "p95_s": ordered[int(0.95 * (n - 1))],
        "max_s": ordered[-1],
    }


def bench_policy(
    trace: Trace, policy: str, *, cache_size: SizeBytes = CACHE_SIZE
) -> dict:
    """Time one full simulation of ``trace`` under ``policy``.

    Returns a JSON-ready record with jobs/sec for the whole run and the
    distribution of individual ``on_request`` decision latencies.
    """
    instance = make_policy(policy, future=trace.bundles())
    samples = _instrument(instance)
    config = SimulationConfig(cache_size=cache_size, policy=policy)
    t0 = time.perf_counter()
    result = simulate_trace(trace, config, policy=instance)
    elapsed = time.perf_counter() - t0
    return {
        "policy": policy,
        "n_jobs": len(trace),
        "elapsed_s": elapsed,
        "jobs_per_sec": len(trace) / elapsed if elapsed > 0 else float("inf"),
        "byte_miss_ratio": result.byte_miss_ratio,
        "selection_latency": _latency_stats(samples),
    }


# --------------------------------------------------------------------- #
# warm-planner micro-benchmark (incremental vs rebuild)


def planner_workload(
    n: int, *, seed: int = 0
) -> tuple[dict[FileId, SizeBytes], list[FileBundle], int]:
    """``n`` distinct candidate types over a low-overlap catalog.

    Returns ``(sizes, types, capacity)`` where the capacity holds roughly
    :data:`CACHE_IN_REQUESTS` average bundles.
    """
    rng = random.Random(seed)
    files = [f"f{i:05d}" for i in range(n * PLANNER_FILES_PER_TYPE)]
    sizes: dict[FileId, SizeBytes] = {
        f: 1 + (i * 37) % 100 for i, f in enumerate(files)
    }
    types: list[FileBundle] = []
    seen: set[frozenset[FileId]] = set()
    while len(types) < n:
        b = FileBundle(rng.sample(files, rng.randint(*PLANNER_BUNDLE_FILES)))
        if b.files in seen:
            continue
        seen.add(b.files)
        types.append(b)
    avg_bundle = sum(b.size_under(sizes) for b in types) / n
    capacity = int(avg_bundle * CACHE_IN_REQUESTS)
    return sizes, types, capacity


def warm_planner(
    n: int, *, incremental: bool, seed: int = 0
) -> tuple[OptFileBundlePlanner, list[FileBundle]]:
    """An :class:`OptFileBundlePlanner` with a warm ``n``-candidate history."""
    sizes, types, capacity = planner_workload(n, seed=seed)
    planner = OptFileBundlePlanner(
        capacity,
        sizes,
        truncation=TruncationMode.FULL,
        incremental=incremental,
    )
    for b in types:
        planner.history.record(b)
    return planner, types


def _time_plans(
    planner: OptFileBundlePlanner, types: Sequence[FileBundle], plans: int
) -> float:
    """Seconds per plan over ``plans`` arrivals cycling through ``types``."""
    resident: set[FileId] = set()
    t0 = time.perf_counter()
    for i in range(plans):
        plan = planner.plan(types[i % len(types)], resident)
        planner.commit(plan)
        resident -= plan.evict
        resident |= plan.load | plan.prefetch
    return (time.perf_counter() - t0) / plans


def warm_planner_timings(n: int, *, plans: int = PLANNER_PLANS) -> dict:
    """Incremental vs rebuild plan latency at ``n`` warm candidates."""
    results = {}
    for label, incremental in (("incremental", True), ("rebuild", False)):
        planner, types = warm_planner(n, incremental=incremental)
        results[label] = _time_plans(planner, types, plans)
    return {
        "n_candidates": n,
        "plans": plans,
        "incremental_s_per_plan": results["incremental"],
        "rebuild_s_per_plan": results["rebuild"],
        "speedup": results["rebuild"] / results["incremental"],
    }


# --------------------------------------------------------------------- #
# telemetry overhead


def telemetry_overhead(
    trace: Trace,
    *,
    policy: str = "optbundle",
    cache_size: SizeBytes = CACHE_SIZE,
    repeats: int = 3,
) -> dict:
    """Best-of-``repeats`` replay times under each telemetry mode.

    The instrumentation cannot be compiled out, so the interesting
    number is NullSink-vs-no-recorder: both hit the same ``rec.active``
    guards, the baseline through the module :data:`NULL_RECORDER` and
    the NullSink run through an explicitly installed inert recorder.
    Best-of-N is used because scheduler noise only ever adds time.
    """
    import os
    import tempfile

    from repro.telemetry import JsonlSink, NullSink, TraceRecorder

    config = SimulationConfig(cache_size=cache_size, policy=policy)

    def best(run) -> float:
        times = []
        for _ in range(repeats):
            t0 = time.perf_counter()
            run()
            times.append(time.perf_counter() - t0)
        return min(times)

    baseline_s = best(lambda: simulate_trace(trace, config))
    nullsink_s = best(
        lambda: simulate_trace(
            trace, config, recorder=TraceRecorder(NullSink(), profile=False)
        )
    )
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "bench_trace.jsonl")

        def jsonl_run() -> None:
            rec = TraceRecorder(JsonlSink(path))
            try:
                simulate_trace(trace, config, recorder=rec)
            finally:
                rec.close()

        jsonl_s = best(jsonl_run)
    return {
        "policy": policy,
        "n_jobs": len(trace),
        "repeats": repeats,
        "baseline_s": baseline_s,
        "nullsink_s": nullsink_s,
        "jsonl_s": jsonl_s,
        "nullsink_overhead": nullsink_s / baseline_s - 1.0,
        "jsonl_overhead": jsonl_s / baseline_s - 1.0,
    }


# --------------------------------------------------------------------- #
# durability overhead


def durability_overhead(
    trace: Trace,
    *,
    policy: str = "optbundle",
    cache_size: SizeBytes = CACHE_SIZE,
    checkpoint_every: int = 100,
    repeats: int = 7,
) -> dict:
    """Best-of-``repeats`` durable run vs JSONL-traced plain run.

    The fair baseline is the *traced* replay: a durable run always
    records a trace, so the marginal cost measured here is the journal
    appends, checkpoints and their flushes (the workload file is staged
    by byte-copy, outside the contract).  The two sides are measured in
    back-to-back pairs with alternating order (traced/durable,
    durable/traced, ...) so noisy-neighbour phases on a shared machine
    hit both sides instead of whichever one they land on.

    The overhead is the smaller of two noise-robust estimates: the
    ratio of per-side minima (undisturbed-runtime estimator) and the
    median of per-pair ratios (drift-cancelling estimator).  On a
    machine where interference only ever *adds* time, each estimator
    errs upward, and they do so under different noise shapes — a phase
    covering one side's every quiet window vs asymmetric contamination
    of individual pairs — so the smaller one is the better estimate.
    One untimed warmup pair precedes measurement and the cyclic GC is
    paused throughout (checkpoint state exports allocate enough to
    trigger collections mid-run otherwise).
    """
    import gc
    import os
    import tempfile

    from repro.durability import DurabilityConfig, run_durable
    from repro.telemetry import JsonlSink, TraceRecorder

    config = SimulationConfig(cache_size=cache_size, policy=policy)

    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "bench_trace.jsonl")
        # stage the workload file once: a durable run links its input
        # into the run dir, which is setup, not journal/checkpoint cost
        workload_path = os.path.join(tmp, "workload.jsonl")
        trace.dump(workload_path)

        def traced_run() -> None:
            rec = TraceRecorder(JsonlSink(path))
            try:
                simulate_trace(trace, config, recorder=rec)
            finally:
                rec.close()

        def durable_run(i: int) -> None:
            run_durable(
                trace,
                config,
                DurabilityConfig(
                    run_dir=os.path.join(tmp, f"durable_{i}"),
                    checkpoint_every=checkpoint_every,
                ),
                workload_source=workload_path,
            )

        traced_run()
        durable_run(repeats)
        ratios: list[float] = []
        traced_s = durable_s = float("inf")
        gc_was_enabled = gc.isenabled()
        gc.collect()
        gc.disable()
        try:
            for i in range(repeats):
                sides = [("traced", traced_run), ("durable", lambda i=i: durable_run(i))]
                if i % 2:
                    sides.reverse()
                pair: dict[str, float] = {}
                for label, fn in sides:
                    t0 = time.perf_counter()
                    fn()
                    pair[label] = time.perf_counter() - t0
                traced_s = min(traced_s, pair["traced"])
                durable_s = min(durable_s, pair["durable"])
                if pair["durable"] > 0:
                    ratios.append(1.0 - pair["traced"] / pair["durable"])
        finally:
            if gc_was_enabled:
                gc.enable()
    n = len(trace)
    by_minima = 1.0 - traced_s / durable_s if durable_s > 0 else 0.0
    by_pairs = statistics.median(ratios) if ratios else 0.0
    return {
        "policy": policy,
        "n_jobs": n,
        "repeats": repeats,
        "checkpoint_every": checkpoint_every,
        "traced_s": traced_s,
        "durable_s": durable_s,
        "traced_jobs_per_sec": n / traced_s if traced_s > 0 else float("inf"),
        "durable_jobs_per_sec": n / durable_s if durable_s > 0 else float("inf"),
        "overhead_by_minima": by_minima,
        "overhead_by_pair_median": by_pairs,
        # the contract metric: fractional drop in jobs/sec throughput
        "durability_overhead": min(by_minima, by_pairs),
    }


# --------------------------------------------------------------------- #
# request-tracing overhead


def tracing_overhead(
    trace: Trace,
    *,
    policy: str = "optbundle",
    cache_size: SizeBytes = CACHE_SIZE,
    checkpoint_every: int = 100,
    repeats: int = 5,
) -> dict:
    """Tracing-on vs tracing-off submission throughput on the coordinator.

    Submits every job of ``trace`` directly to a fresh durable
    :class:`~repro.service.state.CoordinatorState` (no HTTP — the
    network would drown the signal), once with the request tracer
    enabled (ring 256, a span tree grown per job) and once disabled
    (ring 0, the :meth:`~repro.telemetry.tracing.RequestTracer.request`
    context is a no-op).  Measurement protocol is
    :func:`durability_overhead`'s: alternating back-to-back pairs, GC
    paused, and the smaller of the per-side-minima and per-pair-median
    estimators.  The contract gated in CI is ≤ 5% jobs/sec.
    """
    import gc
    import tempfile

    from repro.service import CoordinatorState, ServiceConfig

    requests = list(trace)
    with tempfile.TemporaryDirectory() as tmp:
        workload = Path(tmp) / "workload.jsonl"
        trace.dump(workload)
        run_seq = [0]

        def run_once(debug_ring: int) -> None:
            run_seq[0] += 1
            state = CoordinatorState.create(
                ServiceConfig(
                    workload=workload,
                    cache_size=cache_size,
                    run_dir=Path(tmp) / f"run_{run_seq[0]}",
                    policy=policy,
                    checkpoint_every=checkpoint_every,
                    debug_ring=debug_ring,
                )
            )
            try:
                tracer = state.tracer
                for r in requests:
                    with tracer.request(tracer.next_read_id(), route="/v1/jobs"):
                        state.submit(sorted(r.bundle.files), priority=r.priority)
            finally:
                state.close()

        run_once(0)
        run_once(256)
        baseline_s = traced_s = float("inf")
        ratios: list[float] = []
        gc_was_enabled = gc.isenabled()
        gc.collect()
        gc.disable()
        try:
            for i in range(repeats):
                sides = [("baseline", 0), ("traced", 256)]
                if i % 2:
                    sides.reverse()
                pair: dict[str, float] = {}
                for label, ring in sides:
                    t0 = time.perf_counter()
                    run_once(ring)
                    pair[label] = time.perf_counter() - t0
                baseline_s = min(baseline_s, pair["baseline"])
                traced_s = min(traced_s, pair["traced"])
                if pair["traced"] > 0:
                    ratios.append(1.0 - pair["baseline"] / pair["traced"])
        finally:
            if gc_was_enabled:
                gc.enable()
    n = len(requests)
    by_minima = 1.0 - baseline_s / traced_s if traced_s > 0 else 0.0
    by_pairs = statistics.median(ratios) if ratios else 0.0
    return {
        "policy": policy,
        "n_jobs": n,
        "repeats": repeats,
        "debug_ring": 256,
        "checkpoint_every": checkpoint_every,
        "baseline_s": baseline_s,
        "traced_s": traced_s,
        "baseline_jobs_per_sec": n / baseline_s if baseline_s > 0 else float("inf"),
        "traced_jobs_per_sec": n / traced_s if traced_s > 0 else float("inf"),
        "overhead_by_minima": by_minima,
        "overhead_by_pair_median": by_pairs,
        # the contract metric: fractional drop in jobs/sec throughput
        "tracing_overhead": min(by_minima, by_pairs),
    }


# --------------------------------------------------------------------- #
# coordinator-service throughput


def service_throughput(
    trace: Trace,
    *,
    policies: Sequence[str] = DEFAULT_POLICIES,
    cache_size: SizeBytes = CACHE_SIZE,
    concurrency: int = 4,
    checkpoint_every: int = 100,
) -> list[dict]:
    """Replay ``trace`` over HTTP against the coordinator, per policy.

    Hosts the full durable service in-process (real loopback sockets,
    journal, checkpoints) and drives it with the closed-loop load
    generator; the record carries achieved jobs/sec and the
    client-observed request-latency percentiles, which bound the
    server's per-decision cost from above.
    """
    import tempfile

    from repro.service import CoordinatorState, ServiceConfig, run_loadgen
    from repro.service.testing import running_service

    records: list[dict] = []
    with tempfile.TemporaryDirectory() as tmp:
        workload = Path(tmp) / "workload.jsonl"
        trace.dump(workload)
        for policy in policies:
            state = CoordinatorState.create(
                ServiceConfig(
                    workload=workload,
                    cache_size=cache_size,
                    run_dir=Path(tmp) / f"run_{policy}",
                    policy=policy,
                    checkpoint_every=checkpoint_every,
                )
            )
            with running_service(state) as svc:
                report = run_loadgen(
                    trace, svc.host, svc.port, concurrency=concurrency
                )
            records.append(
                {
                    "policy": policy,
                    "n_jobs": report.jobs,
                    "errors": report.errors,
                    "concurrency": concurrency,
                    "checkpoint_every": checkpoint_every,
                    "elapsed_s": report.duration_s,
                    "jobs_per_sec": report.throughput_jobs_per_s,
                    "latency_p50_ms": report.latency_p50_ms,
                    "latency_p99_ms": report.latency_p99_ms,
                    "latency_mean_ms": report.latency_mean_ms,
                    "byte_miss_ratio": report.byte_miss_ratio,
                }
            )
    return records


# --------------------------------------------------------------------- #
# the bench driver


def run_bench(
    scale: str = "smoke",
    *,
    policies: Sequence[str] = DEFAULT_POLICIES,
    name: str = "core",
    out_dir: "str | Path" = ".",
    seed: int = 0,
    planner_candidates: Sequence[int] = PLANNER_CANDIDATES,
) -> dict:
    """Run the benchmark suite and write ``BENCH_<name>.json``.

    Returns the written record (with the output path under ``"path"``).
    """
    sc = get_scale(scale)
    trace = bundle_trace(
        sc,
        popularity=POPULARITY,
        cache_in_requests=CACHE_IN_REQUESTS,
        max_file_fraction=MAX_FILE_FRACTION,
        seed=seed,
    )
    policy_records = [bench_policy(trace, p) for p in policies]
    planner_records = [
        warm_planner_timings(n) for n in planner_candidates
    ]
    telemetry_record = telemetry_overhead(trace)
    durability_record = durability_overhead(trace)
    tracing_record = tracing_overhead(trace)
    service_records = service_throughput(trace, policies=policies)
    record = {
        "name": name,
        "schema_version": BENCH_SCHEMA_VERSION,
        "scale": sc.name,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "workload": {
            "popularity": POPULARITY,
            "cache_in_requests": CACHE_IN_REQUESTS,
            "max_file_fraction": MAX_FILE_FRACTION,
            "cache_size": CACHE_SIZE,
            "n_jobs": len(trace),
            "n_files": len(trace.catalog),
            "seed": seed,
        },
        "policies": policy_records,
        "planner": planner_records,
        "telemetry": telemetry_record,
        "durability": durability_record,
        "tracing": tracing_record,
        "service": service_records,
    }
    out_path = Path(out_dir) / f"BENCH_{name}.json"
    # atomic: a crash mid-bench never leaves a torn benchmark record
    from repro.durability.atomicio import atomic_write_text

    atomic_write_text(out_path, json.dumps(record, indent=2) + "\n")
    record["path"] = str(out_path)
    return record


def render_bench(record: dict) -> str:
    """Human-readable summary of a :func:`run_bench` record."""
    policy_rows = [
        [
            r["policy"],
            r["jobs_per_sec"],
            r["selection_latency"]["mean_s"] * 1e3,
            r["selection_latency"]["p95_s"] * 1e3,
            r["byte_miss_ratio"],
        ]
        for r in record["policies"]
    ]
    planner_rows = [
        [
            r["n_candidates"],
            r["incremental_s_per_plan"] * 1e3,
            r["rebuild_s_per_plan"] * 1e3,
            r["speedup"],
        ]
        for r in record["planner"]
    ]
    parts = [
        f"bench {record['name']!r} at scale {record['scale']} "
        f"({record['workload']['n_jobs']} jobs)",
        render_table(
            ["policy", "jobs/sec", "sel mean [ms]", "sel p95 [ms]", "byte miss"],
            policy_rows,
        ),
        "warm-planner: incremental vs rebuild",
        render_table(
            ["candidates", "incremental [ms]", "rebuild [ms]", "speedup"],
            planner_rows,
        ),
    ]
    tel = record.get("telemetry")
    if tel:
        parts.append(f"telemetry overhead ({tel['policy']}, best of {tel['repeats']})")
        parts.append(
            render_table(
                ["mode", "run [s]", "overhead"],
                [
                    ["no recorder", tel["baseline_s"], 0.0],
                    ["NullSink", tel["nullsink_s"], tel["nullsink_overhead"]],
                    ["JsonlSink", tel["jsonl_s"], tel["jsonl_overhead"]],
                ],
            )
        )
    svc = record.get("service")
    if svc:
        parts.append(
            f"service throughput (HTTP loopback, concurrency "
            f"{svc[0]['concurrency']})"
        )
        parts.append(
            render_table(
                ["policy", "jobs/sec", "p50 [ms]", "p99 [ms]", "byte miss"],
                [
                    [
                        r["policy"],
                        r["jobs_per_sec"],
                        r["latency_p50_ms"],
                        r["latency_p99_ms"],
                        r["byte_miss_ratio"],
                    ]
                    for r in svc
                ],
            )
        )
    trc = record.get("tracing")
    if trc:
        parts.append(
            f"tracing overhead ({trc['policy']}, ring {trc['debug_ring']}, "
            f"best of {trc['repeats']})"
        )
        parts.append(
            render_table(
                ["mode", "run [s]", "jobs/sec", "overhead"],
                [
                    [
                        "ring 0",
                        trc["baseline_s"],
                        trc["baseline_jobs_per_sec"],
                        0.0,
                    ],
                    [
                        "ring 256",
                        trc["traced_s"],
                        trc["traced_jobs_per_sec"],
                        trc["tracing_overhead"],
                    ],
                ],
            )
        )
    dur = record.get("durability")
    if dur:
        parts.append(
            f"durability overhead ({dur['policy']}, checkpoint every "
            f"{dur['checkpoint_every']} jobs, best of {dur['repeats']})"
        )
        parts.append(
            render_table(
                ["mode", "run [s]", "jobs/sec", "overhead"],
                [
                    ["traced", dur["traced_s"], dur["traced_jobs_per_sec"], 0.0],
                    [
                        "durable",
                        dur["durable_s"],
                        dur["durable_jobs_per_sec"],
                        dur["durability_overhead"],
                    ],
                ],
            )
        )
    return "\n".join(parts)
