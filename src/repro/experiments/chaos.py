"""Chaos study: does the bundle-caching advantage survive an unreliable grid?

The paper's headline result — OptFileBundle turning jobs around faster
than Landlord because it keeps the right file *combinations* resident —
is measured on a perfect grid.  This driver degrades the grid with the
:mod:`repro.faults` subsystem (drive failures, transfer failures,
latency spikes, replica-site downtime, all at one sweep rate via
:meth:`FaultSpec.uniform`) and re-measures both policies behind the
fault-tolerant staging pipeline (retries, failover, requeue).

Two effects compete as the fault rate rises: every staged byte now risks
a retry, so a policy that stages *less* (OptFileBundle) loses less time
to faults; but fault delays also lengthen the queue, which dilutes the
relative gap.  The driver reports response time, byte miss ratio and the
robustness counters so both effects are visible.

The grid is two-site (archive + mirror of the hottest files) so the
failover path is actually exercised: when one site enters a downtime
window, staging re-resolves to the other replica holder.
"""

from __future__ import annotations

from repro.analysis.report import ExperimentOutput
from repro.experiments.common import CACHE_SIZE, get_scale
from repro.faults import FaultSpec
from repro.grid.network import NetworkLink
from repro.grid.replication import build_two_tier_catalog, place_by_popularity
from repro.grid.site import DataGridSite
from repro.grid.srm import SRMConfig, SRMResult, StorageResourceManager
from repro.sim.engine import EventEngine
from repro.types import MB
from repro.utils.stats import mean_confidence_interval
from repro.utils.tables import render_table
from repro.workload.generator import WorkloadSpec, generate_trace
from repro.workload.trace import Trace

__all__ = ["run_chaos", "run_chaos_once", "CHAOS_POLICIES", "FAULT_RATES"]

CHAOS_POLICIES = ("optbundle", "landlord")

#: Default sweep: healthy grid, mildly degraded, heavily degraded.
FAULT_RATES = (0.0, 0.05, 0.15)


def chaos_trace(
    *,
    cache_size: int = CACHE_SIZE,
    n_files: int,
    n_request_types: int,
    n_jobs: int,
    seed: int,
) -> Trace:
    """The timed workload every chaos point replays (same as ``grid``'s)."""
    return generate_trace(
        WorkloadSpec(
            cache_size=cache_size,
            n_files=n_files,
            n_request_types=n_request_types,
            n_jobs=n_jobs,
            popularity="zipf",
            max_file_fraction=0.05,
            max_bundle_fraction=0.2,
            arrival_rate=0.05,
            seed=seed,
        )
    )


def run_chaos_once(
    trace: Trace,
    policy: str,
    fault_rate: float,
    *,
    cache_size: int = CACHE_SIZE,
    fault_seed: int = 0,
    max_retries: int = 3,
    staging_timeout: float | None = 600.0,
) -> SRMResult:
    """One policy on a two-site grid at one fault rate, fully deterministic.

    A ``fault_rate`` of 0 runs the identical pipeline with a disabled
    :class:`FaultSpec`, so the healthy row doubles as the regression
    anchor for the fault-free code path.
    """
    faults = FaultSpec.uniform(fault_rate, seed=fault_seed)
    config = SRMConfig(
        cache_size=cache_size,
        policy=policy,
        faults=faults,
        max_retries=max_retries,
        staging_timeout=staging_timeout,
    )
    engine = EventEngine()
    archive = DataGridSite.build(
        engine,
        "archive",
        n_drives=4,
        mount_latency=25.0,
        drive_bandwidth=40 * MB,
        link=NetworkLink(bandwidth=50 * MB, latency=0.08),
    )
    mirror = DataGridSite.build(
        engine,
        "mirror",
        n_drives=8,
        mount_latency=0.5,
        drive_bandwidth=120 * MB,
        link=NetworkLink(bandwidth=200 * MB, latency=0.02),
    )
    mirrored = place_by_popularity(trace, trace.catalog.total_bytes() // 4)
    replicas = build_two_tier_catalog(trace, archive, mirror, mirrored)
    srm = StorageResourceManager(
        engine, trace.catalog.as_dict(), config, replicas=replicas
    )
    for request in trace:
        engine.schedule_at(request.arrival_time, lambda r=request: srm.submit(r))
    engine.run()
    makespan = srm.last_completion
    return SRMResult(
        policy=policy,
        jobs=srm.jobs_done,
        unserviceable=srm.unserviceable,
        makespan=makespan,
        mean_response_time=(
            srm.response_times.mean if srm.response_times.count else 0.0
        ),
        max_response_time=(
            srm.response_times.max if srm.response_times.count else 0.0
        ),
        throughput=srm.jobs_done / makespan if makespan > 0 else 0.0,
        bytes_staged=srm.bytes_staged,
        request_hits=srm.request_hits,
        bytes_requested=srm.bytes_requested,
        deferred_starts=srm.deferred_starts,
        retries=srm.retries,
        failovers=srm.failovers,
        timeouts=srm.timeouts,
        requeues=srm.requeues,
        failed_jobs=srm.failed_jobs,
        time_lost_to_faults=srm.time_lost_to_faults,
    )


def run_chaos(scale: str = "quick") -> ExperimentOutput:
    scale = get_scale(scale)
    n_jobs = max(scale.n_jobs // 10, 100)
    sections: list[tuple[str, str]] = []
    data: dict = {}
    for rate in FAULT_RATES:
        rows = []
        panel: dict = {}
        for policy in CHAOS_POLICIES:
            per_seed = []
            for seed in scale.seeds:
                trace = chaos_trace(
                    n_files=scale.n_files,
                    n_request_types=scale.n_request_types // 2,
                    n_jobs=n_jobs,
                    seed=seed,
                )
                per_seed.append(
                    run_chaos_once(trace, policy, rate, fault_seed=seed)
                )
            resp, resp_ci = mean_confidence_interval(
                [r.mean_response_time for r in per_seed]
            )
            bmr, _ = mean_confidence_interval(
                [r.byte_miss_ratio for r in per_seed]
            )
            lost, _ = mean_confidence_interval(
                [r.time_lost_to_faults for r in per_seed]
            )
            retries = sum(r.retries for r in per_seed)
            failovers = sum(r.failovers for r in per_seed)
            failed = sum(r.failed_jobs for r in per_seed)
            rows.append([policy, resp, resp_ci, bmr, retries, failovers, failed, lost])
            panel[policy] = {
                "mean_response_time": resp,
                "byte_miss_ratio": bmr,
                "retries": retries,
                "failovers": failovers,
                "failed_jobs": failed,
                "time_lost_to_faults": lost,
            }
        sections.append(
            (
                f"fault rate {rate:.2f}",
                render_table(
                    [
                        "policy",
                        "resp time [s]",
                        "±",
                        "byte miss",
                        "retries",
                        "failovers",
                        "failed",
                        "time lost [s]",
                    ],
                    rows,
                ),
            )
        )
        data[f"{rate:.2f}"] = panel
    return ExperimentOutput(
        exp_id="chaos",
        title="Policies under grid degradation (fault injection)",
        description=(
            "Two-site grid (archive + popularity mirror) degraded by seeded "
            "drive/transfer/spike/downtime faults; the SRM retries with "
            "capped backoff, fails over across replicas and requeues "
            "exhausted jobs.  Compares optbundle vs landlord response time "
            "and byte miss ratio as the fault rate rises."
        ),
        sections=tuple(sections),
        data=data,
    )
