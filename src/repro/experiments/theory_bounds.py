"""Theorem 4.1 verification: greedy value vs exact optimum.

Random small FBC instances are solved exactly (branch-and-bound) and by
the three OptCacheSelect variants (plain, refined, k=2 partial
enumeration).  For every instance the value ratio must respect the proven
guarantees — ``½(1 − e^{−1/d})`` for the greedy with Step 3, and
``1 − e^{−1/d}`` for the enumeration variant — and this driver reports how
tight the bounds are in practice (observed minima are far above them).
"""

from __future__ import annotations

import numpy as np

from repro.analysis.report import ExperimentOutput
from repro.core.bounds import enum_guarantee, greedy_guarantee, max_file_degree
from repro.core.bundle import FileBundle
from repro.core.exact import solve_exact
from repro.core.kenum import opt_cache_select_enum
from repro.core.optcacheselect import FBCInstance, opt_cache_select
from repro.experiments.common import get_scale
from repro.utils.rng import derive_rng
from repro.utils.tables import render_table

__all__ = ["run_thm41", "random_instance"]


def random_instance(
    rng: np.random.Generator,
    *,
    n_requests: int = 10,
    n_files: int = 12,
    max_bundle: int = 4,
    budget_fraction: float = 0.4,
) -> FBCInstance:
    """A random small FBC instance for bound verification."""
    sizes = {f"f{i}": int(rng.integers(1, 20)) for i in range(n_files)}
    bundles = []
    values = []
    for _ in range(n_requests):
        k = int(rng.integers(1, max_bundle + 1))
        files = rng.choice(n_files, size=k, replace=False)
        bundles.append(FileBundle(f"f{i}" for i in files))
        values.append(float(rng.integers(1, 10)))
    budget = max(int(sum(sizes.values()) * budget_fraction), max(sizes.values()))
    return FBCInstance(tuple(bundles), tuple(values), sizes, budget)


def run_thm41(scale: str = "quick") -> ExperimentOutput:
    scale = get_scale(scale)
    n_instances = {"smoke": 30, "quick": 150, "paper": 600}.get(scale.name, 150)
    rng = derive_rng(20040613, "thm41")

    ratios: dict[str, list[float]] = {"plain": [], "refined": [], "enum-k2": []}
    degree_stats: list[int] = []
    violations = 0
    for _ in range(n_instances):
        inst = random_instance(
            rng,
            n_requests=int(rng.integers(5, 13)),
            n_files=int(rng.integers(6, 16)),
            budget_fraction=float(rng.uniform(0.2, 0.7)),
        )
        opt = solve_exact(inst)
        if opt.total_value <= 0:
            continue
        d = max_file_degree(inst.bundles)
        degree_stats.append(d)
        results = {
            "plain": opt_cache_select(inst, refine=False),
            "refined": opt_cache_select(inst, refine=True),
            "enum-k2": opt_cache_select_enum(inst, k=2),
        }
        for name, sel in results.items():
            ratio = sel.total_value / opt.total_value
            ratios[name].append(ratio)
            bound = (
                enum_guarantee(d) if name == "enum-k2" else greedy_guarantee(d)
            )
            if ratio < bound - 1e-9:
                violations += 1

    d_max = max(degree_stats)
    rows = []
    for name, rs in ratios.items():
        bound = enum_guarantee(d_max) if name == "enum-k2" else greedy_guarantee(d_max)
        rows.append(
            [
                name,
                len(rs),
                min(rs),
                sum(rs) / len(rs),
                sum(1 for r in rs if r >= 1.0 - 1e-9) / len(rs),
                bound,
            ]
        )
    table = render_table(
        ["variant", "instances", "min ratio", "mean ratio", "frac optimal", "worst-case bound(d_max)"],
        rows,
    )

    # Beyond exact reach: certify greedy quality on larger instances via
    # the LP relaxation (the certified ratio lower-bounds the true one).
    from repro.core.lpbound import certified_ratio

    n_large = {"smoke": 8, "quick": 30, "paper": 100}.get(scale.name, 30)
    certified: list[float] = []
    for _ in range(n_large):
        big = random_instance(
            rng,
            n_requests=int(rng.integers(40, 80)),
            n_files=int(rng.integers(30, 60)),
            max_bundle=5,
            budget_fraction=float(rng.uniform(0.2, 0.6)),
        )
        sel = opt_cache_select(big)
        certified.append(certified_ratio(big, sel.total_value))
    lp_table = render_table(
        ["instances", "candidates", "min certified", "mean certified"],
        [[n_large, "40-80", min(certified), sum(certified) / len(certified)]],
        title="LP-certified greedy ratio on instances beyond exact reach",
    )

    return ExperimentOutput(
        exp_id="thm41",
        title="Theorem 4.1: approximation quality of OptCacheSelect",
        description=(
            f"{n_instances} random instances vs exact branch-and-bound; "
            f"max file degree observed d={d_max}; bound violations: {violations}."
        ),
        sections=(
            ("value ratio to optimum", table),
            ("LP certification (large instances)", lp_table),
        ),
        data={
            "violations": violations,
            "min_ratio": {k: min(v) for k, v in ratios.items()},
            "mean_ratio": {k: sum(v) / len(v) for k, v in ratios.items()},
            "d_max": d_max,
            "certified_min": min(certified),
            "certified_mean": sum(certified) / len(certified),
        },
    )
