"""Figure 8: data volume moved into the cache per request vs cache size.

Expected shape (paper): as the cache accommodates more requests, the
average volume moved per request falls for both algorithms; OptFileBundle
moves less data everywhere, and the gap is more pronounced under Zipf.
"""

from __future__ import annotations

from repro.analysis.report import ExperimentOutput
from repro.experiments.byte_miss_sweeps import sweep_experiment

__all__ = ["run_fig8"]


def run_fig8(scale: str = "quick", *, jobs: int | None = None) -> ExperimentOutput:
    return sweep_experiment(
        "fig8",
        "Effect of varying the cache size (volume per request)",
        "Average MB moved into the cache per request as the cache grows "
        "(in number of requests it accommodates); small-file regime.",
        scale,
        max_file_fraction=0.01,
        metric="mean_volume_per_request",
        metric_label="MB moved / request",
        volume_in_mb=True,
        jobs=jobs,
    )
