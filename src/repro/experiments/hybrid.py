"""Hybrid execution model (Section 6 future work, implemented).

"The case of a hybrid execution model is also of interest where we have a
mix of jobs some of which execute according to One File at a Time model
while others execute according to the File-Bundle at a Time model."

This driver sweeps the fraction of jobs executing one-file-at-a-time
(their bundles exploded into per-file jobs) and compares OptFileBundle
against Landlord.  Observed shape: OptFileBundle keeps its advantage over
the whole range — at fraction 1.0 every request is a singleton bundle and
OptCacheSelect degenerates to a value/size knapsack over single files,
which is itself a strong (popularity-and-size aware) per-file policy.
Bundle-awareness is therefore *safe* to deploy on mixed workloads: it
never costs anything when bundles disappear.
"""

from __future__ import annotations

from repro.analysis.report import ExperimentOutput
from repro.experiments.common import CACHE_SIZE, bundle_trace, get_scale
from repro.sim.simulator import SimulationConfig, simulate_trace
from repro.utils.rng import derive_rng
from repro.utils.stats import mean_confidence_interval
from repro.utils.tables import render_table
from repro.workload.transforms import hybrid_trace

__all__ = ["run_hybrid", "SINGLE_FILE_FRACTIONS"]

SINGLE_FILE_FRACTIONS = (0.0, 0.25, 0.5, 0.75, 1.0)
CACHE_IN_REQUESTS = 8
MAX_FILE_FRACTION = 0.01


def run_hybrid(scale: str = "quick") -> ExperimentOutput:
    scale = get_scale(scale)
    sections: list[tuple[str, str]] = []
    data: dict = {}
    for popularity in ("uniform", "zipf"):
        rows = []
        panel = []
        for fraction in SINGLE_FILE_FRACTIONS:
            per_policy: dict[str, float] = {}
            for policy in ("optbundle", "landlord"):
                ratios = []
                for seed in scale.seeds:
                    base = bundle_trace(
                        scale,
                        popularity=popularity,
                        cache_in_requests=CACHE_IN_REQUESTS,
                        max_file_fraction=MAX_FILE_FRACTION,
                        seed=seed,
                        n_jobs=scale.n_jobs // 2,  # explosion multiplies jobs
                    )
                    mixed = hybrid_trace(
                        base,
                        derive_rng(seed, "hybrid-mask"),
                        single_file_fraction=fraction,
                    )
                    result = simulate_trace(
                        mixed,
                        SimulationConfig(cache_size=CACHE_SIZE, policy=policy),
                    )
                    ratios.append(result.byte_miss_ratio)
                mean, _ci = mean_confidence_interval(ratios)
                per_policy[policy] = mean
            rows.append(
                [
                    fraction,
                    per_policy["optbundle"],
                    per_policy["landlord"],
                    per_policy["landlord"] - per_policy["optbundle"],
                ]
            )
            panel.append({"fraction": fraction, **per_policy})
        sections.append(
            (
                f"{popularity} request distribution",
                render_table(
                    [
                        "single-file fraction",
                        "optbundle",
                        "landlord",
                        "advantage",
                    ],
                    rows,
                ),
            )
        )
        data[popularity] = panel
    return ExperimentOutput(
        exp_id="hybrid",
        title="Hybrid execution model: one-file-at-a-time vs bundles",
        description=(
            "Byte miss ratio as a growing fraction of jobs executes one "
            "file at a time; OptFileBundle keeps its advantage across the "
            "whole range (at fraction 1.0 it degenerates to a value/size "
            "knapsack per-file policy), so bundle-awareness is safe on "
            "mixed workloads."
        ),
        sections=tuple(sections),
        data=data,
    )
