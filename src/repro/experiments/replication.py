"""Replica-placement study (extension of the paper's Section 1 list of
grid techniques: "usage of strategic data replication").

A two-tier grid — slow tape archive holding everything, fast disk mirror
with a bounded budget — is driven by the timed SRM simulation under three
placements of the mirror budget: random, per-file popularity, and
bundle-aware (OptCacheSelect over observed bundle counts).  Observed
shape: both informed placements beat random by a wide margin.  Which of
the two wins interacts with the cache in front of them — the bundle-aware
*cache* already absorbs the hottest bundles, so mirroring those same
bundles is partially redundant, while per-file popularity placement also
covers the mid-popular files behind the cache's working set.  The driver
reports all three so the interaction is visible.
"""

from __future__ import annotations

from repro.analysis.report import ExperimentOutput
from repro.experiments.common import CACHE_SIZE, get_scale
from repro.grid.network import NetworkLink
from repro.grid.replication import (
    build_two_tier_catalog,
    place_bundle_aware,
    place_by_popularity,
    place_random,
)
from repro.grid.site import DataGridSite
from repro.grid.srm import SRMConfig, StorageResourceManager
from repro.sim.engine import EventEngine
from repro.types import MB
from repro.utils.rng import derive_rng
from repro.utils.stats import mean_confidence_interval
from repro.utils.tables import render_table
from repro.workload.generator import WorkloadSpec, generate_trace

__all__ = ["run_replication", "PLACEMENTS"]

PLACEMENTS = ("random", "popularity", "bundle-aware")


def _mirrored(placement: str, trace, budget, seed):
    if placement == "random":
        return place_random(trace, budget, derive_rng(seed, "placement"))
    if placement == "popularity":
        return place_by_popularity(trace, budget)
    return place_bundle_aware(trace, budget)


def _run_once(trace, placement: str, seed: int) -> float:
    budget = trace.catalog.total_bytes() // 5  # mirror 20% of the data
    mirrored = _mirrored(placement, trace, budget, seed)
    engine = EventEngine()
    archive = DataGridSite.build(
        engine,
        "archive",
        n_drives=4,
        mount_latency=25.0,
        drive_bandwidth=40 * MB,
        link=NetworkLink(bandwidth=50 * MB, latency=0.08),
    )
    mirror = DataGridSite.build(
        engine,
        "mirror",
        n_drives=8,
        mount_latency=0.5,
        drive_bandwidth=120 * MB,
        link=NetworkLink(bandwidth=200 * MB, latency=0.02),
    )
    replicas = build_two_tier_catalog(trace, archive, mirror, mirrored)
    srm = StorageResourceManager(
        engine,
        trace.catalog.as_dict(),
        SRMConfig(cache_size=CACHE_SIZE // 4, policy="optbundle"),
        replicas=replicas,
    )
    for request in trace:
        engine.schedule_at(request.arrival_time, lambda r=request: srm.submit(r))
    engine.run()
    return srm.response_times.mean if srm.response_times.count else 0.0


def run_replication(scale: str = "quick") -> ExperimentOutput:
    scale = get_scale(scale)
    n_jobs = max(scale.n_jobs // 10, 100)
    rows = []
    data: dict = {}
    for placement in PLACEMENTS:
        per_seed = []
        for seed in scale.seeds:
            trace = generate_trace(
                WorkloadSpec(
                    cache_size=CACHE_SIZE // 4,
                    n_files=scale.n_files,
                    n_request_types=scale.n_request_types // 2,
                    n_jobs=n_jobs,
                    popularity="zipf",
                    max_file_fraction=0.05,
                    max_bundle_fraction=0.2,
                    arrival_rate=0.05,
                    seed=seed,
                )
            )
            per_seed.append(_run_once(trace, placement, seed))
        mean, ci = mean_confidence_interval(per_seed)
        rows.append([placement, mean, ci])
        data[placement] = mean
    return ExperimentOutput(
        exp_id="replication",
        title="Replica placement on a two-tier grid (extension)",
        description=(
            "Mean job response time with 20% of the data mirrored on a fast "
            "site under three placement strategies; bundle-aware placement "
            "extends the paper's request-hit argument to replication."
        ),
        sections=(
            (
                "zipf request distribution, OptFileBundle cache",
                render_table(["placement", "mean response [s]", "±95%"], rows),
            ),
        ),
        data=data,
    )
