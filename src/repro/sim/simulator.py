"""The trace-driven cache simulator (the paper's ``cacheSim``).

For every job the simulator — not the policy — performs the byte
accounting: it measures the missing files, lets the policy make room (and
optionally request prefetches), executes the loads, and records metrics.
This guarantees all policies are compared under identical rules.

Queueing (Fig. 9): with ``queue_length > 1`` jobs are aggregated into an
admission queue; once it is full (or the trace is exhausted) jobs are
drained in discipline order — the paper's "serve the request of highest
relative value ... and repeat on the remaining requests in the queue until
it becomes empty".  ``queue_mode="sliding"`` refills after every service
instead (an extension).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.cache.policy import ReplacementPolicy
from repro.cache.registry import make_policy
from repro.cache.state import CacheState
from repro.core.request import Request
from repro.errors import ConfigError, SimulationError, UnknownFileError
from repro.sim.metrics import MetricsCollector, MetricsSnapshot
from repro.sim.queueing import AdmissionQueue, QueueDiscipline
from repro.telemetry import FileAdmitted, JobArrived, current_recorder, use_recorder
from repro.telemetry.recorder import TraceRecorder
from repro.types import SizeBytes
from repro.workload.trace import Trace

__all__ = [
    "SimulationConfig",
    "SimulationResult",
    "simulate_trace",
    "service_request",
]


@dataclass(frozen=True)
class SimulationConfig:
    """Parameters of one simulation run.

    ``policy`` may be a registry name (``"optbundle"``, ``"landlord"``, …)
    with ``policy_kwargs`` forwarded to the factory, or a ready
    :class:`ReplacementPolicy` instance passed to :func:`simulate_trace`.
    """

    cache_size: SizeBytes
    policy: str = "optbundle"
    policy_kwargs: dict[str, Any] = field(default_factory=dict)
    queue_length: int = 1
    discipline: QueueDiscipline = QueueDiscipline.VALUE
    queue_mode: str = "drain"
    warmup: int = 0
    check_invariants: bool = False

    def __post_init__(self) -> None:
        if self.cache_size <= 0:
            raise ConfigError(f"cache_size must be positive, got {self.cache_size}")
        if self.queue_length <= 0:
            raise ConfigError(
                f"queue_length must be positive, got {self.queue_length}"
            )
        if self.queue_mode not in ("drain", "sliding"):
            raise ConfigError(f"queue_mode must be 'drain' or 'sliding', got {self.queue_mode!r}")


@dataclass(frozen=True)
class SimulationResult:
    """Output of :func:`simulate_trace`."""

    policy: str
    cache_size: SizeBytes
    metrics: MetricsSnapshot
    cache_loads: int
    cache_evictions: int
    cache_bytes_evicted: SizeBytes
    max_queue_wait: int
    config: SimulationConfig

    @property
    def byte_miss_ratio(self) -> float:
        return self.metrics.byte_miss_ratio

    @property
    def request_hit_ratio(self) -> float:
        return self.metrics.request_hit_ratio

    def as_dict(self) -> dict:
        out = {
            "policy": self.policy,
            "cache_size": self.cache_size,
            "cache_loads": self.cache_loads,
            "cache_evictions": self.cache_evictions,
            "cache_bytes_evicted": self.cache_bytes_evicted,
            "max_queue_wait": self.max_queue_wait,
        }
        out.update(self.metrics.as_dict())
        return out


def _queued(
    arrivals: Iterator[Request],
    queue: AdmissionQueue,
    scorer,
    mode: str,
    *,
    drain_first: bool = False,
) -> Iterator[Request]:
    """Yield requests in queue-discipline order.

    ``drain_first`` supports checkpoint recovery in ``drain`` mode: when a
    run was interrupted mid-drain the restored queue must be emptied
    before refilling, otherwise service order diverges from the
    uninterrupted run.
    """
    exhausted = False
    if drain_first and mode == "drain":
        while len(queue):
            yield queue.pop_next(scorer)
    while True:
        while not exhausted and not queue.is_full:
            nxt = next(arrivals, None)
            if nxt is None:
                exhausted = True
                break
            queue.push(nxt)
        if len(queue) == 0:
            return
        if mode == "drain":
            while len(queue):
                yield queue.pop_next(scorer)
        else:  # sliding window: refill after each departure
            yield queue.pop_next(scorer)


def service_request(
    job_index: int,
    request: Request,
    *,
    cache: CacheState,
    policy: ReplacementPolicy,
    sizes: dict,
    metrics: MetricsCollector,
    config: SimulationConfig,
    rec: TraceRecorder,
) -> None:
    """Service one job: the shared per-request body of the simulator.

    Both :func:`simulate_trace` and the durable runner
    (:mod:`repro.durability.runner`) drive this function, so a resumed
    run executes byte-for-byte the same decision sequence — including
    telemetry emission order — as an uninterrupted one.
    """
    bundle = request.bundle
    try:
        requested = bundle.size_under(sizes)
    except KeyError as exc:
        raise UnknownFileError(
            f"request {request.request_id} references unknown file "
            f"{exc.args[0] if exc.args else '?'!r}"
        ) from None
    if rec.active:
        rec.emit(
            JobArrived(
                job=job_index,
                request_id=request.request_id,
                n_files=len(bundle),
                bytes_requested=requested,
            )
        )
    if requested > cache.capacity:
        metrics.record_unserviceable()
        return
    missing = cache.missing(bundle)
    with rec.span("policy.on_request"):
        decision = policy.on_request(bundle)

    def _size(file_id) -> SizeBytes:
        try:
            return sizes[file_id]
        except KeyError:
            raise UnknownFileError(
                f"file {file_id!r} is not in the size catalog"
            ) from None

    demand_bytes = sum(_size(f) for f in missing)
    to_prefetch = {
        f for f in decision.prefetch if f not in cache and f not in missing
    }
    prefetch_bytes = sum(_size(f) for f in to_prefetch)
    needed = demand_bytes + prefetch_bytes
    if cache.free < needed:
        raise SimulationError(
            f"policy {policy.name!r} left only {cache.free} free bytes "
            f"but {needed} are needed"
        )
    # sorted: load order cannot change what ends up resident, but a
    # reproducible order keeps the load counters' interleaving (and
    # any future instrumentation of it) identical across processes
    for f in sorted(missing):
        cache.load(f, sizes[f])
    for f in sorted(to_prefetch):
        cache.load(f, sizes[f])
    if rec.active:
        for f in sorted(missing):
            rec.emit(FileAdmitted(file=str(f), bytes=sizes[f], cause="demand"))
        for f in sorted(to_prefetch):
            rec.emit(FileAdmitted(file=str(f), bytes=sizes[f], cause="prefetch"))
    hit = not missing
    policy.on_serviced(bundle, frozenset(missing | to_prefetch), hit)
    metrics.record_job(
        requested_bytes=requested,
        demand_loaded_bytes=demand_bytes,
        prefetched_bytes=prefetch_bytes,
        hit=hit,
    )
    if config.check_invariants:
        cache.check_invariants()


def simulate_trace(
    trace: Trace,
    config: SimulationConfig,
    *,
    policy: ReplacementPolicy | None = None,
    recorder: TraceRecorder | None = None,
) -> SimulationResult:
    """Replay a trace against a cache under one policy.

    Jobs whose bundle exceeds the cache capacity are counted as
    unserviceable and skipped (the paper's generator precludes them).

    ``recorder`` overrides the ambient telemetry recorder for this run;
    with the default inert recorder, instrumentation costs one attribute
    check per site.  Emitted per-file events are sorted by file id so a
    trace is byte-identical across processes (set iteration order is
    hash-seed dependent; the simulation itself never depends on it).
    """
    if recorder is not None:
        with use_recorder(recorder):
            return simulate_trace(trace, config, policy=policy)
    rec = current_recorder()
    sizes = trace.catalog.as_dict()
    cache = CacheState(config.cache_size)
    if policy is None:
        policy = make_policy(
            config.policy, future=trace.bundles(), **config.policy_kwargs
        )
    policy.bind(cache, sizes)
    metrics = MetricsCollector(warmup=config.warmup)

    if config.queue_length > 1:
        queue = AdmissionQueue(
            config.queue_length, config.discipline, sizes=sizes
        )
        requests: Iterator[Request] = _queued(
            iter(trace), queue, policy.score, config.queue_mode
        )
    else:
        queue = None
        requests = iter(trace)

    for job_index, request in enumerate(requests):
        service_request(
            job_index,
            request,
            cache=cache,
            policy=policy,
            sizes=sizes,
            metrics=metrics,
            config=config,
            rec=rec,
        )

    return SimulationResult(
        policy=policy.name,
        cache_size=config.cache_size,
        metrics=metrics.snapshot(),
        cache_loads=cache.load_count,
        cache_evictions=cache.evict_count,
        cache_bytes_evicted=cache.bytes_evicted,
        max_queue_wait=queue.max_observed_wait() if queue is not None else 0,
        config=config,
    )
