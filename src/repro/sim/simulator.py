"""The trace-driven cache simulator (the paper's ``cacheSim``).

For every job the simulator — not the policy — performs the byte
accounting: it measures the missing files, lets the policy make room (and
optionally request prefetches), executes the loads, and records metrics.
This guarantees all policies are compared under identical rules.

Queueing (Fig. 9): with ``queue_length > 1`` jobs are aggregated into an
admission queue; once it is full (or the trace is exhausted) jobs are
drained in discipline order — the paper's "serve the request of highest
relative value ... and repeat on the remaining requests in the queue until
it becomes empty".  ``queue_mode="sliding"`` refills after every service
instead (an extension).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.cache.policy import ReplacementPolicy
from repro.cache.registry import make_policy
from repro.cache.state import CacheState
from repro.core.request import Request
from repro.errors import ConfigError
from repro.sim.coordinator import CoordinatorCore
from repro.sim.metrics import MetricsCollector, MetricsSnapshot
from repro.sim.queueing import AdmissionQueue, QueueDiscipline
from repro.telemetry import current_recorder, use_recorder
from repro.telemetry.recorder import TraceRecorder
from repro.types import SizeBytes
from repro.workload.trace import Trace

__all__ = [
    "SimulationConfig",
    "SimulationResult",
    "simulate_trace",
    "service_request",
]


@dataclass(frozen=True)
class SimulationConfig:
    """Parameters of one simulation run.

    ``policy`` may be a registry name (``"optbundle"``, ``"landlord"``, …)
    with ``policy_kwargs`` forwarded to the factory, or a ready
    :class:`ReplacementPolicy` instance passed to :func:`simulate_trace`.
    """

    cache_size: SizeBytes
    policy: str = "optbundle"
    policy_kwargs: dict[str, Any] = field(default_factory=dict)
    queue_length: int = 1
    discipline: QueueDiscipline = QueueDiscipline.VALUE
    queue_mode: str = "drain"
    warmup: int = 0
    check_invariants: bool = False

    def __post_init__(self) -> None:
        if self.cache_size <= 0:
            raise ConfigError(f"cache_size must be positive, got {self.cache_size}")
        if self.queue_length <= 0:
            raise ConfigError(
                f"queue_length must be positive, got {self.queue_length}"
            )
        if self.queue_mode not in ("drain", "sliding"):
            raise ConfigError(f"queue_mode must be 'drain' or 'sliding', got {self.queue_mode!r}")


@dataclass(frozen=True)
class SimulationResult:
    """Output of :func:`simulate_trace`."""

    policy: str
    cache_size: SizeBytes
    metrics: MetricsSnapshot
    cache_loads: int
    cache_evictions: int
    cache_bytes_evicted: SizeBytes
    max_queue_wait: int
    config: SimulationConfig

    @property
    def byte_miss_ratio(self) -> float:
        return self.metrics.byte_miss_ratio

    @property
    def request_hit_ratio(self) -> float:
        return self.metrics.request_hit_ratio

    def as_dict(self) -> dict:
        out = {
            "policy": self.policy,
            "cache_size": self.cache_size,
            "cache_loads": self.cache_loads,
            "cache_evictions": self.cache_evictions,
            "cache_bytes_evicted": self.cache_bytes_evicted,
            "max_queue_wait": self.max_queue_wait,
        }
        out.update(self.metrics.as_dict())
        return out


def _queued(
    arrivals: Iterator[Request],
    queue: AdmissionQueue,
    scorer,
    mode: str,
    *,
    drain_first: bool = False,
) -> Iterator[Request]:
    """Yield requests in queue-discipline order.

    ``drain_first`` supports checkpoint recovery in ``drain`` mode: when a
    run was interrupted mid-drain the restored queue must be emptied
    before refilling, otherwise service order diverges from the
    uninterrupted run.
    """
    exhausted = False
    if drain_first and mode == "drain":
        while len(queue):
            yield queue.pop_next(scorer)
    while True:
        while not exhausted and not queue.is_full:
            nxt = next(arrivals, None)
            if nxt is None:
                exhausted = True
                break
            queue.push(nxt)
        if len(queue) == 0:
            return
        if mode == "drain":
            while len(queue):
                yield queue.pop_next(scorer)
        else:  # sliding window: refill after each departure
            yield queue.pop_next(scorer)


def service_request(
    job_index: int,
    request: Request,
    *,
    cache: CacheState,
    policy: ReplacementPolicy,
    sizes: dict,
    metrics: MetricsCollector,
    config: SimulationConfig,
    rec: TraceRecorder,
) -> None:
    """Service one job (compatibility shim over :class:`CoordinatorCore`).

    The per-request body now lives in
    :class:`repro.sim.coordinator.CoordinatorCore`, which the batch
    simulator, the durable runner and the coordinator service all drive —
    so every execution mode produces byte-for-byte the same decision
    sequence, including telemetry emission order.  This wrapper builds a
    transient core per call; loop drivers should hold one core instead.
    """
    CoordinatorCore(
        cache=cache,
        policy=policy,
        sizes=sizes,
        metrics=metrics,
        recorder=rec,
        check_invariants=config.check_invariants,
    ).submit(job_index, request)


def simulate_trace(
    trace: Trace,
    config: SimulationConfig,
    *,
    policy: ReplacementPolicy | None = None,
    recorder: TraceRecorder | None = None,
) -> SimulationResult:
    """Replay a trace against a cache under one policy.

    Jobs whose bundle exceeds the cache capacity are counted as
    unserviceable and skipped (the paper's generator precludes them).

    ``recorder`` overrides the ambient telemetry recorder for this run;
    with the default inert recorder, instrumentation costs one attribute
    check per site.  Emitted per-file events are sorted by file id so a
    trace is byte-identical across processes (set iteration order is
    hash-seed dependent; the simulation itself never depends on it).
    """
    if recorder is not None:
        with use_recorder(recorder):
            return simulate_trace(trace, config, policy=policy)
    rec = current_recorder()
    sizes = trace.catalog.as_dict()
    cache = CacheState(config.cache_size)
    if policy is None:
        policy = make_policy(
            config.policy, future=trace.bundles(), **config.policy_kwargs
        )
    policy.bind(cache, sizes)
    metrics = MetricsCollector(warmup=config.warmup)

    if config.queue_length > 1:
        queue = AdmissionQueue(
            config.queue_length, config.discipline, sizes=sizes
        )
        requests: Iterator[Request] = _queued(
            iter(trace), queue, policy.score, config.queue_mode
        )
    else:
        queue = None
        requests = iter(trace)

    core = CoordinatorCore(
        cache=cache,
        policy=policy,
        sizes=sizes,
        metrics=metrics,
        recorder=rec,
        check_invariants=config.check_invariants,
    )
    for job_index, request in enumerate(requests):
        core.submit(job_index, request)

    return SimulationResult(
        policy=policy.name,
        cache_size=config.cache_size,
        metrics=metrics.snapshot(),
        cache_loads=cache.load_count,
        cache_evictions=cache.evict_count,
        cache_bytes_evicted=cache.bytes_evicted,
        max_queue_wait=queue.max_observed_wait() if queue is not None else 0,
        config=config,
    )
