"""Trace-driven cache simulation (the paper's ``cacheSim``, in Python).

* :mod:`repro.sim.metrics` — hit/miss, byte hit/miss ratios, volumes.
* :mod:`repro.sim.queueing` — admission queue with FCFS / SJF /
  highest-relative-value / aged-value disciplines (Fig. 9).
* :mod:`repro.sim.coordinator` — the pure plan → decide → apply core one
  request at a time (shared by simulator, durable runner and service).
* :mod:`repro.sim.simulator` — the per-job service loop with uniform byte
  accounting across policies.
* :mod:`repro.sim.events`, :mod:`repro.sim.engine` — a minimal discrete-
  event engine for the timed data-grid experiments (throughput, response
  time).
* :mod:`repro.sim.runner` — parameter sweeps with seed replication.
"""

from repro.sim.coordinator import CoordinatorCore, JobOutcome
from repro.sim.metrics import MetricsCollector, MetricsSnapshot
from repro.sim.queueing import AdmissionQueue, QueueDiscipline
from repro.sim.simulator import SimulationConfig, SimulationResult, simulate_trace
from repro.sim.engine import EventEngine
from repro.sim.runner import SweepResult, run_replications, sweep
from repro.sim.timeseries import WindowPoint, byte_miss_timeseries

__all__ = [
    "CoordinatorCore",
    "JobOutcome",
    "MetricsCollector",
    "MetricsSnapshot",
    "AdmissionQueue",
    "QueueDiscipline",
    "SimulationConfig",
    "SimulationResult",
    "simulate_trace",
    "EventEngine",
    "SweepResult",
    "run_replications",
    "sweep",
    "WindowPoint",
    "byte_miss_timeseries",
]
