"""Caching performance metrics (Section 1.2 of the paper).

For a workload of jobs each requesting a bundle:

* **request-hit ratio** — fraction of jobs whose whole bundle was resident;
* **byte miss ratio** — bytes moved into the cache divided by bytes
  requested (the paper's primary metric; prefetched bytes count as moved);
* **byte hit ratio** — ``1 − byte miss ratio`` of the demand traffic;
* **volume per request** — average bytes moved into the cache per job,
  the quantity plotted in Fig. 8.

The collector's counters are backed by a per-run
:class:`~repro.telemetry.metrics.MetricsRegistry`, so the same numbers
the :class:`MetricsSnapshot` reports are exportable as Prometheus text or
JSON via :attr:`MetricsCollector.registry`.  The snapshot dataclass keeps
its exact public shape.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError
from repro.telemetry.metrics import DEFAULT_SIZE_BUCKETS, MetricsRegistry
from repro.types import SizeBytes

__all__ = [
    "MetricsCollector",
    "MetricsSnapshot",
    "WindowAccumulator",
    "ratio_of",
]


def ratio_of(numerator: float, denominator: float, *, empty: float = 0.0) -> float:
    """``numerator / denominator`` with a single, shared zero guard.

    Every ratio this module reports (hit ratios, miss ratios, windowed
    ratios) funnels through here so the empty-denominator convention is
    defined in exactly one place: ``empty`` is returned when no traffic
    was observed.
    """
    return numerator / denominator if denominator else empty


@dataclass(frozen=True)
class MetricsSnapshot:
    """Immutable summary of one simulation run."""

    jobs: int
    request_hits: int
    unserviceable: int
    bytes_requested: SizeBytes
    bytes_demand_loaded: SizeBytes
    bytes_prefetched: SizeBytes
    mean_volume_per_request: float
    max_volume_per_request: float

    @property
    def request_hit_ratio(self) -> float:
        return ratio_of(self.request_hits, self.jobs)

    @property
    def request_miss_ratio(self) -> float:
        return 1.0 - self.request_hit_ratio

    @property
    def bytes_loaded(self) -> SizeBytes:
        """All bytes moved into the cache (demand misses + prefetch)."""
        return self.bytes_demand_loaded + self.bytes_prefetched

    @property
    def byte_miss_ratio(self) -> float:
        """Demanded bytes not found resident over bytes requested.

        This is the paper's Section 1.2 definition: the miss ratio of the
        *requested* files only.  Prefetched bytes are deliberately not
        misses (they are speculative transfers, tracked separately by
        :attr:`byte_movement_ratio`).
        """
        return ratio_of(self.bytes_demand_loaded, self.bytes_requested)

    @property
    def byte_movement_ratio(self) -> float:
        """All bytes moved into the cache (incl. prefetch) over requested."""
        return ratio_of(self.bytes_loaded, self.bytes_requested)

    @property
    def byte_hit_ratio(self) -> float:
        """Fraction of *demanded* bytes found resident."""
        return 1.0 - ratio_of(
            self.bytes_demand_loaded, self.bytes_requested, empty=0.0
        )

    def as_dict(self) -> dict:
        return {
            "jobs": self.jobs,
            "request_hits": self.request_hits,
            "unserviceable": self.unserviceable,
            "request_hit_ratio": self.request_hit_ratio,
            "bytes_requested": self.bytes_requested,
            "bytes_demand_loaded": self.bytes_demand_loaded,
            "bytes_prefetched": self.bytes_prefetched,
            "byte_miss_ratio": self.byte_miss_ratio,
            "byte_movement_ratio": self.byte_movement_ratio,
            "byte_hit_ratio": self.byte_hit_ratio,
            "mean_volume_per_request": self.mean_volume_per_request,
            "max_volume_per_request": self.max_volume_per_request,
        }


class WindowAccumulator:
    """Aggregates one window of jobs into the standard ratios.

    The windowed learning-curve code (:mod:`repro.sim.timeseries`) and
    any other consumer of per-window ratios share this accumulator, so
    the zero-traffic conventions stay identical to the end-of-run
    :class:`MetricsSnapshot` (both delegate to :func:`ratio_of`).
    """

    __slots__ = ("jobs", "hits", "bytes_requested", "bytes_loaded")

    def __init__(self) -> None:
        self.jobs = 0
        self.hits = 0
        self.bytes_requested: SizeBytes = 0
        self.bytes_loaded: SizeBytes = 0

    def add(
        self, *, requested_bytes: SizeBytes, loaded_bytes: SizeBytes, hit: bool
    ) -> None:
        """Record one serviced job into the current window."""
        self.jobs += 1
        self.hits += int(hit)
        self.bytes_requested += requested_bytes
        self.bytes_loaded += loaded_bytes

    @property
    def byte_miss_ratio(self) -> float:
        return ratio_of(self.bytes_loaded, self.bytes_requested)

    @property
    def request_hit_ratio(self) -> float:
        return ratio_of(self.hits, self.jobs)

    def reset(self) -> None:
        """Start the next window."""
        self.jobs = 0
        self.hits = 0
        self.bytes_requested = 0
        self.bytes_loaded = 0


class MetricsCollector:
    """Accumulates per-job observations during a simulation run.

    ``warmup`` jobs are recorded for cache state but excluded from the
    reported metrics, so steady-state ratios are not polluted by the
    initially empty cache (the paper's long runs make warm-up negligible;
    short test runs benefit from excluding it explicitly).

    Counters live in a :class:`MetricsRegistry` — one per collector, so
    concurrent runs never share counts — exposed via :attr:`registry`
    for Prometheus/JSON export.
    """

    def __init__(self, warmup: int = 0, *, registry: MetricsRegistry | None = None):
        if warmup < 0:
            raise SimulationError(f"warmup must be non-negative, got {warmup}")
        self._warmup = warmup
        self._seen = 0
        reg = registry if registry is not None else MetricsRegistry()
        self._registry = reg
        self._jobs = reg.counter("sim_jobs_total", "jobs serviced (post-warmup)")
        self._hits = reg.counter("sim_request_hits_total", "fully-resident bundles")
        self._unserviceable = reg.counter(
            "sim_unserviceable_total", "jobs whose bundle exceeds the cache"
        )
        self._bytes_requested = reg.counter(
            "sim_bytes_requested_total", "bytes demanded by serviced jobs"
        )
        self._bytes_demand = reg.counter(
            "sim_bytes_demand_loaded_total", "missing bytes loaded on demand"
        )
        self._bytes_prefetch = reg.counter(
            "sim_bytes_prefetched_total", "bytes loaded speculatively"
        )
        self._volume = reg.histogram(
            "sim_volume_per_request_bytes",
            "bytes moved into the cache per job",
            buckets=DEFAULT_SIZE_BUCKETS,
        )

    @property
    def warmup(self) -> int:
        return self._warmup

    @property
    def registry(self) -> MetricsRegistry:
        """The registry backing this collector's counters."""
        return self._registry

    def record_job(
        self,
        *,
        requested_bytes: SizeBytes,
        demand_loaded_bytes: SizeBytes,
        prefetched_bytes: SizeBytes = 0,
        hit: bool,
    ) -> None:
        """Record one serviced job."""
        if requested_bytes < 0 or demand_loaded_bytes < 0 or prefetched_bytes < 0:
            raise SimulationError("byte counts must be non-negative")
        if hit and demand_loaded_bytes:
            raise SimulationError("a request-hit cannot have demand-loaded bytes")
        self._seen += 1
        if self._seen <= self._warmup:
            return
        self._jobs.inc()
        if hit:
            self._hits.inc()
        self._bytes_requested.inc(requested_bytes)
        self._bytes_demand.inc(demand_loaded_bytes)
        self._bytes_prefetch.inc(prefetched_bytes)
        self._volume.observe(float(demand_loaded_bytes + prefetched_bytes))

    def record_unserviceable(self) -> None:
        """A job whose bundle cannot fit the cache at all."""
        self._seen += 1
        if self._seen <= self._warmup:
            return
        self._unserviceable.inc()

    # ------------------------------------------------------------------ #
    # durable state (checkpoint/restore)

    def _counter_map(self) -> dict:
        return {
            "jobs": self._jobs,
            "hits": self._hits,
            "unserviceable": self._unserviceable,
            "bytes_requested": self._bytes_requested,
            "bytes_demand": self._bytes_demand,
            "bytes_prefetch": self._bytes_prefetch,
        }

    def export_state(self) -> dict:
        """JSON-able snapshot of counters, warmup progress and the volume
        histogram (exact: integer counters and repr-round-tripped floats)."""
        return {
            "seen": self._seen,
            "warmup": self._warmup,
            "counters": {k: c.export_state() for k, c in self._counter_map().items()},
            "volume": self._volume.export_state(),
        }

    def import_state(self, state: dict) -> None:
        """Restore a snapshot from :meth:`export_state`."""
        if int(state["warmup"]) != self._warmup:
            raise SimulationError(
                f"metrics snapshot has warmup {state['warmup']}, "
                f"collector was built with {self._warmup}"
            )
        self._seen = int(state["seen"])
        for key, counter in self._counter_map().items():
            counter.restore_state(state["counters"][key])
        self._volume.restore_state(state["volume"])

    def snapshot(self) -> MetricsSnapshot:
        return MetricsSnapshot(
            jobs=int(self._jobs.value),
            request_hits=int(self._hits.value),
            unserviceable=int(self._unserviceable.value),
            bytes_requested=int(self._bytes_requested.value),
            bytes_demand_loaded=int(self._bytes_demand.value),
            bytes_prefetched=int(self._bytes_prefetch.value),
            mean_volume_per_request=self._volume.mean,
            max_volume_per_request=self._volume.max,
        )
