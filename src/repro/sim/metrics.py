"""Caching performance metrics (Section 1.2 of the paper).

For a workload of jobs each requesting a bundle:

* **request-hit ratio** — fraction of jobs whose whole bundle was resident;
* **byte miss ratio** — bytes moved into the cache divided by bytes
  requested (the paper's primary metric; prefetched bytes count as moved);
* **byte hit ratio** — ``1 − byte miss ratio`` of the demand traffic;
* **volume per request** — average bytes moved into the cache per job,
  the quantity plotted in Fig. 8.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError
from repro.types import SizeBytes
from repro.utils.stats import RunningStats

__all__ = ["MetricsCollector", "MetricsSnapshot"]


@dataclass(frozen=True)
class MetricsSnapshot:
    """Immutable summary of one simulation run."""

    jobs: int
    request_hits: int
    unserviceable: int
    bytes_requested: SizeBytes
    bytes_demand_loaded: SizeBytes
    bytes_prefetched: SizeBytes
    mean_volume_per_request: float
    max_volume_per_request: float

    @property
    def request_hit_ratio(self) -> float:
        return self.request_hits / self.jobs if self.jobs else 0.0

    @property
    def request_miss_ratio(self) -> float:
        return 1.0 - self.request_hit_ratio

    @property
    def bytes_loaded(self) -> SizeBytes:
        """All bytes moved into the cache (demand misses + prefetch)."""
        return self.bytes_demand_loaded + self.bytes_prefetched

    @property
    def byte_miss_ratio(self) -> float:
        """Demanded bytes not found resident over bytes requested.

        This is the paper's Section 1.2 definition: the miss ratio of the
        *requested* files only.  Prefetched bytes are deliberately not
        misses (they are speculative transfers, tracked separately by
        :attr:`byte_movement_ratio`).
        """
        if self.bytes_requested == 0:
            return 0.0
        return self.bytes_demand_loaded / self.bytes_requested

    @property
    def byte_movement_ratio(self) -> float:
        """All bytes moved into the cache (incl. prefetch) over requested."""
        if self.bytes_requested == 0:
            return 0.0
        return self.bytes_loaded / self.bytes_requested

    @property
    def byte_hit_ratio(self) -> float:
        """Fraction of *demanded* bytes found resident."""
        if self.bytes_requested == 0:
            return 1.0
        return 1.0 - self.bytes_demand_loaded / self.bytes_requested

    def as_dict(self) -> dict:
        return {
            "jobs": self.jobs,
            "request_hits": self.request_hits,
            "unserviceable": self.unserviceable,
            "request_hit_ratio": self.request_hit_ratio,
            "bytes_requested": self.bytes_requested,
            "bytes_demand_loaded": self.bytes_demand_loaded,
            "bytes_prefetched": self.bytes_prefetched,
            "byte_miss_ratio": self.byte_miss_ratio,
            "byte_movement_ratio": self.byte_movement_ratio,
            "byte_hit_ratio": self.byte_hit_ratio,
            "mean_volume_per_request": self.mean_volume_per_request,
            "max_volume_per_request": self.max_volume_per_request,
        }


class MetricsCollector:
    """Accumulates per-job observations during a simulation run.

    ``warmup`` jobs are recorded for cache state but excluded from the
    reported metrics, so steady-state ratios are not polluted by the
    initially empty cache (the paper's long runs make warm-up negligible;
    short test runs benefit from excluding it explicitly).
    """

    def __init__(self, warmup: int = 0):
        if warmup < 0:
            raise SimulationError(f"warmup must be non-negative, got {warmup}")
        self._warmup = warmup
        self._seen = 0
        self._jobs = 0
        self._hits = 0
        self._unserviceable = 0
        self._bytes_requested = 0
        self._bytes_demand = 0
        self._bytes_prefetch = 0
        self._volume = RunningStats()

    @property
    def warmup(self) -> int:
        return self._warmup

    def record_job(
        self,
        *,
        requested_bytes: SizeBytes,
        demand_loaded_bytes: SizeBytes,
        prefetched_bytes: SizeBytes = 0,
        hit: bool,
    ) -> None:
        """Record one serviced job."""
        if requested_bytes < 0 or demand_loaded_bytes < 0 or prefetched_bytes < 0:
            raise SimulationError("byte counts must be non-negative")
        if hit and demand_loaded_bytes:
            raise SimulationError("a request-hit cannot have demand-loaded bytes")
        self._seen += 1
        if self._seen <= self._warmup:
            return
        self._jobs += 1
        self._hits += int(hit)
        self._bytes_requested += requested_bytes
        self._bytes_demand += demand_loaded_bytes
        self._bytes_prefetch += prefetched_bytes
        self._volume.push(float(demand_loaded_bytes + prefetched_bytes))

    def record_unserviceable(self) -> None:
        """A job whose bundle cannot fit the cache at all."""
        self._seen += 1
        if self._seen <= self._warmup:
            return
        self._unserviceable += 1

    def snapshot(self) -> MetricsSnapshot:
        return MetricsSnapshot(
            jobs=self._jobs,
            request_hits=self._hits,
            unserviceable=self._unserviceable,
            bytes_requested=self._bytes_requested,
            bytes_demand_loaded=self._bytes_demand,
            bytes_prefetched=self._bytes_prefetch,
            mean_volume_per_request=self._volume.mean if self._volume.count else 0.0,
            max_volume_per_request=self._volume.max if self._volume.count else 0.0,
        )
