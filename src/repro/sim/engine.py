"""A minimal discrete-event simulation engine.

The untimed byte-miss experiments replay traces directly; the timed
data-grid experiments (:mod:`repro.grid`) need simulated clock time for
transfer latencies, queueing delay and throughput.  ``simpy`` is not
available offline, so this module provides the small deterministic core
needed: a time-ordered event heap with FIFO tie-breaking.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable

from repro.errors import SimulationError

__all__ = ["EventEngine"]

Action = Callable[[], None]


class EventEngine:
    """Heap-based discrete-event loop.

    Events scheduled for the same instant run in scheduling order
    (deterministic FIFO tie-break), so simulations are exactly replayable.
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: list[tuple[float, int, Action]] = []
        self._seq = itertools.count()
        self._processed = 0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def pending(self) -> int:
        """Number of scheduled-but-unprocessed events."""
        return len(self._heap)

    @property
    def processed(self) -> int:
        """Number of events executed so far."""
        return self._processed

    def schedule(self, delay: float, action: Action) -> None:
        """Run ``action`` ``delay`` seconds from now (delay >= 0)."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        self.schedule_at(self._now + delay, action)

    def schedule_at(self, when: float, action: Action) -> None:
        """Run ``action`` at absolute time ``when`` (>= now)."""
        if when < self._now:
            raise SimulationError(
                f"cannot schedule into the past (t={when} < now={self._now})"
            )
        heapq.heappush(self._heap, (when, next(self._seq), action))

    def step(self) -> bool:
        """Execute the next event; returns False when none remain."""
        if not self._heap:
            return False
        when, _seq, action = heapq.heappop(self._heap)
        self._now = when
        self._processed += 1
        action()
        return True

    def run(self, *, until: float | None = None, max_events: int | None = None) -> None:
        """Run events until the heap empties, ``until`` time, or a budget.

        With ``until``, events strictly after that time stay pending and
        the clock advances to exactly ``until``.
        """
        executed = 0
        while self._heap:
            if max_events is not None and executed >= max_events:
                return
            when = self._heap[0][0]
            if until is not None and when > until:
                self._now = until
                return
            self.step()
            executed += 1
        if until is not None and until > self._now:
            self._now = until
