"""Admission queue and scheduling disciplines (Fig. 9 of the paper).

Instead of servicing jobs strictly first-come-first-serve, the simulator
can aggregate up to ``q`` waiting jobs and pick the next one by a
discipline:

* ``FCFS`` — arrival order (``q = 1`` degenerates to no queueing);
* ``SJF`` — smallest bundle first;
* ``VALUE`` — highest adjusted relative value ``v'(r)`` first, the paper's
  scheme ("we first serve the request of highest relative value in the
  queue using OptFileBundle and repeat ... until it becomes empty");
* ``AGED_VALUE`` — value plus a wait-time bonus, the "fair effective
  scheduling" variant that avoids request lockout (Section 5.2).

The scorer comes from the policy (``policy.score``); when a policy has no
notion of request value the queue silently degrades to FCFS.
"""

from __future__ import annotations

import enum
from typing import Callable

from repro.core.bundle import FileBundle
from repro.core.request import Request
from repro.errors import ConfigError, SimulationError
from repro.types import FileId, SizeBytes
from typing import Mapping

__all__ = ["QueueDiscipline", "AdmissionQueue"]

Scorer = Callable[[FileBundle], "float | None"]


class QueueDiscipline(enum.Enum):
    FCFS = "fcfs"
    SJF = "sjf"
    VALUE = "value"
    AGED_VALUE = "aged-value"


class AdmissionQueue:
    """A bounded queue of waiting jobs with pluggable service order.

    Parameters
    ----------
    length:
        Maximum number of jobs aggregated before service starts.
    discipline:
        Service-order rule (see :class:`QueueDiscipline`).
    sizes:
        File-size oracle for the SJF discipline.
    aging_weight:
        AGED_VALUE: score bonus per round a job has waited, expressed as a
        fraction of the current maximum score (0.1 = a job waiting 10
        rounds beats any fresh job).
    """

    def __init__(
        self,
        length: int,
        discipline: QueueDiscipline = QueueDiscipline.FCFS,
        *,
        sizes: Mapping[FileId, SizeBytes] | None = None,
        aging_weight: float = 0.1,
    ):
        if length <= 0:
            raise ConfigError(f"queue length must be positive, got {length}")
        if discipline is QueueDiscipline.SJF and sizes is None:
            raise ConfigError("SJF discipline requires a file-size mapping")
        if aging_weight < 0:
            raise ConfigError(f"aging_weight must be non-negative, got {aging_weight}")
        self.length = length
        self.discipline = discipline
        self._sizes = sizes
        self._aging = aging_weight
        self._waiting: list[tuple[Request, int]] = []  # (request, wait rounds)
        self._lockout_waits: list[int] = []  # wait rounds at departure

    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return len(self._waiting)

    @property
    def is_full(self) -> bool:
        return len(self._waiting) >= self.length

    def push(self, request: Request) -> None:
        if self.is_full:
            raise SimulationError("admission queue is full")
        self._waiting.append((request, 0))

    def pop_next(self, scorer: Scorer | None = None) -> Request:
        """Remove and return the next job to service."""
        if not self._waiting:
            raise SimulationError("admission queue is empty")
        index = self._select_index(scorer)
        request, waited = self._waiting.pop(index)
        self._lockout_waits.append(waited)
        self._waiting = [(r, w + 1) for r, w in self._waiting]
        return request

    def max_observed_wait(self) -> int:
        """Largest number of rounds any departed job waited (lockout gauge)."""
        return max(self._lockout_waits, default=0)

    # ------------------------------------------------------------------ #
    # durable state (checkpoint/restore)

    def export_state(self) -> dict:
        """JSON-able snapshot: waiting jobs (inline) + wait bookkeeping."""
        return {
            "waiting": [
                {
                    "id": r.request_id,
                    "t": r.arrival_time,
                    "priority": r.priority,
                    "files": sorted(r.bundle.files),
                    "waited": w,
                }
                for r, w in self._waiting
            ],
            "lockout_waits": list(self._lockout_waits),
        }

    def import_state(self, state: dict) -> None:
        """Restore a snapshot from :meth:`export_state`."""
        self._waiting = [
            (
                Request(
                    request_id=int(rec["id"]),
                    bundle=FileBundle(rec["files"]),
                    arrival_time=float(rec["t"]),
                    priority=float(rec["priority"]),
                ),
                int(rec["waited"]),
            )
            for rec in state["waiting"]
        ]
        self._lockout_waits = [int(w) for w in state["lockout_waits"]]

    # ------------------------------------------------------------------ #

    def _select_index(self, scorer: Scorer | None) -> int:
        if self.discipline is QueueDiscipline.FCFS or len(self._waiting) == 1:
            return 0
        if self.discipline is QueueDiscipline.SJF:
            assert self._sizes is not None
            return min(
                range(len(self._waiting)),
                key=lambda i: (
                    self._waiting[i][0].bundle.size_under(self._sizes),
                    i,
                ),
            )
        # VALUE / AGED_VALUE need a scorer; degrade to FCFS without one.
        if scorer is None:
            return 0
        scores: list[float] = []
        for request, _waited in self._waiting:
            s = scorer(request.bundle)
            if s is None:
                return 0  # policy cannot score: FCFS
            scores.append(s)
        if self.discipline is QueueDiscipline.AGED_VALUE:
            top = max(scores)
            if top > 0:
                scores = [
                    s + self._aging * top * waited
                    for s, (_r, waited) in zip(scores, self._waiting)
                ]
        best = max(range(len(scores)), key=lambda i: (scores[i], -i))
        return best
