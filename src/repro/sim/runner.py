"""Experiment running: seed replication and parameter sweeps.

The paper's figures are parameter sweeps (cache size, file-size fraction,
queue length) with each point averaged over runs.  :func:`sweep` runs a
grid of points × seeds, aggregates the byte-miss ratio (mean ± 95% CI) per
point, and returns a :class:`SweepResult` whose rows print as the same
series the figures plot.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.errors import ConfigError
from repro.sim.simulator import SimulationConfig, SimulationResult, simulate_trace
from repro.telemetry import span
from repro.utils.stats import mean_confidence_interval
from repro.utils.tables import render_table
from repro.workload.trace import Trace

__all__ = ["SweepResult", "run_replications", "sweep"]

TraceFactory = Callable[[Any, int], Trace]
ConfigFactory = Callable[[Any], SimulationConfig]


@dataclass(frozen=True)
class SweepResult:
    """Aggregated sweep output: one row per (point, policy)."""

    x_label: str
    rows: tuple[dict[str, Any], ...]

    def series(self, policy: str, y: str = "byte_miss_ratio") -> list[tuple[Any, float]]:
        """(x, y) pairs of one policy's curve."""
        return [(r["x"], r[y]) for r in self.rows if r["policy"] == policy]

    def policies(self) -> list[str]:
        seen: list[str] = []
        for r in self.rows:
            if r["policy"] not in seen:
                seen.append(r["policy"])
        return seen

    def render(self, *, y: str = "byte_miss_ratio", title: str | None = None) -> str:
        """ASCII table: x down the side, one column per policy."""
        xs: list[Any] = []
        for r in self.rows:
            if r["x"] not in xs:
                xs.append(r["x"])
        policies = self.policies()
        lookup = {(r["x"], r["policy"]): r for r in self.rows}
        headers = [self.x_label] + [
            h for p in policies for h in (p, f"{p}±")
        ]
        table_rows = []
        for x in xs:
            row: list[Any] = [x]
            for p in policies:
                r = lookup.get((x, p))
                if r is None:
                    row.extend(["-", "-"])
                else:
                    row.extend([r[y], r.get(f"{y}_ci", 0.0)])
            table_rows.append(row)
        return render_table(headers, table_rows, title=title)


def run_replications(
    make_trace: Callable[[int], Trace],
    config: SimulationConfig,
    seeds: Sequence[int],
) -> list[SimulationResult]:
    """Run the same configuration over several seeds."""
    if not seeds:
        raise ConfigError("at least one seed is required")
    return [simulate_trace(make_trace(seed), config) for seed in seeds]


def _sweep_unit(
    make_trace: TraceFactory,
    make_config: ConfigFactory,
    policies: Sequence[str],
    extra: dict[str, dict[str, Any]],
    metrics: Sequence[str],
    item: tuple[Any, int],
) -> list[dict[str, float]]:
    """Run one (point, seed) work item: all policies over one trace.

    Module-level (not a closure) so :func:`repro.experiments.common.parallel_map`
    can ship it to worker processes as a :func:`functools.partial`; returns
    only plain metric floats so nothing heavyweight crosses the process
    boundary.
    """
    point, seed = item
    base = make_config(point)
    trace = make_trace(point, seed)
    out: list[dict[str, float]] = []
    for policy in policies:
        kwargs = dict(base.policy_kwargs)
        kwargs.update(extra.get(policy, {}))
        config = SimulationConfig(
            cache_size=base.cache_size,
            policy=policy,
            policy_kwargs=kwargs,
            queue_length=base.queue_length,
            discipline=base.discipline,
            queue_mode=base.queue_mode,
            warmup=base.warmup,
            check_invariants=base.check_invariants,
        )
        result = simulate_trace(trace, config)
        out.append({m: getattr(result.metrics, m) for m in metrics})
    return out


def sweep(
    points: Sequence[Any],
    policies: Sequence[str],
    make_trace: TraceFactory,
    make_config: ConfigFactory,
    *,
    seeds: Sequence[int] = (0,),
    x_label: str = "x",
    policy_kwargs: dict[str, dict[str, Any]] | None = None,
    metrics: Sequence[str] = ("byte_miss_ratio", "request_hit_ratio", "mean_volume_per_request"),
    jobs: int | None = None,
) -> SweepResult:
    """Run ``points × policies × seeds`` simulations and aggregate.

    ``make_trace(point, seed)`` builds the workload; ``make_config(point)``
    the base configuration, whose policy/name is overridden per policy.
    Per-policy extra constructor arguments go in ``policy_kwargs``.

    ``jobs`` fans the (point, seed) work items out over that many worker
    processes; the ordered merge and fixed aggregation order guarantee the
    result is identical to a serial run (``jobs=None``).  Parallel runs
    require ``make_trace``/``make_config`` to be picklable (module-level
    functions or partials of them, not closures).
    """
    from functools import partial

    from repro.experiments.common import parallel_map

    if not points or not policies:
        raise ConfigError("points and policies must be non-empty")
    extra = policy_kwargs or {}
    items = [(point, seed) for point in points for seed in seeds]
    unit = partial(
        _sweep_unit, make_trace, make_config, tuple(policies), extra, tuple(metrics)
    )
    with span("runner.sweep"):
        outputs = parallel_map(unit, items, jobs=jobs)

    rows: list[dict[str, Any]] = []
    n_seeds = len(seeds)
    for pi, point in enumerate(points):
        per_seed = outputs[pi * n_seeds : (pi + 1) * n_seeds]
        for pj, policy in enumerate(policies):
            row: dict[str, Any] = {"x": point, "policy": policy, "seeds": n_seeds}
            for metric in metrics:
                values = [per_seed[si][pj][metric] for si in range(n_seeds)]
                mean, ci = mean_confidence_interval(values)
                row[metric] = mean
                row[f"{metric}_ci"] = ci
            rows.append(row)
    return SweepResult(x_label=x_label, rows=tuple(rows))
