"""The pure plan → decide → apply engine shared by every execution mode.

:class:`CoordinatorCore` is the per-request decision body of the
simulator (the paper's ``cacheSim`` inner loop) factored out of any
driver: it holds the cache, the bound policy, the size catalog and the
metrics collector, and services one request at a time.  It is
deliberately event-loop-free and I/O-free — the batch simulator
(:func:`repro.sim.simulator.simulate_trace`), the durable runner
(:mod:`repro.durability.runner`) and the online coordinator service
(:mod:`repro.service`) all drive the *same* core, which is what makes
their decision traces byte-for-byte comparable.

Telemetry is emitted through the recorder captured at construction, in
the exact order the simulator always used: ``JobArrived`` → the policy's
own ``PlanComputed``/``FileEvicted`` events (inside ``on_request``) →
``FileAdmitted`` per demand load, then per prefetch, each in sorted file
order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

from repro.cache.policy import ReplacementPolicy
from repro.cache.state import CacheState
from repro.core.request import Request
from repro.errors import SimulationError, UnknownFileError
from repro.sim.metrics import MetricsCollector
from repro.telemetry import FileAdmitted, JobArrived
from repro.telemetry.recorder import TraceRecorder, current_recorder
from repro.types import FileId, SizeBytes

__all__ = ["JobOutcome", "CoordinatorCore"]


@dataclass(frozen=True)
class JobOutcome:
    """What servicing one request did to the cache.

    ``loaded``/``prefetched``/``evicted`` are in sorted file order — the
    same order the corresponding trace events were emitted in, so an
    outcome is the in-memory twin of the job's trace slice.
    """

    job: int
    request_id: int
    requested_bytes: SizeBytes
    hit: bool
    unserviceable: bool
    loaded: tuple[FileId, ...]
    prefetched: tuple[FileId, ...]
    evicted: tuple[FileId, ...]
    demand_bytes: SizeBytes
    prefetch_bytes: SizeBytes

    def as_dict(self) -> dict[str, Any]:
        """JSON-ready form (the coordinator service's response payload)."""
        return {
            "job": self.job,
            "request_id": self.request_id,
            "requested_bytes": self.requested_bytes,
            "hit": self.hit,
            "unserviceable": self.unserviceable,
            "loaded": list(self.loaded),
            "prefetched": list(self.prefetched),
            "evicted": list(self.evicted),
            "demand_bytes": self.demand_bytes,
            "prefetch_bytes": self.prefetch_bytes,
        }


class CoordinatorCore:
    """Service requests against one cache under one policy.

    Parameters
    ----------
    cache:
        The cache the policy mutates (byte accounting source of truth).
    policy:
        A :class:`~repro.cache.policy.ReplacementPolicy` already bound to
        ``cache`` and ``sizes``.
    sizes:
        The file-size catalog every request is resolved against.
    metrics:
        Collector receiving one observation per serviced job.
    recorder:
        Telemetry recorder; defaults to the ambient recorder at
        construction time (drivers construct the core inside their
        recorder context, mirroring ``policy.bind``).
    check_invariants:
        Assert cache consistency after every job (debug runs).
    """

    __slots__ = (
        "cache",
        "policy",
        "sizes",
        "metrics",
        "check_invariants",
        "rec",
        "jobs_submitted",
    )

    def __init__(
        self,
        *,
        cache: CacheState,
        policy: ReplacementPolicy,
        sizes: Mapping[FileId, SizeBytes],
        metrics: MetricsCollector,
        recorder: TraceRecorder | None = None,
        check_invariants: bool = False,
    ):
        self.cache = cache
        self.policy = policy
        self.sizes = sizes
        self.metrics = metrics
        self.check_invariants = check_invariants
        self.rec = current_recorder() if recorder is None else recorder
        #: jobs submitted so far (the service uses this as the next index)
        self.jobs_submitted = 0

    def _size(self, file_id: FileId) -> SizeBytes:
        try:
            return self.sizes[file_id]
        except KeyError:
            raise UnknownFileError(
                f"file {file_id!r} is not in the size catalog"
            ) from None

    def submit(self, job_index: int, request: Request) -> JobOutcome:
        """Service one request: plan, decide, apply, account.

        Raises :class:`~repro.errors.UnknownFileError` for files outside
        the catalog and :class:`~repro.errors.SimulationError` when the
        policy violates its space contract.
        """
        cache = self.cache
        rec = self.rec
        bundle = request.bundle
        try:
            requested = bundle.size_under(self.sizes)
        except KeyError as exc:
            raise UnknownFileError(
                f"request {request.request_id} references unknown file "
                f"{exc.args[0] if exc.args else '?'!r}"
            ) from None
        if rec.active:
            rec.emit(
                JobArrived(
                    job=job_index,
                    request_id=request.request_id,
                    n_files=len(bundle),
                    bytes_requested=requested,
                )
            )
        self.jobs_submitted = job_index + 1
        if requested > cache.capacity:
            self.metrics.record_unserviceable()
            return JobOutcome(
                job=job_index,
                request_id=request.request_id,
                requested_bytes=requested,
                hit=False,
                unserviceable=True,
                loaded=(),
                prefetched=(),
                evicted=(),
                demand_bytes=0,
                prefetch_bytes=0,
            )
        # span structure mirrors the request-tracing tree: core.plan wraps
        # the policy's decision (policy.on_request and any cache.evict
        # nested inside it), cache.admit wraps applying the loads
        with rec.span("core.plan"):
            missing = cache.missing(bundle)
            with rec.span("policy.on_request"):
                decision = self.policy.on_request(bundle)

            loads = sorted(missing)
            demand_bytes = sum(self._size(f) for f in loads)
            prefetches = sorted(
                f for f in decision.prefetch if f not in cache and f not in missing
            )
            prefetch_bytes = sum(self._size(f) for f in prefetches)
            needed = demand_bytes + prefetch_bytes
            if cache.free < needed:
                raise SimulationError(
                    f"policy {self.policy.name!r} left only {cache.free} free "
                    f"bytes but {needed} are needed"
                )
        with rec.span("cache.admit"):
            # sorted: load order cannot change what ends up resident, but a
            # reproducible order keeps the load counters' interleaving (and
            # any future instrumentation of it) identical across processes
            for f in loads:
                cache.load(f, self.sizes[f])
            for f in prefetches:
                cache.load(f, self.sizes[f])
            if rec.active:
                for f in loads:
                    rec.emit(
                        FileAdmitted(file=str(f), bytes=self.sizes[f], cause="demand")
                    )
                for f in prefetches:
                    rec.emit(
                        FileAdmitted(
                            file=str(f), bytes=self.sizes[f], cause="prefetch"
                        )
                    )
        hit = not missing
        self.policy.on_serviced(bundle, frozenset(missing | set(prefetches)), hit)
        self.metrics.record_job(
            requested_bytes=requested,
            demand_loaded_bytes=demand_bytes,
            prefetched_bytes=prefetch_bytes,
            hit=hit,
        )
        if self.check_invariants:
            cache.check_invariants()
        return JobOutcome(
            job=job_index,
            request_id=request.request_id,
            requested_bytes=requested,
            hit=hit,
            unserviceable=False,
            loaded=tuple(loads),
            prefetched=tuple(prefetches),
            evicted=tuple(sorted(decision.evicted)),
            demand_bytes=demand_bytes,
            prefetch_bytes=prefetch_bytes,
        )
