"""Windowed time series of caching metrics (learning curves).

OptFileBundle learns the request population as the history ``L(R)`` fills;
per-window byte miss ratios make that warm-up visible and show when a run
has reached steady state — information a single end-of-run ratio hides.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.policy import ReplacementPolicy
from repro.cache.registry import make_policy
from repro.cache.state import CacheState
from repro.errors import ConfigError
from repro.sim.simulator import SimulationConfig
from repro.types import SizeBytes
from repro.workload.trace import Trace

__all__ = ["WindowPoint", "byte_miss_timeseries"]


@dataclass(frozen=True)
class WindowPoint:
    """Aggregated metrics of one window of jobs."""

    window_index: int
    jobs: int
    byte_miss_ratio: float
    request_hit_ratio: float


def byte_miss_timeseries(
    trace: Trace,
    config: SimulationConfig,
    *,
    window: int = 200,
    policy: ReplacementPolicy | None = None,
) -> list[WindowPoint]:
    """Replay a trace, reporting per-window byte miss / request-hit ratios.

    Uses the same service loop semantics as
    :func:`repro.sim.simulator.simulate_trace` (FCFS only — learning curves
    with queueing would conflate scheduling reordering with learning).
    """
    if window < 1:
        raise ConfigError(f"window must be >= 1, got {window}")
    if config.queue_length != 1:
        raise ConfigError("byte_miss_timeseries supports queue_length=1 only")

    sizes = trace.catalog.as_dict()
    cache = CacheState(config.cache_size)
    if policy is None:
        policy = make_policy(
            config.policy, future=trace.bundles(), **config.policy_kwargs
        )
    policy.bind(cache, sizes)

    points: list[WindowPoint] = []
    w_jobs = w_hits = 0
    w_requested: SizeBytes = 0
    w_loaded: SizeBytes = 0

    def flush(index: int) -> None:
        nonlocal w_jobs, w_hits, w_requested, w_loaded
        if w_jobs == 0:
            return
        points.append(
            WindowPoint(
                window_index=index,
                jobs=w_jobs,
                byte_miss_ratio=(w_loaded / w_requested) if w_requested else 0.0,
                request_hit_ratio=w_hits / w_jobs,
            )
        )
        w_jobs = w_hits = 0
        w_requested = 0
        w_loaded = 0

    for i, request in enumerate(trace):
        bundle = request.bundle
        requested = bundle.size_under(sizes)
        if requested > cache.capacity:
            continue
        missing = cache.missing(bundle)
        decision = policy.on_request(bundle)
        loaded = set(missing)
        for f in decision.prefetch:
            if f not in cache and f not in loaded:
                loaded.add(f)
        for f in loaded:
            cache.load(f, sizes[f])
        hit = not missing
        policy.on_serviced(bundle, frozenset(loaded), hit)

        w_jobs += 1
        w_hits += int(hit)
        w_requested += requested
        w_loaded += sum(sizes[f] for f in missing)
        if w_jobs == window:
            flush(len(points))
    flush(len(points))
    return points
