"""Windowed time series of caching metrics (learning curves).

OptFileBundle learns the request population as the history ``L(R)`` fills;
per-window byte miss ratios make that warm-up visible and show when a run
has reached steady state — information a single end-of-run ratio hides.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.policy import ReplacementPolicy
from repro.cache.registry import make_policy
from repro.cache.state import CacheState
from repro.errors import ConfigError
from repro.sim.metrics import WindowAccumulator
from repro.sim.simulator import SimulationConfig
from repro.telemetry import (
    FileAdmitted,
    JobArrived,
    WindowRolled,
    current_recorder,
)
from repro.workload.trace import Trace

__all__ = ["WindowPoint", "byte_miss_timeseries"]


@dataclass(frozen=True)
class WindowPoint:
    """Aggregated metrics of one window of jobs."""

    window_index: int
    jobs: int
    byte_miss_ratio: float
    request_hit_ratio: float


def byte_miss_timeseries(
    trace: Trace,
    config: SimulationConfig,
    *,
    window: int = 200,
    policy: ReplacementPolicy | None = None,
) -> list[WindowPoint]:
    """Replay a trace, reporting per-window byte miss / request-hit ratios.

    Uses the same service loop semantics as
    :func:`repro.sim.simulator.simulate_trace` (FCFS only — learning curves
    with queueing would conflate scheduling reordering with learning).
    """
    if window < 1:
        raise ConfigError(f"window must be >= 1, got {window}")
    if config.queue_length != 1:
        raise ConfigError("byte_miss_timeseries supports queue_length=1 only")

    sizes = trace.catalog.as_dict()
    cache = CacheState(config.cache_size)
    if policy is None:
        policy = make_policy(
            config.policy, future=trace.bundles(), **config.policy_kwargs
        )
    policy.bind(cache, sizes)

    recorder = current_recorder()
    points: list[WindowPoint] = []
    acc = WindowAccumulator()

    def flush(index: int) -> None:
        if acc.jobs == 0:
            return
        point = WindowPoint(
            window_index=index,
            jobs=acc.jobs,
            byte_miss_ratio=acc.byte_miss_ratio,
            request_hit_ratio=acc.request_hit_ratio,
        )
        points.append(point)
        if recorder.active:
            recorder.emit(
                WindowRolled(
                    index=point.window_index,
                    jobs=point.jobs,
                    byte_miss_ratio=point.byte_miss_ratio,
                    request_hit_ratio=point.request_hit_ratio,
                )
            )
        acc.reset()

    for i, request in enumerate(trace):
        bundle = request.bundle
        requested = bundle.size_under(sizes)
        if recorder.active:
            recorder.emit(
                JobArrived(
                    job=i,
                    request_id=request.request_id,
                    n_files=len(bundle),
                    bytes_requested=requested,
                )
            )
        if requested > cache.capacity:
            continue
        missing = cache.missing(bundle)
        decision = policy.on_request(bundle)
        loaded = set(missing)
        for f in decision.prefetch:
            if f not in cache and f not in loaded:
                loaded.add(f)
        for f in sorted(loaded):
            cache.load(f, sizes[f])
        if recorder.active:
            # same ordering contract as simulate_trace: per-file events are
            # sorted so the trace is independent of set iteration order
            for f in sorted(missing):
                recorder.emit(
                    FileAdmitted(file=str(f), bytes=sizes[f], cause="demand")
                )
            for f in sorted(loaded - missing):
                recorder.emit(
                    FileAdmitted(file=str(f), bytes=sizes[f], cause="prefetch")
                )
        hit = not missing
        policy.on_serviced(bundle, frozenset(loaded), hit)

        acc.add(
            requested_bytes=requested,
            loaded_bytes=sum(sizes[f] for f in missing),
            hit=hit,
        )
        if acc.jobs == window:
            flush(len(points))
    flush(len(points))
    return points
