"""In-process coordinator hosting for tests and benchmarks.

:func:`running_service` runs a :class:`CoordinatorService` on its own
event loop in a background thread and yields the bound address, so a
test (or the benchmark harness) can drive it synchronously with
:func:`repro.service.loadgen.run_loadgen` from the main thread — no
subprocess, no port races (the listener binds port 0).

If an injected crash (``raise``/``torn`` mode) tears the server down
mid-test, the exception is captured and re-raised on exit from the
context manager — the in-process analogue of a nonzero exit status.
"""

from __future__ import annotations

import asyncio
import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator

from repro.errors import ServiceError
from repro.service.app import CoordinatorService
from repro.service.state import CoordinatorState

__all__ = ["RunningService", "running_service"]


@dataclass
class RunningService:
    """Handle on a live in-thread coordinator."""

    host: str
    port: int
    service: CoordinatorService


@contextmanager
def running_service(
    state: CoordinatorState, *, host: str = "127.0.0.1"
) -> Iterator[RunningService]:
    """Serve ``state`` on an ephemeral port until the block exits."""
    started = threading.Event()
    box: dict = {}

    def main() -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        service = CoordinatorService(state)

        async def serve() -> None:
            server = await service.start(host, 0)
            box["port"] = server.sockets[0].getsockname()[1]
            box["service"] = service
            box["loop"] = loop
            started.set()
            await service.run(server)

        try:
            loop.run_until_complete(serve())
        except BaseException as exc:  # noqa: B036  # repro: allow[RPR004] captured into box and re-raised in the caller's thread on context exit
            box["error"] = exc
            started.set()  # unblock a waiter if startup itself died
        finally:
            loop.close()

    thread = threading.Thread(target=main, name="coordinator-service", daemon=True)
    thread.start()
    if not started.wait(timeout=30):
        raise ServiceError("coordinator service failed to start within 30s")
    if "port" not in box:
        thread.join(timeout=5)
        raise box.get("error") or ServiceError("coordinator service died on startup")
    try:
        yield RunningService(host=host, port=box["port"], service=box["service"])
    finally:
        loop: asyncio.AbstractEventLoop = box["loop"]
        service: CoordinatorService = box["service"]
        try:
            loop.call_soon_threadsafe(service.stop)
        except RuntimeError:
            pass  # loop already closed (server crashed mid-test)
        thread.join(timeout=30)
    error = box.get("error")
    if error is not None:
        raise error
