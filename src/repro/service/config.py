"""Configuration of the online cache-coordinator service.

A :class:`ServiceConfig` is the service-shaped view of the same knobs
the batch drivers take: the simulation parameters
(:class:`~repro.sim.simulator.SimulationConfig` minus queueing — the
service admits jobs in arrival order), the durability parameters of
:class:`~repro.durability.runner.DurabilityConfig`, and the chaos specs
(:class:`~repro.faults.crash.CrashSpec`,
:class:`~repro.faults.spec.FaultSpec`).

``workload`` names a workload-trace file; the service takes its file
catalog (and, for clairvoyant policies, the ``future`` bundle sequence)
from it, so a differential replay of that trace through the server and
through the batch simulator sees identical inputs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.durability.journal import DEFAULT_SEGMENT_BYTES
from repro.errors import ConfigError
from repro.faults.crash import CrashSpec
from repro.faults.spec import FaultSpec
from repro.service.slo import SloConfig

__all__ = ["ServiceConfig"]


@dataclass(frozen=True)
class ServiceConfig:
    """Parameters of one coordinator-service run.

    Attributes
    ----------
    workload:
        Workload-trace file supplying the file catalog and the future
        bundle sequence (clairvoyant policies).
    cache_size:
        Cache capacity in bytes.
    run_dir:
        The durable run directory (arrivals record, telemetry trace,
        journal, checkpoints — the PR-6 layout plus ``arrivals.jsonl``).
    policy / policy_kwargs:
        Replacement-policy registry name and factory kwargs.
    warmup:
        Jobs excluded from reported metrics (cache state still updates).
    check_invariants:
        Assert cache consistency after every job.
    checkpoint_every:
        Snapshot full state every N jobs (journal truncated each time).
    fsync:
        ``"rotate"`` (OS-buffered between checkpoints) or ``"always"``
        (fsync every commit) — the durable runner's contract.
    max_segment_bytes:
        Journal segment rotation threshold.
    crash:
        Optional deterministic crash injection, ticked once per journal
        commit (chaos testing).
    fault:
        Optional grid-fault model; transfer faults are consulted per
        demand load and surface as simulated retries in the response
        payload and the ``service_transfer_faults_total`` counter (they
        never enter the decision trace, so fault chaos does not break
        differential trace comparison).  Latency spikes add a simulated
        stall to the SLO latency signal (again: metrics only).
    debug_ring:
        Capacity of the request-tracing ring behind ``/v1/debug/requests``
        (0 disables request tracing entirely; the decision trace is
        byte-identical either way).
    slow_threshold_ms:
        Requests at or over this server-side duration land in the
        ``/v1/debug/slow`` ring.
    profile_stream:
        Also append one JSON line per traced request to
        ``<run_dir>/profile.jsonl`` — host timings, a profiling artifact
        deliberately separate from ``trace.jsonl``.
    slo:
        Online SLO engine knobs (:class:`~repro.service.slo.SloConfig`).
    """

    workload: Path
    cache_size: int
    run_dir: Path
    policy: str = "optbundle"
    policy_kwargs: dict[str, Any] = field(default_factory=dict)
    warmup: int = 0
    check_invariants: bool = False
    checkpoint_every: int = 100
    fsync: str = "rotate"
    max_segment_bytes: int = DEFAULT_SEGMENT_BYTES
    crash: CrashSpec | None = None
    fault: FaultSpec | None = None
    debug_ring: int = 256
    slow_threshold_ms: float = 100.0
    profile_stream: bool = False
    slo: SloConfig = field(default_factory=SloConfig)

    def __post_init__(self) -> None:
        object.__setattr__(self, "workload", Path(self.workload))
        object.__setattr__(self, "run_dir", Path(self.run_dir))
        if self.cache_size <= 0:
            raise ConfigError(
                f"cache_size must be positive, got {self.cache_size}"
            )
        if self.warmup < 0:
            raise ConfigError(f"warmup must be non-negative, got {self.warmup}")
        if self.debug_ring < 0:
            raise ConfigError(
                f"debug_ring must be non-negative, got {self.debug_ring}"
            )
        if self.slow_threshold_ms <= 0:
            raise ConfigError(
                f"slow_threshold_ms must be positive, got {self.slow_threshold_ms}"
            )
        if self.checkpoint_every < 1:
            raise ConfigError(
                f"checkpoint_every must be >= 1, got {self.checkpoint_every}"
            )
        if self.fsync not in ("rotate", "always"):
            raise ConfigError(
                f"fsync must be 'rotate' or 'always', got {self.fsync!r}"
            )
        if self.max_segment_bytes < 1:
            raise ConfigError(
                f"max_segment_bytes must be positive, got {self.max_segment_bytes}"
            )
