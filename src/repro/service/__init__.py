"""repro.service — the online cache-coordinator (ROADMAP item 1).

The batch simulator answers "what would this policy have done on this
trace"; this package answers the paper's actual operating question —
jobs arrive one at a time and the coordinator must commit to
admit/evict/prefetch decisions online.  It is deliberately thin: the
decision body is the same :class:`~repro.sim.coordinator.CoordinatorCore`
the batch drivers hold, the durability is the PR-6 journal/checkpoint
machinery, the telemetry is the standard
:class:`~repro.telemetry.recorder.TraceRecorder` — the service only adds
an arrivals record and an HTTP surface.

* :mod:`repro.service.config` — :class:`ServiceConfig`.
* :mod:`repro.service.state` — :class:`CoordinatorState`: the durable
  single-writer state (create / resume / submit).
* :mod:`repro.service.http` — minimal HTTP/1.1 framing over asyncio.
* :mod:`repro.service.app` — :class:`CoordinatorService` + the
  :data:`ROUTES` table (drift-pinned against the README).
* :mod:`repro.service.loadgen` — the replaying load generator.
* :mod:`repro.service.testing` — in-process hosting for tests/bench.
"""

from repro.service.app import ROUTES, CoordinatorService
from repro.service.config import ServiceConfig
from repro.service.loadgen import LoadgenReport, run_loadgen
from repro.service.state import CoordinatorState, JobResult

__all__ = [
    "ROUTES",
    "CoordinatorService",
    "ServiceConfig",
    "CoordinatorState",
    "JobResult",
    "LoadgenReport",
    "run_loadgen",
]
