"""Replaying load generator for the coordinator service.

Replays a workload trace against a running coordinator over HTTP,
reporting achieved throughput, decision-latency percentiles and the
byte-miss ratio observed in the responses.

Two driving modes:

* **closed-loop** (``rate=None``) — each of ``concurrency`` workers
  keeps exactly one request in flight; at ``concurrency=1`` jobs reach
  the server strictly in trace order, which is the differential-test
  configuration (server trace byte-identical to the batch simulator's).
* **open-loop** (``rate=R``) — job *i* is released at time ``i / R``
  seconds after start regardless of completions; workers pick up
  released jobs as they free up, so sustained overload shows up as
  growing latency rather than reduced offered load.

Jobs are paced deterministically (fixed ``1/rate`` spacing — no RNG),
so two runs of the same trace offer the same arrival schedule.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass
from typing import Any

from repro.errors import ConfigError, ServiceError
from repro.service.http import json_response, read_response, write_request
from repro.telemetry.tracing import REQUEST_ID_HEADER
from repro.utils.stats import percentile as _percentile
from repro.workload.trace import Trace

__all__ = ["LoadgenReport", "run_loadgen"]


@dataclass(frozen=True)
class LoadgenReport:
    """What one loadgen run achieved."""

    jobs: int
    errors: int
    hits: int
    unserviceable: int
    retries: int
    bytes_requested: int
    bytes_demand_loaded: int
    bytes_prefetched: int
    duration_s: float
    concurrency: int
    rate: float | None
    latency_p50_ms: float
    latency_p90_ms: float
    latency_p99_ms: float
    latency_mean_ms: float
    latency_max_ms: float
    # client-vs-server latency split, correlated per request id from the
    # ``timing_ms`` block of each response (zero when the server runs
    # with tracing disabled — no breakdown to correlate)
    server_p50_ms: float = 0.0
    server_p99_ms: float = 0.0
    server_mean_ms: float = 0.0
    queue_wait_mean_ms: float = 0.0
    plan_mean_ms: float = 0.0
    apply_mean_ms: float = 0.0
    net_overhead_mean_ms: float = 0.0

    @property
    def throughput_jobs_per_s(self) -> float:
        return self.jobs / self.duration_s if self.duration_s > 0 else 0.0

    @property
    def byte_miss_ratio(self) -> float:
        if self.bytes_requested == 0:
            return 0.0
        return self.bytes_demand_loaded / self.bytes_requested

    @property
    def request_hit_ratio(self) -> float:
        return self.hits / self.jobs if self.jobs else 0.0

    def as_dict(self) -> dict[str, Any]:
        return {
            "jobs": self.jobs,
            "errors": self.errors,
            "hits": self.hits,
            "unserviceable": self.unserviceable,
            "retries": self.retries,
            "bytes_requested": self.bytes_requested,
            "bytes_demand_loaded": self.bytes_demand_loaded,
            "bytes_prefetched": self.bytes_prefetched,
            "duration_s": self.duration_s,
            "concurrency": self.concurrency,
            "rate": self.rate,
            "throughput_jobs_per_s": self.throughput_jobs_per_s,
            "byte_miss_ratio": self.byte_miss_ratio,
            "request_hit_ratio": self.request_hit_ratio,
            "latency_p50_ms": self.latency_p50_ms,
            "latency_p90_ms": self.latency_p90_ms,
            "latency_p99_ms": self.latency_p99_ms,
            "latency_mean_ms": self.latency_mean_ms,
            "latency_max_ms": self.latency_max_ms,
            "server_p50_ms": self.server_p50_ms,
            "server_p99_ms": self.server_p99_ms,
            "server_mean_ms": self.server_mean_ms,
            "queue_wait_mean_ms": self.queue_wait_mean_ms,
            "plan_mean_ms": self.plan_mean_ms,
            "apply_mean_ms": self.apply_mean_ms,
            "net_overhead_mean_ms": self.net_overhead_mean_ms,
        }


class _Aggregator:
    """Shared accumulator the workers fold their observations into."""

    def __init__(self) -> None:
        self.latencies: list[float] = []
        self.jobs = 0
        self.errors = 0
        self.hits = 0
        self.unserviceable = 0
        self.retries = 0
        self.bytes_requested = 0
        self.bytes_demand_loaded = 0
        self.bytes_prefetched = 0
        # server-side breakdown (ms), one entry per response carrying a
        # timing_ms block; net overhead is client latency minus server time
        self.server_ms: list[float] = []
        self.queue_wait_ms: list[float] = []
        self.plan_ms: list[float] = []
        self.apply_ms: list[float] = []
        self.net_overhead_ms: list[float] = []

    def record(self, response_payload: dict[str, Any], latency_s: float) -> None:
        self.jobs += 1
        self.latencies.append(latency_s)
        timing = response_payload.get("timing_ms")
        if isinstance(timing, dict):
            server_ms = float(timing.get("server_ms", 0.0))
            self.server_ms.append(server_ms)
            self.queue_wait_ms.append(float(timing.get("queue_wait_ms", 0.0)))
            self.plan_ms.append(float(timing.get("plan_ms", 0.0)))
            self.apply_ms.append(float(timing.get("apply_ms", 0.0)))
            self.net_overhead_ms.append(max(0.0, latency_s * 1e3 - server_ms))
        outcome = response_payload.get("outcome", {})
        self.retries += int(response_payload.get("retries", 0))
        if outcome.get("unserviceable"):
            self.unserviceable += 1
            return
        if outcome.get("hit"):
            self.hits += 1
        self.bytes_requested += int(outcome.get("requested_bytes", 0))
        self.bytes_demand_loaded += int(outcome.get("demand_bytes", 0))
        self.bytes_prefetched += int(outcome.get("prefetch_bytes", 0))


async def _request_json(
    host: str, port: int, method: str, target: str, payload: Any = None
) -> dict[str, Any]:
    """One standalone request on a fresh connection (control plane)."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        body = json_response(payload).body if payload is not None else b""
        write_request(writer, method, target, body=body)
        await writer.drain()
        response = await read_response(reader)
        if response.status != 200:
            raise ServiceError(
                f"{method} {target} returned {response.status}: "
                f"{response.body[:200].decode('utf-8', 'replace')}"
            )
        doc = response.json()
        return doc if isinstance(doc, dict) else {}
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


async def _worker(
    host: str,
    port: int,
    jobs: list[dict[str, Any]],
    next_index: list[int],
    release: "list[float] | None",
    start_time: float,
    agg: _Aggregator,
) -> None:
    """Drive one keep-alive connection until the job list is exhausted."""
    reader, writer = await asyncio.open_connection(host, port)
    loop = asyncio.get_running_loop()
    try:
        while True:
            i = next_index[0]
            if i >= len(jobs):
                return
            next_index[0] = i + 1
            if release is not None:
                delay = start_time + release[i] - loop.time()
                if delay > 0:
                    await asyncio.sleep(delay)
            body = json_response(jobs[i]).body
            t0 = time.perf_counter()
            try:
                # the correlation id is the job's list index — the server
                # stores it as client_id next to its own arrival-derived id
                write_request(
                    writer,
                    "POST",
                    "/v1/jobs",
                    body=body,
                    headers={REQUEST_ID_HEADER: f"lg-{i:08d}"},
                )
                await writer.drain()
                response = await read_response(reader)
            except (ServiceError, ConnectionError, OSError):
                # the server went away mid-exchange (a crash drill, or a
                # shutdown race): count it and stop driving this worker
                agg.errors += 1
                return
            latency = time.perf_counter() - t0
            if response.status != 200:
                agg.errors += 1
                continue
            doc = response.json()
            agg.record(doc if isinstance(doc, dict) else {}, latency)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


async def _run(
    trace: Trace,
    host: str,
    port: int,
    *,
    concurrency: int,
    rate: float | None,
    limit: int | None,
    start_job: "int | str",
) -> LoadgenReport:
    if start_job == "auto":
        health = await _request_json(host, port, "GET", "/healthz")
        first = int(health.get("jobs", 0))
    else:
        first = int(start_job)
    requests = list(trace)[first:]
    if limit is not None:
        requests = requests[:limit]
    jobs = [
        {"files": sorted(r.bundle.files), "priority": r.priority}
        for r in requests
    ]
    release = [i / rate for i in range(len(jobs))] if rate is not None else None
    agg = _Aggregator()
    next_index = [0]
    loop = asyncio.get_running_loop()
    start_time = loop.time()
    t0 = time.perf_counter()
    workers = [
        _worker(host, port, jobs, next_index, release, start_time, agg)
        for _ in range(min(concurrency, max(1, len(jobs))))
    ]
    await asyncio.gather(*workers)
    duration = time.perf_counter() - t0
    lat = sorted(agg.latencies)
    mean = sum(lat) / len(lat) if lat else 0.0
    server = sorted(agg.server_ms)

    def _mean(values: list[float]) -> float:
        return sum(values) / len(values) if values else 0.0

    return LoadgenReport(
        jobs=agg.jobs,
        errors=agg.errors,
        hits=agg.hits,
        unserviceable=agg.unserviceable,
        retries=agg.retries,
        bytes_requested=agg.bytes_requested,
        bytes_demand_loaded=agg.bytes_demand_loaded,
        bytes_prefetched=agg.bytes_prefetched,
        duration_s=duration,
        concurrency=concurrency,
        rate=rate,
        latency_p50_ms=_percentile(lat, 50) * 1e3,
        latency_p90_ms=_percentile(lat, 90) * 1e3,
        latency_p99_ms=_percentile(lat, 99) * 1e3,
        latency_mean_ms=mean * 1e3,
        latency_max_ms=(lat[-1] if lat else 0.0) * 1e3,
        server_p50_ms=_percentile(server, 50),
        server_p99_ms=_percentile(server, 99),
        server_mean_ms=_mean(agg.server_ms),
        queue_wait_mean_ms=_mean(agg.queue_wait_ms),
        plan_mean_ms=_mean(agg.plan_ms),
        apply_mean_ms=_mean(agg.apply_ms),
        net_overhead_mean_ms=_mean(agg.net_overhead_ms),
    )


def run_loadgen(
    trace: Trace,
    host: str,
    port: int,
    *,
    concurrency: int = 1,
    rate: float | None = None,
    limit: int | None = None,
    start_job: "int | str" = 0,
) -> LoadgenReport:
    """Replay ``trace`` against the coordinator at ``host:port``.

    ``start_job`` skips jobs the server already serviced — pass
    ``"auto"`` to ask the server (``GET /healthz``) and continue from
    its count, the crash-resume driving mode.
    """
    if concurrency < 1:
        raise ConfigError(f"concurrency must be >= 1, got {concurrency}")
    if rate is not None and rate <= 0:
        raise ConfigError(f"rate must be positive, got {rate}")
    if limit is not None and limit < 0:
        raise ConfigError(f"limit must be non-negative, got {limit}")
    return asyncio.run(
        _run(
            trace,
            host,
            port,
            concurrency=concurrency,
            rate=rate,
            limit=limit,
            start_job=start_job,
        )
    )
