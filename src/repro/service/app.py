"""The coordinator service: HTTP routing over a single durable state.

Serving model
-------------
One :class:`~repro.service.state.CoordinatorState` behind one
:class:`asyncio.Lock`.  Every request that touches state acquires the
lock, so decisions are strictly serialized — the online system keeps the
batch simulator's single-writer semantics, and at client concurrency 1
the decision trace is byte-identical to the batch run's.  Higher client
concurrency interleaves *arrival order*, never decision internals: the
trace still passes invariant checking and reconstructs the live cache
exactly.

The route table :data:`ROUTES` is the single source of truth for the
service's HTTP surface; the README's "Running as a service" section is
pinned against it by the ``RPR005`` drift linter.
"""

from __future__ import annotations

import asyncio
from typing import Any

from repro.errors import InjectedCrashError, ReproError, ServiceError
from repro.service.http import (
    HttpRequest,
    HttpResponse,
    error_response,
    json_response,
    read_request,
    write_response,
)
from repro.service.state import CoordinatorState
from repro.telemetry.metrics import PROMETHEUS_CONTENT_TYPE
from repro.telemetry.profiling import span_profile
from repro.telemetry.tracing import REQUEST_ID_HEADER, RequestTrace

__all__ = ["ROUTES", "CoordinatorService"]

#: the service's entire HTTP surface: ``(method, path)`` pairs.  Pinned
#: against the README endpoint list by the RPR005 drift check.
ROUTES: tuple[tuple[str, str], ...] = (
    ("POST", "/v1/jobs"),
    ("GET", "/v1/cache"),
    ("GET", "/v1/config"),
    ("GET", "/v1/debug/requests"),
    ("GET", "/v1/debug/slow"),
    ("GET", "/v1/debug/profile"),
    ("GET", "/healthz"),
    ("GET", "/metrics"),
)

_KNOWN_PATHS = frozenset(path for _method, path in ROUTES)
_KNOWN_METHODS = frozenset(method for method, _path in ROUTES)

#: bounded sentinel labels for metric series that must not explode in
#: cardinality: unknown paths, unknown methods, and unparseable requests
UNROUTABLE = "<unroutable>"
UNPARSED = "<unparsed>"
OTHER_METHOD = "<other>"


class CoordinatorService:
    """Serve one :class:`CoordinatorState` over HTTP/JSON.

    Use :meth:`start` to bind a listening socket, then :meth:`run` to
    serve until :meth:`stop` is called (or an injected crash fires —
    ``raise``/``torn`` modes propagate out of :meth:`run` after closing
    the listener, mimicking a process death for in-process chaos tests).
    """

    def __init__(self, state: CoordinatorState):
        self.state = state
        self._lock = asyncio.Lock()
        self._stopping = asyncio.Event()
        self._fatal: BaseException | None = None
        self._connections: set[asyncio.Task] = set()

    # ------------------------------------------------------------------ #
    # lifecycle

    async def start(
        self, host: str = "127.0.0.1", port: int = 0
    ) -> asyncio.base_events.Server:
        """Bind and start accepting connections; returns the server."""
        return await asyncio.start_server(
            self._handle_connection, host, port, limit=64 * 1024
        )

    async def run(self, server: asyncio.base_events.Server) -> None:
        """Serve until stopped; re-raises a fatal injected crash."""
        async with server:
            await server.start_serving()
            await self._stopping.wait()
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)
        self.state.close()
        if self._fatal is not None:
            raise self._fatal

    def stop(self) -> None:
        """Request shutdown (threadsafe via ``loop.call_soon_threadsafe``)."""
        self._stopping.set()

    # ------------------------------------------------------------------ #
    # connection handling

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        try:
            while not self._stopping.is_set():
                try:
                    request = await read_request(reader)
                except ServiceError as exc:
                    # unparseable: there is no route to attribute the
                    # exchange to, so it lands on the bounded sentinel
                    # labels and the connection closes
                    response = error_response(400, str(exc))
                    self.state.count_http_request(
                        method=OTHER_METHOD, route=UNPARSED, status=400
                    )
                    write_response(writer, response, keep_alive=False)
                    await writer.drain()
                    break
                if request is None:
                    break
                path = request.target.split("?", 1)[0]
                route = path if path in _KNOWN_PATHS else UNROUTABLE
                method = (
                    request.method
                    if request.method in _KNOWN_METHODS
                    else OTHER_METHOD
                )
                tracer = self.state.tracer
                with tracer.request(
                    tracer.next_read_id(),
                    route=route,
                    client_id=request.headers.get(REQUEST_ID_HEADER.lower()),
                ) as rt:
                    response = await self._dispatch(request, rt)
                    if rt is not None:
                        rt.status = response.status
                        response.headers.setdefault(
                            REQUEST_ID_HEADER, rt.request_id
                        )
                self.state.count_http_request(
                    method=method,
                    route=route,
                    status=response.status,
                    duration_s=None if rt is None else rt.duration_s,
                )
                write_response(writer, response, keep_alive=request.keep_alive)
                await writer.drain()
                if not request.keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # peer went away mid-exchange; nothing to answer
        except asyncio.CancelledError:
            pass  # shutdown cancelled this connection; close quietly below
        except InjectedCrashError:
            pass  # recorded in _fatal; run() re-raises after teardown
        finally:
            if task is not None:
                self._connections.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _dispatch(
        self, request: HttpRequest, rt: RequestTrace | None
    ) -> HttpResponse:
        path, _, query = request.target.partition("?")
        if path not in _KNOWN_PATHS:
            return error_response(404, f"no route for {path!r}")
        if (request.method, path) not in ROUTES:
            return error_response(
                405, f"{request.method} not allowed on {path!r}"
            )
        if path == "/v1/jobs":
            return await self._post_job(request, rt)
        if path == "/v1/debug/requests":
            return json_response(self.state.tracer.payload())
        if path == "/v1/debug/slow":
            return self._debug_slow(query)
        if path == "/v1/debug/profile":
            return json_response(
                {
                    "requests_traced": self.state.tracer.requests_traced,
                    "spans": span_profile(self.state.registry),
                }
            )
        async with self._lock:
            if path == "/v1/cache":
                return json_response(self.state.cache_payload())
            if path == "/v1/config":
                return json_response(self.state.config_payload())
            if path == "/healthz":
                return json_response(self.state.health_payload())
            # /metrics — the one non-JSON endpoint
            return HttpResponse(
                status=200,
                body=self.state.prometheus().encode("utf-8"),
                content_type=PROMETHEUS_CONTENT_TYPE,
            )

    def _debug_slow(self, query: str) -> HttpResponse:
        """``GET /v1/debug/slow[?threshold_ms=X]``."""
        threshold_s: float | None = None
        for pair in query.split("&"):
            if not pair:
                continue
            name, _, value = pair.partition("=")
            if name != "threshold_ms":
                return error_response(400, f"unknown query parameter {name!r}")
            try:
                threshold_ms = float(value)
            except ValueError:
                return error_response(
                    400, f"threshold_ms must be a number, got {value!r}"
                )
            if threshold_ms <= 0:
                return error_response(
                    400, f"threshold_ms must be positive, got {value!r}"
                )
            threshold_s = threshold_ms / 1e3
        tracer = self.state.tracer
        effective_s = (
            tracer.slow_threshold_s if threshold_s is None else threshold_s
        )
        return json_response(
            {
                "threshold_ms": round(effective_s * 1e3, 3),
                "requests": tracer.slow(threshold_s),
            }
        )

    async def _post_job(
        self, request: HttpRequest, rt: RequestTrace | None
    ) -> HttpResponse:
        try:
            payload = request.json()
        except ServiceError as exc:
            return error_response(400, str(exc))
        if not isinstance(payload, dict):
            return error_response(400, "body must be a JSON object")
        files = payload.get("files")
        if not isinstance(files, list):
            return error_response(400, "'files' must be a list of file ids")
        priority = payload.get("priority", 1.0)
        if not isinstance(priority, (int, float)) or isinstance(priority, bool):
            return error_response(400, "'priority' must be a number")
        # time the lock acquisition as queue.wait: under client
        # concurrency this is where a request sits behind the
        # single-writer decision loop
        with self.state.recorder.span("queue.wait"):
            await self._lock.acquire()
        try:
            try:
                result = self.state.submit(files, priority=float(priority))
            except InjectedCrashError as exc:
                # chaos: treat like the process death it stands in for —
                # no response, tear the server down, surface via run()
                self._fatal = exc
                self._stopping.set()
                raise
            except ReproError as exc:
                return error_response(400, str(exc))
        finally:
            self._lock.release()
        body: dict[str, Any] = result.as_dict()
        if rt is not None:
            # re-point the provisional read-side id at the job-derived
            # one so /v1/debug/requests resolves the id the client sees
            rt.request_id = result.request_id
            rt.job = result.outcome.job
            body["timing_ms"] = {
                key.removesuffix("_s") + "_ms": round(value * 1e3, 3)
                for key, value in rt.breakdown().items()
            }
        return json_response(body)
