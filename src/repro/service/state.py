"""Durable state behind the coordinator service.

The service is the online face of the simulator: the same
:class:`~repro.sim.coordinator.CoordinatorCore` the batch drivers hold,
fed one HTTP job at a time, with the PR-6 durability machinery
underneath.  The run directory extends the durable runner's layout with
an *arrivals record* — the service cannot re-read its workload from a
file because jobs arrive over the network, so it writes one::

    <run_dir>/
        manifest.json     service + simulation + durability parameters
        workload.jsonl    catalog (+ future bundles) the server was started with
        arrivals.jsonl    workload-trace-format record of accepted jobs
        trace.jsonl       telemetry trace (the decision record)
        journal/          write-ahead log, one frame per serviced job
        checkpoints/      versioned state snapshots

Per-job commit order: the job's **arrival line is flushed first**, then
its telemetry lines are written, then its journal frame — so under a
SIGKILL the arrivals record is always at least as durable as the
journal, and every journaled decision can be re-derived from a persisted
arrival.  Recovery (:meth:`CoordinatorState.resume`) is the durable
runner's re-execution protocol verbatim: restore the newest checkpoint,
truncate the trace to its offset, drop journal frames whose trace
evidence did not survive, re-execute the persisted arrivals past the
checkpoint while checking each one against its surviving frame
(:class:`~repro.errors.ReplayDivergenceError` on any divergence), then
continue serving new jobs.  The stitched trace is byte-identical to an
uninterrupted run's.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import IO, Any

from repro.cache.registry import make_policy
from repro.cache.state import CacheState
from repro.core.bundle import FileBundle
from repro.core.request import Request
from repro.durability.atomicio import atomic_write_bytes, atomic_write_json, fsync_dir
from repro.durability.checkpoint import latest_checkpoint, write_checkpoint
from repro.durability.journal import (
    JournalFrame,
    JournalWriter,
    list_segments,
    read_journal_dir,
)
from repro.durability.runner import (
    MANIFEST_SCHEMA_VERSION,
    DurabilityConfig,
    _append_torn_frame,
    _check_frame,
    _config_from_manifest,
    _config_to_manifest,
    _TeeSink,
)
from repro.errors import (
    DurabilityError,
    ReplayDivergenceError,
    ServiceError,
    UnknownFileError,
)
from repro.faults.crash import CrashInjector, CrashSpec
from repro.faults.injector import FaultInjector
from repro.faults.spec import FaultSpec
from repro.service.config import ServiceConfig
from repro.service.slo import SloConfig, SloMonitor
from repro.sim.coordinator import CoordinatorCore, JobOutcome
from repro.sim.metrics import MetricsCollector
from repro.sim.simulator import SimulationConfig
from repro.telemetry.metrics import DEFAULT_LATENCY_BUCKETS, MetricsRegistry
from repro.telemetry.recorder import TraceRecorder, use_recorder
from repro.telemetry.sinks import JsonlSink
from repro.telemetry.tracing import RequestTracer, request_id_for_job
from repro.workload.trace import Trace

__all__ = ["CoordinatorState", "JobResult"]

#: simulated per-file staging time a fault-injected latency spike
#: multiplies; feeds the SLO latency signal only (never the trace)
NOMINAL_STAGE_SECONDS = 1e-3


class JobResult:
    """One serviced job: the outcome plus its slice of the decision trace.

    ``events`` are the job's telemetry records exactly as written to
    ``trace.jsonl`` (parsed back from the canonical lines), so an HTTP
    response carries the same ``PlanComputed``/``FileAdmitted``/
    ``FileEvicted`` rationale payloads the trace does.  ``retries`` is
    the number of injected transfer faults absorbed while "staging" the
    job's loads (0 without a fault spec).  ``request_id`` is the
    deterministic tracing id (``req-<job:08d>``) that resolves to this
    job's span tree under ``/v1/debug/requests``.
    """

    __slots__ = ("outcome", "events", "retries", "request_id")

    def __init__(
        self,
        outcome: JobOutcome,
        events: list[dict[str, Any]],
        retries: int,
        request_id: str,
    ):
        self.outcome = outcome
        self.events = events
        self.retries = retries
        self.request_id = request_id

    def as_dict(self) -> dict[str, Any]:
        return {
            "outcome": self.outcome.as_dict(),
            "events": self.events,
            "retries": self.retries,
            "request_id": self.request_id,
        }


def _service_manifest(config: ServiceConfig) -> dict[str, Any]:
    sim = SimulationConfig(
        cache_size=config.cache_size,
        policy=config.policy,
        policy_kwargs=config.policy_kwargs,
        warmup=config.warmup,
        check_invariants=config.check_invariants,
    )
    durability = DurabilityConfig(
        run_dir=config.run_dir,
        checkpoint_every=config.checkpoint_every,
        fsync=config.fsync,
        max_segment_bytes=config.max_segment_bytes,
    )
    doc = _config_to_manifest(sim, durability)
    doc["kind"] = "service"
    doc["fault"] = (
        None
        if config.fault is None
        else {
            "seed": config.fault.seed,
            "drive_failure_rate": config.fault.drive_failure_rate,
            "transfer_failure_rate": config.fault.transfer_failure_rate,
            "latency_spike_rate": config.fault.latency_spike_rate,
            "latency_spike_factor": config.fault.latency_spike_factor,
            "site_downtime_rate": config.fault.site_downtime_rate,
            "mean_downtime": config.fault.mean_downtime,
        }
    )
    return doc


def _load_service_manifest(run_dir: Path) -> dict[str, Any]:
    path = run_dir / "manifest.json"
    try:
        doc = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise DurabilityError(f"{path}: unreadable service manifest: {exc}") from None
    if doc.get("schema_version") != MANIFEST_SCHEMA_VERSION:
        raise DurabilityError(
            f"{path}: unsupported manifest schema v{doc.get('schema_version')!r} "
            f"(this build reads v{MANIFEST_SCHEMA_VERSION})"
        )
    if doc.get("kind") != "service":
        raise DurabilityError(
            f"{path}: not a coordinator-service run "
            f"(kind={doc.get('kind', 'batch')!r}); use resume_run() for "
            "batch durable runs"
        )
    return doc


def _load_arrivals(path: Path) -> tuple[Trace, int]:
    """Read the arrivals record, tolerating a crash-torn final line.

    Returns the parsed trace and the byte length of the intact prefix
    (the caller truncates the file to it before appending).
    """
    try:
        data = path.read_bytes()
    except OSError as exc:
        raise DurabilityError(f"{path}: unreadable arrivals record: {exc}") from None
    intact = len(data)
    if data and not data.endswith(b"\n"):
        # the signature of a process killed mid-append: drop the torn tail
        intact = data.rfind(b"\n") + 1
    if intact == 0:
        raise DurabilityError(f"{path}: arrivals record has no intact header line")
    lines = data[:intact].decode("utf-8").splitlines()
    return Trace.load_lines(lines), intact


class CoordinatorState:
    """The single-writer durable state of one coordinator service.

    Construct via :meth:`create` (fresh run directory) or :meth:`resume`
    (recover an interrupted one).  All methods are synchronous and not
    thread-safe; the HTTP layer serializes access through one
    :class:`asyncio.Lock` — single-writer semantics is the service's
    consistency model, exactly like the batch loop's.
    """

    def __init__(
        self,
        config: ServiceConfig,
        workload: Trace,
        *,
        restored: dict[str, Any] | None,
        start_seq: int,
        next_job: int,
        tail_frames: list[JournalFrame],
        oracle: bytes,
    ):
        self.config = config
        self.workload = workload
        self.run_dir = config.run_dir
        self.sizes = workload.catalog.as_dict()
        self.registry = MetricsRegistry()
        self._http_requests = self.registry.counter_family(
            "service_http_requests_total",
            "HTTP requests handled",
            labelnames=("method", "route", "status"),
        )
        self._http_errors = self.registry.counter(
            "service_http_errors_total", "HTTP error responses (4xx/5xx)"
        )
        self._http_seconds = self.registry.histogram_family(
            "service_http_request_seconds",
            "server-side wall-clock latency of one HTTP exchange",
            labelnames=("method", "route"),
            buckets=DEFAULT_LATENCY_BUCKETS,
        )
        self._decision_seconds = self.registry.histogram_family(
            "service_decision_seconds",
            "wall-clock latency of one job decision (submit to journal commit)",
            labelnames=("policy",),
            buckets=DEFAULT_LATENCY_BUCKETS,
        ).labels(policy=config.policy)
        self._transfer_faults = self.registry.counter(
            "service_transfer_faults_total",
            "injected transfer faults absorbed as staging retries",
        )
        self.slo = SloMonitor(self.registry, config.slo)
        self._profile_fh: IO[str] | None = None
        if config.profile_stream:
            self._profile_fh = open(
                self.run_dir / "profile.jsonl", "a", encoding="utf-8"
            )
        self.tracer = RequestTracer(
            config.debug_ring,
            slow_threshold_s=config.slow_threshold_ms / 1e3,
            profile_stream=self._profile_fh,
        )

        trace_path = self.run_dir / "trace.jsonl"
        self._jsonl = JsonlSink(trace_path, append=restored is not None or next_job > 0)
        self._sink = _TeeSink(self._jsonl)
        self.recorder = TraceRecorder(
            self._sink, registry=self.registry, start_seq=start_seq
        )
        self.trace_path = trace_path

        with use_recorder(self.recorder):
            self.cache = (
                CacheState.restore(restored["cache"])
                if restored is not None
                else CacheState(config.cache_size)
            )
            self.policy = make_policy(
                config.policy, future=workload.bundles(), **config.policy_kwargs
            )
            self.policy.bind(self.cache, self.sizes)
            if restored is not None:
                self.policy.import_state(restored["policy"])
            self.metrics = MetricsCollector(
                warmup=config.warmup, registry=self.registry
            )
            if restored is not None:
                self.metrics.import_state(restored["metrics"])
            self.core = CoordinatorCore(
                cache=self.cache,
                policy=self.policy,
                sizes=self.sizes,
                metrics=self.metrics,
                recorder=self.recorder,
                check_invariants=config.check_invariants,
            )

        self.journal = JournalWriter(
            self.run_dir / "journal",
            max_segment_bytes=config.max_segment_bytes,
            fsync=config.fsync,
        )
        self._strict = config.fsync == "always"
        self._crash = CrashInjector(config.crash) if config.crash is not None else None
        # built outside any recorder context on purpose: service fault
        # injection is response-payload/metrics chaos only and must not
        # emit into the decision trace (differential comparison stays
        # byte-exact whether or not faults are enabled)
        self._faults = (
            FaultInjector(config.fault)
            if config.fault is not None and config.fault.enabled
            else None
        )

        self._tail_frames = tail_frames
        self._replayed = 0
        self._oracle = oracle
        self._oracle_base = self._jsonl.bytes_written
        self.next_job = next_job
        self.checkpoints_written = 0
        self.resumed_from_job = next_job
        self._arrivals: IO[bytes] | None = None
        self._closed = False

    # ------------------------------------------------------------------ #
    # construction

    @classmethod
    def create(cls, config: ServiceConfig) -> "CoordinatorState":
        """Initialise a fresh run directory and an empty cache."""
        run_dir = config.run_dir
        if (run_dir / "manifest.json").exists():
            raise DurabilityError(
                f"{run_dir} already contains a run; use CoordinatorState.resume() "
                "or a fresh directory"
            )
        workload = Trace.load(config.workload)
        run_dir.mkdir(parents=True, exist_ok=True)
        sync = config.fsync == "always"
        atomic_write_bytes(
            run_dir / "workload.jsonl",
            Path(config.workload).read_bytes(),
            fsync=sync,
        )
        atomic_write_json(
            run_dir / "manifest.json", _service_manifest(config), fsync=sync
        )
        state = cls(
            config,
            workload,
            restored=None,
            start_seq=0,
            next_job=0,
            tail_frames=[],
            oracle=b"",
        )
        header = {
            "type": "header",
            "version": 1,
            "meta": {"kind": "service-arrivals"},
            "files": dict(workload.catalog.items()),
        }
        fh = open(run_dir / "arrivals.jsonl", "wb")
        fh.write(json.dumps(header, sort_keys=True).encode("utf-8") + b"\n")
        fh.flush()
        if sync:
            os.fsync(fh.fileno())
        state._arrivals = fh
        return state

    @classmethod
    def resume(
        cls,
        run_dir: str | Path,
        *,
        crash: CrashSpec | None = None,
        verify: bool = True,
        debug_ring: int = 256,
        slow_threshold_ms: float = 100.0,
        profile_stream: bool = False,
        slo: "SloConfig | None" = None,
    ) -> "CoordinatorState":
        """Recover an interrupted service run and make it serveable again.

        Re-executes every persisted arrival past the newest checkpoint,
        verifying each against its surviving journal frame and trace
        bytes; ``verify`` additionally reconstructs the stitched trace
        and checks it against the live cache.  ``crash`` arms a *new*
        crash injection for the resumed service (chaos sweeps).
        Observability knobs (``debug_ring``/``slow_threshold_ms``/
        ``profile_stream``/``slo``) are not part of the durable manifest
        — they describe *this* process, not the run — so the resuming
        caller supplies them afresh.
        """
        run_dir = Path(run_dir)
        doc = _load_service_manifest(run_dir)
        sim = _config_from_manifest(doc)
        dur = doc["durability"]
        fault = None if doc.get("fault") is None else FaultSpec(**doc["fault"])
        config = ServiceConfig(
            workload=run_dir / "workload.jsonl",
            cache_size=sim.cache_size,
            run_dir=run_dir,
            policy=sim.policy,
            policy_kwargs=sim.policy_kwargs,
            warmup=sim.warmup,
            check_invariants=sim.check_invariants,
            checkpoint_every=int(dur["checkpoint_every"]),
            fsync=str(dur["fsync"]),
            max_segment_bytes=int(dur["max_segment_bytes"]),
            crash=crash,
            fault=fault,
            debug_ring=debug_ring,
            slow_threshold_ms=slow_threshold_ms,
            profile_stream=profile_stream,
            **({} if slo is None else {"slo": slo}),
        )
        workload = Trace.load(run_dir / "workload.jsonl")

        arrivals_path = run_dir / "arrivals.jsonl"
        arrivals, intact = _load_arrivals(arrivals_path)
        persisted = list(arrivals)

        ckpt = latest_checkpoint(run_dir / "checkpoints")
        frames, _torn = read_journal_dir(run_dir / "journal")
        if ckpt is not None:
            start_job = ckpt.job
            restored: dict[str, Any] | None = ckpt.state
            trace_offset = ckpt.trace_offset
            start_seq = ckpt.trace_seq
        else:
            start_job = 0
            restored = None
            trace_offset = 0
            start_seq = 0
        if start_job > len(persisted):
            raise DurabilityError(
                f"checkpoint covers {start_job} jobs but the arrivals record "
                f"holds only {len(persisted)}"
            )
        # frames already subsumed by the checkpoint are dropped; so are
        # frames whose arrival line did not survive (per-job commit order
        # makes that power-loss-only, and such a job was never acknowledged)
        tail = [f for f in frames if start_job <= f.job < len(persisted)]

        trace_path = run_dir / "trace.jsonl"
        existing = trace_path.read_bytes() if trace_path.exists() else b""
        if len(existing) < trace_offset:
            raise DurabilityError(
                f"{trace_path} holds {len(existing)} bytes but the checkpoint "
                f"records {trace_offset}"
            )
        while tail and int(tail[-1].payload["trace_offset"]) > len(existing):
            tail.pop()
        oracle = b""
        if tail:
            oracle = existing[trace_offset : int(tail[-1].payload["trace_offset"])]
        if not trace_path.exists():
            trace_path.touch()
        with open(trace_path, "rb+") as fh:
            fh.truncate(trace_offset)
            fh.flush()
            os.fsync(fh.fileno())
        for segment in list_segments(run_dir / "journal"):
            segment.unlink()
        fsync_dir(run_dir / "journal")

        state = cls(
            config,
            workload,
            restored=restored,
            start_seq=start_seq,
            next_job=start_job,
            tail_frames=tail,
            oracle=oracle,
        )
        # re-execute the persisted arrivals past the checkpoint; the first
        # len(tail) must reproduce their journal frames byte-for-byte
        for job_index in range(start_job, len(persisted)):
            state._service(job_index, persisted[job_index])
            state.next_job = job_index + 1
        if state._replayed < len(tail):
            raise ReplayDivergenceError(
                f"journal holds {len(tail)} frames past job {start_job} but "
                f"re-execution produced only {state._replayed}"
            )
        if verify:
            from repro.telemetry.forensics import reconstruct, verify_against_cache

            state._jsonl.flush()
            report = reconstruct(str(trace_path), capacity=config.cache_size)
            report.raise_if_violations()
            mismatches = verify_against_cache(report, state.cache)
            if mismatches:
                raise ReplayDivergenceError(
                    "stitched trace disagrees with the live cache: "
                    + "; ".join(mismatches)
                )
        with open(arrivals_path, "rb+") as trunc:
            trunc.truncate(intact)
            trunc.flush()
            os.fsync(trunc.fileno())
        fh = open(arrivals_path, "ab")
        state._arrivals = fh
        return state

    # ------------------------------------------------------------------ #
    # serving

    def submit(self, files: list[str], *, priority: float = 1.0) -> JobResult:
        """Accept, persist and service one job; returns its decisions.

        Raises :class:`~repro.errors.ServiceError` for an empty bundle
        and :class:`~repro.errors.UnknownFileError` for files outside the
        catalog — both *before* the arrival is persisted, so the durable
        record only ever holds serviceable-shaped jobs.
        """
        if self._closed:
            raise ServiceError("coordinator state is closed")
        if not files:
            raise ServiceError("a job must request at least one file")
        unknown = sorted(f for f in set(files) if f not in self.sizes)
        if unknown:
            raise UnknownFileError(
                f"job references files outside the catalog: {unknown}"
            )
        job_index = self.next_job
        request = Request(
            request_id=job_index,
            bundle=FileBundle(files),
            priority=float(priority),
        )
        self._append_arrival(request)
        result = self._service(job_index, request)
        self.next_job = job_index + 1
        return result

    def _append_arrival(self, request: Request) -> None:
        if self._arrivals is None:
            raise ServiceError("arrivals record is not open")
        line = json.dumps(
            {
                "files": sorted(request.bundle.files),
                "id": request.request_id,
                "priority": request.priority,
                "t": request.arrival_time,
                "type": "job",
            }
        )
        self._arrivals.write(line.encode("utf-8") + b"\n")
        # the arrival must be at least as durable as the decision that
        # follows it: it is the replay input recovery re-executes
        self._arrivals.flush()
        if self._strict:
            os.fsync(self._arrivals.fileno())

    def _service(self, job_index: int, request: Request) -> JobResult:
        t0 = time.perf_counter()
        self._sink.capture = []
        trace_start = self._jsonl.bytes_written
        outcome = self.core.submit(job_index, request)
        if self._strict:
            self._jsonl.flush(sync=True)
        trace_offset = self._jsonl.bytes_written
        seq = self.recorder.events_emitted
        frame = {
            "job": job_index,
            "request_id": request.request_id,
            "trace_start": trace_start,
            "trace_offset": trace_offset,
            "seq": seq,
            "arrivals_consumed": job_index + 1,
        }
        encoded = (
            f'{{"job":{job_index},"request_id":{request.request_id},'
            f'"trace_start":{trace_start},"trace_offset":{trace_offset},'
            f'"seq":{seq},"arrivals_consumed":{job_index + 1}}}'
        ).encode("ascii")
        captured = self._sink.capture or []
        self._sink.capture = None
        if self._replayed < len(self._tail_frames):
            _check_frame(
                self._tail_frames[self._replayed],
                frame,
                actual_bytes="".join(line + "\n" for line in captured).encode("utf-8"),
                oracle=self._oracle,
                oracle_base=self._oracle_base,
            )
            self._replayed += 1
        with self.recorder.span("journal.commit"):
            self.journal.append(frame, encoded=encoded)
            if self._crash is not None:
                self._crash.tick(torn_hook=lambda: _append_torn_frame(self.journal))
            if (job_index + 1) % self.config.checkpoint_every == 0:
                self._checkpoint(job_index + 1)
        retries = 0
        stall_s = 0.0
        if self._faults is not None:
            with self.recorder.span("srm.stage"):
                for _ in outcome.loaded:
                    if self._faults.transfer_fault("service") is not None:
                        retries += 1
                    # a latency spike stretches the nominal staging time;
                    # the simulated stall feeds the SLO latency signal only
                    # (never the trace, never the host-timing histogram)
                    stall_s += (
                        self._faults.latency_spike("service") - 1.0
                    ) * NOMINAL_STAGE_SECONDS
                if retries:
                    self._transfer_faults.inc(retries)
        elapsed = time.perf_counter() - t0
        self._decision_seconds.observe(elapsed)
        self.slo.observe(
            requested_bytes=outcome.requested_bytes,
            demand_bytes=outcome.demand_bytes,
            latency_s=elapsed + stall_s,
        )
        return JobResult(
            outcome,
            [json.loads(line) for line in captured],
            retries,
            request_id_for_job(job_index),
        )

    def _checkpoint(self, job: int) -> None:
        self._jsonl.flush(sync=self._strict)
        write_checkpoint(
            self.run_dir / "checkpoints",
            job=job,
            arrivals_consumed=job,
            trace_offset=self._jsonl.bytes_written,
            trace_seq=self.recorder.events_emitted,
            state={
                "cache": self.cache.export_state(),
                "policy": self.policy.export_state(),
                "metrics": self.metrics.export_state(),
                "queue": None,
            },
            fsync=self._strict,
        )
        self.journal.truncate_to_checkpoint()
        self.checkpoints_written += 1

    # ------------------------------------------------------------------ #
    # read-side payloads

    def cache_payload(self) -> dict[str, Any]:
        """The ``GET /v1/cache`` body: residency + metrics snapshot."""
        state = self.cache.export_state()
        return {
            "capacity": state["capacity"],
            "used": self.cache.used,
            "free": self.cache.free,
            "residents": state["resident"],
            "jobs": self.next_job,
            "metrics": self.metrics.snapshot().as_dict(),
        }

    def config_payload(self) -> dict[str, Any]:
        """The ``GET /v1/config`` body: the run's effective parameters."""
        cfg = self.config
        return {
            "cache_size": cfg.cache_size,
            "policy": cfg.policy,
            "policy_name": self.policy.name,
            "policy_kwargs": {
                k: getattr(v, "value", v) for k, v in cfg.policy_kwargs.items()
            },
            "warmup": cfg.warmup,
            "check_invariants": cfg.check_invariants,
            "checkpoint_every": cfg.checkpoint_every,
            "fsync": cfg.fsync,
            "run_dir": str(cfg.run_dir),
            "workload_files": len(self.sizes),
            "fault_injection": cfg.fault is not None and cfg.fault.enabled,
        }

    def health_payload(self) -> dict[str, Any]:
        """The ``GET /healthz`` body."""
        return {
            "status": "ok",
            "policy": self.policy.name,
            "jobs": self.next_job,
            "resumed_from_job": self.resumed_from_job,
            "checkpoints_written": self.checkpoints_written,
            "slo": self.slo.payload(),
            "requests_traced": self.tracer.requests_traced,
        }

    def prometheus(self) -> str:
        """The ``GET /metrics`` body (Prometheus text exposition)."""
        return self.registry.to_prometheus()

    def count_http_request(
        self,
        *,
        method: str,
        route: str,
        status: int,
        duration_s: float | None = None,
    ) -> None:
        """Registry bookkeeping for the HTTP layer (one call per response).

        ``route`` must come from the bounded route vocabulary (a known
        path, ``"<unroutable>"`` or ``"<unparsed>"``) so label
        cardinality stays finite.  ``duration_s`` is the server-side
        exchange latency measured by the request tracer; ``None`` (ring
        disabled) skips the latency histogram.
        """
        self._http_requests.labels(
            method=method, route=route, status=str(status)
        ).inc()
        if status >= 400:
            self._http_errors.inc()
        if duration_s is not None:
            self._http_seconds.labels(method=method, route=route).observe(
                duration_s
            )

    # ------------------------------------------------------------------ #

    def close(self) -> None:
        """Flush and release every durable artifact (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self.journal.close()
        self._jsonl.flush(sync=self._strict)
        self._sink.close()
        if self._profile_fh is not None and not self._profile_fh.closed:
            self._profile_fh.close()
        if self._arrivals is not None and not self._arrivals.closed:
            self._arrivals.flush()
            if self._strict:
                os.fsync(self._arrivals.fileno())
            self._arrivals.close()

    def __enter__(self) -> "CoordinatorState":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
        return None
