"""Live SLO monitoring for the coordinator service.

The paper's headline quantity — byte miss ratio as the proxy for
average retrieval cost — used to be computable only after the fact.
:class:`SloMonitor` runs the forensics MAD detector
(:class:`~repro.telemetry.forensics.anomaly.TrailingMadDetector`)
*online*, inside :class:`~repro.service.state.CoordinatorState`: every
serviced job feeds a window accumulator, every closed window yields one
point per signal, and each point is judged against the trailing windows
the same way ``repro-fbc analyze --anomalies`` judges a finished trace.

Signals
-------
``byte_miss``
    The window's byte-miss ratio (demand bytes loaded / bytes
    requested) — deterministic, a pure function of the arrival
    sequence.
``latency``
    The window's mean request latency in milliseconds — a host
    observation (plus any fault-injected simulated stall), so it lives
    in gauges and the health payload only, never the decision trace.

Burn rate is the window value over its SLO target (the error-budget
reading: > 1.0 means the budget is being spent faster than allowed).
The alert gauge for a signal is 1 while the *latest* window is either
anomalous against its trailing history or burning budget at > 1.0.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.errors import ConfigError
from repro.sim.metrics import ratio_of
from repro.telemetry.forensics.anomaly import TrailingMadDetector
from repro.telemetry.metrics import MetricsRegistry

__all__ = ["SloConfig", "SloMonitor", "SLO_SIGNALS"]

#: the signals the monitor tracks, in export order
SLO_SIGNALS: tuple[str, ...] = ("byte_miss", "latency")


@dataclass(frozen=True)
class SloConfig:
    """Knobs of the online SLO engine.

    ``window_jobs`` is the evaluation granularity (one detector point
    per window).  The targets define the error budget: byte-miss ratio
    above ``byte_miss_target``, or mean latency above
    ``latency_target_ms``, burns budget at rate > 1.  Detector knobs
    mirror :func:`~repro.telemetry.forensics.anomaly.detect_anomalies`.
    """

    window_jobs: int = 50
    byte_miss_target: float = 0.5
    latency_target_ms: float = 50.0
    detector_window: int = 9
    threshold: float = 3.5
    min_history: int = 5
    min_mad: float = 1e-9

    def __post_init__(self) -> None:
        if self.window_jobs < 1:
            raise ConfigError(
                f"window_jobs must be >= 1, got {self.window_jobs}"
            )
        if not 0.0 < self.byte_miss_target <= 1.0:
            raise ConfigError(
                f"byte_miss_target must be in (0, 1], got {self.byte_miss_target}"
            )
        if self.latency_target_ms <= 0:
            raise ConfigError(
                f"latency_target_ms must be positive, got {self.latency_target_ms}"
            )
        # detector knobs are validated by TrailingMadDetector itself


class _Signal:
    """One monitored series: detector + gauges + last-window snapshot."""

    __slots__ = ("name", "target", "detector", "alert", "windows", "value", "score")

    def __init__(self, name: str, target: float, config: SloConfig):
        self.name = name
        self.target = target
        self.detector = TrailingMadDetector(
            window=config.detector_window,
            threshold=config.threshold,
            min_history=config.min_history,
            min_mad=config.min_mad,
        )
        self.alert = False
        self.windows = 0
        self.value = 0.0
        self.score = 0.0

    @property
    def burn_rate(self) -> float:
        return ratio_of(self.value, self.target)

    def roll(self, value: float) -> bool:
        """Absorb one window value; returns the new alert state."""
        self.score = self.detector.score(value)
        anomaly = self.detector.update(value)
        self.value = value
        self.windows += 1
        self.alert = anomaly is not None or self.burn_rate > 1.0
        return self.alert


class SloMonitor:
    """Windowed online SLO evaluation over one service's job stream.

    Construct with the service's registry; call :meth:`observe` once per
    serviced job.  Gauges (``service_slo_burn_rate``,
    ``service_slo_alert``, ``service_slo_score``,
    ``service_slo_window_value``) and counters
    (``service_slo_windows_total``, ``service_slo_alerts_total``) are
    exported per signal on ``/metrics``; :meth:`payload` feeds
    ``/healthz``.
    """

    def __init__(self, registry: MetricsRegistry, config: SloConfig | None = None):
        self.config = config or SloConfig()
        self._signals = {
            "byte_miss": _Signal("byte_miss", self.config.byte_miss_target, self.config),
            "latency": _Signal("latency", self.config.latency_target_ms, self.config),
        }
        self._jobs = 0
        self._bytes_requested = 0
        self._bytes_missed = 0
        self._latency_sum_s = 0.0
        self._burn = registry.gauge_family(
            "service_slo_burn_rate",
            "last window's value over its SLO target (>1 burns budget)",
            ("signal",),
        )
        self._alert = registry.gauge_family(
            "service_slo_alert",
            "1 while the latest window is anomalous or over budget",
            ("signal",),
        )
        self._score = registry.gauge_family(
            "service_slo_score",
            "robust z-score of the latest window against its trailing history",
            ("signal",),
        )
        self._value = registry.gauge_family(
            "service_slo_window_value",
            "the latest completed window's raw signal value",
            ("signal",),
        )
        self._windows_total = registry.counter(
            "service_slo_windows_total", "completed SLO evaluation windows"
        )
        self._alerts_total = registry.counter_family(
            "service_slo_alerts_total",
            "windows that entered the alert state",
            ("signal",),
        )

    # ------------------------------------------------------------------ #

    def observe(
        self,
        *,
        requested_bytes: int,
        demand_bytes: int,
        latency_s: float,
    ) -> None:
        """Fold one serviced job in; rolls the window when it fills."""
        self._jobs += 1
        self._bytes_requested += requested_bytes
        self._bytes_missed += demand_bytes
        self._latency_sum_s += latency_s
        if self._jobs >= self.config.window_jobs:
            self._roll()

    def _roll(self) -> None:
        values = {
            "byte_miss": ratio_of(self._bytes_missed, self._bytes_requested),
            "latency": (self._latency_sum_s / self._jobs) * 1e3,
        }
        self._jobs = 0
        self._bytes_requested = 0
        self._bytes_missed = 0
        self._latency_sum_s = 0.0
        self._windows_total.inc()
        for name, value in values.items():
            signal = self._signals[name]
            alerted = signal.roll(value)
            self._burn.labels(signal=name).set(signal.burn_rate)
            self._alert.labels(signal=name).set(int(alerted))
            self._score.labels(signal=name).set(signal.score)
            self._value.labels(signal=name).set(value)
            if alerted:
                self._alerts_total.labels(signal=name).inc()

    # ------------------------------------------------------------------ #

    @property
    def alerting(self) -> bool:
        return any(s.alert for s in self._signals.values())

    def payload(self) -> dict[str, Any]:
        """The SLO block of the ``/healthz`` body."""
        return {
            "window_jobs": self.config.window_jobs,
            "alerting": self.alerting,
            "signals": {
                name: {
                    "alert": s.alert,
                    "windows": s.windows,
                    "value": s.value,
                    "target": s.target,
                    "burn_rate": s.burn_rate,
                    "score": s.score,
                }
                for name, s in self._signals.items()
            },
        }
