"""Minimal HTTP/1.1 framing over asyncio streams (stdlib only).

Just enough protocol for the coordinator service and its load
generator: request-line + headers + ``Content-Length`` bodies, JSON
payloads, and keep-alive connection reuse.  No chunked encoding, no
TLS, no pipelining — requests on one connection are processed strictly
in order, which is exactly the semantics the single-writer coordinator
wants.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Any

from repro.errors import ServiceError

__all__ = [
    "HttpRequest",
    "HttpResponse",
    "MAX_HEADER_BYTES",
    "MAX_BODY_BYTES",
    "read_request",
    "read_response",
    "write_request",
    "write_response",
    "json_response",
    "error_response",
]

#: refuse request heads larger than this (one attacker-controlled readuntil)
MAX_HEADER_BYTES = 16 * 1024
#: refuse bodies larger than this (a job submission is a few KB at most)
MAX_BODY_BYTES = 1024 * 1024

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    411: "Length Required",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


@dataclass
class HttpRequest:
    """One parsed request (server side) — headers lower-cased."""

    method: str
    target: str
    headers: dict[str, str]
    body: bytes

    def json(self) -> Any:
        try:
            return json.loads(self.body) if self.body else None
        except json.JSONDecodeError as exc:
            raise ServiceError(f"request body is not valid JSON: {exc}") from None

    @property
    def keep_alive(self) -> bool:
        return self.headers.get("connection", "keep-alive").lower() != "close"


@dataclass
class HttpResponse:
    """One response to serialize — body plus content type."""

    status: int
    body: bytes
    content_type: str = "application/json"
    headers: dict[str, str] = field(default_factory=dict)

    def json(self) -> Any:
        return json.loads(self.body) if self.body else None


def json_response(payload: Any, *, status: int = 200) -> HttpResponse:
    """A canonical-JSON response (sorted keys — byte-stable payloads)."""
    body = json.dumps(payload, sort_keys=True, separators=(",", ":")).encode("utf-8")
    return HttpResponse(status=status, body=body)


def error_response(status: int, message: str) -> HttpResponse:
    return json_response({"error": message}, status=status)


async def _read_head(
    reader: asyncio.StreamReader,
) -> tuple[list[str], dict[str, str]] | None:
    """Read request/status line + headers; ``None`` on a clean EOF."""
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ServiceError("connection closed mid-header") from None
    except asyncio.LimitOverrunError:
        raise ServiceError(
            f"header block exceeds {MAX_HEADER_BYTES} bytes"
        ) from None
    if len(head) > MAX_HEADER_BYTES:
        raise ServiceError(f"header block exceeds {MAX_HEADER_BYTES} bytes")
    lines = head.decode("latin-1").split("\r\n")
    first = lines[0].split(" ")
    headers: dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise ServiceError(f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()
    return first, headers


async def _read_body(reader: asyncio.StreamReader, headers: dict[str, str]) -> bytes:
    length_text = headers.get("content-length", "0")
    try:
        length = int(length_text)
    except ValueError:
        raise ServiceError(f"bad Content-Length {length_text!r}") from None
    if length < 0:
        raise ServiceError(f"bad Content-Length {length_text!r}")
    if length > MAX_BODY_BYTES:
        raise ServiceError(f"body of {length} bytes exceeds {MAX_BODY_BYTES}")
    if length == 0:
        return b""
    try:
        return await reader.readexactly(length)
    except asyncio.IncompleteReadError:
        raise ServiceError("connection closed mid-body") from None


async def read_request(reader: asyncio.StreamReader) -> HttpRequest | None:
    """Parse one request; ``None`` when the peer closed between requests."""
    head = await _read_head(reader)
    if head is None:
        return None
    first, headers = head
    if len(first) != 3:
        raise ServiceError(f"malformed request line {' '.join(first)!r}")
    method, target, version = first
    if not version.startswith("HTTP/1."):
        raise ServiceError(f"unsupported protocol {version!r}")
    body = await _read_body(reader, headers)
    return HttpRequest(
        method=method.upper(), target=target, headers=headers, body=body
    )


async def read_response(reader: asyncio.StreamReader) -> HttpResponse:
    """Parse one response (client side)."""
    head = await _read_head(reader)
    if head is None:
        raise ServiceError("connection closed before a response arrived")
    first, headers = head
    if len(first) < 2:
        raise ServiceError(f"malformed status line {' '.join(first)!r}")
    try:
        status = int(first[1])
    except ValueError:
        raise ServiceError(f"malformed status {first[1]!r}") from None
    body = await _read_body(reader, headers)
    return HttpResponse(
        status=status,
        body=body,
        content_type=headers.get("content-type", ""),
        headers=headers,
    )


def write_request(
    writer: asyncio.StreamWriter,
    method: str,
    target: str,
    *,
    body: bytes = b"",
    content_type: str = "application/json",
    headers: "dict[str, str] | None" = None,
) -> None:
    """Serialize one keep-alive request onto ``writer`` (client side).

    ``headers`` adds extra request headers (e.g. the loadgen's
    ``X-Repro-Request-Id`` correlation id) after the standard ones.
    """
    head = (
        f"{method} {target} HTTP/1.1\r\n"
        f"Host: coordinator\r\n"
        f"Content-Length: {len(body)}\r\n"
    )
    if body:
        head += f"Content-Type: {content_type}\r\n"
    for name, value in (headers or {}).items():
        head += f"{name}: {value}\r\n"
    writer.write(head.encode("latin-1") + b"\r\n" + body)


def write_response(
    writer: asyncio.StreamWriter, response: HttpResponse, *, keep_alive: bool = True
) -> None:
    """Serialize one response onto ``writer`` (server side)."""
    reason = _REASONS.get(response.status, "Unknown")
    head = (
        f"HTTP/1.1 {response.status} {reason}\r\n"
        f"Content-Type: {response.content_type}\r\n"
        f"Content-Length: {len(response.body)}\r\n"
        f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
    )
    for name, value in response.headers.items():
        head += f"{name}: {value}\r\n"
    writer.write(head.encode("latin-1") + b"\r\n" + response.body)
