"""repro — Optimal File-Bundle Caching Algorithms for Data-Grids (SC'04).

A faithful, laptop-scale reproduction of Otoo, Rotem & Romosan's
file-bundle caching system: the ``OptCacheSelect``/``OptFileBundle``
algorithms, a replacement-policy suite, synthetic data-grid workloads, a
trace-driven cache simulator and a timed SRM/MSS substrate.

Most users need only the re-exports below; the subpackages are:

* :mod:`repro.core` — the paper's algorithms and theory;
* :mod:`repro.cache` — cache state and replacement policies;
* :mod:`repro.workload` — workload generation, traces, analytics;
* :mod:`repro.sim` — the simulator, metrics, queueing, sweeps;
* :mod:`repro.grid` — timed data-grid substrate (MSS, links, SRM, sites);
* :mod:`repro.faults` — deterministic fault injection for the grid layer;
* :mod:`repro.experiments` — per-figure reproduction drivers;
* :mod:`repro.cli` — the ``repro-fbc`` command-line interface.
"""

from repro.core import (
    FBCInstance,
    FileBundle,
    OptFileBundlePlanner,
    opt_cache_select,
    opt_cache_select_enum,
    solve_exact,
)
from repro.cache import CacheState, make_policy, POLICY_REGISTRY
from repro.faults import FaultInjector, FaultSpec
from repro.sim import SimulationConfig, simulate_trace
from repro.workload import Trace, WorkloadSpec, generate_trace
from repro.experiments import EXPERIMENTS, run_experiment

__version__ = "1.0.0"

__all__ = [
    "FBCInstance",
    "FileBundle",
    "OptFileBundlePlanner",
    "opt_cache_select",
    "opt_cache_select_enum",
    "solve_exact",
    "CacheState",
    "make_policy",
    "POLICY_REGISTRY",
    "FaultSpec",
    "FaultInjector",
    "SimulationConfig",
    "simulate_trace",
    "Trace",
    "WorkloadSpec",
    "generate_trace",
    "EXPERIMENTS",
    "run_experiment",
    "__version__",
]
