"""Dense-k-Subgraph ↔ File-Bundle Caching reduction (Section 4).

The paper proves FBC NP-hard by reduction from the Dense-k-Subgraph (DKS)
problem: every vertex becomes a unit-size file, every edge ``(x, y)`` a
request for the two files ``f(x), f(y)`` of value 1, and the cache budget is
``k``.  A cache content then corresponds to a choice of ``k`` vertices, and
the supported requests are exactly the edges inside the induced subgraph.

This module implements the reduction in both directions so that any FBC
solver doubles as a DKS heuristic (with the same bound from optimality, as
the paper observes).  Graphs are plain edge lists, so ``networkx`` graphs
can be passed via ``G.edges()``.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Sequence

from repro.core.bundle import FileBundle
from repro.core.optcacheselect import FBCInstance
from repro.errors import ConfigError

__all__ = ["dks_to_fbc", "fbc_files_to_dks_vertices", "count_induced_edges"]


def _vertex_file(v: Hashable) -> str:
    return f"v:{v}"


def dks_to_fbc(edges: Iterable[tuple[Hashable, Hashable]], k: int) -> FBCInstance:
    """Encode a DKS instance (graph, k) as an FBC instance.

    Vertices become unit-size files; each edge becomes a value-1 request for
    its two endpoint files; the budget is ``k`` bytes.  Self-loops are
    rejected (a DKS instance is a simple graph); parallel edges collapse
    into one request of value 1, matching the induced-edge count semantics.
    """
    if k < 0:
        raise ConfigError(f"k must be non-negative, got {k}")
    bundles: list[FileBundle] = []
    seen: set[frozenset[str]] = set()
    files: set[str] = set()
    for x, y in edges:
        if x == y:
            raise ConfigError(f"self-loop on vertex {x!r}: DKS requires a simple graph")
        fx, fy = _vertex_file(x), _vertex_file(y)
        files.update((fx, fy))
        key = frozenset((fx, fy))
        if key in seen:
            continue
        seen.add(key)
        bundles.append(FileBundle(key))
    return FBCInstance(
        bundles=tuple(bundles),
        values=tuple(1.0 for _ in bundles),
        sizes={f: 1 for f in files},
        budget=k,
    )


def fbc_files_to_dks_vertices(files: Iterable[str]) -> set[str]:
    """Decode cache-resident files of a reduced instance back to vertices."""
    out: set[str] = set()
    for f in files:
        if not f.startswith("v:"):
            raise ConfigError(f"file {f!r} is not a vertex encoding")
        out.add(f[2:])
    return out


def count_induced_edges(
    edges: Iterable[tuple[Hashable, Hashable]], vertices: Sequence[Hashable] | set
) -> int:
    """Number of distinct edges with both endpoints in ``vertices``."""
    vset = {str(v) for v in vertices}
    seen: set[frozenset[str]] = set()
    count = 0
    for x, y in edges:
        if str(x) in vset and str(y) in vset:
            key = frozenset((str(x), str(y)))
            if key not in seen:
                seen.add(key)
                count += 1
    return count
