"""The request-history data structure ``L(R)`` (Section 3 of the paper).

``L(R)`` stores, for every request type (bundle) ever serviced, its value
``v(r)`` — by default an occurrence counter — together with its file set.
From it the algorithms derive the *degree* ``d(f)`` of each file (the number
of distinct request types that use it) and the *adjusted* sizes and values
driving ``OptCacheSelect``.

Truncation (Section 5.2, "Request History Length")
--------------------------------------------------
Maintaining and re-ranking the full history on every arrival is expensive,
so the paper studies truncations and settles on considering only *requests
supported by the cache* as selection candidates, "while obtaining the
request popularity and the degree of file sharing from the global history".
This module therefore always keeps global counters (cheap dictionaries) and
lets the candidate set be restricted three ways:

* ``TruncationMode.FULL`` — every request type ever seen is a candidate;
* ``TruncationMode.WINDOW`` — only types seen in the last *W* arrivals;
* ``TruncationMode.CACHE_SUPPORTED`` — only types whose files are all
  resident (given the resident set the caller maintains through
  :meth:`RequestHistory.on_file_loaded` / :meth:`on_file_evicted`); an
  incremental missing-file counter makes this O(degree) per cache change
  instead of O(history) per arrival, and a ``_supported`` index keeps
  :meth:`RequestHistory.candidates` at O(|supported|) per query instead of
  an O(history) filter.

Entries carry a stable integer id (``eid``, assigned in first-seen order)
so downstream incremental structures — notably
:class:`repro.core.selection_state.SelectionState` — can index candidates
without rebuilding per arrival; such structures subscribe to new-entry
events via :meth:`RequestHistory.add_listener`.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field
from typing import Iterable

from repro.core.bundle import FileBundle
from repro.errors import ConfigError
from repro.types import FileId

__all__ = ["TruncationMode", "HistoryEntry", "RequestHistory"]


class TruncationMode(enum.Enum):
    """Which request types are offered to ``OptCacheSelect`` as candidates."""

    FULL = "full"
    WINDOW = "window"
    CACHE_SUPPORTED = "cache"


@dataclass(slots=True)
class HistoryEntry:
    """Per-request-type record held in ``L(R)``.

    ``value`` is ``v(r)``: the paper's occurrence counter, optionally
    priority-weighted and/or exponentially decayed (extensions).
    """

    bundle: FileBundle
    eid: int = -1
    value: float = 0.0
    count: int = 0
    first_seen: int = -1
    last_seen: int = -1
    _last_decay_tick: int = field(default=0, repr=False)


class RequestHistory:
    """Incrementally maintained ``L(R)`` with candidate truncation.

    Parameters
    ----------
    mode:
        Candidate truncation policy (default: ``CACHE_SUPPORTED``, the
        configuration the paper uses for all experiments after Fig. 5).
    window:
        Arrival-window length, required iff ``mode`` is ``WINDOW``.
    decay:
        Optional per-arrival multiplicative value decay in ``(0, 1]``;
        ``1.0`` (default) reproduces the paper's pure counter.  Decay is an
        extension used by the value-function ablation.
    """

    def __init__(
        self,
        mode: TruncationMode = TruncationMode.CACHE_SUPPORTED,
        *,
        window: int | None = None,
        decay: float = 1.0,
    ):
        if mode is TruncationMode.WINDOW:
            if window is None or window <= 0:
                raise ConfigError("WINDOW truncation requires a positive window")
        elif window is not None:
            raise ConfigError("window is only meaningful with TruncationMode.WINDOW")
        if not (0.0 < decay <= 1.0):
            raise ConfigError(f"decay must be in (0, 1], got {decay}")
        self._mode = mode
        self._window = window
        self._decay = decay
        self._tick = 0  # number of arrivals recorded

        self._entries: dict[FileBundle, HistoryEntry] = {}
        self._degree: dict[FileId, int] = {}
        self._max_degree = 0  # degrees only grow, so the max is incremental
        # file -> entries whose bundle contains it; drives support updates
        self._by_file: dict[FileId, list[HistoryEntry]] = {}
        # incremental-structure subscribers (see add_listener)
        self._listeners: list = []

        # CACHE_SUPPORTED bookkeeping
        self._resident: set[FileId] = set()
        self._missing: dict[FileBundle, int] = {}
        # eid -> entry for every entry with zero missing files; sorting the
        # (integer) keys restores first-seen order without scanning history
        self._supported: dict[int, HistoryEntry] = {}

        # WINDOW bookkeeping
        self._window_arrivals: deque[FileBundle] = deque()
        self._window_counts: dict[FileBundle, int] = {}

    # ------------------------------------------------------------------ #
    # recording arrivals

    def record(self, bundle: FileBundle, *, weight: float = 1.0) -> HistoryEntry:
        """Record one arrival of ``bundle`` with importance ``weight``.

        Creates the entry (updating file degrees) on first sight; otherwise
        bumps the counter/value.  Returns the up-to-date entry.
        """
        if weight <= 0:
            raise ConfigError(f"weight must be positive, got {weight}")
        self._tick += 1
        entry = self._entries.get(bundle)
        if entry is None:
            entry = HistoryEntry(
                bundle=bundle, eid=len(self._entries), first_seen=self._tick
            )
            entry._last_decay_tick = self._tick
            self._entries[bundle] = entry
            for f in bundle:
                d = self._degree.get(f, 0) + 1
                self._degree[f] = d
                if d > self._max_degree:
                    self._max_degree = d
                self._by_file.setdefault(f, []).append(entry)
            missing = sum(1 for f in bundle if f not in self._resident)
            self._missing[bundle] = missing
            if missing == 0:
                self._supported[entry.eid] = entry
            for listener in self._listeners:
                listener.on_entry_added(entry)
        self._apply_decay(entry)
        entry.value += weight
        entry.count += 1
        entry.last_seen = self._tick

        if self._mode is TruncationMode.WINDOW:
            self._window_arrivals.append(bundle)
            self._window_counts[bundle] = self._window_counts.get(bundle, 0) + 1
            assert self._window is not None
            while len(self._window_arrivals) > self._window:
                old = self._window_arrivals.popleft()
                remaining = self._window_counts[old] - 1
                if remaining:
                    self._window_counts[old] = remaining
                else:
                    del self._window_counts[old]
        return entry

    def _apply_decay(self, entry: HistoryEntry) -> None:
        if self._decay >= 1.0:
            return
        elapsed = self._tick - entry._last_decay_tick
        if elapsed > 0:
            entry.value *= self._decay**elapsed
        entry._last_decay_tick = self._tick

    # ------------------------------------------------------------------ #
    # resident-set notifications (CACHE_SUPPORTED truncation)

    def on_file_loaded(self, file_id: FileId) -> None:
        """Tell the history a file became resident in the cache."""
        if file_id in self._resident:
            return
        self._resident.add(file_id)
        for entry in self._by_file.get(file_id, ()):
            bundle = entry.bundle
            left = self._missing[bundle] - 1
            self._missing[bundle] = left
            if left == 0:
                self._supported[entry.eid] = entry

    def on_file_evicted(self, file_id: FileId) -> None:
        """Tell the history a file left the cache."""
        if file_id not in self._resident:
            return
        self._resident.discard(file_id)
        for entry in self._by_file.get(file_id, ()):
            bundle = entry.bundle
            if self._missing[bundle] == 0:
                del self._supported[entry.eid]
            self._missing[bundle] += 1

    def sync_resident(self, resident: Iterable[FileId]) -> None:
        """Replace the resident view wholesale (used at (re)initialisation).

        Sorted so the `_supported` index is rebuilt in a reproducible
        insertion order regardless of the set hash seed.
        """
        target = set(resident)
        for f in sorted(self._resident - target):
            self.on_file_evicted(f)
        for f in sorted(target - self._resident):
            self.on_file_loaded(f)

    # ------------------------------------------------------------------ #
    # incremental-structure subscription

    def add_listener(self, listener) -> None:
        """Subscribe an incremental structure to new-entry events.

        ``listener.on_entry_added(entry)`` is invoked once per *new*
        request type, after the entry, its degrees and its support state
        are fully registered.  Entries already present at subscription
        time are replayed immediately (in ``eid`` order), so a listener
        may attach to a warm history.
        """
        for entry in self._entries.values():
            listener.on_entry_added(entry)
        self._listeners.append(listener)

    # ------------------------------------------------------------------ #
    # queries

    @property
    def mode(self) -> TruncationMode:
        return self._mode

    @property
    def arrivals(self) -> int:
        """Total number of arrivals recorded."""
        return self._tick

    def __len__(self) -> int:
        """Number of distinct request types in the global history."""
        return len(self._entries)

    def __contains__(self, bundle: FileBundle) -> bool:
        return bundle in self._entries

    def entry(self, bundle: FileBundle) -> HistoryEntry:
        return self._entries[bundle]

    def value_of(self, bundle: FileBundle) -> float:
        """Current (decayed) value ``v(r)``; 0.0 for unseen bundles."""
        entry = self._entries.get(bundle)
        if entry is None:
            return 0.0
        self._apply_decay(entry)
        return entry.value

    def degree(self, file_id: FileId) -> int:
        """``d(f)``: number of distinct request types using ``file_id``."""
        return self._degree.get(file_id, 0)

    def degrees(self) -> dict[FileId, int]:
        """A copy of the full degree mapping."""
        return dict(self._degree)

    def max_degree(self) -> int:
        """``d``: the largest file degree in the history (0 when empty).

        Maintained incrementally in :meth:`record` (degrees only ever
        grow), so this is O(1) rather than a scan over all files.
        """
        return self._max_degree

    def entries(self) -> list[HistoryEntry]:
        """All entries of the global history (no truncation)."""
        return list(self._entries.values())

    def candidates(self) -> list[HistoryEntry]:
        """Entries eligible for ``OptCacheSelect`` under the truncation mode.

        For ``CACHE_SUPPORTED``, these are exactly the request types whose
        files are all currently resident according to the notifications the
        caller delivered, read from the incrementally maintained
        ``_supported`` index in first-seen order — O(|supported|), never a
        filter over the whole history.
        """
        if self._mode is TruncationMode.FULL:
            result = list(self._entries.values())
        elif self._mode is TruncationMode.WINDOW:
            result = [self._entries[b] for b in self._window_counts]
        else:
            result = [self._supported[eid] for eid in sorted(self._supported)]
        if self._decay < 1.0:
            for entry in result:
                self._apply_decay(entry)
        return result

    def supported(self, bundle: FileBundle) -> bool:
        """Whether every file of a known bundle is currently resident."""
        missing = self._missing.get(bundle)
        if missing is None:
            return bundle.issubset(self._resident)
        return missing == 0

    def resident_view(self) -> frozenset[FileId]:
        """The resident set as last synchronised (debug/verification aid)."""
        return frozenset(self._resident)

    # ------------------------------------------------------------------ #
    # durable state (checkpoint/restore)

    def export_state(self) -> dict:
        """JSON-able snapshot restoring byte-identical future behaviour.

        Only primary state is serialized: entries in ``eid`` order (their
        dict insertion order), the arrival tick, the resident view and the
        window structures.  Degrees, the per-file index and the supported
        index are derived and rebuilt on :meth:`restore`.  The window
        *count* mapping is exported with its key order because
        :meth:`candidates` iterates it — the order is not derivable from
        the arrivals deque.
        """
        entries = [
            {
                "files": sorted(e.bundle.files),
                "value": e.value,
                "count": e.count,
                "first_seen": e.first_seen,
                "last_seen": e.last_seen,
                "decay_tick": e._last_decay_tick,
            }
            for e in self._entries.values()
        ]
        return {
            "mode": self._mode.value,
            "window": self._window,
            "decay": self._decay,
            "tick": self._tick,
            "entries": entries,
            "resident": sorted(self._resident),
            "window_arrivals": [sorted(b.files) for b in self._window_arrivals],
            "window_counts": [
                [sorted(b.files), n] for b, n in self._window_counts.items()
            ],
        }

    @classmethod
    def restore(cls, state: dict) -> "RequestHistory":
        """Rebuild a history from an :meth:`export_state` snapshot."""
        hist = cls(
            TruncationMode(state["mode"]),
            window=state["window"],
            decay=float(state["decay"]),
        )
        resident = set(str(f) for f in state["resident"])
        for rec in state["entries"]:
            bundle = FileBundle(rec["files"])
            entry = HistoryEntry(
                bundle=bundle,
                eid=len(hist._entries),
                value=float(rec["value"]),
                count=int(rec["count"]),
                first_seen=int(rec["first_seen"]),
                last_seen=int(rec["last_seen"]),
            )
            entry._last_decay_tick = int(rec["decay_tick"])
            hist._entries[bundle] = entry
            for f in bundle:
                d = hist._degree.get(f, 0) + 1
                hist._degree[f] = d
                if d > hist._max_degree:
                    hist._max_degree = d
                hist._by_file.setdefault(f, []).append(entry)
            missing = sum(1 for f in bundle if f not in resident)
            hist._missing[bundle] = missing
            if missing == 0:
                hist._supported[entry.eid] = entry
        hist._resident = resident
        hist._tick = int(state["tick"])
        for files in state["window_arrivals"]:
            hist._window_arrivals.append(FileBundle(files))
        for files, n in state["window_counts"]:
            hist._window_counts[FileBundle(files)] = int(n)
        return hist
