"""Partial-enumeration variant of ``OptCacheSelect`` (Section 4).

The paper notes that, following Khuller–Moss–Naor's technique for budgeted
maximum coverage, the ``½(1 − e^{−1/d})`` guarantee of the plain greedy can
be improved to ``(1 − e^{−1/d})`` at higher computational cost: construct a
candidate solution for every subset of at most ``k`` requests that fits in
the cache (``k = 2`` suffices), complete each seed with the greedy on the
remaining space, and keep the best.  This module implements exactly that.

Complexity is ``O(n^k)`` greedy runs, so it is intended for moderate
candidate counts (bound studies, periodic re-optimisation), not the per-
arrival hot path.
"""

from __future__ import annotations

from itertools import combinations

from repro.core.optcacheselect import (
    CacheSelection,
    FBCInstance,
    _empty_selection,
    _select_refined,
)
from repro.errors import ConfigError

__all__ = ["opt_cache_select_enum"]


def _union_size(inst: FBCInstance, indices: tuple[int, ...]) -> int:
    files: set[str] = set()
    for i in indices:
        files.update(inst.bundles[i].files)
    return sum(inst.sizes[f] for f in files)


def opt_cache_select_enum(inst: FBCInstance, *, k: int = 2) -> CacheSelection:
    """Enumerate seeds of up to ``k`` requests, complete each greedily.

    Returns the highest-value :class:`CacheSelection` found.  With ``k = 0``
    this degenerates to the plain refined greedy (including the Step 3
    safeguard); with ``k ≥ 2`` the value is guaranteed to be within
    ``1 − e^{−1/d}`` of optimal.
    """
    if k < 0:
        raise ConfigError(f"k must be non-negative, got {k}")
    if len(inst) == 0 or inst.budget <= 0:
        return _empty_selection()

    best = _select_refined(inst)
    n = len(inst)
    for seed_size in range(1, min(k, n) + 1):
        for seed in combinations(range(n), seed_size):
            if _union_size(inst, seed) > inst.budget:
                continue
            candidate = _select_refined(inst, seed)
            if candidate.total_value > best.total_value:
                best = candidate
    return best
