"""Core file-bundle caching algorithms from the paper.

Contents
--------
* :mod:`repro.core.bundle` — the :class:`FileBundle` value type.
* :mod:`repro.core.request` — request arrivals / streams.
* :mod:`repro.core.history` — the ``L(R)`` request-history structure with
  truncation policies and an incremental cache-support index.
* :mod:`repro.core.optcacheselect` — the greedy ``OptCacheSelect`` heuristic
  (Algorithm 1), plain and with the paper's "recompute" refinement.
* :mod:`repro.core.kenum` — the partial-enumeration variant that improves the
  approximation factor to ``1 - e^{-1/d}``.
* :mod:`repro.core.selection_state` — persistent incremental selection
  state backing the planner's hot path.
* :mod:`repro.core.optfilebundle` — the online ``OptFileBundle`` replacement
  planner (Algorithm 2).
* :mod:`repro.core.exact` — exact FBC solvers for bound verification.
* :mod:`repro.core.bounds` — approximation-guarantee formulas.
* :mod:`repro.core.reduction` — the Dense-k-Subgraph ↔ FBC reduction.
"""

from repro.core.bundle import FileBundle
from repro.core.request import Request, RequestStream
from repro.core.history import HistoryEntry, RequestHistory, TruncationMode
from repro.core.optcacheselect import CacheSelection, FBCInstance, opt_cache_select
from repro.core.kenum import opt_cache_select_enum
from repro.core.optfilebundle import LoadPlan, OptFileBundlePlanner
from repro.core.selection_state import SelectionState
from repro.core.exact import solve_exact, solve_knapsack_dp
from repro.core.bounds import greedy_guarantee, enum_guarantee, max_file_degree
from repro.core.lpbound import certified_ratio, lp_upper_bound
from repro.core.reduction import dks_to_fbc, fbc_files_to_dks_vertices

__all__ = [
    "FileBundle",
    "Request",
    "RequestStream",
    "HistoryEntry",
    "RequestHistory",
    "TruncationMode",
    "CacheSelection",
    "FBCInstance",
    "opt_cache_select",
    "opt_cache_select_enum",
    "LoadPlan",
    "OptFileBundlePlanner",
    "SelectionState",
    "solve_exact",
    "solve_knapsack_dp",
    "greedy_guarantee",
    "enum_guarantee",
    "max_file_degree",
    "lp_upper_bound",
    "certified_ratio",
    "dks_to_fbc",
    "fbc_files_to_dks_vertices",
]
