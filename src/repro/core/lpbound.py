"""LP-relaxation upper bound for the File-Bundle Caching problem.

Exact branch-and-bound (:mod:`repro.core.exact`) is limited to ~30
candidate requests.  For larger instances this module solves the natural
LP relaxation

.. math::

    \\max \\sum_r v_r x_r
    \\quad\\text{s.t.}\\quad
    x_r \\le y_f\\ \\forall f \\in F(r),\\qquad
    \\sum_f s_f\\, y_f \\le s(C),\\qquad
    x, y \\in [0, 1]

whose optimum upper-bounds the integral optimum, so

    ``greedy_value / lp_bound``

is a certified lower bound on the greedy's true approximation ratio on
that instance — usable at scales where the exact optimum is unreachable.
Requires :mod:`scipy` (an optional dependency).
"""

from __future__ import annotations

from repro.core.optcacheselect import FBCInstance
from repro.errors import SolverError

__all__ = ["lp_upper_bound", "certified_ratio"]


def lp_upper_bound(inst: FBCInstance) -> float:
    """Optimal value of the FBC LP relaxation (≥ the integral optimum)."""
    try:
        import numpy as np
        from scipy.optimize import linprog
        from scipy.sparse import lil_matrix
    except ImportError as exc:  # pragma: no cover - scipy is installed here
        raise SolverError("lp_upper_bound requires scipy") from exc

    n = len(inst.bundles)
    if n == 0 or inst.budget <= 0:
        return 0.0
    files = sorted({f for b in inst.bundles for f in b})
    fidx = {f: i for i, f in enumerate(files)}
    m = len(files)

    # Variables: x_0..x_{n-1} (requests), y_0..y_{m-1} (files).
    n_vars = n + m
    c = np.zeros(n_vars)
    c[:n] = [-v for v in inst.values]  # linprog minimizes

    n_cov = sum(len(b) for b in inst.bundles)
    A = lil_matrix((n_cov + 1, n_vars))
    b_ub = np.zeros(n_cov + 1)
    row = 0
    for r, bundle in enumerate(inst.bundles):
        for f in bundle:
            A[row, r] = 1.0          # x_r - y_f <= 0
            A[row, n + fidx[f]] = -1.0
            row += 1
    for f, j in fidx.items():
        A[n_cov, n + j] = inst.sizes[f]  # capacity row
    b_ub[n_cov] = inst.budget

    result = linprog(
        c,
        A_ub=A.tocsr(),
        b_ub=b_ub,
        bounds=[(0.0, 1.0)] * n_vars,
        method="highs",
    )
    if not result.success:  # pragma: no cover - LP is always feasible (0)
        raise SolverError(f"LP solver failed: {result.message}")
    return float(-result.fun)


def certified_ratio(inst: FBCInstance, achieved_value: float) -> float:
    """A certified lower bound on ``achieved / optimum`` via the LP bound.

    Returns 1.0 when the LP bound is zero (an empty optimum is matched).
    """
    if achieved_value < 0:
        raise SolverError(f"achieved_value must be >= 0, got {achieved_value}")
    bound = lp_upper_bound(inst)
    if bound <= 1e-12:
        return 1.0
    return min(achieved_value / bound, 1.0)
