"""The :class:`FileBundle` value type.

A *file bundle* is the set of files a job needs resident in the cache
simultaneously (Section 2 of the paper, "One File-Bundle at a Time").  Two
requests are the same request *type* exactly when their bundles are equal,
which is why :class:`FileBundle` is an immutable, hashable set wrapper — it
serves directly as the key of the request-history structure ``L(R)``.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping

from repro.errors import ConfigError, TypeContractError
from repro.types import FileId, SizeBytes

__all__ = ["FileBundle"]


class FileBundle:
    """An immutable, hashable set of file ids requested together.

    >>> b = FileBundle(["f2", "f1"])
    >>> b == FileBundle({"f1", "f2"})
    True
    >>> sorted(b)
    ['f1', 'f2']
    """

    __slots__ = ("_files", "_hash", "_ordered")

    def __init__(self, files: Iterable[FileId]):
        fs = frozenset(files)
        if not fs:
            raise ConfigError("a file bundle must contain at least one file")
        # repro: allow[RPR003] validation only; order picks which invalid
        # id is reported, and mixed-type members would make sorted() raise
        for f in fs:
            if not isinstance(f, str) or not f:
                raise TypeContractError(
                    f"file ids must be non-empty strings, got {f!r}"
                )
        self._files = fs
        self._hash = hash(fs)
        # Iteration must not leak the frozenset's hash-randomized order:
        # policies touch files in bundle order, so a PYTHONHASHSEED-dependent
        # order would make eviction tie-breaks differ across processes.
        self._ordered = tuple(sorted(fs))

    @property
    def files(self) -> frozenset[FileId]:
        """The underlying frozen set of file ids."""
        return self._files

    def __contains__(self, file_id: object) -> bool:
        return file_id in self._files

    def __iter__(self) -> Iterator[FileId]:
        return iter(self._ordered)

    def __len__(self) -> int:
        return len(self._files)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, FileBundle):
            return self._files == other._files
        if isinstance(other, frozenset):
            return self._files == other
        return NotImplemented

    def __hash__(self) -> int:
        return self._hash

    def __or__(self, other: "FileBundle") -> "FileBundle":
        return FileBundle(self._files | other._files)

    def __and__(self, other: "FileBundle") -> frozenset[FileId]:
        return self._files & other._files

    def __sub__(self, other: "FileBundle") -> frozenset[FileId]:
        return self._files - other._files

    def issubset(self, files: Iterable[FileId]) -> bool:
        """True when every file of the bundle is in ``files``."""
        if isinstance(files, (set, frozenset)):
            return self._files <= files
        return self._files <= set(files)

    def intersects(self, files: Iterable[FileId]) -> bool:
        """True when the bundle shares at least one file with ``files``."""
        if not isinstance(files, (set, frozenset, dict)):
            files = set(files)
        return any(f in files for f in self._files)

    def size_under(self, sizes: Mapping[FileId, SizeBytes]) -> SizeBytes:
        """Total bytes of the bundle under a file-size mapping ``s(F(r))``."""
        return sum(sizes[f] for f in self._files)

    def missing_from(self, resident: Iterable[FileId]) -> frozenset[FileId]:
        """The subset of this bundle's files not in ``resident``."""
        if not isinstance(resident, (set, frozenset, dict)):
            resident = set(resident)
        return frozenset(f for f in self._files if f not in resident)

    def sorted_ids(self) -> tuple[FileId, ...]:
        """File ids in lexicographic order (stable canonical form)."""
        return tuple(sorted(self._files))

    def __repr__(self) -> str:
        inner = ",".join(self.sorted_ids())
        return f"FileBundle({{{inner}}})"
