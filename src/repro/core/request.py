"""Request arrivals and streams.

A :class:`Request` is one *arrival* of a file bundle — the unit the cache
simulator processes.  Several requests may carry the same bundle; the bundle
is the request *type* whose popularity ``v(r)`` the history tracks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from repro.core.bundle import FileBundle
from repro.errors import ConfigError

__all__ = ["Request", "RequestStream"]


@dataclass(frozen=True, slots=True)
class Request:
    """One job arrival requesting a file bundle.

    Attributes
    ----------
    request_id:
        Sequence number of the arrival (unique within a trace).
    bundle:
        The set of files that must be simultaneously resident.
    arrival_time:
        Simulated arrival time in seconds (0.0 for untimed traces).
    priority:
        Optional external importance weight; the default value function of
        the history ignores it (the paper uses a pure occurrence counter)
        but priority-weighted values are supported as an extension.
    """

    request_id: int
    bundle: FileBundle
    arrival_time: float = 0.0
    priority: float = 1.0

    def __post_init__(self) -> None:
        if self.request_id < 0:
            raise ConfigError(f"request_id must be non-negative, got {self.request_id}")
        if self.arrival_time < 0:
            raise ConfigError(f"arrival_time must be non-negative, got {self.arrival_time}")
        if self.priority <= 0:
            raise ConfigError(f"priority must be positive, got {self.priority}")


class RequestStream:
    """An ordered sequence of :class:`Request` arrivals.

    Thin wrapper over a list providing integrity checks (ids strictly
    increasing, arrival times non-decreasing) and convenience accessors.
    """

    __slots__ = ("_requests",)

    def __init__(self, requests: Iterable[Request] = ()):
        self._requests: list[Request] = []
        for req in requests:
            self.append(req)

    def append(self, request: Request) -> None:
        if self._requests:
            last = self._requests[-1]
            if request.request_id <= last.request_id:
                raise ConfigError(
                    f"request ids must be strictly increasing: "
                    f"{request.request_id} after {last.request_id}"
                )
            if request.arrival_time < last.arrival_time:
                raise ConfigError(
                    f"arrival times must be non-decreasing: "
                    f"{request.arrival_time} after {last.arrival_time}"
                )
        self._requests.append(request)

    def __len__(self) -> int:
        return len(self._requests)

    def __iter__(self) -> Iterator[Request]:
        return iter(self._requests)

    def __getitem__(self, index: int) -> Request:
        return self._requests[index]

    def bundles(self) -> list[FileBundle]:
        """The bundle of each arrival, in order."""
        return [r.bundle for r in self._requests]

    def distinct_bundles(self) -> set[FileBundle]:
        """The set of distinct request types appearing in the stream."""
        return {r.bundle for r in self._requests}

    def file_ids(self) -> set[str]:
        """All file ids referenced anywhere in the stream."""
        out: set[str] = set()
        for r in self._requests:
            out.update(r.bundle.files)
        return out

    @staticmethod
    def from_bundles(
        bundles: Sequence[FileBundle], *, start_id: int = 0
    ) -> "RequestStream":
        """Build an untimed stream from bundles in arrival order."""
        return RequestStream(
            Request(request_id=start_id + i, bundle=b) for i, b in enumerate(bundles)
        )
