"""Approximation-guarantee formulas from Theorem 4.1 and Section 4.

* plain greedy with Step 3 safeguard: ``½ (1 − e^{−1/d})`` of optimal;
* partial enumeration (k ≥ 2):        ``(1 − e^{−1/d})`` of optimal;

where ``d`` is the maximum number of requests that share one file.
"""

from __future__ import annotations

import math
from typing import Iterable

from repro.core.bundle import FileBundle
from repro.errors import ConfigError

__all__ = ["greedy_guarantee", "enum_guarantee", "max_file_degree"]


def enum_guarantee(d: int) -> float:
    """``1 − e^{−1/d}``: guarantee of the partial-enumeration variant.

    ``d = 0`` (no shared files recorded, i.e. an empty instance) returns
    1.0 — an empty optimum is matched exactly.
    """
    if d < 0:
        raise ConfigError(f"degree must be non-negative, got {d}")
    if d == 0:
        return 1.0
    return 1.0 - math.exp(-1.0 / d)


def greedy_guarantee(d: int) -> float:
    """``½ (1 − e^{−1/d})``: Theorem 4.1 guarantee of plain OptCacheSelect."""
    if d == 0:
        return 1.0
    return 0.5 * enum_guarantee(d)


def max_file_degree(bundles: Iterable[FileBundle]) -> int:
    """``d``: the maximum number of bundles sharing any one file.

    >>> from repro.core.bundle import FileBundle as B
    >>> max_file_degree([B(["a", "b"]), B(["b"]), B(["c"])])
    2
    """
    counts: dict[str, int] = {}
    for bundle in bundles:
        for f in bundle:
            counts[f] = counts.get(f, 0) + 1
    return max(counts.values(), default=0)
