"""``OptFileBundle`` — the online replacement planner (Algorithm 2).

On every request arrival:

1. Compute ``S``, the space needed by the missing files of the new bundle.
2. Run :func:`~repro.core.optcacheselect.opt_cache_select` over the history
   candidates with the remainder of the cache as budget to pick the file set
   ``F(Opt)`` worth retaining.  We reserve the *whole* new bundle (not just
   its missing part) and hand the bundle's files to the selector as
   zero-cost ``free_files``: this is the paper's "set to 0 the size of files
   already in the cache" refinement and guarantees
   ``|F(Opt) ∪ F(r_new)| ≤ s(C)`` even when the new bundle is partially
   resident.
3. Evict what is not worth keeping, load the missing files (plus, under
   FULL/WINDOW history truncation, any selected files that are not resident
   — Algorithm 2's ``F(Opt) \\ F(C)`` prefetch).
4. Update ``L(R)`` with the new request.

The planner is pure with respect to the cache: :meth:`plan` computes a
:class:`LoadPlan` against a caller-supplied resident set, and
:meth:`commit` applies the history/bookkeeping side effects once the caller
has executed the plan.  The cache-policy adapter in
:mod:`repro.cache.optbundle_policy` wires this into the simulator.

Eviction laziness
-----------------
Algorithm 2 as drawn in Fig. 4 replaces the cache content by
``F(Opt) ∪ F(r_new)`` wholesale.  Evicting a clean cached file is free,
but re-loading it later is not, so this implementation defaults to *lazy*
eviction: only enough unselected files are evicted to fit the new load,
victims ordered by (history degree asc, size desc, id) — least-shared,
bulkiest first.  ``eager_evict=True`` restores the literal behaviour; the
ablation benchmark compares the two.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import AbstractSet, Mapping

from repro.core.bundle import FileBundle
from repro.core.history import RequestHistory, TruncationMode
from repro.core.optcacheselect import (
    CacheSelection,
    FBCInstance,
    opt_cache_select,
)
from repro.core.selection_state import SelectionState
from repro.errors import CacheCapacityError, ConfigError
from repro.telemetry import current_recorder
from repro.types import FileId, SizeBytes

__all__ = ["LoadPlan", "OptFileBundlePlanner"]


@dataclass(frozen=True)
class LoadPlan:
    """What to do to the cache for one arriving request.

    Attributes
    ----------
    bundle:
        The arriving request's bundle.
    load:
        Missing files of the bundle that must be fetched (a *miss* cost).
    prefetch:
        Selected-but-not-resident files to fetch in addition (only non-empty
        under FULL/WINDOW truncation); also a byte cost.
    evict:
        Files to remove from the cache before loading.
    keep:
        The intended resident set after the plan is applied.
    selection:
        The raw ``OptCacheSelect`` output backing the plan.
    request_hit:
        True when the bundle was fully resident (no ``load`` needed).
    """

    bundle: FileBundle
    load: frozenset[FileId]
    prefetch: frozenset[FileId]
    evict: frozenset[FileId]
    keep: frozenset[FileId]
    selection: CacheSelection
    request_hit: bool

    @property
    def bytes_to_fetch(self) -> tuple[frozenset[FileId], frozenset[FileId]]:
        return self.load, self.prefetch


class OptFileBundlePlanner:
    """Stateful ``OptFileBundle`` algorithm bound to one cache's lifetime.

    Parameters
    ----------
    capacity:
        Cache size ``s(C)`` in bytes.
    sizes:
        File-size oracle ``s(f)``; any mapping covering all requested files.
    truncation / window:
        History truncation mode (Section 5.2); default ``CACHE_SUPPORTED``,
        the configuration used for the paper's main experiments.
    refine:
        Use the recompute refinement inside ``OptCacheSelect``.
    safeguard:
        Keep Algorithm 1's Step 3 single-request comparison.
    decay:
        Optional exponential value decay (extension; 1.0 = paper behaviour).
    eager_evict:
        Evict everything outside ``F(Opt) ∪ F(r_new)`` as in Fig. 4(d)
        instead of only what is needed for space.
    incremental:
        Keep a persistent :class:`~repro.core.selection_state.SelectionState`
        (inverted file→candidate index, cached adjusted sizes) updated as
        the history evolves, instead of rebuilding the selection inputs
        from scratch on every arrival (default True; produces bit-identical
        plans).  Only effective with ``refine=True`` and
        ``degree_blind=False`` — the ablation paths fall back to the
        rebuild implementation.
    """

    def __init__(
        self,
        capacity: SizeBytes,
        sizes: Mapping[FileId, SizeBytes],
        *,
        truncation: TruncationMode = TruncationMode.CACHE_SUPPORTED,
        window: int | None = None,
        refine: bool = True,
        safeguard: bool = True,
        decay: float = 1.0,
        eager_evict: bool = False,
        degree_blind: bool = False,
        incremental: bool = True,
    ):
        if capacity <= 0:
            raise ConfigError(f"cache capacity must be positive, got {capacity}")
        self._capacity = int(capacity)
        self._sizes = sizes
        self._refine = refine
        self._safeguard = safeguard
        self._eager = eager_evict
        self._degree_blind = degree_blind
        self._history = RequestHistory(truncation, window=window, decay=decay)
        # Planners are constructed inside the simulator's recorder
        # context (policy.bind), so capturing the ambient recorder here
        # keeps the per-plan profiling span off the ContextVar lookup.
        self._recorder = current_recorder()
        self._state: SelectionState | None = None
        if incremental and refine and not degree_blind:
            self._state = SelectionState(self._history, sizes)

    # ------------------------------------------------------------------ #

    @property
    def capacity(self) -> SizeBytes:
        return self._capacity

    @property
    def history(self) -> RequestHistory:
        return self._history

    @property
    def incremental(self) -> bool:
        """Whether plans are served from the persistent selection state."""
        return self._state is not None

    def score(self, bundle: FileBundle) -> float:
        """Adjusted relative value ``v'`` of a bundle under current history.

        Used by the admission-queue scheduler (Fig. 9): the queued request
        with the highest score is served first.  Unseen bundles score with
        value 1 (their first occurrence counts itself).
        """
        value = max(self._history.value_of(bundle), 0.0) + 1.0
        degree = self._history.degree
        sizes = self._sizes
        adjusted = sum(sizes[f] / max(1, degree(f)) for f in bundle)
        return value / adjusted

    # ------------------------------------------------------------------ #

    def plan(
        self,
        bundle: FileBundle,
        resident: AbstractSet[FileId],
        *,
        pinned: AbstractSet[FileId] = frozenset(),
    ) -> LoadPlan:
        """Compute the replacement decision for one arrival (Steps 1–3).

        ``resident`` is the current cache content; ``pinned`` files (in use
        by concurrently serviced jobs) are never chosen as eviction
        victims.  Raises :class:`~repro.errors.CacheCapacityError` when the
        bundle alone cannot fit in the cache, or when pins leave too little
        evictable space.
        """
        bundle_size = bundle.size_under(self._sizes)
        if bundle_size > self._capacity:
            raise CacheCapacityError(bundle_size, self._capacity)

        missing = bundle.missing_from(resident)
        budget = self._capacity - bundle_size

        with self._recorder.span("optbundle.plan"):
            if self._state is not None:
                selection = self._state.select(
                    budget, free=bundle.files, safeguard=self._safeguard
                )
            else:
                inst = FBCInstance.from_history(self._history, self._sizes, budget)
                selection = opt_cache_select(
                    inst,
                    refine=self._refine,
                    safeguard=self._safeguard,
                    free_files=bundle.files,
                    degree_blind=self._degree_blind,
                )

        keep = frozenset(selection.files | bundle.files)
        prefetch = frozenset(selection.files - resident - bundle.files)
        evict = self._choose_victims(resident, keep, missing, prefetch, pinned)
        return LoadPlan(
            bundle=bundle,
            load=missing,
            prefetch=prefetch,
            evict=evict,
            keep=keep,
            selection=selection,
            request_hit=not missing,
        )

    def _choose_victims(
        self,
        resident: AbstractSet[FileId],
        keep: frozenset[FileId],
        missing: frozenset[FileId],
        prefetch: frozenset[FileId],
        pinned: AbstractSet[FileId],
    ) -> frozenset[FileId]:
        unselected = resident - keep - pinned
        sizes = self._sizes
        used = sum(sizes[f] for f in resident)
        need = sum(sizes[f] for f in missing) + sum(sizes[f] for f in prefetch)
        if self._eager:
            left = used - sum(sizes[f] for f in unselected)
            if left + need > self._capacity:
                raise CacheCapacityError(left + need - self._capacity, 0)
            return frozenset(unselected)
        overflow = used + need - self._capacity
        if overflow <= 0:
            return frozenset()
        victims: list[FileId] = []
        degree = self._history.degree
        for f in sorted(unselected, key=lambda f: (degree(f), -sizes[f], f)):
            victims.append(f)
            overflow -= sizes[f]
            if overflow <= 0:
                break
        if overflow > 0:
            # Pinned files of concurrent jobs leave too little evictable
            # space; the caller defers the job until a pin is released.
            raise CacheCapacityError(
                overflow, 0, "victim selection could not free enough space"
            )
        return frozenset(victims)

    def commit(self, plan: LoadPlan) -> None:
        """Apply Step 4: record the request and sync the support index."""
        for f in plan.evict:
            self._history.on_file_evicted(f)
        self._history.record(plan.bundle)
        for f in plan.load:
            self._history.on_file_loaded(f)
        for f in plan.prefetch:
            self._history.on_file_loaded(f)

    def adopt_history(self, history: RequestHistory) -> None:
        """Swap in a restored history (checkpoint recovery).

        The persistent selection state, when enabled, is rebuilt against
        the new history — its listener replay walks entries in ``eid``
        order, so the rebuilt structures match what incremental
        maintenance would have produced.
        """
        self._history = history
        if self._state is not None:
            self._state = SelectionState(history, self._sizes)

    def observe_eviction(self, file_id: FileId) -> None:
        """Notify the planner of an eviction it did not itself plan."""
        self._history.on_file_evicted(file_id)

    def observe_load(self, file_id: FileId) -> None:
        """Notify the planner of a load it did not itself plan."""
        self._history.on_file_loaded(file_id)
