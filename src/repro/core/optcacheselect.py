"""``OptCacheSelect`` — the greedy FBC heuristic (Algorithm 1 of the paper).

Given a collection of candidate requests with values ``v(r)`` over files with
sizes ``s(f)`` and degrees ``d(f)``, select a subset of requests of maximum
total value whose files fit in a byte budget.  Requests are served in
decreasing order of *adjusted relative value*

.. math::

    v'(r) = \\frac{v(r)}{\\sum_{f \\in F(r)} s(f) / d(f)}

skipping requests whose files do not fit, and the final answer is the better
of the greedy set and the single highest-value request (Step 3) — the
comparison that yields the proven ``½(1 − e^{−1/d})`` guarantee.

Two variants are provided, selected by ``refine``:

* ``refine=False`` — the literal algorithm: one sort, each request charged
  the full size of its bundle (shared files charged once per request).
* ``refine=True`` (default) — the paper's "Note" improvement: after each
  selection the sizes of already-selected files are treated as zero and the
  remaining requests re-ranked, so requests sharing files with the current
  solution become cheaper.  Implemented incrementally with an inverted
  file → candidate index, so a full re-sort per step is never materialised.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.core.bundle import FileBundle
from repro.core.history import RequestHistory
from repro.errors import ConfigError
from repro.types import FileId, SizeBytes

__all__ = ["FBCInstance", "CacheSelection", "opt_cache_select", "relative_value"]


@dataclass(frozen=True)
class FBCInstance:
    """One instance of the File-Bundle Caching problem.

    Attributes
    ----------
    bundles:
        Candidate request types.
    values:
        ``v(r)`` per candidate, parallel to ``bundles``.
    sizes:
        File sizes ``s(f)``; must cover every file referenced by a bundle.
    budget:
        Cache byte budget ``s(C)``.
    degrees:
        Optional file degrees ``d(f)``.  When omitted they are computed from
        the candidate bundles themselves; when selecting against a truncated
        candidate set, pass the *global* history degrees here (Section 5.2).
    """

    bundles: tuple[FileBundle, ...]
    values: tuple[float, ...]
    sizes: Mapping[FileId, SizeBytes]
    budget: SizeBytes
    degrees: Mapping[FileId, int] | None = None

    def __post_init__(self) -> None:
        if len(self.bundles) != len(self.values):
            raise ConfigError(
                f"{len(self.bundles)} bundles but {len(self.values)} values"
            )
        if self.budget < 0:
            raise ConfigError(f"budget must be non-negative, got {self.budget}")
        for v in self.values:
            if v <= 0:
                raise ConfigError(f"request values must be positive, got {v}")
        for bundle in self.bundles:
            for f in bundle:
                if f not in self.sizes:
                    raise ConfigError(f"no size known for file {f!r}")
                if self.sizes[f] <= 0:
                    raise ConfigError(f"file {f!r} has non-positive size")

    def __len__(self) -> int:
        return len(self.bundles)

    def effective_degrees(self, *, degree_blind: bool = False) -> dict[FileId, int]:
        """Degrees to use: supplied ones, else computed from the candidates.

        Supplied degrees are floored at the locally observed degree so a
        stale/partial mapping can never make an adjusted size non-positive.
        ``degree_blind=True`` returns all-ones — the ranking then uses raw
        file sizes (``v(r)/s(F(r))``), which the ranking ablation uses to
        isolate the contribution of the paper's ``s(f)/d(f)`` adjustment.
        """
        local: dict[FileId, int] = {}
        for bundle in self.bundles:
            for f in bundle:
                local[f] = local.get(f, 0) + 1
        if degree_blind:
            return {f: 1 for f in local}
        if self.degrees is None:
            return local
        return {f: max(local[f], int(self.degrees.get(f, 0))) for f in local}

    @staticmethod
    def trusted(
        bundles: tuple[FileBundle, ...],
        values: tuple[float, ...],
        sizes: Mapping[FileId, SizeBytes],
        budget: SizeBytes,
        degrees: Mapping[FileId, int] | None = None,
    ) -> "FBCInstance":
        """Construct without re-validating every (bundle, file) membership.

        ``__post_init__`` walks every file of every bundle; on the planner's
        hot path that validation re-proves invariants the
        :class:`~repro.core.history.RequestHistory` already maintains
        (positive values, catalog-covered positive sizes).  Use only with
        inputs whose invariants are structurally guaranteed.
        """
        inst = object.__new__(FBCInstance)
        object.__setattr__(inst, "bundles", bundles)
        object.__setattr__(inst, "values", values)
        object.__setattr__(inst, "sizes", sizes)
        object.__setattr__(inst, "budget", budget)
        object.__setattr__(inst, "degrees", degrees)
        return inst

    @staticmethod
    def from_history(
        history: RequestHistory,
        sizes: Mapping[FileId, SizeBytes],
        budget: SizeBytes,
    ) -> "FBCInstance":
        """Build an instance from a history's current candidate set.

        Values are the (possibly decayed) occurrence counters, degrees the
        global history degrees — exactly the paper's configuration.  The
        history guarantees positive values and the caller's size oracle is
        validated once at simulation setup, so construction goes through
        :meth:`trusted` instead of re-checking every membership per plan.
        """
        entries = history.candidates()
        if budget < 0:
            raise ConfigError(f"budget must be non-negative, got {budget}")
        return FBCInstance.trusted(
            bundles=tuple(e.bundle for e in entries),
            values=tuple(e.value for e in entries),
            sizes=sizes,
            budget=budget,
            degrees=history.degrees(),
        )


@dataclass(frozen=True)
class CacheSelection:
    """Result of :func:`opt_cache_select`.

    ``selected`` holds indices into the instance's candidate list; ``files``
    is the union of their bundles (the set ``F(Opt)`` to retain in cache);
    ``used_bytes`` is the real (union) byte footprint of ``files``;
    ``single_fallback`` is True when Step 3 replaced the greedy set with the
    single highest-value request.
    """

    selected: tuple[int, ...]
    bundles: tuple[FileBundle, ...]
    files: frozenset[FileId]
    total_value: float
    used_bytes: SizeBytes
    single_fallback: bool = False

    def __post_init__(self) -> None:
        if len(self.selected) != len(self.bundles):
            raise ConfigError("selected indices and bundles must be parallel")


def relative_value(
    value: float,
    bundle: FileBundle,
    sizes: Mapping[FileId, SizeBytes],
    degrees: Mapping[FileId, int],
) -> float:
    """The adjusted relative value ``v'(r)`` used for ranking.

    Files with unknown/zero degree are treated as degree 1 (the request at
    hand itself uses them).
    """
    adjusted = sum(sizes[f] / max(1, degrees.get(f, 1)) for f in bundle)
    if adjusted <= 0:
        raise ConfigError(f"bundle {bundle!r} has non-positive adjusted size")
    return value / adjusted


def _empty_selection() -> CacheSelection:
    return CacheSelection((), (), frozenset(), 0.0, 0)


def _marginal_size(
    inst: FBCInstance, bundle: FileBundle, free: frozenset[FileId]
) -> SizeBytes:
    return sum(inst.sizes[f] for f in bundle if f not in free)


def _best_single(
    inst: FBCInstance, free: frozenset[FileId] = frozenset()
) -> tuple[int, float] | None:
    """Index and value of the highest-value candidate fitting alone."""
    best: tuple[int, float] | None = None
    for i, bundle in enumerate(inst.bundles):
        if _marginal_size(inst, bundle, free) <= inst.budget:
            if best is None or inst.values[i] > best[1]:
                best = (i, inst.values[i])
    return best


_UNSET = object()


def _finish(
    inst: FBCInstance,
    chosen: list[int],
    *,
    safeguard: bool = True,
    free: frozenset[FileId] = frozenset(),
    single: "tuple[int, float] | None | object" = _UNSET,
) -> CacheSelection:
    """Apply Step 3 (single-request safeguard) and assemble the result.

    ``used_bytes`` counts only bytes charged against the budget, i.e. files
    outside the ``free`` set.  ``single`` lets callers pass a precomputed
    best-single-request candidate to avoid a second scan.
    """
    total = sum(inst.values[i] for i in chosen)
    if not safeguard:
        best = None
    elif single is _UNSET:
        best = _best_single(inst, free)
    else:
        best = single  # type: ignore[assignment]
    if best is not None and best[1] > total:
        idx = best[0]
        bundle = inst.bundles[idx]
        return CacheSelection(
            selected=(idx,),
            bundles=(bundle,),
            files=frozenset(bundle.files),
            total_value=best[1],
            used_bytes=_marginal_size(inst, bundle, free),
            single_fallback=True,
        )
    files: set[FileId] = set()
    for i in chosen:
        files.update(inst.bundles[i].files)
    used = sum(inst.sizes[f] for f in files if f not in free)
    return CacheSelection(
        selected=tuple(chosen),
        bundles=tuple(inst.bundles[i] for i in chosen),
        files=frozenset(files),
        total_value=total,
        used_bytes=used,
    )


def _select_plain(
    inst: FBCInstance,
    *,
    safeguard: bool = True,
    free: frozenset[FileId] = frozenset(),
    degree_blind: bool = False,
) -> CacheSelection:
    degrees = inst.effective_degrees(degree_blind=degree_blind)
    # Precompute the ranking key once per candidate; evaluating
    # relative_value inside the sort key would cost one adjusted-size sum
    # per key call rather than one per candidate.
    keys = [
        (
            -relative_value(inst.values[i], inst.bundles[i], inst.sizes, degrees),
            -inst.values[i],
            i,
        )
        for i in range(len(inst.bundles))
    ]
    order = sorted(range(len(inst.bundles)), key=keys.__getitem__)
    remaining = inst.budget
    chosen: list[int] = []
    for i in order:
        size = _marginal_size(inst, inst.bundles[i], free)
        if size <= remaining:
            chosen.append(i)
            remaining -= size
    return _finish(inst, chosen, safeguard=safeguard, free=free)


_EPS = 1e-12


def _select_refined(
    inst: FBCInstance,
    seed: Sequence[int] = (),
    *,
    safeguard: bool = True,
    free: frozenset[FileId] = frozenset(),
    degree_blind: bool = False,
) -> CacheSelection:
    """Refined greedy, optionally starting from pre-selected ``seed`` indices.

    ``seed`` is used by the partial-enumeration variant
    (:func:`repro.core.kenum.opt_cache_select_enum`); seeds whose union does
    not fit the budget raise :class:`~repro.errors.ConfigError`.  Files in
    ``free`` are charged zero bytes (they are already reserved in the cache
    by the caller — the paper's "set to 0 the size of files already in the
    cache").  With ``safeguard=False`` Step 3 (single-request comparison) is
    skipped, which the ablation benchmarks use to expose its effect.

    The greedy uses a lazy max-heap: a candidate's score ``v / rem_adj``
    only ever *increases* (selections shrink residual adjusted sizes), and
    every increase pushes a fresh heap entry, so each candidate's newest
    entry carries its exact current score and older entries are strictly
    dominated — popping the first up-to-date entry yields the true argmax.
    Total cost is O(M log M) in the number of (file, candidate)
    memberships, instead of a full rescan per selection round (this runs
    once per simulated job, so the constant matters).
    """
    degrees = inst.effective_degrees(degree_blind=degree_blind)
    sizes = inst.sizes
    n = len(inst.bundles)
    inf = float("inf")

    adj_size = {f: sizes[f] / degrees[f] for f in degrees}
    rem_adj = [0.0] * n
    rem_real = [0.0] * n
    containing: dict[FileId, list[int]] = {}
    for i, bundle in enumerate(inst.bundles):
        a = r = 0.0
        for f in bundle:
            if f in free:
                continue
            a += adj_size[f]
            r += sizes[f]
            containing.setdefault(f, []).append(i)
        rem_adj[i] = a
        rem_real[i] = r

    values = inst.values
    active = [True] * n
    selected_files: set[FileId] = set(free)
    remaining = float(inst.budget)
    chosen: list[int] = []

    # Step 3 needs the best *initially fitting* single request; capture it
    # from the untouched residual sizes before the greedy mutates them.
    single: tuple[int, float] | None = None
    if safeguard:
        budget = inst.budget + _EPS
        for i in range(n):
            if rem_real[i] <= budget and (single is None or values[i] > single[1]):
                single = (i, values[i])

    score = [values[i] / rem_adj[i] if rem_adj[i] > _EPS else inf for i in range(n)]
    # Max-heap of (-score, index, score snapshot); stale entries are the
    # ones whose snapshot no longer matches score[i].
    heap: list[tuple[float, int, float]] = [(-score[i], i, score[i]) for i in range(n)]
    heapq.heapify(heap)

    def select(i: int) -> None:
        nonlocal remaining
        chosen.append(i)
        active[i] = False
        remaining -= rem_real[i]
        for f in inst.bundles[i]:
            if f in selected_files:
                continue
            selected_files.add(f)
            af, sf = adj_size[f], sizes[f]
            for j in containing[f]:
                if not active[j]:
                    continue
                rem_adj[j] -= af
                rem_real[j] -= sf
                new = values[j] / rem_adj[j] if rem_adj[j] > _EPS else inf
                score[j] = new
                heapq.heappush(heap, (-new, j, new))

    for i in seed:
        if not active[i]:
            raise ConfigError(f"duplicate seed index {i}")
        if rem_real[i] > remaining + _EPS:
            raise ConfigError(f"seed index {i} does not fit the budget")
        select(i)

    while heap:
        _neg, i, snap = heapq.heappop(heap)
        if not active[i] or snap != score[i]:
            continue  # stale or already decided
        if rem_real[i] <= remaining + _EPS:
            select(i)
        else:
            active[i] = False  # skipped: insufficient space (Step 2)
    return _finish(inst, chosen, safeguard=safeguard, free=free, single=single)


def opt_cache_select(
    inst: FBCInstance,
    *,
    refine: bool = True,
    safeguard: bool = True,
    free_files: frozenset[FileId] = frozenset(),
    degree_blind: bool = False,
) -> CacheSelection:
    """Run ``OptCacheSelect`` on an FBC instance.

    Parameters
    ----------
    inst:
        The candidate requests, file sizes/degrees and byte budget.
    refine:
        Use the paper's recompute-and-resort improvement (default True).
    safeguard:
        Apply Step 3 (compare against the best single request); disabling it
        is only meant for the ablation study of that design choice.
    free_files:
        Files already reserved by the caller (e.g. the incoming request's
        bundle in ``OptFileBundle``); they are charged zero bytes.
    degree_blind:
        Rank by ``v(r)/s(F(r))`` without the paper's ``1/d(f)`` degree
        adjustment (ranking ablation only).

    Returns
    -------
    CacheSelection
        The requests to support and the file set ``F(Opt)`` to retain.
        ``used_bytes`` (bytes charged outside ``free_files``) never exceeds
        ``inst.budget``.
    """
    if len(inst) == 0 or inst.budget <= 0:
        return _empty_selection()
    if refine:
        return _select_refined(
            inst, safeguard=safeguard, free=free_files, degree_blind=degree_blind
        )
    return _select_plain(
        inst, safeguard=safeguard, free=free_files, degree_blind=degree_blind
    )
