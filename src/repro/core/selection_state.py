"""Persistent, incrementally-maintained selection state for ``OptFileBundle``.

Section 1.2 of the paper requires the replacement decision to be evaluated
"in an almost negligible time relative to the time it takes to cache an
object".  The from-scratch path (:func:`repro.core.optcacheselect.opt_cache_select`
over :meth:`FBCInstance.from_history`) rebuilds, on *every* arrival:

* the candidate list (an O(history) filter under ``CACHE_SUPPORTED``),
* the effective degree map and adjusted sizes ``s(f)/d(f)``,
* the inverted file → candidate index (``containing``),
* the per-candidate residual adjusted/real size arrays,

all of which change only slowly between arrivals.  :class:`SelectionState`
keeps those structures alive across plans and updates them incrementally:

* it subscribes to :meth:`RequestHistory.add_listener`, so a *new* request
  type appends to the inverted index and refreshes the adjusted sizes of
  exactly the files whose degree changed (degrees only ever grow);
* candidate membership (support/window changes, value bumps, decay) is read
  per plan from the history's own incremental indexes — O(|candidates|),
  never O(history).

Bit-for-bit equivalence with the from-scratch path
--------------------------------------------------
The differential tests require :meth:`select` to return *byte-for-byte*
the same :class:`CacheSelection` as ``opt_cache_select`` on a freshly built
instance.  Floating-point addition is not associative, so the cached
per-bundle adjusted sizes are **recomputed in bundle iteration order**
whenever a member file's degree changes (never updated by a delta), and
bundles overlapping the per-call ``free`` set get their residual sizes
recomputed the same way the from-scratch loop accumulates them.  Every sum
here therefore reproduces the exact float the rebuild path produces.
"""

from __future__ import annotations

import heapq
from typing import AbstractSet, Mapping

from repro.core.history import HistoryEntry, RequestHistory
from repro.core.optcacheselect import (
    _EPS,
    CacheSelection,
    FBCInstance,
    _empty_selection,
    _finish,
)
from repro.errors import StateInvariantError
from repro.telemetry import current_recorder
from repro.types import FileId, SizeBytes

__all__ = ["SelectionState"]


class SelectionState:
    """Incremental backing store for the refined ``OptCacheSelect`` greedy.

    Parameters
    ----------
    history:
        The planner's ``L(R)``; the state subscribes itself as a listener
        and replays any entries already recorded.
    sizes:
        File-size oracle ``s(f)``; must cover every file the history will
        ever record (the same oracle handed to the planner).

    Notes
    -----
    The state only caches *degree-derived* quantities (adjusted sizes,
    per-bundle base sizes, the inverted index).  Values, decay and
    candidate membership are read from the history per call, so
    fault-injected eviction notifications and window churn need no
    dedicated synchronisation.
    """

    def __init__(self, history: RequestHistory, sizes: Mapping[FileId, SizeBytes]):
        self._history = history
        self._sizes = sizes
        self._recorder = current_recorder()
        # s(f) / d(f) under the *global* degrees; refreshed on degree change
        self._adj_size: dict[FileId, float] = {}
        # file -> eids of entries containing it, in eid (first-seen) order
        self._containing: dict[FileId, list[int]] = {}
        # per-eid cached quantities, indexed by entry id
        self._bundles: list = []
        self._base_adj: list[float] = []
        self._base_real: list[float] = []
        history.add_listener(self)

    # ------------------------------------------------------------------ #
    # history events

    def on_entry_added(self, entry: HistoryEntry) -> None:
        """Register a new request type (degrees of its files just grew)."""
        eid = entry.eid
        if eid != len(self._bundles):  # pragma: no cover - defensive
            raise StateInvariantError(
                f"entry id {eid} out of sync with state size {len(self._bundles)}"
            )
        bundle = entry.bundle
        sizes = self._sizes
        degree = self._history.degree
        stale: set[int] = set()
        for f in bundle:
            self._adj_size[f] = sizes[f] / max(1, degree(f))
            holders = self._containing.setdefault(f, [])
            stale.update(holders)
            holders.append(eid)
        self._bundles.append(bundle)
        self._base_adj.append(0.0)
        self._base_real.append(0.0)
        self._refresh_base(eid)
        # refreshes are independent per entry (each rewrites only its own
        # cached floats), but sort so maintenance order is reproducible
        for other in sorted(stale):
            self._refresh_base(other)

    def _refresh_base(self, eid: int) -> None:
        """Recompute one bundle's base sizes in bundle iteration order.

        Full recomputation (not a delta) so the cached float equals the
        left-to-right sum the from-scratch path accumulates.
        """
        adj = self._adj_size
        sizes = self._sizes
        a = r = 0.0
        for f in self._bundles[eid]:
            a += adj[f]
            r += sizes[f]
        self._base_adj[eid] = a
        self._base_real[eid] = r

    # ------------------------------------------------------------------ #
    # selection

    def select(
        self,
        budget: SizeBytes,
        *,
        free: AbstractSet[FileId] = frozenset(),
        safeguard: bool = True,
    ) -> CacheSelection:
        """Refined greedy over the current candidates, incremental edition.

        Mirrors :func:`repro.core.optcacheselect._select_refined` step for
        step, but draws ``containing``/``adj_size`` and the base residual
        sizes from the persistent state instead of rebuilding them; only
        candidates sharing a file with ``free`` (the arriving bundle) have
        their residuals recomputed for this call.
        """
        with self._recorder.span("optbundle.select"):
            return self._select(budget, free=free, safeguard=safeguard)

    def _select(
        self,
        budget: SizeBytes,
        *,
        free: AbstractSet[FileId] = frozenset(),
        safeguard: bool = True,
    ) -> CacheSelection:
        history = self._history
        entries = history.candidates()
        if not entries or budget <= 0:
            return _empty_selection()

        sizes = self._sizes
        adj = self._adj_size
        n = len(entries)
        ids = [e.eid for e in entries]
        pos = {eid: k for k, eid in enumerate(ids)}
        bundles = tuple(e.bundle for e in entries)
        values = tuple(e.value for e in entries)
        base_adj, base_real = self._base_adj, self._base_real
        rem_adj = [base_adj[eid] for eid in ids]
        rem_real = [base_real[eid] for eid in ids]
        if free:
            affected: set[int] = set()
            # repro: allow[RPR003] only inserts into the `affected` set;
            # visit order cannot influence its final contents
            for f in free:
                for eid in self._containing.get(f, ()):
                    k = pos.get(eid)
                    if k is not None:
                        affected.add(k)
            # each iteration rewrites only its own rem_* slot; sorted so
            # the (order-insensitive) maintenance is also reproducible
            for k in sorted(affected):
                a = r = 0.0
                for f in bundles[k]:
                    if f in free:
                        continue
                    a += adj[f]
                    r += sizes[f]
                rem_adj[k] = a
                rem_real[k] = r

        inf = float("inf")
        active = [True] * n
        selected_files: set[FileId] = set(free)
        remaining = float(budget)
        chosen: list[int] = []

        single: tuple[int, float] | None = None
        if safeguard:
            slack = budget + _EPS
            for k in range(n):
                if rem_real[k] <= slack and (single is None or values[k] > single[1]):
                    single = (k, values[k])

        score = [
            values[k] / rem_adj[k] if rem_adj[k] > _EPS else inf for k in range(n)
        ]
        heap: list[tuple[float, int, float]] = [
            (-score[k], k, score[k]) for k in range(n)
        ]
        heapq.heapify(heap)
        containing = self._containing

        def select_one(k: int) -> None:
            nonlocal remaining
            chosen.append(k)
            active[k] = False
            remaining -= rem_real[k]
            for f in bundles[k]:
                if f in selected_files:
                    continue
                selected_files.add(f)
                af, sf = adj[f], sizes[f]
                for eid in containing[f]:
                    j = pos.get(eid)
                    if j is None or not active[j]:
                        continue
                    rem_adj[j] -= af
                    rem_real[j] -= sf
                    new = values[j] / rem_adj[j] if rem_adj[j] > _EPS else inf
                    score[j] = new
                    heapq.heappush(heap, (-new, j, new))

        while heap:
            _neg, k, snap = heapq.heappop(heap)
            if not active[k] or snap != score[k]:
                continue  # stale or already decided
            if rem_real[k] <= remaining + _EPS:
                select_one(k)
            else:
                active[k] = False  # skipped: insufficient space (Step 2)

        inst = FBCInstance.trusted(bundles, values, sizes, budget)
        return _finish(
            inst, chosen, safeguard=safeguard, free=frozenset(free), single=single
        )
