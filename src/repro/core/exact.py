"""Exact solvers for the File-Bundle Caching problem (bound verification).

The FBC problem is NP-hard (Section 4: reduction from Dense-k-Subgraph), so
exact solutions are only tractable for small instances.  Two solvers are
provided:

* :func:`solve_exact` — depth-first branch-and-bound over request subsets
  with a remaining-value bound; exact for a few dozen candidates.
* :func:`solve_knapsack_dp` — dynamic program for the special case where no
  two requests share a file, in which FBC *is* the 0/1 knapsack problem.

These power the Theorem 4.1 verification tests and the ``thm41`` benchmark:
``greedy_value ≥ ½(1 − e^{−1/d}) · exact_value`` on random instances.
"""

from __future__ import annotations

from repro.core.optcacheselect import CacheSelection, FBCInstance, _empty_selection
from repro.errors import SolverError
from repro.types import FileId

__all__ = ["solve_exact", "solve_knapsack_dp", "MAX_EXACT_CANDIDATES"]

MAX_EXACT_CANDIDATES = 30
"""Hard limit on instance size accepted by :func:`solve_exact`."""


def _selection_from_indices(inst: FBCInstance, indices: list[int]) -> CacheSelection:
    files: set[FileId] = set()
    for i in indices:
        files.update(inst.bundles[i].files)
    return CacheSelection(
        selected=tuple(indices),
        bundles=tuple(inst.bundles[i] for i in indices),
        files=frozenset(files),
        total_value=sum(inst.values[i] for i in indices),
        used_bytes=sum(inst.sizes[f] for f in files),
    )


def solve_exact(inst: FBCInstance) -> CacheSelection:
    """Optimal FBC solution by branch-and-bound (small instances only).

    Candidates are explored in decreasing-value order; a branch is pruned
    when even taking every remaining request could not beat the incumbent.
    Raises :class:`~repro.errors.SolverError` beyond
    :data:`MAX_EXACT_CANDIDATES` candidates.
    """
    n = len(inst)
    if n == 0 or inst.budget <= 0:
        return _empty_selection()
    if n > MAX_EXACT_CANDIDATES:
        raise SolverError(
            f"exact solver limited to {MAX_EXACT_CANDIDATES} candidates, got {n}"
        )

    order = sorted(range(n), key=lambda i: -inst.values[i])
    values = [inst.values[i] for i in order]
    bundles = [inst.bundles[i] for i in order]
    suffix_value = [0.0] * (n + 1)
    for i in range(n - 1, -1, -1):
        suffix_value[i] = suffix_value[i + 1] + values[i]

    sizes = inst.sizes
    budget = inst.budget
    best_value = -1.0
    best_set: list[int] = []

    chosen: list[int] = []
    chosen_files: dict[FileId, int] = {}  # reference counts for backtracking
    used = 0

    def marginal(i: int) -> int:
        return sum(sizes[f] for f in bundles[i] if f not in chosen_files)

    def dfs(i: int, value: float) -> None:
        nonlocal best_value, best_set, used
        if value > best_value:
            best_value = value
            best_set = chosen.copy()
        if i == n or value + suffix_value[i] <= best_value:
            return
        # Branch 1: take candidate i if it fits.
        extra = marginal(i)
        if used + extra <= budget:
            chosen.append(i)
            used += extra
            for f in bundles[i]:
                chosen_files[f] = chosen_files.get(f, 0) + 1
            dfs(i + 1, value + values[i])
            for f in bundles[i]:
                if chosen_files[f] == 1:
                    del chosen_files[f]
                else:
                    chosen_files[f] -= 1
            used -= extra
            chosen.pop()
        # Branch 2: skip candidate i.
        dfs(i + 1, value)

    dfs(0, 0.0)
    return _selection_from_indices(inst, [order[i] for i in best_set])


def solve_knapsack_dp(inst: FBCInstance, *, scale: int = 1) -> CacheSelection:
    """Exact solver for the file-disjoint special case via knapsack DP.

    When no file is shared between two candidate requests, FBC reduces to
    0/1 knapsack with item weight = bundle size (Section 4).  Raises
    :class:`~repro.errors.SolverError` if any file is shared.  ``scale``
    divides all byte sizes (rounding weights *up*, budget *down*, so the
    returned solution is always feasible) to bound the DP table for large
    budgets.
    """
    seen: set[FileId] = set()
    for bundle in inst.bundles:
        for f in bundle:
            if f in seen:
                raise SolverError(
                    f"file {f!r} is shared between requests; "
                    "knapsack DP only applies to disjoint instances"
                )
            seen.add(f)
    if scale <= 0:
        raise SolverError(f"scale must be positive, got {scale}")

    n = len(inst)
    if n == 0 or inst.budget <= 0:
        return _empty_selection()

    weights = [
        -(-inst.bundles[i].size_under(inst.sizes) // scale) for i in range(n)
    ]
    capacity = inst.budget // scale

    # dp[w] = best value using capacity w; keep[i][w] records the take bit.
    dp = [0.0] * (capacity + 1)
    take = [[False] * (capacity + 1) for _ in range(n)]
    for i in range(n):
        w_i, v_i = weights[i], inst.values[i]
        if w_i > capacity:
            continue
        row = take[i]
        for w in range(capacity, w_i - 1, -1):
            candidate = dp[w - w_i] + v_i
            if candidate > dp[w]:
                dp[w] = candidate
                row[w] = True

    chosen: list[int] = []
    w = capacity
    for i in range(n - 1, -1, -1):
        if take[i][w]:
            chosen.append(i)
            w -= weights[i]
    chosen.reverse()
    return _selection_from_indices(inst, chosen)
