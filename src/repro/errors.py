"""Exception hierarchy for the :mod:`repro` package.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything coming out of this package with a single ``except`` clause
while still being able to discriminate finer-grained failure modes.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigError",
    "CacheCapacityError",
    "UnknownFileError",
    "DuplicateFileError",
    "PolicyError",
    "WorkloadError",
    "TraceFormatError",
    "SimulationError",
    "SolverError",
    "FaultInjectionError",
    "StagingTimeoutError",
    "RetryExhaustedError",
    "TelemetryError",
    "TraceValidationError",
    "TraceInvariantError",
    "TypeContractError",
    "StateInvariantError",
    "LintError",
    "ServiceError",
    "DurabilityError",
    "JournalError",
    "JournalCorruptError",
    "CheckpointError",
    "ReplayDivergenceError",
    "InjectedCrashError",
    "TraceTruncatedWarning",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class ConfigError(ReproError, ValueError):
    """An invalid parameter or configuration value was supplied."""


class CacheCapacityError(ReproError):
    """An operation would exceed the cache capacity.

    Raised e.g. when a file (or bundle) larger than the whole cache is
    loaded, or when a policy returns a load plan that does not fit.
    """

    def __init__(self, needed: int, available: int, message: str | None = None):
        self.needed = int(needed)
        self.available = int(available)
        if message is None:
            message = (
                f"operation needs {self.needed} bytes but only "
                f"{self.available} bytes are available"
            )
        super().__init__(message)


class UnknownFileError(ReproError, KeyError):
    """A file id was referenced that is not known to the container."""


class DuplicateFileError(ReproError, ValueError):
    """A file id was inserted into a container that already holds it."""


class PolicyError(ReproError):
    """A replacement policy violated its contract."""


class WorkloadError(ReproError, ValueError):
    """Workload generation was asked for an impossible configuration."""


class TraceFormatError(ReproError, ValueError):
    """A serialized trace could not be parsed."""


class SimulationError(ReproError):
    """The simulation engine reached an inconsistent state."""


class SolverError(ReproError):
    """An exact solver failed (e.g. instance too large for brute force)."""


class FaultInjectionError(ReproError):
    """A fault-injection component was used outside its contract.

    Raised e.g. when a downtime schedule is queried at a negative time or
    an injector is wired into a component it cannot model.
    """


class StagingTimeoutError(ReproError):
    """A file staging attempt exceeded its per-file timeout.

    Carries the file id and the timeout that expired; the SRM normally
    absorbs this into its retry path rather than letting it propagate.
    """

    def __init__(self, file_id: object, timeout: float, message: str | None = None):
        self.file_id = file_id
        self.timeout = float(timeout)
        if message is None:
            message = f"staging of {file_id!r} exceeded {self.timeout} s"
        super().__init__(message)


class TelemetryError(ReproError, ValueError):
    """The telemetry layer was misused or a trace failed validation.

    Raised e.g. for malformed JSONL trace lines, unknown event kinds,
    metric name collisions across types, or decreasing counters.
    """


class TraceValidationError(TelemetryError):
    """A serialized telemetry trace failed schema validation.

    Carries the location of the first invalid record: ``path`` (when the
    record came from a file), the 1-based ``lineno``, and the offending
    ``field`` name (``None`` when the whole line is at fault, e.g. broken
    JSON or an unknown event kind).
    """

    def __init__(
        self,
        message: str,
        *,
        path: str | None = None,
        lineno: int | None = None,
        field: str | None = None,
    ):
        super().__init__(message)
        self.path = path
        self.lineno = lineno
        self.field = field


class TraceInvariantError(TelemetryError):
    """A recorded trace describes an impossible simulation.

    Raised by the forensics reconstructor when replaying a trace violates
    a cache-state invariant (occupancy over capacity, eviction of a
    non-resident file, a plan not satisfied by its admissions, sim-time
    running backwards).  Carries the list of violations found.
    """

    def __init__(self, message: str, violations: list | None = None):
        super().__init__(message)
        self.violations = violations or []


class TypeContractError(ReproError, TypeError):
    """A value of the wrong *type* was supplied where the API demands one.

    The ``TypeError`` base keeps ``except TypeError`` callers working while
    rooting the exception in the package hierarchy.
    """


class StateInvariantError(ReproError, AssertionError):
    """An internal consistency check (``check_invariants``) failed.

    The ``AssertionError`` base preserves the historical contract of the
    debug-time invariant checkers while keeping the exception catchable as
    a :class:`ReproError`.
    """


class LintError(ReproError):
    """The static-analysis driver could not lint an input.

    Raised for missing paths, unreadable or non-UTF-8 source files, and
    source that does not parse — *operator* errors, as opposed to rule
    findings, which are reported (never raised) by the linter.
    """


class ServiceError(ReproError):
    """The coordinator service was misused or reached a bad state.

    Raised for invalid job submissions (empty bundles, malformed request
    payloads) and for server-side protocol violations; the HTTP layer
    maps it to a 4xx response rather than letting it kill the serving
    loop.
    """


class DurabilityError(ReproError):
    """Base class for write-ahead-journal / checkpoint / recovery failures."""


class JournalError(DurabilityError):
    """The write-ahead journal was misused or could not be written."""


class JournalCorruptError(JournalError):
    """A journal segment holds a frame whose CRC32 does not match.

    Only an *interior* frame can raise this: an incomplete final frame is
    the expected signature of a torn write and is silently discarded by
    the reader.  Carries the segment path and byte offset of the bad
    frame.
    """

    def __init__(
        self,
        message: str,
        *,
        path: str | None = None,
        offset: int | None = None,
    ):
        super().__init__(message)
        self.path = path
        self.offset = offset


class CheckpointError(DurabilityError):
    """A checkpoint file is missing, corrupt, or of an unsupported schema."""


class ReplayDivergenceError(DurabilityError):
    """Recovery re-execution diverged from the journaled decision record.

    Raised when re-executing a journaled job emits telemetry that differs
    from the frame recorded before the crash — the restored state is not
    byte-identical to the pre-crash state, so continuing would silently
    fork the run.
    """


class InjectedCrashError(DurabilityError):
    """A :class:`repro.faults.CrashSpec` fired in ``raise`` mode.

    Deliberately *not* catchable via the injector's host components: the
    durable runner lets it propagate so tests exercise the same abrupt
    teardown path a real crash takes.
    """


class TraceTruncatedWarning(ReproError, UserWarning):
    """A JSONL telemetry trace ends in a torn (crash-truncated) final line.

    Derives from both :class:`ReproError` (the package-wide hierarchy
    contract) and :class:`UserWarning` (so it can be *issued* via
    :mod:`warnings` rather than raised).

    Issued — not raised — by :func:`repro.telemetry.validate_trace_file`
    and the forensics trace loaders when the last line of a trace lacks a
    trailing newline and fails to parse or validate: the signature of a
    process killed mid-write.  ``byte_offset`` is where the intact prefix
    ends, i.e. the length a recovery tool should truncate the file to.
    """

    def __init__(self, message: str, *, path: str | None = None,
                 byte_offset: int | None = None, lineno: int | None = None):
        super().__init__(message)
        self.path = path
        self.byte_offset = byte_offset
        self.lineno = lineno


class RetryExhaustedError(ReproError):
    """A staging operation failed on every attempt of its retry budget.

    Carries the file id and the number of attempts made; the SRM converts
    this into a requeue (once) and then a ``failed_jobs`` count rather
    than crashing the run.
    """

    def __init__(self, file_id: object, attempts: int, message: str | None = None):
        self.file_id = file_id
        self.attempts = int(attempts)
        if message is None:
            message = f"staging of {file_id!r} failed after {self.attempts} attempts"
        super().__init__(message)
