"""Exception hierarchy for the :mod:`repro` package.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything coming out of this package with a single ``except`` clause
while still being able to discriminate finer-grained failure modes.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigError",
    "CacheCapacityError",
    "UnknownFileError",
    "DuplicateFileError",
    "PolicyError",
    "WorkloadError",
    "TraceFormatError",
    "SimulationError",
    "SolverError",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class ConfigError(ReproError, ValueError):
    """An invalid parameter or configuration value was supplied."""


class CacheCapacityError(ReproError):
    """An operation would exceed the cache capacity.

    Raised e.g. when a file (or bundle) larger than the whole cache is
    loaded, or when a policy returns a load plan that does not fit.
    """

    def __init__(self, needed: int, available: int, message: str | None = None):
        self.needed = int(needed)
        self.available = int(available)
        if message is None:
            message = (
                f"operation needs {self.needed} bytes but only "
                f"{self.available} bytes are available"
            )
        super().__init__(message)


class UnknownFileError(ReproError, KeyError):
    """A file id was referenced that is not known to the container."""


class DuplicateFileError(ReproError, ValueError):
    """A file id was inserted into a container that already holds it."""


class PolicyError(ReproError):
    """A replacement policy violated its contract."""


class WorkloadError(ReproError, ValueError):
    """Workload generation was asked for an impossible configuration."""


class TraceFormatError(ReproError, ValueError):
    """A serialized trace could not be parsed."""


class SimulationError(ReproError):
    """The simulation engine reached an inconsistent state."""


class SolverError(ReproError):
    """An exact solver failed (e.g. instance too large for brute force)."""
