"""Trace sinks: where a :class:`~repro.telemetry.recorder.TraceRecorder` writes.

* :class:`NullSink` — the default; marks the recorder inactive so
  instrumentation sites skip event construction entirely (near-zero
  overhead — one attribute check per site).
* :class:`JsonlSink` — one canonical JSON object per line.  Keys are
  sorted and separators fixed, so a deterministic event stream yields a
  byte-identical file.
* :class:`RingSink` — an in-memory (optionally bounded) buffer of typed
  events; used by tests and by the per-worker buffering that keeps
  ``--jobs N`` traces deterministic.

Durability
----------
A :class:`JsonlSink` registers a :func:`weakref.finalize` callback, so
its buffer is flushed and the file closed at interpreter exit (or
garbage collection) even when the owner forgets to call :meth:`close` —
a crash-adjacent run still leaves a readable trace.  :meth:`flush`
pushes buffered lines to the OS on demand (optionally fsync'ing), and
:attr:`bytes_written` tracks the exact byte offset of the durable-write
frontier, which the checkpoint/recovery layer records so a resumed run
can truncate a torn tail and append from a known-good boundary.
"""

from __future__ import annotations

import abc
import json
import os
import weakref
from collections import deque
from pathlib import Path
from typing import IO

from repro.errors import ConfigError
from repro.telemetry.events import TraceEvent, event_to_dict

__all__ = ["TraceSink", "NullSink", "JsonlSink", "RingSink"]


class TraceSink(abc.ABC):
    """Destination for a sequenced event stream."""

    #: recorders short-circuit all emission when the sink is inactive
    active: bool = True

    @abc.abstractmethod
    def emit(self, seq: int, event: TraceEvent) -> None:
        """Consume one event; ``seq`` is the recorder-assigned sequence."""

    def close(self) -> None:
        """Flush and release resources (idempotent)."""


class NullSink(TraceSink):
    """Discards everything; the recorder never even constructs events."""

    active = False

    def emit(self, seq: int, event: TraceEvent) -> None:  # pragma: no cover
        pass


def _close_file(fh: IO[bytes]) -> None:
    # runs via weakref.finalize: at gc, explicit close(), or interpreter
    # exit — whichever comes first
    if not fh.closed:
        fh.close()


class JsonlSink(TraceSink):
    """Appends canonical JSON lines to ``path``.

    ``append=False`` (default) truncates on open; ``append=True`` keeps
    existing content and continues counting :attr:`bytes_written` from
    the current file size (the recovery path truncates the file to the
    checkpoint offset first, then appends).
    """

    def __init__(self, path: "str | Path", *, append: bool = False):
        self.path = Path(path)
        # binary mode: one encode per line (its length IS the byte
        # offset advance) and a single buffer layer under flush(),
        # which the durable runner calls at every checkpoint boundary
        mode = "ab" if append else "wb"
        self._fh: IO[bytes] = open(self.path, mode)
        self.lines_written = 0
        self.bytes_written = self.path.stat().st_size if append else 0
        self._finalizer = weakref.finalize(self, _close_file, self._fh)

    def emit(self, seq: int, event: TraceEvent) -> None:
        self.emit_record(event_to_dict(seq, event))

    def emit_record(self, record: dict) -> None:
        """Write one already-built event record."""
        self.emit_line(json.dumps(record, sort_keys=True, separators=(",", ":")))

    def emit_line(self, line: str) -> None:
        """Write one already-serialized canonical JSON line (the durable
        runner serializes once and shares the line with its replay check)."""
        data = line.encode("utf-8") + b"\n"
        self._fh.write(data)
        self.lines_written += 1
        self.bytes_written += len(data)

    def flush(self, *, sync: bool = False) -> None:
        """Push buffered lines to the OS; ``sync`` additionally fsyncs."""
        if self._fh.closed:
            return
        self._fh.flush()
        if sync:
            os.fsync(self._fh.fileno())

    def close(self) -> None:
        self._finalizer()


class RingSink(TraceSink):
    """Keeps the last ``capacity`` events in memory (``None`` = unbounded)."""

    def __init__(self, capacity: int | None = None):
        if capacity is not None and capacity < 1:
            raise ConfigError(f"RingSink capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._events: deque[tuple[int, TraceEvent]] = deque(maxlen=capacity)

    def emit(self, seq: int, event: TraceEvent) -> None:
        self._events.append((seq, event))

    @property
    def events(self) -> list[TraceEvent]:
        """Retained events, oldest first."""
        return [event for _seq, event in self._events]

    @property
    def sequenced(self) -> list[tuple[int, TraceEvent]]:
        """Retained ``(seq, event)`` pairs, oldest first."""
        return list(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def clear(self) -> None:
        self._events.clear()
