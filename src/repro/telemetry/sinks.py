"""Trace sinks: where a :class:`~repro.telemetry.recorder.TraceRecorder` writes.

* :class:`NullSink` — the default; marks the recorder inactive so
  instrumentation sites skip event construction entirely (near-zero
  overhead — one attribute check per site).
* :class:`JsonlSink` — one canonical JSON object per line.  Keys are
  sorted and separators fixed, so a deterministic event stream yields a
  byte-identical file.
* :class:`RingSink` — an in-memory (optionally bounded) buffer of typed
  events; used by tests and by the per-worker buffering that keeps
  ``--jobs N`` traces deterministic.
"""

from __future__ import annotations

import abc
import json
from collections import deque
from pathlib import Path

from repro.errors import ConfigError
from repro.telemetry.events import TraceEvent, event_to_dict

__all__ = ["TraceSink", "NullSink", "JsonlSink", "RingSink"]


class TraceSink(abc.ABC):
    """Destination for a sequenced event stream."""

    #: recorders short-circuit all emission when the sink is inactive
    active: bool = True

    @abc.abstractmethod
    def emit(self, seq: int, event: TraceEvent) -> None:
        """Consume one event; ``seq`` is the recorder-assigned sequence."""

    def close(self) -> None:
        """Flush and release resources (idempotent)."""


class NullSink(TraceSink):
    """Discards everything; the recorder never even constructs events."""

    active = False

    def emit(self, seq: int, event: TraceEvent) -> None:  # pragma: no cover
        pass


class JsonlSink(TraceSink):
    """Appends canonical JSON lines to ``path`` (truncates on open)."""

    def __init__(self, path: "str | Path"):
        self.path = Path(path)
        self._fh = open(self.path, "w", encoding="utf-8", newline="\n")
        self.lines_written = 0

    def emit(self, seq: int, event: TraceEvent) -> None:
        self._fh.write(
            json.dumps(
                event_to_dict(seq, event), sort_keys=True, separators=(",", ":")
            )
        )
        self._fh.write("\n")
        self.lines_written += 1

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()


class RingSink(TraceSink):
    """Keeps the last ``capacity`` events in memory (``None`` = unbounded)."""

    def __init__(self, capacity: int | None = None):
        if capacity is not None and capacity < 1:
            raise ConfigError(f"RingSink capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._events: deque[tuple[int, TraceEvent]] = deque(maxlen=capacity)

    def emit(self, seq: int, event: TraceEvent) -> None:
        self._events.append((seq, event))

    @property
    def events(self) -> list[TraceEvent]:
        """Retained events, oldest first."""
        return [event for _seq, event in self._events]

    @property
    def sequenced(self) -> list[tuple[int, TraceEvent]]:
        """Retained ``(seq, event)`` pairs, oldest first."""
        return list(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def clear(self) -> None:
        self._events.clear()
