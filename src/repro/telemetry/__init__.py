"""repro.telemetry — structured tracing, metrics and profiling.

Three cooperating pieces:

* **Event tracing** — typed, deterministic events
  (:mod:`repro.telemetry.events`) written by a
  :class:`~repro.telemetry.recorder.TraceRecorder` to a pluggable sink
  (:mod:`repro.telemetry.sinks`).  The default :class:`NullSink` makes
  every instrumentation site a single attribute check; a
  :class:`JsonlSink` produces a byte-reproducible trace of an entire
  run, identical under serial and ``--jobs N`` execution.
* **Metrics registry** — named counters/gauges/histograms
  (:mod:`repro.telemetry.metrics`) with Prometheus-text and JSON
  exporters; the simulation result dataclasses read their counters from
  per-run registries.
* **Profiling** — :func:`span`/:func:`timed`
  (:mod:`repro.telemetry.profiling`) time the hot paths (planning,
  selection, ``on_request``, SRM staging) into span histograms, kept out
  of the deterministic event stream by design.
* **Request tracing** — :mod:`repro.telemetry.tracing` assembles the
  same spans into per-request causal trees under deterministic request
  IDs (derived from arrival sequence, never the clock), retained in a
  bounded ring for the service's ``/v1/debug/*`` endpoints.
* **Forensics** — :mod:`repro.telemetry.forensics` consumes recorded
  traces after the fact: indexed reading (:class:`TraceLog`),
  cache-state reconstruction with invariant checks, cross-policy
  divergence diffing, byte-miss anomaly detection, and Chrome
  trace-event export (``repro-fbc analyze / diff-traces /
  export-chrome``).

See the README's *Observability* section for a guided tour and
``repro-fbc trace`` for the CLI entry point.
"""

from repro.telemetry.events import (
    EVENT_SCHEMA,
    EVENT_TYPES,
    FaultInjected,
    FileAdmitted,
    FileEvicted,
    JobArrived,
    PlanComputed,
    StageCompleted,
    StageFailedOver,
    StageRetried,
    StageStarted,
    TraceEvent,
    WindowRolled,
    event_from_dict,
    event_to_dict,
    validate_event,
    validate_trace_file,
)
from repro.telemetry.metrics import (
    PROMETHEUS_CONTENT_TYPE,
    Counter,
    Gauge,
    Histogram,
    MetricsFamily,
    MetricsRegistry,
)
from repro.telemetry.profiling import span, span_profile, timed
from repro.telemetry.tracing import (
    REQUEST_ID_HEADER,
    RequestTrace,
    RequestTracer,
    SpanNode,
    active_request,
    request_id_for_job,
)
from repro.telemetry.recorder import (
    NULL_RECORDER,
    TraceRecorder,
    current_recorder,
    recorder_from_spec,
    use_recorder,
)
from repro.telemetry.sinks import JsonlSink, NullSink, RingSink, TraceSink

__all__ = [
    # events
    "TraceEvent",
    "JobArrived",
    "PlanComputed",
    "FileAdmitted",
    "FileEvicted",
    "StageStarted",
    "StageRetried",
    "StageFailedOver",
    "StageCompleted",
    "FaultInjected",
    "WindowRolled",
    "EVENT_TYPES",
    "EVENT_SCHEMA",
    "event_to_dict",
    "event_from_dict",
    "validate_event",
    "validate_trace_file",
    # sinks
    "TraceSink",
    "NullSink",
    "JsonlSink",
    "RingSink",
    # recorder
    "TraceRecorder",
    "NULL_RECORDER",
    "current_recorder",
    "use_recorder",
    "recorder_from_spec",
    # metrics
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsFamily",
    "MetricsRegistry",
    "PROMETHEUS_CONTENT_TYPE",
    # profiling
    "span",
    "timed",
    "span_profile",
    # request tracing
    "REQUEST_ID_HEADER",
    "RequestTrace",
    "RequestTracer",
    "SpanNode",
    "active_request",
    "request_id_for_job",
]
