"""Typed trace events and their line schema.

Every observable decision in the stack — a job arriving, a plan being
computed, files moving in and out of the cache, staging attempts on the
timed grid, injected faults, metric windows rolling over — is one frozen
dataclass below.  Events are *pure data*: no wall-clock timestamps, no
machine identifiers, nothing that is not a deterministic function of the
(seeded) simulation.  That is what makes a JSONL trace byte-identical
across reruns and across serial vs. ``--jobs N`` execution.

Simulated time (``t``) on the grid events *is* deterministic and is
included; host time never is, so profiling data lives in the
:class:`~repro.telemetry.metrics.MetricsRegistry` instead of the trace.

``EVENT_SCHEMA`` is the single source of truth for the serialized line
format; :func:`validate_event` / :func:`validate_trace_file` check
arbitrary JSONL against it (used by the CI trace smoke job).
"""

from __future__ import annotations

import json
import warnings
from dataclasses import dataclass, fields
from pathlib import Path
from typing import Any, Mapping

from repro.errors import TraceTruncatedWarning, TraceValidationError

__all__ = [
    "TraceEvent",
    "JobArrived",
    "PlanComputed",
    "FileAdmitted",
    "FileEvicted",
    "StageStarted",
    "StageRetried",
    "StageFailedOver",
    "StageCompleted",
    "FaultInjected",
    "WindowRolled",
    "EVENT_TYPES",
    "EVENT_SCHEMA",
    "event_to_dict",
    "event_from_dict",
    "validate_event",
    "validate_trace_file",
    "warn_torn_tail",
]


@dataclass(frozen=True)
class TraceEvent:
    """Base class of all trace events (never emitted itself)."""

    #: machine name of the event class, stable across versions
    kind = "abstract"


@dataclass(frozen=True)
class JobArrived(TraceEvent):
    """A request entered the service loop (before admission checks)."""

    kind = "JobArrived"
    job: int  # 0-based arrival index within the run
    request_id: int
    n_files: int
    bytes_requested: int


@dataclass(frozen=True)
class PlanComputed(TraceEvent):
    """A replacement policy finished its decision for one request."""

    kind = "PlanComputed"
    policy: str
    loads: int
    prefetches: int
    evictions: int
    hit: bool


@dataclass(frozen=True)
class FileAdmitted(TraceEvent):
    """A file entered the cache (``cause``: demand | prefetch | staged)."""

    kind = "FileAdmitted"
    file: str
    bytes: int
    cause: str


@dataclass(frozen=True)
class FileEvicted(TraceEvent):
    """A policy removed a file to make room.

    ``detail`` carries the policy's own eviction rationale — Landlord's
    residual credit, OptFileBundle's history degree — so divergent
    decisions between algorithms can be explained from the trace alone.
    """

    kind = "FileEvicted"
    file: str
    bytes: int
    policy: str
    detail: dict | None = None


@dataclass(frozen=True)
class StageStarted(TraceEvent):
    """The SRM began one staging attempt for a file."""

    kind = "StageStarted"
    file: str
    bytes: int
    site: str
    attempt: int  # 1-based attempt number
    t: float  # simulated time


@dataclass(frozen=True)
class StageRetried(TraceEvent):
    """A staging attempt failed; a retry was scheduled after ``delay``."""

    kind = "StageRetried"
    file: str
    attempt: int  # failed attempts so far
    delay: float
    t: float


@dataclass(frozen=True)
class StageFailedOver(TraceEvent):
    """A retry re-resolved a file to a different replica site."""

    kind = "StageFailedOver"
    file: str
    from_site: str
    to_site: str
    t: float


@dataclass(frozen=True)
class StageCompleted(TraceEvent):
    """A file finished staging into the disk cache."""

    kind = "StageCompleted"
    file: str
    bytes: int
    site: str
    t: float


@dataclass(frozen=True)
class FaultInjected(TraceEvent):
    """The fault injector fired (``fault``: drive | transfer | latency_spike)."""

    kind = "FaultInjected"
    fault: str
    component: str


@dataclass(frozen=True)
class WindowRolled(TraceEvent):
    """A metrics window closed (learning-curve time series)."""

    kind = "WindowRolled"
    index: int
    jobs: int
    byte_miss_ratio: float
    request_hit_ratio: float


EVENT_TYPES: dict[str, type[TraceEvent]] = {
    cls.kind: cls
    for cls in (
        JobArrived,
        PlanComputed,
        FileAdmitted,
        FileEvicted,
        StageStarted,
        StageRetried,
        StageFailedOver,
        StageCompleted,
        FaultInjected,
        WindowRolled,
    )
}

#: field name -> allowed JSON types, per event kind.  ``bool`` is listed
#: before ``int`` checks because bool is an int subclass in Python.
_INT = (int,)
_NUM = (int, float)
_STR = (str,)
_BOOL = (bool,)
_DICT_OR_NULL = (dict, type(None))

EVENT_SCHEMA: dict[str, dict[str, tuple[type, ...]]] = {
    "JobArrived": {
        "job": _INT,
        "request_id": _INT,
        "n_files": _INT,
        "bytes_requested": _INT,
    },
    "PlanComputed": {
        "policy": _STR,
        "loads": _INT,
        "prefetches": _INT,
        "evictions": _INT,
        "hit": _BOOL,
    },
    "FileAdmitted": {"file": _STR, "bytes": _INT, "cause": _STR},
    "FileEvicted": {
        "file": _STR,
        "bytes": _INT,
        "policy": _STR,
        "detail": _DICT_OR_NULL,
    },
    "StageStarted": {
        "file": _STR,
        "bytes": _INT,
        "site": _STR,
        "attempt": _INT,
        "t": _NUM,
    },
    "StageRetried": {"file": _STR, "attempt": _INT, "delay": _NUM, "t": _NUM},
    "StageFailedOver": {
        "file": _STR,
        "from_site": _STR,
        "to_site": _STR,
        "t": _NUM,
    },
    "StageCompleted": {"file": _STR, "bytes": _INT, "site": _STR, "t": _NUM},
    "FaultInjected": {"fault": _STR, "component": _STR},
    "WindowRolled": {
        "index": _INT,
        "jobs": _INT,
        "byte_miss_ratio": _NUM,
        "request_hit_ratio": _NUM,
    },
}

_ADMIT_CAUSES = frozenset({"demand", "prefetch", "staged"})
_FAULT_KINDS = frozenset({"drive", "transfer", "latency_spike"})


_FIELD_NAMES: dict[type, tuple[str, ...]] = {}


def event_to_dict(seq: int, event: TraceEvent) -> dict[str, Any]:
    """The serialized (JSONL line) form of one event.

    The returned dict is fresh but *shallow*: a nested payload (e.g.
    ``FileEvicted.detail``) is shared with the event, not deep-copied —
    events are frozen and callers serialize immediately, so the copy
    ``dataclasses.asdict`` would make is pure overhead on the hot path.
    """
    names = _FIELD_NAMES.get(type(event))
    if names is None:
        names = tuple(f.name for f in fields(event))
        _FIELD_NAMES[type(event)] = names
    out: dict[str, Any] = {"seq": seq, "kind": event.kind}
    for name in names:
        out[name] = getattr(event, name)
    return out


def event_from_dict(record: Mapping[str, Any]) -> TraceEvent:
    """Rebuild a typed event from its serialized form (validates first)."""
    validate_event(record)
    cls = EVENT_TYPES[record["kind"]]
    return cls(**{f.name: record[f.name] for f in fields(cls)})


def validate_event(record: Mapping[str, Any]) -> None:
    """Check one serialized event against :data:`EVENT_SCHEMA`.

    Raises :class:`~repro.errors.TraceValidationError` naming the first
    violation (with the offending field on its ``field`` attribute);
    returns ``None`` on success.
    """
    kind = record.get("kind")
    if kind not in EVENT_SCHEMA:
        raise TraceValidationError(f"unknown event kind {kind!r}", field="kind")
    schema = EVENT_SCHEMA[kind]
    seq = record.get("seq")
    if not isinstance(seq, int) or isinstance(seq, bool) or seq < 0:
        raise TraceValidationError(
            f"{kind}: 'seq' must be a non-negative int, got {seq!r}", field="seq"
        )
    for name, allowed in schema.items():
        if name not in record:
            raise TraceValidationError(
                f"{kind}: missing field {name!r}", field=name
            )
        value = record[name]
        if isinstance(value, bool) and bool not in allowed:
            raise TraceValidationError(
                f"{kind}.{name}: bool is not a valid value", field=name
            )
        if not isinstance(value, allowed):
            raise TraceValidationError(
                f"{kind}.{name}: expected {'/'.join(t.__name__ for t in allowed)}, "
                f"got {type(value).__name__}",
                field=name,
            )
    extra = set(record) - set(schema) - {"seq", "kind"}
    if extra:
        first = sorted(extra)[0]
        raise TraceValidationError(
            f"{kind}: unexpected fields {sorted(extra)}", field=first
        )
    if kind == "FileAdmitted" and record["cause"] not in _ADMIT_CAUSES:
        raise TraceValidationError(
            f"FileAdmitted.cause must be one of {sorted(_ADMIT_CAUSES)}, "
            f"got {record['cause']!r}",
            field="cause",
        )
    if kind == "FaultInjected" and record["fault"] not in _FAULT_KINDS:
        raise TraceValidationError(
            f"FaultInjected.fault must be one of {sorted(_FAULT_KINDS)}, "
            f"got {record['fault']!r}",
            field="fault",
        )


def warn_torn_tail(path: Any, lineno: int, byte_offset: int, reason: str) -> None:
    """Issue the standard :class:`TraceTruncatedWarning` for a torn tail.

    Shared by :func:`validate_trace_file` and the forensics trace loader
    so both report the same recovery hint: the byte offset of the intact
    prefix, i.e. what the file should be truncated to.
    """
    warnings.warn(
        TraceTruncatedWarning(
            f"{path}: line {lineno} is a torn final line ({reason}); "
            f"intact prefix is {byte_offset} bytes",
            path=str(path),
            byte_offset=byte_offset,
            lineno=lineno,
        ),
        stacklevel=3,
    )


def validate_trace_file(path: str | Path) -> int:
    """Validate every line of a JSONL trace; return the event count.

    Also checks that ``seq`` is a contiguous 0-based sequence, which any
    single-recorder trace must satisfy.  On failure raises
    :class:`~repro.errors.TraceValidationError` locating the first invalid
    record: the message (and the exception's ``lineno``/``field``
    attributes) carry the 1-based line number and the offending field.

    A final line that lacks its trailing newline and does not parse is
    the signature of a crash-torn write, not of corruption: it is
    reported as a recoverable :class:`~repro.errors.TraceTruncatedWarning`
    (carrying the byte offset of the intact prefix) and excluded from the
    count, so post-crash traces remain analyzable.
    """
    count = 0
    offset = 0
    with open(path, "rb") as fh:
        for lineno, raw in enumerate(fh, start=1):
            has_newline = raw.endswith(b"\n")
            try:
                line = raw.decode("utf-8").strip()
            except UnicodeDecodeError as exc:
                if not has_newline:
                    warn_torn_tail(path, lineno, offset, f"bad UTF-8: {exc}")
                    return count
                raise TraceValidationError(
                    f"{path}: line {lineno}: not valid UTF-8: {exc}",
                    path=str(path),
                    lineno=lineno,
                ) from None
            if not line:
                offset += len(raw)
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                if not has_newline:
                    warn_torn_tail(path, lineno, offset, f"not valid JSON: {exc}")
                    return count
                raise TraceValidationError(
                    f"{path}: line {lineno}: not valid JSON: {exc}",
                    path=str(path),
                    lineno=lineno,
                ) from None
            try:
                validate_event(record)
            except TraceValidationError as exc:
                field = f" (field {exc.field!r})" if exc.field else ""
                raise TraceValidationError(
                    f"{path}: line {lineno}{field}: {exc}",
                    path=str(path),
                    lineno=lineno,
                    field=exc.field,
                ) from None
            if record["seq"] != count:
                raise TraceValidationError(
                    f"{path}: line {lineno} (field 'seq'): seq {record['seq']} "
                    f"out of order (expected {count})",
                    path=str(path),
                    lineno=lineno,
                    field="seq",
                ) from None
            count += 1
            offset += len(raw)
    return count
