"""Metrics registry: named counters, gauges and histograms with exporters.

The simulation layers used to thread ad-hoc integer attributes through
result dataclasses (``SRMResult.retries`` and friends).  A
:class:`MetricsRegistry` gives those values names, help strings and a
uniform export surface — Prometheus text exposition and JSON — while the
public result dataclasses keep their exact shape (they now read their
numbers out of a registry).

Histograms track count/sum/min/max plus cumulative bucket counts, which
is what the profiling spans need (mean and tail latency) and what the
Prometheus format expects; :meth:`Histogram.quantile` estimates
percentiles from the fixed bucket bounds (linear interpolation within
the winning bucket, clamped to the observed min/max).

Labelled families (:meth:`MetricsRegistry.counter_family` and friends)
hold one child metric per label-value tuple under one ``HELP``/``TYPE``
header — the service uses them for per-route/per-status request
accounting.  Label values must come from *bounded* sets (route tables,
status codes, policy names), never request content.
"""

from __future__ import annotations

import bisect
import math
from typing import Any, Iterable, Mapping, Sequence

from repro.errors import TelemetryError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsFamily",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_SIZE_BUCKETS",
    "EXPORTED_QUANTILES",
    "PROMETHEUS_CONTENT_TYPE",
]

#: the content type the text exposition format (0.0.4) must be served with
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: the quantiles every histogram exposes in its JSON / Prometheus views
EXPORTED_QUANTILES: tuple[float, ...] = (0.5, 0.95, 0.99)


def _escape_help(text: str) -> str:
    """Escape a ``# HELP`` docstring per the exposition format (0.0.4):
    backslash and line feed only."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label_value(value: str) -> str:
    """Escape a label value: backslash, double quote, line feed."""
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )

#: span timings: 1 µs .. 10 s, exponential
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = tuple(
    1e-6 * (10 ** (i / 2)) for i in range(15)
)

#: byte volumes: 1 KiB .. 4 GiB, powers of four
DEFAULT_SIZE_BUCKETS: tuple[float, ...] = tuple(
    1024.0 * (4.0**i) for i in range(12)
)


def _check_name(name: str) -> str:
    if not name or not all(c.isalnum() or c in "_:" for c in name):
        raise TelemetryError(f"invalid metric name {name!r}")
    return name


class Counter:
    """Monotonically non-decreasing value (int or float increments)."""

    kind = "counter"
    __slots__ = ("name", "help", "_value")

    def __init__(self, name: str, help: str = ""):
        self.name = _check_name(name)
        self.help = help
        self._value: "int | float" = 0

    def inc(self, amount: "int | float" = 1) -> None:
        if amount < 0:
            raise TelemetryError(
                f"counter {self.name!r} cannot decrease (inc {amount})"
            )
        self._value += amount

    @property
    def value(self) -> "int | float":
        return self._value

    def export_state(self) -> "int | float":
        """The raw value, for checkpoint serialization."""
        return self._value

    def restore_state(self, value: "int | float") -> None:
        """Set the raw value from a checkpoint (bypasses monotonicity)."""
        self._value = value


class Gauge:
    """A value that may go up and down."""

    kind = "gauge"
    __slots__ = ("name", "help", "_value")

    def __init__(self, name: str, help: str = ""):
        self.name = _check_name(name)
        self.help = help
        self._value: "int | float" = 0

    def set(self, value: "int | float") -> None:
        self._value = value

    def inc(self, amount: "int | float" = 1) -> None:
        self._value += amount

    def dec(self, amount: "int | float" = 1) -> None:
        self._value -= amount

    @property
    def value(self) -> "int | float":
        return self._value


class Histogram:
    """Streaming distribution: count/sum/min/max + cumulative buckets.

    Exposes :attr:`mean` and :attr:`max` so it can stand in for the
    ad-hoc ``RunningStats`` accumulators the result dataclasses used to
    read (mean response time, max response time, …).
    """

    kind = "histogram"
    __slots__ = ("name", "help", "buckets", "_counts", "_n", "_sum", "_min", "_max")

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ):
        self.name = _check_name(name)
        self.help = help
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise TelemetryError(f"histogram {name!r} needs at least one bucket")
        self.buckets = bounds
        self._counts = [0] * (len(bounds) + 1)  # last slot = +Inf
        self._n = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf

    def observe(self, value: float) -> None:
        self._counts[bisect.bisect_left(self.buckets, value)] += 1
        self._n += 1
        self._sum += value
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value

    # RunningStats-compatible face -------------------------------------- #

    def push(self, value: float) -> None:
        """Alias for :meth:`observe` (RunningStats drop-in)."""
        self.observe(value)

    @property
    def count(self) -> int:
        return self._n

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        return self._sum / self._n if self._n else 0.0

    @property
    def min(self) -> float:
        return self._min if self._n else 0.0

    @property
    def max(self) -> float:
        return self._max if self._n else 0.0

    def export_state(self) -> dict[str, Any]:
        """JSON-able internal state (``inf`` sentinels encoded as null)."""
        return {
            "counts": list(self._counts),
            "n": self._n,
            "sum": self._sum,
            "min": None if self._n == 0 else self._min,
            "max": None if self._n == 0 else self._max,
        }

    def restore_state(self, state: Mapping[str, Any]) -> None:
        """Restore :meth:`export_state` output (bucket layout must match)."""
        counts = [int(c) for c in state["counts"]]
        if len(counts) != len(self._counts):
            raise TelemetryError(
                f"histogram {self.name!r}: snapshot has {len(counts)} "
                f"buckets, this histogram has {len(self._counts)}"
            )
        self._counts = counts
        self._n = int(state["n"])
        self._sum = float(state["sum"])
        self._min = math.inf if state["min"] is None else float(state["min"])
        self._max = -math.inf if state["max"] is None else float(state["max"])

    def bucket_counts(self) -> list[tuple[float, int]]:
        """Cumulative ``(le, count)`` pairs ending with ``(inf, n)``."""
        out: list[tuple[float, int]] = []
        running = 0
        for bound, c in zip(self.buckets, self._counts):
            running += c
            out.append((bound, running))
        out.append((math.inf, self._n))
        return out

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile (0 < q <= 1) from the buckets.

        Linear interpolation inside the bucket holding the target rank —
        the Prometheus ``histogram_quantile`` estimator — with two
        refinements the tracked min/max make possible: the first
        populated bucket interpolates from the observed minimum (not an
        assumed 0), the overflow bucket from the last bound to the
        observed maximum, and the result is clamped to ``[min, max]``.
        Returns 0.0 for an empty histogram.
        """
        if not 0.0 < q <= 1.0:
            raise TelemetryError(
                f"histogram {self.name!r}: quantile must be in (0, 1], got {q}"
            )
        if self._n == 0:
            return 0.0
        target = q * self._n
        cum = 0
        first_populated = True
        for i, count in enumerate(self._counts):
            if count == 0:
                continue
            lo = self._min if first_populated else self.buckets[i - 1]
            hi = self._max if i == len(self.buckets) else min(self.buckets[i], self._max)
            first_populated = False
            if cum + count >= target:
                frac = (target - cum) / count
                value = lo + (hi - lo) * frac
                return min(max(value, self._min), self._max)
            cum += count
        return self._max


def _check_label_name(name: str) -> str:
    if not name or name == "le" or not all(c.isalnum() or c == "_" for c in name):
        raise TelemetryError(f"invalid label name {name!r}")
    return name


class MetricsFamily:
    """A named group of child metrics keyed by label values.

    One ``HELP``/``TYPE`` header in the exposition, one child
    counter/gauge/histogram per distinct label-value tuple.  Children are
    created on first :meth:`labels` call; label values must come from
    bounded sets (route tables, status classes) so cardinality stays
    fixed.
    """

    __slots__ = ("name", "help", "labelnames", "_cls", "_kwargs", "_children")

    def __init__(self, cls, name: str, help: str, labelnames: Sequence[str], **kwargs):
        self.name = _check_name(name)
        self.help = help
        if not labelnames:
            raise TelemetryError(f"family {name!r} needs at least one label")
        self.labelnames = tuple(_check_label_name(n) for n in labelnames)
        self._cls = cls
        self._kwargs = kwargs
        self._children: dict[tuple[str, ...], Any] = {}

    @property
    def kind(self) -> str:
        return self._cls.kind

    def labels(self, **labels: str) -> Any:
        """The child metric for one label-value tuple (get-or-create)."""
        if set(labels) != set(self.labelnames):
            raise TelemetryError(
                f"family {self.name!r} takes labels {list(self.labelnames)}, "
                f"got {sorted(labels)}"
            )
        key = tuple(str(labels[n]) for n in self.labelnames)
        child = self._children.get(key)
        if child is None:
            child = self._cls(self.name, self.help, **self._kwargs)
            self._children[key] = child
        return child

    def children(self) -> list[tuple[dict[str, str], Any]]:
        """``(labels, metric)`` pairs, sorted by label values."""
        return [
            (dict(zip(self.labelnames, key)), self._children[key])
            for key in sorted(self._children)
        ]


class MetricsRegistry:
    """Get-or-create store of named metrics with uniform exporters."""

    def __init__(self) -> None:
        self._metrics: dict[str, "Counter | Gauge | Histogram"] = {}
        self._families: dict[str, MetricsFamily] = {}

    # ------------------------------------------------------------------ #
    # registration

    def _get_or_create(self, cls, name: str, help: str, **kwargs):
        if name in self._families:
            raise TelemetryError(
                f"metric {name!r} already registered as a labelled family"
            )
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, cls):
                raise TelemetryError(
                    f"metric {name!r} already registered as {existing.kind}"
                )
            return existing
        metric = cls(name, help, **kwargs)
        self._metrics[name] = metric
        return metric

    def _get_or_create_family(
        self, cls, name: str, help: str, labelnames: Sequence[str], **kwargs
    ) -> MetricsFamily:
        if name in self._metrics:
            raise TelemetryError(
                f"metric {name!r} already registered as a plain {self._metrics[name].kind}"
            )
        existing = self._families.get(name)
        if existing is not None:
            if existing.kind != cls.kind or existing.labelnames != tuple(labelnames):
                raise TelemetryError(
                    f"family {name!r} already registered as {existing.kind}"
                    f"{list(existing.labelnames)}"
                )
            return existing
        family = MetricsFamily(cls, name, help, labelnames, **kwargs)
        self._families[name] = family
        return family

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(Histogram, name, help, buckets=buckets)

    def counter_family(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> MetricsFamily:
        return self._get_or_create_family(Counter, name, help, labelnames)

    def gauge_family(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> MetricsFamily:
        return self._get_or_create_family(Gauge, name, help, labelnames)

    def histogram_family(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> MetricsFamily:
        return self._get_or_create_family(
            Histogram, name, help, labelnames, buckets=buckets
        )

    # ------------------------------------------------------------------ #
    # access

    def get(self, name: str) -> "Counter | Gauge | Histogram":
        try:
            return self._metrics[name]
        except KeyError:
            raise TelemetryError(f"no metric named {name!r}") from None

    def family(self, name: str) -> MetricsFamily:
        try:
            return self._families[name]
        except KeyError:
            raise TelemetryError(f"no metric family named {name!r}") from None

    def names(self) -> list[str]:
        return sorted([*self._metrics, *self._families])

    def __contains__(self, name: str) -> bool:
        return name in self._metrics or name in self._families

    def __len__(self) -> int:
        return len(self._metrics) + len(self._families)

    def __iter__(self) -> Iterable[str]:
        return iter(self.names())

    # ------------------------------------------------------------------ #
    # exporters

    @staticmethod
    def _histogram_dict(m: Histogram) -> dict:
        out: dict[str, Any] = {
            "type": m.kind,
            "count": m.count,
            "sum": m.sum,
            "mean": m.mean,
            "min": m.min,
            "max": m.max,
            "buckets": [
                ["+Inf" if math.isinf(le) else le, c]
                for le, c in m.bucket_counts()
            ],
        }
        for q in EXPORTED_QUANTILES:
            out[f"p{round(q * 100)}"] = m.quantile(q)
        return out

    def as_dict(self) -> dict[str, dict]:
        """JSON-ready snapshot of every metric and family, sorted by name."""
        out: dict[str, dict] = {}
        for name in self.names():
            family = self._families.get(name)
            if family is not None:
                out[name] = {
                    "type": family.kind,
                    "labelnames": list(family.labelnames),
                    "series": [
                        {
                            "labels": labels,
                            **(
                                self._histogram_dict(child)
                                if isinstance(child, Histogram)
                                else {"type": child.kind, "value": child.value}
                            ),
                        }
                        for labels, child in family.children()
                    ],
                }
                continue
            m = self._metrics[name]
            if isinstance(m, Histogram):
                out[name] = self._histogram_dict(m)
            else:
                out[name] = {"type": m.kind, "value": m.value}
        return out

    @staticmethod
    def _label_string(labels: Mapping[str, str]) -> str:
        if not labels:
            return ""
        inner = ",".join(
            f'{k}="{_escape_label_value(v)}"' for k, v in labels.items()
        )
        return "{" + inner + "}"

    @classmethod
    def _sample_lines(
        cls, name: str, m: "Counter | Gauge | Histogram", labels: Mapping[str, str]
    ) -> list[str]:
        lines: list[str] = []
        if isinstance(m, Histogram):
            for le, c in m.bucket_counts():
                bound = _escape_label_value("+Inf" if math.isinf(le) else repr(le))
                merged = dict(labels)
                le_part = f'le="{bound}"'
                if merged:
                    joined = cls._label_string(merged)[1:-1] + "," + le_part
                else:
                    joined = le_part
                lines.append(f"{name}_bucket{{{joined}}} {c}")
            suffix = cls._label_string(labels)
            lines.append(f"{name}_sum{suffix} {m.sum!r}")
            lines.append(f"{name}_count{suffix} {m.count}")
        else:
            lines.append(f"{name}{cls._label_string(labels)} {m.value!r}")
        return lines

    @classmethod
    def _quantile_lines(
        cls, name: str, m: Histogram, labels: Mapping[str, str]
    ) -> list[str]:
        """Bucket-estimated quantile gauges for one populated histogram."""
        lines: list[str] = []
        for q in EXPORTED_QUANTILES:
            merged = dict(labels)
            merged["quantile"] = repr(q)
            lines.append(
                f"{name}_quantile{cls._label_string(merged)} {m.quantile(q)!r}"
            )
        return lines

    def to_prometheus(self) -> str:
        """Prometheus text exposition format (0.0.4), sorted by name.

        Conformance: ``# HELP``/``# TYPE`` appear exactly once per metric
        family (all of a histogram's ``_bucket``/``_sum``/``_count``
        series share its one header; a labelled family's children share
        one header too), help strings and label values are escaped per
        the format, and the payload is meant to be served as
        :data:`PROMETHEUS_CONTENT_TYPE`.

        Every populated histogram additionally exposes its bucket
        quantile estimates as a companion ``<name>_quantile`` gauge
        family (labelled ``quantile="0.5"|"0.95"|"0.99"``).
        """
        lines: list[str] = []
        for name in self.names():
            family = self._families.get(name)
            if family is not None:
                if family.help:
                    lines.append(f"# HELP {name} {_escape_help(family.help)}")
                lines.append(f"# TYPE {name} {family.kind}")
                quantiles: list[str] = []
                for labels, child in family.children():
                    lines.extend(self._sample_lines(name, child, labels))
                    if isinstance(child, Histogram) and child.count:
                        quantiles.extend(
                            self._quantile_lines(name, child, labels)
                        )
                if quantiles:
                    lines.append(f"# TYPE {name}_quantile gauge")
                    lines.extend(quantiles)
                continue
            m = self._metrics[name]
            if m.help:
                lines.append(f"# HELP {name} {_escape_help(m.help)}")
            lines.append(f"# TYPE {name} {m.kind}")
            lines.extend(self._sample_lines(name, m, {}))
            if isinstance(m, Histogram) and m.count:
                lines.append(f"# TYPE {name}_quantile gauge")
                lines.extend(self._quantile_lines(name, m, {}))
        return "\n".join(lines) + ("\n" if lines else "")

    def merge_counters(self, other: "MetricsRegistry | Mapping[str, dict]") -> None:
        """Add another registry's counter values into this one.

        Gauges and histograms are skipped (their merge semantics are
        context-dependent); used when folding per-worker registries back
        into a session registry.
        """
        if isinstance(other, MetricsRegistry):
            items: Iterable[tuple[str, dict]] = (
                (n, {"type": m.kind, "value": m.value})
                for n, m in other._metrics.items()
            )
        else:
            items = other.items()
        for name, payload in items:
            if payload.get("type") == "counter":
                self.counter(name).inc(payload["value"])
