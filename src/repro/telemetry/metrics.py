"""Metrics registry: named counters, gauges and histograms with exporters.

The simulation layers used to thread ad-hoc integer attributes through
result dataclasses (``SRMResult.retries`` and friends).  A
:class:`MetricsRegistry` gives those values names, help strings and a
uniform export surface — Prometheus text exposition and JSON — while the
public result dataclasses keep their exact shape (they now read their
numbers out of a registry).

Histograms track count/sum/min/max plus cumulative bucket counts, which
is what the profiling spans need (mean and tail latency) and what the
Prometheus format expects.
"""

from __future__ import annotations

import bisect
import math
from typing import Any, Iterable, Mapping, Sequence

from repro.errors import TelemetryError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_SIZE_BUCKETS",
    "PROMETHEUS_CONTENT_TYPE",
]

#: the content type the text exposition format (0.0.4) must be served with
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _escape_help(text: str) -> str:
    """Escape a ``# HELP`` docstring per the exposition format (0.0.4):
    backslash and line feed only."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label_value(value: str) -> str:
    """Escape a label value: backslash, double quote, line feed."""
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )

#: span timings: 1 µs .. 10 s, exponential
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = tuple(
    1e-6 * (10 ** (i / 2)) for i in range(15)
)

#: byte volumes: 1 KiB .. 4 GiB, powers of four
DEFAULT_SIZE_BUCKETS: tuple[float, ...] = tuple(
    1024.0 * (4.0**i) for i in range(12)
)


def _check_name(name: str) -> str:
    if not name or not all(c.isalnum() or c in "_:" for c in name):
        raise TelemetryError(f"invalid metric name {name!r}")
    return name


class Counter:
    """Monotonically non-decreasing value (int or float increments)."""

    kind = "counter"
    __slots__ = ("name", "help", "_value")

    def __init__(self, name: str, help: str = ""):
        self.name = _check_name(name)
        self.help = help
        self._value: "int | float" = 0

    def inc(self, amount: "int | float" = 1) -> None:
        if amount < 0:
            raise TelemetryError(
                f"counter {self.name!r} cannot decrease (inc {amount})"
            )
        self._value += amount

    @property
    def value(self) -> "int | float":
        return self._value

    def export_state(self) -> "int | float":
        """The raw value, for checkpoint serialization."""
        return self._value

    def restore_state(self, value: "int | float") -> None:
        """Set the raw value from a checkpoint (bypasses monotonicity)."""
        self._value = value


class Gauge:
    """A value that may go up and down."""

    kind = "gauge"
    __slots__ = ("name", "help", "_value")

    def __init__(self, name: str, help: str = ""):
        self.name = _check_name(name)
        self.help = help
        self._value: "int | float" = 0

    def set(self, value: "int | float") -> None:
        self._value = value

    def inc(self, amount: "int | float" = 1) -> None:
        self._value += amount

    def dec(self, amount: "int | float" = 1) -> None:
        self._value -= amount

    @property
    def value(self) -> "int | float":
        return self._value


class Histogram:
    """Streaming distribution: count/sum/min/max + cumulative buckets.

    Exposes :attr:`mean` and :attr:`max` so it can stand in for the
    ad-hoc ``RunningStats`` accumulators the result dataclasses used to
    read (mean response time, max response time, …).
    """

    kind = "histogram"
    __slots__ = ("name", "help", "buckets", "_counts", "_n", "_sum", "_min", "_max")

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ):
        self.name = _check_name(name)
        self.help = help
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise TelemetryError(f"histogram {name!r} needs at least one bucket")
        self.buckets = bounds
        self._counts = [0] * (len(bounds) + 1)  # last slot = +Inf
        self._n = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf

    def observe(self, value: float) -> None:
        self._counts[bisect.bisect_left(self.buckets, value)] += 1
        self._n += 1
        self._sum += value
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value

    # RunningStats-compatible face -------------------------------------- #

    def push(self, value: float) -> None:
        """Alias for :meth:`observe` (RunningStats drop-in)."""
        self.observe(value)

    @property
    def count(self) -> int:
        return self._n

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        return self._sum / self._n if self._n else 0.0

    @property
    def min(self) -> float:
        return self._min if self._n else 0.0

    @property
    def max(self) -> float:
        return self._max if self._n else 0.0

    def export_state(self) -> dict[str, Any]:
        """JSON-able internal state (``inf`` sentinels encoded as null)."""
        return {
            "counts": list(self._counts),
            "n": self._n,
            "sum": self._sum,
            "min": None if self._n == 0 else self._min,
            "max": None if self._n == 0 else self._max,
        }

    def restore_state(self, state: Mapping[str, Any]) -> None:
        """Restore :meth:`export_state` output (bucket layout must match)."""
        counts = [int(c) for c in state["counts"]]
        if len(counts) != len(self._counts):
            raise TelemetryError(
                f"histogram {self.name!r}: snapshot has {len(counts)} "
                f"buckets, this histogram has {len(self._counts)}"
            )
        self._counts = counts
        self._n = int(state["n"])
        self._sum = float(state["sum"])
        self._min = math.inf if state["min"] is None else float(state["min"])
        self._max = -math.inf if state["max"] is None else float(state["max"])

    def bucket_counts(self) -> list[tuple[float, int]]:
        """Cumulative ``(le, count)`` pairs ending with ``(inf, n)``."""
        out: list[tuple[float, int]] = []
        running = 0
        for bound, c in zip(self.buckets, self._counts):
            running += c
            out.append((bound, running))
        out.append((math.inf, self._n))
        return out


class MetricsRegistry:
    """Get-or-create store of named metrics with uniform exporters."""

    def __init__(self) -> None:
        self._metrics: dict[str, "Counter | Gauge | Histogram"] = {}

    # ------------------------------------------------------------------ #
    # registration

    def _get_or_create(self, cls, name: str, help: str, **kwargs):
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, cls):
                raise TelemetryError(
                    f"metric {name!r} already registered as {existing.kind}"
                )
            return existing
        metric = cls(name, help, **kwargs)
        self._metrics[name] = metric
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(Histogram, name, help, buckets=buckets)

    # ------------------------------------------------------------------ #
    # access

    def get(self, name: str) -> "Counter | Gauge | Histogram":
        try:
            return self._metrics[name]
        except KeyError:
            raise TelemetryError(f"no metric named {name!r}") from None

    def names(self) -> list[str]:
        return sorted(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    def __iter__(self) -> Iterable[str]:
        return iter(sorted(self._metrics))

    # ------------------------------------------------------------------ #
    # exporters

    def as_dict(self) -> dict[str, dict]:
        """JSON-ready snapshot of every metric, sorted by name."""
        out: dict[str, dict] = {}
        for name in sorted(self._metrics):
            m = self._metrics[name]
            if isinstance(m, Histogram):
                out[name] = {
                    "type": m.kind,
                    "count": m.count,
                    "sum": m.sum,
                    "mean": m.mean,
                    "min": m.min,
                    "max": m.max,
                    "buckets": [
                        ["+Inf" if math.isinf(le) else le, c]
                        for le, c in m.bucket_counts()
                    ],
                }
            else:
                out[name] = {"type": m.kind, "value": m.value}
        return out

    def to_prometheus(self) -> str:
        """Prometheus text exposition format (0.0.4), sorted by name.

        Conformance: ``# HELP``/``# TYPE`` appear exactly once per metric
        family (all of a histogram's ``_bucket``/``_sum``/``_count``
        series share its one header), help strings and label values are
        escaped per the format, and the payload is meant to be served as
        :data:`PROMETHEUS_CONTENT_TYPE`.
        """
        lines: list[str] = []
        for name in sorted(self._metrics):
            m = self._metrics[name]
            if m.help:
                lines.append(f"# HELP {name} {_escape_help(m.help)}")
            lines.append(f"# TYPE {name} {m.kind}")
            if isinstance(m, Histogram):
                for le, c in m.bucket_counts():
                    label = _escape_label_value(
                        "+Inf" if math.isinf(le) else repr(le)
                    )
                    lines.append(f'{name}_bucket{{le="{label}"}} {c}')
                lines.append(f"{name}_sum {m.sum!r}")
                lines.append(f"{name}_count {m.count}")
            else:
                lines.append(f"{name} {m.value!r}")
        return "\n".join(lines) + ("\n" if lines else "")

    def merge_counters(self, other: "MetricsRegistry | Mapping[str, dict]") -> None:
        """Add another registry's counter values into this one.

        Gauges and histograms are skipped (their merge semantics are
        context-dependent); used when folding per-worker registries back
        into a session registry.
        """
        if isinstance(other, MetricsRegistry):
            items: Iterable[tuple[str, dict]] = (
                (n, {"type": m.kind, "value": m.value})
                for n, m in other._metrics.items()
            )
        else:
            items = other.items()
        for name, payload in items:
            if payload.get("type") == "counter":
                self.counter(name).inc(payload["value"])
