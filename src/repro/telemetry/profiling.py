"""Profiling hooks: ambient ``span()`` blocks and a ``timed()`` decorator.

Timings are host wall-clock and therefore never enter the deterministic
event stream — they land in the ambient recorder's
:class:`~repro.telemetry.metrics.MetricsRegistry` as
``span_<name>_seconds`` histograms, exported by ``repro-fbc trace`` and
the registry's Prometheus/JSON exporters.
"""

from __future__ import annotations

import functools
from typing import Callable, TypeVar

from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.recorder import current_recorder

__all__ = ["span", "timed", "span_profile"]

_F = TypeVar("_F", bound=Callable)


def span(name: str):
    """Time a ``with`` block into the ambient recorder's registry.

    A no-op (one context-var read) when no profiling recorder is
    installed::

        with span("optbundle.plan"):
            plan = planner.plan(bundle, resident)
    """
    return current_recorder().span(name)


def timed(name: str) -> Callable[[_F], _F]:
    """Decorator form of :func:`span` (hook point for coarse call sites)."""

    def decorate(fn: _F) -> _F:
        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            with current_recorder().span(name):
                return fn(*args, **kwargs)

        return wrapper  # type: ignore[return-value]

    return decorate


def span_profile(registry: MetricsRegistry) -> list[dict[str, object]]:
    """Tabulate the ``span_*_seconds`` histograms of a registry.

    Returns one row per span: name, call count, mean/max seconds plus
    the bucket-estimated p50/p95/p99 — the summary ``repro-fbc trace``
    prints and ``GET /v1/debug/profile`` serves.
    """
    rows: list[dict[str, object]] = []
    for name in registry.names():
        if not (name.startswith("span_") and name.endswith("_seconds")):
            continue
        hist = registry.get(name)
        rows.append(
            {
                "span": name[len("span_") : -len("_seconds")],
                "calls": hist.count,
                "mean_s": hist.mean,
                "p50_s": hist.quantile(0.5),
                "p95_s": hist.quantile(0.95),
                "p99_s": hist.quantile(0.99),
                "max_s": hist.max,
                "total_s": hist.sum,
            }
        )
    return rows
