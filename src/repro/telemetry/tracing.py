"""Causal request tracing: per-request span trees in a bounded ring.

The coordinator service answers "where did this request's time go?"
with one :class:`RequestTrace` per HTTP request: a tree of named spans
(``http.request`` at the root, ``queue.wait`` / ``core.plan`` /
``cache.admit`` / ``cache.evict`` / ``srm.stage`` below it) whose
timings come from the host clock.  Finished traces land in the
:class:`RequestTracer`'s bounded ring (plus a second ring of requests
over a slow threshold) and, optionally, a JSONL *profile stream* —
one line per request, written to its own file.

Determinism contract
--------------------
Request **identifiers** are deterministic: they derive from arrival
sequence numbers (``req-<job index>`` for job submissions,
``http-<n>`` for read-side requests), never from the wall clock, so
the same replay resolves to the same IDs.  Span **timings** are host
observations and therefore live only here, in registry histograms and
in the profile stream — never in the decision trace.  ``trace.jsonl``
stays byte-identical whether tracing is enabled or not (the RPR001
rule allowlists this module for exactly that reason).

Instrumentation sites do not import this module directly: the ambient
:meth:`~repro.telemetry.recorder.TraceRecorder.span` context manager
reports into the active request's tree (one context-var read) whenever
a request is open, so the same ``span("core.plan")`` that feeds the
``span_core_plan_seconds`` histogram also grows the causal tree.
"""

from __future__ import annotations

import json
import time
from collections import deque
from contextlib import contextmanager
from contextvars import ContextVar
from typing import IO, Any, Iterator

from repro.errors import ConfigError

__all__ = [
    "REQUEST_ID_HEADER",
    "SpanNode",
    "RequestTrace",
    "RequestTracer",
    "active_request",
    "request_id_for_job",
]

#: the header loadgen (or any client) uses to hand the service a
#: correlation id; the service echoes its own id back under it too
REQUEST_ID_HEADER = "X-Repro-Request-Id"

#: the root span every traced request opens
ROOT_SPAN = "http.request"


def request_id_for_job(job_index: int) -> str:
    """The deterministic request id of job ``job_index`` (arrival seq)."""
    if job_index < 0:
        raise ConfigError(f"job index must be non-negative, got {job_index}")
    return f"req-{job_index:08d}"


class SpanNode:
    """One timed span: name, host start/end, nested children."""

    __slots__ = ("name", "start_s", "end_s", "children")

    def __init__(self, name: str, start_s: float):
        self.name = name
        self.start_s = start_s
        self.end_s: float | None = None
        self.children: list["SpanNode"] = []

    @property
    def duration_s(self) -> float:
        end = time.perf_counter() if self.end_s is None else self.end_s
        return max(0.0, end - self.start_s)

    def as_dict(self, origin_s: float) -> dict[str, Any]:
        """JSON form with microsecond offsets relative to ``origin_s``."""
        return {
            "name": self.name,
            "start_us": round((self.start_s - origin_s) * 1e6, 1),
            "duration_us": round(self.duration_s * 1e6, 1),
            "children": [c.as_dict(origin_s) for c in self.children],
        }


class RequestTrace:
    """The span tree of one request, rooted at ``http.request``.

    Spans open and close strictly nested (they are ``with`` blocks), so
    a plain stack tracks the insertion point.  ``request_id`` starts as
    a provisional read-side id and is re-pointed at the job-derived id
    once the submission path knows its arrival index.
    """

    __slots__ = (
        "request_id",
        "route",
        "client_id",
        "job",
        "status",
        "root",
        "_stack",
    )

    def __init__(self, request_id: str, *, route: str, client_id: str | None = None):
        self.request_id = request_id
        self.route = route
        self.client_id = client_id
        self.job: int | None = None
        self.status: int | None = None
        self.root = SpanNode(ROOT_SPAN, time.perf_counter())
        self._stack: list[SpanNode] = [self.root]

    # ------------------------------------------------------------------ #
    # span recording (driven by TraceRecorder spans)

    def begin_span(self, name: str, start_s: float) -> SpanNode:
        node = SpanNode(name, start_s)
        self._stack[-1].children.append(node)
        self._stack.append(node)
        return node

    def end_span(self, node: SpanNode, end_s: float) -> None:
        node.end_s = end_s
        # spans are context managers, so mismatches would be a bug in the
        # instrumentation; unwind defensively instead of corrupting the tree
        while len(self._stack) > 1:
            top = self._stack.pop()
            if top is node:
                return

    def finish(self, status: int | None = None) -> None:
        if status is not None:
            self.status = status
        while len(self._stack) > 1:
            open_node = self._stack.pop()
            if open_node.end_s is None:
                open_node.end_s = time.perf_counter()
        if self.root.end_s is None:
            self.root.end_s = time.perf_counter()

    # ------------------------------------------------------------------ #
    # views

    @property
    def duration_s(self) -> float:
        return self.root.duration_s

    def span_seconds(self, name: str) -> float:
        """Total duration of every span named ``name`` in the tree."""
        total = 0.0
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node.name == name:
                total += node.duration_s
            stack.extend(node.children)
        return total

    def breakdown(self) -> dict[str, float]:
        """The client-correlatable server-side latency split (seconds)."""
        return {
            "server_s": self.duration_s,
            "queue_wait_s": self.span_seconds("queue.wait"),
            "plan_s": self.span_seconds("core.plan"),
            "apply_s": (
                self.span_seconds("cache.admit")
                + self.span_seconds("srm.stage")
                + self.span_seconds("journal.commit")
            ),
        }

    def as_dict(self) -> dict[str, Any]:
        return {
            "request_id": self.request_id,
            "route": self.route,
            "client_id": self.client_id,
            "job": self.job,
            "status": self.status,
            "duration_ms": round(self.duration_s * 1e3, 3),
            "breakdown_ms": {
                k.removesuffix("_s") + "_ms": round(v * 1e3, 3)
                for k, v in self.breakdown().items()
            },
            "spans": self.root.as_dict(self.root.start_s),
        }


_ACTIVE: ContextVar[RequestTrace | None] = ContextVar(
    "repro_telemetry_active_request", default=None
)


def active_request() -> RequestTrace | None:
    """The request being traced in this context, if any."""
    return _ACTIVE.get()


class RequestTracer:
    """Bounded rings of finished :class:`RequestTrace` objects.

    ``capacity`` of 0 disables tracing entirely (the :meth:`request`
    context manager becomes a no-op yielding ``None``) — that is the
    tracing-disabled leg of the differential test and the baseline leg
    of the ``tracing_overhead`` benchmark.  The optional
    ``profile_stream`` receives one JSON line per finished request;
    it is a *profile* artifact (host timings), kept strictly separate
    from the deterministic decision trace.
    """

    def __init__(
        self,
        capacity: int = 256,
        *,
        slow_threshold_s: float = 0.1,
        profile_stream: IO[str] | None = None,
    ):
        if capacity < 0:
            raise ConfigError(f"capacity must be non-negative, got {capacity}")
        if slow_threshold_s <= 0:
            raise ConfigError(
                f"slow_threshold_s must be positive, got {slow_threshold_s}"
            )
        self.capacity = capacity
        self.slow_threshold_s = slow_threshold_s
        self._ring: deque[RequestTrace] = deque(maxlen=max(capacity, 1))
        self._slow: deque[RequestTrace] = deque(maxlen=max(capacity, 1))
        self._profile_stream = profile_stream
        self.requests_traced = 0
        self._http_seq = 0

    @property
    def enabled(self) -> bool:
        return self.capacity > 0

    def next_read_id(self) -> str:
        """A deterministic id for a read-side (non-job) request."""
        rid = f"http-{self._http_seq:08d}"
        self._http_seq += 1
        return rid

    @contextmanager
    def request(
        self, request_id: str, *, route: str, client_id: str | None = None
    ) -> Iterator[RequestTrace | None]:
        """Trace one request: installs the span tree as ambient context."""
        if not self.enabled:
            yield None
            return
        trace = RequestTrace(request_id, route=route, client_id=client_id)
        token = _ACTIVE.set(trace)
        try:
            yield trace
        finally:
            _ACTIVE.reset(token)
            trace.finish()
            self._record(trace)

    def _record(self, trace: RequestTrace) -> None:
        self.requests_traced += 1
        self._ring.append(trace)
        if trace.duration_s >= self.slow_threshold_s:
            self._slow.append(trace)
        if self._profile_stream is not None:
            self._profile_stream.write(
                json.dumps(trace.as_dict(), sort_keys=True) + "\n"
            )
            self._profile_stream.flush()

    # ------------------------------------------------------------------ #
    # debug-endpoint views

    def recent(self, limit: int | None = None) -> list[dict[str, Any]]:
        """Most recent finished requests, newest last."""
        traces = list(self._ring)
        if limit is not None:
            traces = traces[-limit:]
        return [t.as_dict() for t in traces]

    def slow(self, threshold_s: float | None = None) -> list[dict[str, Any]]:
        """Recent requests at or over the (possibly overridden) threshold."""
        if threshold_s is None:
            return [t.as_dict() for t in self._slow]
        # an explicit threshold filters the full ring: the slow ring only
        # retains requests over the configured default
        return [t.as_dict() for t in self._ring if t.duration_s >= threshold_s]

    def find(self, request_id: str) -> dict[str, Any] | None:
        """The ring entry for ``request_id``, if it is still resident."""
        for trace in reversed(self._ring):
            if trace.request_id == request_id:
                return trace.as_dict()
        return None

    def payload(self) -> dict[str, Any]:
        """The ``GET /v1/debug/requests`` body."""
        return {
            "capacity": self.capacity,
            "requests_traced": self.requests_traced,
            "slow_threshold_ms": round(self.slow_threshold_s * 1e3, 3),
            "requests": self.recent(),
        }
