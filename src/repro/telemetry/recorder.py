"""The :class:`TraceRecorder`: sequenced event emission + ambient context.

A recorder binds a :class:`~repro.telemetry.sinks.TraceSink` to a
monotonic sequence counter and a :class:`~repro.telemetry.metrics.MetricsRegistry`
for profiling spans.  Instrumentation sites obtain the *ambient*
recorder (a :mod:`contextvars` variable, installed with
:func:`use_recorder`) and guard construction on :attr:`TraceRecorder.active`::

    rec = current_recorder()
    ...
    if rec.active:
        rec.emit(FileAdmitted(file=f, bytes=size, cause="demand"))

With the default :data:`NULL_RECORDER` the guard is a single attribute
read, so uninstrumented runs pay effectively nothing.

Determinism
-----------
Events carry no host state; the recorder assigns ``seq`` in emission
order.  Worker processes buffer their events (see
:func:`repro.experiments.common.parallel_map`) and the parent replays the
buffers in work-item order through :meth:`TraceRecorder.replay`, so a
``--jobs N`` run writes byte-for-byte the trace a serial run writes.

Profiling spans record *host* durations and therefore go to the metrics
registry, never into the event stream.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Iterable, Iterator

from repro.errors import ConfigError
from repro.telemetry.events import TraceEvent
from repro.telemetry.metrics import DEFAULT_LATENCY_BUCKETS, MetricsRegistry
from repro.telemetry.sinks import JsonlSink, NullSink, RingSink, TraceSink
from repro.telemetry.tracing import active_request

__all__ = [
    "TraceRecorder",
    "NULL_RECORDER",
    "current_recorder",
    "use_recorder",
    "recorder_from_spec",
]


class _NoopSpan:
    """Reusable do-nothing context manager for inactive profiling."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc) -> None:
        return None


_NOOP_SPAN = _NoopSpan()


class _Span:
    """Times one ``with`` block into a registry histogram.

    When a request trace is open in this context (the coordinator
    service's tracing layer), the span additionally grows that request's
    causal tree — same clock readings, two consumers.  Host timings end
    up in the registry and the request ring only, never the event trace.
    """

    __slots__ = ("_hist", "_name", "_t0", "_request", "_node")

    def __init__(self, hist, name: str):
        self._hist = hist
        self._name = name
        self._t0 = 0.0
        self._request = None
        self._node = None

    def __enter__(self) -> "_Span":
        self._request = active_request()
        self._t0 = time.perf_counter()
        if self._request is not None:
            self._node = self._request.begin_span(self._name, self._t0)
        return self

    def __exit__(self, *exc) -> None:
        end = time.perf_counter()
        self._hist.observe(end - self._t0)
        if self._request is not None and self._node is not None:
            self._request.end_span(self._node, end)
        return None


class TraceRecorder:
    """Sequenced event emission plus span profiling.

    Parameters
    ----------
    sink:
        Where events go; ``None`` (or a :class:`NullSink`) disables event
        emission entirely.
    registry:
        Profiling/metrics registry; created on demand when omitted.
    profile:
        Enable :meth:`span` timing.  Defaults to ``True`` whenever the
        sink is active or a registry was supplied, ``False`` otherwise
        (so the null recorder is a true no-op).
    start_seq:
        First sequence number to assign (default 0).  Checkpoint
        recovery primes a fresh recorder with the next sequence of the
        truncated trace so the stitched file keeps a contiguous ``seq``.
    """

    __slots__ = ("sink", "_registry", "_profile", "_seq", "active")

    def __init__(
        self,
        sink: TraceSink | None = None,
        *,
        registry: MetricsRegistry | None = None,
        profile: bool | None = None,
        start_seq: int = 0,
    ):
        if start_seq < 0:
            raise ConfigError(f"start_seq must be non-negative, got {start_seq}")
        self.sink = sink if sink is not None else NullSink()
        self._registry = registry
        self.active = self.sink.active
        if profile is None:
            profile = self.active or registry is not None
        self._profile = profile
        self._seq = start_seq

    # ------------------------------------------------------------------ #
    # events

    def emit(self, event: TraceEvent) -> None:
        """Write one event with the next sequence number (if active)."""
        if not self.active:
            return
        self.sink.emit(self._seq, event)
        self._seq += 1

    def replay(self, events: Iterable[TraceEvent]) -> None:
        """Re-emit buffered events, assigning fresh sequence numbers."""
        for event in events:
            self.emit(event)

    @property
    def events_emitted(self) -> int:
        return self._seq

    def close(self) -> None:
        self.sink.close()

    def __enter__(self) -> "TraceRecorder":
        return self

    def __exit__(self, *exc) -> None:
        # Closing on the error path too guarantees a JsonlSink is flushed
        # even when the traced run raises (the partial trace stays usable).
        self.close()
        return None

    # ------------------------------------------------------------------ #
    # profiling

    @property
    def profiling(self) -> bool:
        return self._profile

    @property
    def registry(self) -> MetricsRegistry:
        if self._registry is None:
            self._registry = MetricsRegistry()
        return self._registry

    def span(self, name: str) -> "_Span | _NoopSpan":
        """A context manager timing its block into ``span_<name>_seconds``."""
        if not self._profile:
            return _NOOP_SPAN
        hist = self.registry.histogram(
            f"span_{name.replace('.', '_')}_seconds",
            f"duration of {name}",
            buckets=DEFAULT_LATENCY_BUCKETS,
        )
        return _Span(hist, name)


#: the inert default recorder: inactive sink, no profiling
NULL_RECORDER = TraceRecorder(NullSink(), profile=False)

_current: ContextVar[TraceRecorder] = ContextVar(
    "repro_telemetry_recorder", default=NULL_RECORDER
)


def current_recorder() -> TraceRecorder:
    """The ambient recorder (the :data:`NULL_RECORDER` unless installed)."""
    return _current.get()


@contextmanager
def use_recorder(recorder: TraceRecorder) -> Iterator[TraceRecorder]:
    """Install ``recorder`` as the ambient recorder for the ``with`` block."""
    token = _current.set(recorder)
    try:
        yield recorder
    finally:
        _current.reset(token)


def recorder_from_spec(spec: str) -> TraceRecorder:
    """Build a recorder from a CLI spec string.

    * ``null`` / ``none`` / ``off`` — inert recorder;
    * ``jsonl:<path>`` — write a JSONL trace to ``<path>``;
    * ``ring`` / ``ring:<capacity>`` — in-memory buffer.
    """
    kind, sep, arg = spec.partition(":")
    kind = kind.strip().lower()
    if kind in ("null", "none", "off"):
        if sep:
            raise ConfigError(
                f"telemetry spec {spec!r}: {kind!r} takes no argument"
            )
        return TraceRecorder(NullSink(), profile=False)
    if kind == "jsonl":
        if not arg:
            raise ConfigError(f"telemetry spec {spec!r} needs a path")
        return TraceRecorder(JsonlSink(arg))
    if kind == "ring":
        if arg:
            try:
                capacity: int | None = int(arg)
            except ValueError:
                raise ConfigError(
                    f"telemetry spec {spec!r}: ring capacity must be an "
                    f"int, got {arg!r}"
                ) from None
        else:
            capacity = None
        return TraceRecorder(RingSink(capacity))
    raise ConfigError(
        f"unknown telemetry spec {spec!r}; expected null, jsonl:<path> or "
        "ring[:<capacity>]"
    )
